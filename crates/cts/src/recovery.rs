//! The degradation ladder — bounded, deterministic level-failure
//! recovery.
//!
//! When a level fails with a recoverable error (an infeasible skew
//! merge, a panicked routing worker, an exhausted work budget — see
//! [`CtsError::is_recoverable`](crate::error::CtsError::is_recoverable)),
//! the flow may retry the level under a relaxed configuration instead of
//! aborting the whole run. The retry sequence is a fixed *ladder* built
//! once per level from the [`RecoveryPolicy`]:
//!
//! 1. the original configuration (attempt 0),
//! 2. the per-level skew bound relaxed by each factor in
//!    [`skew_relax`](RecoveryPolicy::skew_relax) (default ×1.5, ×2, ×4),
//! 3. at the maximum relaxation, simpler topologies in the fixed
//!    fallback order **Cbs → Bst → Rsmt** (each rung keeps skew control
//!    where the topology still has any).
//!
//! The ladder is deterministic: it is a pure function of the policy and
//! the configured topology, every retry re-derives the same per-cluster
//! seed streams, and a recovered run is bit-identical at any worker
//! count. Every rung actually climbed is recorded as a [`Downgrade`] in
//! the level's [`LevelReport`](crate::report::LevelReport) and the
//! telemetry run record, so silent quality loss is impossible.
//!
//! The default policy is **disabled** — `HierarchicalCts::default()`
//! fails fast exactly as it always has. Opt in with
//! [`RecoveryPolicy::standard`].

use crate::flow::TopologyKind;

/// How (and whether) the flow retries a failed level.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch; `false` reproduces the historical fail-fast
    /// behavior exactly.
    pub enabled: bool,
    /// Skew-bound relaxation factors, tried in order. Each retry
    /// multiplies the *original* bound (factors do not compound).
    pub skew_relax: Vec<f64>,
    /// Whether to fall back to simpler topologies (Cbs → Bst → Rsmt)
    /// once the skew schedule is exhausted.
    pub topology_fallback: bool,
    /// Floor for `partition_restarts` on retries, so a misconfigured
    /// zero-restart flow can still recover.
    pub min_restarts: usize,
}

impl Default for RecoveryPolicy {
    /// Recovery **disabled** (the historical behavior). The schedule
    /// fields still carry the standard values so enabling is one flag.
    fn default() -> Self {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::standard()
        }
    }
}

impl RecoveryPolicy {
    /// The standard ladder: skew ×1.5, ×2, ×4, then topology fallback,
    /// with a one-restart floor on retries.
    pub fn standard() -> Self {
        RecoveryPolicy {
            enabled: true,
            skew_relax: vec![1.5, 2.0, 4.0],
            topology_fallback: true,
            min_restarts: 1,
        }
    }

    /// Recovery switched off explicitly.
    pub fn disabled() -> Self {
        RecoveryPolicy::default()
    }

    /// The attempt sequence for one level under `topology`: attempt 0 is
    /// always the identity step; a disabled policy returns only that.
    pub fn ladder(&self, topology: TopologyKind) -> Vec<LadderStep> {
        let mut steps = vec![LadderStep {
            skew_factor: 1.0,
            topology: None,
        }];
        if !self.enabled {
            return steps;
        }
        let mut max_factor = 1.0f64;
        for &f in &self.skew_relax {
            // A non-relaxing factor would retry the identical attempt
            // forever in spirit; skip anything ≤ the current maximum.
            if f > max_factor {
                steps.push(LadderStep {
                    skew_factor: f,
                    topology: None,
                });
                max_factor = f;
            }
        }
        if self.topology_fallback {
            for t in fallback_chain(topology) {
                steps.push(LadderStep {
                    skew_factor: max_factor,
                    topology: Some(t),
                });
            }
        }
        steps
    }
}

/// One rung of the ladder: what attempt `n` changes relative to the
/// original configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderStep {
    /// Multiplier applied to the configured skew bound.
    pub skew_factor: f64,
    /// Topology override, when this rung falls back.
    pub topology: Option<TopologyKind>,
}

/// The fixed topology fallback order below `from`: each rung gives up
/// one property (Cbs's SALT shaping, then Bst's skew control) and ends
/// at RSMT, which cannot fail a skew merge at all. H-trees fall straight
/// to RSMT — there is no "simpler H-tree".
fn fallback_chain(from: TopologyKind) -> Vec<TopologyKind> {
    match from {
        TopologyKind::Cbs { scheme, .. } => {
            vec![TopologyKind::Bst { scheme }, TopologyKind::Rsmt]
        }
        TopologyKind::Bst { .. } | TopologyKind::Salt { .. } => vec![TopologyKind::Rsmt],
        TopologyKind::HTree | TopologyKind::GhTree => vec![TopologyKind::Rsmt],
        TopologyKind::Rsmt => Vec::new(),
    }
}

/// One recorded rung climb: why the flow downgraded and to what. Carried
/// in [`LevelReport::downgrades`](crate::report::LevelReport::downgrades)
/// and the telemetry run record.
#[derive(Debug, Clone, PartialEq)]
pub struct Downgrade {
    /// The attempt this downgrade led into (1 = first retry).
    pub attempt: usize,
    /// Skew-bound multiplier in effect for that attempt.
    pub skew_factor: f64,
    /// Topology fallen back to, when the rung switches topology.
    pub topology: Option<&'static str>,
    /// Display form of the error that triggered the retry.
    pub trigger: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_route::TopologyScheme;

    fn cbs() -> TopologyKind {
        TopologyKind::Cbs {
            scheme: TopologyScheme::GreedyDist,
            eps: 0.2,
        }
    }

    #[test]
    fn default_policy_is_disabled_with_only_the_identity_step() {
        let p = RecoveryPolicy::default();
        assert!(!p.enabled);
        let steps = p.ladder(cbs());
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].skew_factor, 1.0);
        assert_eq!(steps[0].topology, None);
    }

    #[test]
    fn standard_ladder_relaxes_then_falls_back() {
        let steps = RecoveryPolicy::standard().ladder(cbs());
        // identity, 1.5, 2, 4, Bst@4, Rsmt@4
        assert_eq!(steps.len(), 6);
        assert_eq!(steps[1].skew_factor, 1.5);
        assert_eq!(steps[3].skew_factor, 4.0);
        assert!(matches!(steps[4].topology, Some(TopologyKind::Bst { .. })));
        assert_eq!(steps[4].skew_factor, 4.0);
        assert_eq!(steps[5].topology, Some(TopologyKind::Rsmt));
    }

    #[test]
    fn rsmt_has_no_fallback_rungs() {
        let steps = RecoveryPolicy::standard().ladder(TopologyKind::Rsmt);
        assert_eq!(steps.len(), 4); // identity + three relaxations
        assert!(steps.iter().all(|s| s.topology.is_none()));
    }

    #[test]
    fn non_increasing_relax_factors_are_dropped() {
        let p = RecoveryPolicy {
            skew_relax: vec![2.0, 1.5, 2.0, 3.0],
            ..RecoveryPolicy::standard()
        };
        let steps = p.ladder(TopologyKind::Rsmt);
        let factors: Vec<f64> = steps.iter().map(|s| s.skew_factor).collect();
        assert_eq!(factors, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ladder_is_deterministic() {
        let p = RecoveryPolicy::standard();
        assert_eq!(p.ladder(cbs()), p.ladder(cbs()));
    }
}
