//! Bridges the engine's report stream into the machine-readable run
//! record.
//!
//! [`FlowObserver`](crate::report::FlowObserver) reports and the
//! `sllt-obs` registry live on opposite sides of the dependency graph:
//! the algorithm crates emit raw counters and spans, while
//! [`LevelReport`]/[`AssembleReport`] are engine-level summaries. This
//! module joins them — each report becomes one JSONL *event* with a
//! stable shape, and [`run_record`] assembles the full record (meta +
//! events + span tree + metrics) from a finished run.

use crate::recovery::Downgrade;
use crate::report::{AssembleReport, CollectingObserver, LevelReport};
use sllt_obs::{Registry, RunRecord, Value};

/// One recorded ladder rung as a JSON object.
pub fn downgrade_value(d: &Downgrade) -> Value {
    let v = Value::obj()
        .with("attempt", d.attempt)
        .with("skew_factor", d.skew_factor)
        .with("trigger", d.trigger.as_str());
    match d.topology {
        Some(t) => v.with("topology", t),
        None => v,
    }
}

/// One level report as a `{"type":"level", ...}` event. Durations are
/// fractional milliseconds.
pub fn level_value(l: &LevelReport) -> Value {
    Value::obj()
        .with("type", "level")
        .with("level", l.level)
        .with("nodes", l.num_nodes)
        .with("clusters", l.num_clusters)
        .with("workers", l.workers)
        .with("partition_ms", l.timings.partition.as_secs_f64() * 1e3)
        .with("route_ms", l.timings.route.as_secs_f64() * 1e3)
        .with("sizing_ms", l.timings.sizing.as_secs_f64() * 1e3)
        .with("wirelength_um", l.wirelength_um)
        .with("load_cap_ff", l.load_cap_ff)
        .with("driver_input_cap_ff", l.driver_input_cap_ff)
        .with("driver_area_um2", l.driver_area_um2)
        .with("pads", l.pads)
        .with("delay_spread_ps", l.delay_spread_ps)
        .with("attempts", l.attempts)
        .with(
            "downgrades",
            Value::Arr(l.downgrades.iter().map(downgrade_value).collect()),
        )
}

/// Inverts [`downgrade_value`]. Topology names are interned back to the
/// engine's static name set; an unknown name (a newer journal) is an
/// error rather than a silent drop.
pub fn downgrade_from_value(v: &Value) -> Result<Downgrade, String> {
    let topology = match v.get("topology").and_then(Value::as_str) {
        None => None,
        Some(name) => Some(
            *["cbs", "bst", "salt", "rsmt", "htree", "ghtree"]
                .iter()
                .find(|&&t| t == name)
                .ok_or_else(|| format!("unknown downgrade topology {name:?}"))?,
        ),
    };
    Ok(Downgrade {
        attempt: v
            .get("attempt")
            .and_then(Value::as_u64)
            .ok_or("downgrade missing attempt")? as usize,
        skew_factor: v
            .get("skew_factor")
            .and_then(Value::as_f64)
            .ok_or("downgrade missing skew_factor")?,
        topology,
        trigger: v
            .get("trigger")
            .and_then(Value::as_str)
            .ok_or("downgrade missing trigger")?
            .to_string(),
    })
}

/// Inverts [`level_value`]. Stage timings come back as fractional
/// milliseconds, so the round trip is approximate in the sub-nanosecond
/// digits — fine for reports, which never feed back into construction.
pub fn level_report_from_value(v: &Value) -> Result<LevelReport, String> {
    let num = |k: &str| {
        v.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("level event missing {k}"))
    };
    let int = |k: &str| {
        v.get(k)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("level event missing {k}"))
    };
    let duration = |k: &str| -> Result<std::time::Duration, String> {
        let ms = num(k)?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("level event {k} out of range: {ms}"));
        }
        Ok(std::time::Duration::from_secs_f64(ms / 1e3))
    };
    let downgrades = match v.get("downgrades") {
        None => Vec::new(),
        Some(Value::Arr(items)) => items
            .iter()
            .map(downgrade_from_value)
            .collect::<Result<_, _>>()?,
        Some(_) => return Err("level event downgrades is not an array".into()),
    };
    Ok(LevelReport {
        level: int("level")?,
        num_nodes: int("nodes")?,
        num_clusters: int("clusters")?,
        workers: int("workers")?,
        timings: crate::report::StageTimings {
            partition: duration("partition_ms")?,
            route: duration("route_ms")?,
            sizing: duration("sizing_ms")?,
        },
        wirelength_um: num("wirelength_um")?,
        load_cap_ff: num("load_cap_ff")?,
        driver_input_cap_ff: num("driver_input_cap_ff")?,
        driver_area_um2: num("driver_area_um2")?,
        pads: int("pads")?,
        delay_spread_ps: num("delay_spread_ps")?,
        attempts: int("attempts")?,
        downgrades,
    })
}

/// The assembly report as a `{"type":"assemble", ...}` event.
pub fn assemble_value(a: &AssembleReport) -> Value {
    Value::obj()
        .with("type", "assemble")
        .with("trunk_wl_um", a.trunk_wl_um)
        .with("repeaters", a.repeaters)
        .with("repeater_input_cap_ff", a.repeater_input_cap_ff)
        .with("elapsed_ms", a.elapsed.as_secs_f64() * 1e3)
}

/// Assembles a [`RunRecord`] from a finished run: the collector's report
/// stream becomes the event lines (levels bottom-up, then assembly) and
/// the registry snapshot contributes the span tree and merged metrics.
/// `meta` should carry at least the design name; the caller may extend
/// [`RunRecord::meta`] afterwards (the field is public).
pub fn run_record(meta: Value, observer: &CollectingObserver, registry: &Registry) -> RunRecord {
    let mut events: Vec<Value> = observer.levels.iter().map(level_value).collect();
    if let Some(a) = &observer.assemble {
        events.push(assemble_value(a));
    }
    RunRecord::new(meta, events, registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::StageTimings;
    use std::time::Duration;

    fn level() -> LevelReport {
        LevelReport {
            level: 1,
            num_nodes: 64,
            num_clusters: 4,
            workers: 2,
            timings: StageTimings {
                partition: Duration::from_micros(1500),
                route: Duration::from_micros(2500),
                sizing: Duration::from_micros(500),
            },
            wirelength_um: 1234.5,
            load_cap_ff: 99.0,
            driver_input_cap_ff: 4.0,
            driver_area_um2: 6.0,
            pads: 3,
            delay_spread_ps: 0.75,
            attempts: 1,
            downgrades: Vec::new(),
        }
    }

    #[test]
    fn level_event_has_stable_shape() {
        let v = level_value(&level());
        assert_eq!(v.get("type").and_then(Value::as_str), Some("level"));
        assert_eq!(v.get("nodes").and_then(Value::as_u64), Some(64));
        let route_ms = v.get("route_ms").and_then(Value::as_f64).unwrap();
        assert!((route_ms - 2.5).abs() < 1e-9);
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(1));
        assert!(matches!(v.get("downgrades"), Some(Value::Arr(a)) if a.is_empty()));
    }

    #[test]
    fn recovered_level_event_carries_its_downgrades() {
        let mut l = level();
        l.attempts = 3;
        l.downgrades = vec![
            Downgrade {
                attempt: 1,
                skew_factor: 1.5,
                topology: None,
                trigger: "skew merge infeasible".into(),
            },
            Downgrade {
                attempt: 2,
                skew_factor: 4.0,
                topology: Some("rsmt"),
                trigger: "still infeasible".into(),
            },
        ];
        let v = level_value(&l);
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(3));
        let Some(Value::Arr(ds)) = v.get("downgrades") else {
            panic!("downgrades must be an array");
        };
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[1].get("topology").and_then(Value::as_str), Some("rsmt"));
        assert_eq!(
            ds[0].get("trigger").and_then(Value::as_str),
            Some("skew merge infeasible")
        );
        // The event must survive the JSONL schema round-trip.
        let text = v.encode();
        let back = sllt_obs::json::parse(&text).unwrap();
        assert_eq!(back.encode(), text);
        assert!(text.contains("\"downgrades\""), "{text}");
    }

    #[test]
    fn level_event_round_trips_through_the_parser() {
        let mut l = level();
        l.attempts = 2;
        l.downgrades.push(Downgrade {
            attempt: 1,
            skew_factor: 2.0,
            topology: Some("rsmt"),
            trigger: "deadline".into(),
        });
        let back = level_report_from_value(&level_value(&l)).unwrap();
        // Timings go through fractional ms, everything else is exact.
        assert_eq!(back.level, l.level);
        assert_eq!(back.num_nodes, l.num_nodes);
        assert_eq!(back.num_clusters, l.num_clusters);
        assert_eq!(back.wirelength_um, l.wirelength_um);
        assert_eq!(back.delay_spread_ps, l.delay_spread_ps);
        assert_eq!(back.downgrades, l.downgrades);
        assert!(
            (back.timings.route.as_secs_f64() - l.timings.route.as_secs_f64()).abs() < 1e-9,
            "timing drift"
        );
        // Missing members and unknown topologies are typed failures.
        assert!(level_report_from_value(&Value::obj().with("type", "level")).is_err());
        let bad = Value::obj()
            .with("attempt", 1u64)
            .with("skew_factor", 1.0)
            .with("topology", "btree")
            .with("trigger", "x");
        assert!(downgrade_from_value(&bad).is_err());
    }

    #[test]
    fn record_carries_events_spans_and_metrics() {
        let mut obs = CollectingObserver::new();
        obs.levels.push(level());
        obs.assemble = Some(AssembleReport {
            trunk_wl_um: 10.0,
            repeaters: 1,
            repeater_input_cap_ff: 1.5,
            elapsed: Duration::from_micros(100),
        });
        let registry = Registry::new();
        {
            let _scope = registry.install("main");
            let _span = sllt_obs::span("cts.flow");
            sllt_obs::count("cts.route.clusters", 4);
        }
        let meta = Value::obj().with("design", "unit");
        let rec = run_record(meta, &obs, &registry);
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.spans.len(), 1);
        assert_eq!(rec.metrics.counter("cts.route.clusters"), 4);
        // The full record must survive the schema round-trip.
        let text = rec.to_jsonl();
        let back = RunRecord::parse_jsonl(&text).unwrap();
        assert_eq!(back.to_jsonl(), text);
    }
}
