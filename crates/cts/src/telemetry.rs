//! Bridges the engine's report stream into the machine-readable run
//! record.
//!
//! [`FlowObserver`](crate::report::FlowObserver) reports and the
//! `sllt-obs` registry live on opposite sides of the dependency graph:
//! the algorithm crates emit raw counters and spans, while
//! [`LevelReport`]/[`AssembleReport`] are engine-level summaries. This
//! module joins them — each report becomes one JSONL *event* with a
//! stable shape, and [`run_record`] assembles the full record (meta +
//! events + span tree + metrics) from a finished run.

use crate::report::{AssembleReport, CollectingObserver, LevelReport};
use sllt_obs::{Registry, RunRecord, Value};

/// One level report as a `{"type":"level", ...}` event. Durations are
/// fractional milliseconds.
pub fn level_value(l: &LevelReport) -> Value {
    Value::obj()
        .with("type", "level")
        .with("level", l.level)
        .with("nodes", l.num_nodes)
        .with("clusters", l.num_clusters)
        .with("workers", l.workers)
        .with("partition_ms", l.timings.partition.as_secs_f64() * 1e3)
        .with("route_ms", l.timings.route.as_secs_f64() * 1e3)
        .with("sizing_ms", l.timings.sizing.as_secs_f64() * 1e3)
        .with("wirelength_um", l.wirelength_um)
        .with("load_cap_ff", l.load_cap_ff)
        .with("driver_input_cap_ff", l.driver_input_cap_ff)
        .with("driver_area_um2", l.driver_area_um2)
        .with("pads", l.pads)
        .with("delay_spread_ps", l.delay_spread_ps)
}

/// The assembly report as a `{"type":"assemble", ...}` event.
pub fn assemble_value(a: &AssembleReport) -> Value {
    Value::obj()
        .with("type", "assemble")
        .with("trunk_wl_um", a.trunk_wl_um)
        .with("repeaters", a.repeaters)
        .with("repeater_input_cap_ff", a.repeater_input_cap_ff)
        .with("elapsed_ms", a.elapsed.as_secs_f64() * 1e3)
}

/// Assembles a [`RunRecord`] from a finished run: the collector's report
/// stream becomes the event lines (levels bottom-up, then assembly) and
/// the registry snapshot contributes the span tree and merged metrics.
/// `meta` should carry at least the design name; the caller may extend
/// [`RunRecord::meta`] afterwards (the field is public).
pub fn run_record(meta: Value, observer: &CollectingObserver, registry: &Registry) -> RunRecord {
    let mut events: Vec<Value> = observer.levels.iter().map(level_value).collect();
    if let Some(a) = &observer.assemble {
        events.push(assemble_value(a));
    }
    RunRecord::new(meta, events, registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::StageTimings;
    use std::time::Duration;

    fn level() -> LevelReport {
        LevelReport {
            level: 1,
            num_nodes: 64,
            num_clusters: 4,
            workers: 2,
            timings: StageTimings {
                partition: Duration::from_micros(1500),
                route: Duration::from_micros(2500),
                sizing: Duration::from_micros(500),
            },
            wirelength_um: 1234.5,
            load_cap_ff: 99.0,
            driver_input_cap_ff: 4.0,
            driver_area_um2: 6.0,
            pads: 3,
            delay_spread_ps: 0.75,
        }
    }

    #[test]
    fn level_event_has_stable_shape() {
        let v = level_value(&level());
        assert_eq!(v.get("type").and_then(Value::as_str), Some("level"));
        assert_eq!(v.get("nodes").and_then(Value::as_u64), Some(64));
        let route_ms = v.get("route_ms").and_then(Value::as_f64).unwrap();
        assert!((route_ms - 2.5).abs() < 1e-9);
    }

    #[test]
    fn record_carries_events_spans_and_metrics() {
        let mut obs = CollectingObserver::new();
        obs.levels.push(level());
        obs.assemble = Some(AssembleReport {
            trunk_wl_um: 10.0,
            repeaters: 1,
            repeater_input_cap_ff: 1.5,
            elapsed: Duration::from_micros(100),
        });
        let registry = Registry::new();
        {
            let _scope = registry.install("main");
            let _span = sllt_obs::span("cts.flow");
            sllt_obs::count("cts.route.clusters", 4);
        }
        let meta = Value::obj().with("design", "unit");
        let rec = run_record(meta, &obs, &registry);
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.spans.len(), 1);
        assert_eq!(rec.metrics.counter("cts.route.clusters"), 4);
        // The full record must survive the schema round-trip.
        let text = rec.to_jsonl();
        let back = RunRecord::parse_jsonl(&text).unwrap();
        assert_eq!(back.to_jsonl(), text);
    }
}
