//! On-chip-variation (OCV) robustness analysis.
//!
//! The paper's opening motivation: "due to the adverse effects of on-chip
//! variation, conventional CTS that focuses solely on skew is inadequate"
//! — a tree with perfect nominal skew but long, deeply-buffered paths
//! diverges under variation, because every wire segment and buffer stage
//! contributes independent delay noise. Short/shallow trees (small α,
//! fewer stages) are intrinsically more robust, which is exactly what the
//! SLLT objectives buy beyond the nominal numbers.
//!
//! This module runs Monte-Carlo timing over a buffered tree: each trial
//! draws independent multiplicative perturbations per wire segment (RC)
//! and per buffer instance (delay), re-propagates latencies, and records
//! the skew. [`ocv_analysis`] summarizes the distribution.

use sllt_buffer::repeater::downstream_caps;
use sllt_rng::prelude::*;
use sllt_timing::{BufferLibrary, Technology};
use sllt_tree::{ClockTree, NodeKind};

/// Variation magnitudes (1σ, relative) for the Monte-Carlo trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcvModel {
    /// Per-wire-segment RC variation, e.g. 0.08 = 8 % sigma.
    pub wire_sigma: f64,
    /// Per-buffer-instance delay variation.
    pub buffer_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OcvModel {
    /// 8 % wire and 5 % buffer sigma — typical derate magnitudes quoted
    /// for 28 nm OCV analysis.
    fn default() -> Self {
        OcvModel {
            wire_sigma: 0.08,
            buffer_sigma: 0.05,
            seed: 0x0C0F,
        }
    }
}

/// Distribution summary of Monte-Carlo skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcvReport {
    /// Skew with no variation, ps.
    pub nominal_skew_ps: f64,
    /// Mean skew over trials, ps.
    pub mean_skew_ps: f64,
    /// 95th-percentile skew, ps.
    pub p95_skew_ps: f64,
    /// Worst skew seen, ps.
    pub max_skew_ps: f64,
    /// Mean of the max-latency distribution, ps.
    pub mean_latency_ps: f64,
    /// Number of trials run.
    pub trials: usize,
}

/// Runs `trials` Monte-Carlo timing trials over the tree.
///
/// # Panics
///
/// Panics when the tree has no sinks, `trials` is zero, or a sigma is
/// negative.
pub fn ocv_analysis(
    tree: &ClockTree,
    tech: &Technology,
    lib: &BufferLibrary,
    model: &OcvModel,
    trials: usize,
) -> OcvReport {
    assert!(trials > 0, "at least one trial");
    assert!(
        model.wire_sigma >= 0.0 && model.buffer_sigma >= 0.0,
        "negative sigma"
    );
    let mut rng = StdRng::seed_from_u64(model.seed);
    let nominal = trial_with_rng(tree, tech, lib, &mut rng, 0.0, 0.0);

    let mut skews = Vec::with_capacity(trials);
    let mut latency_sum = 0.0;
    for _ in 0..trials {
        let t = trial_with_rng(
            tree,
            tech,
            lib,
            &mut rng,
            model.wire_sigma,
            model.buffer_sigma,
        );
        skews.push(t.0 - t.1);
        latency_sum += t.0;
    }
    skews.sort_by(f64::total_cmp);
    let mean = skews.iter().sum::<f64>() / trials as f64;
    let p95 = skews[((trials as f64 * 0.95) as usize).min(trials - 1)];
    OcvReport {
        nominal_skew_ps: nominal.0 - nominal.1,
        mean_skew_ps: mean,
        p95_skew_ps: p95,
        max_skew_ps: *skews.last().expect("trials > 0"),
        mean_latency_ps: latency_sum / trials as f64,
        trials,
    }
}

/// Graph-based OCV derate skew (the CPPR view): the worst pessimistic
/// skew when every pair of paths has its *non-common* segments derated
/// `+derate` on the late path and `−derate` on the early one. The common
/// path from the source to the divergence point cancels.
///
/// For sinks `i`, `j` diverging at node `v`:
///
/// ```text
/// skew(i, j) = (D_i − D_j) + derate·(D_i + D_j − 2·D_v)
/// ```
///
/// Short paths and late divergence (long common trunks) minimize it —
/// exactly the shallowness the SLLT objectives buy. Computed in O(n) by
/// tracking, per node, the extreme derated path terms over its subtree.
///
/// # Panics
///
/// Panics when the tree has no sinks or `derate` is negative.
pub fn derate_skew(tree: &ClockTree, tech: &Technology, lib: &BufferLibrary, derate: f64) -> f64 {
    assert!(derate >= 0.0, "negative derate");
    let sinks = tree.sinks();
    assert!(!sinks.is_empty(), "OCV analysis of a sinkless tree");
    // Nominal latencies.
    let delay = nominal_delays(tree, tech, lib);

    // Per node: max of (1+derate)·D_i and min of (1−derate)·D_j over
    // sinks below.
    let n_slots = tree.path_lengths().len();
    let mut late = vec![f64::NEG_INFINITY; n_slots];
    let mut early = vec![f64::INFINITY; n_slots];
    let order = tree.topo_order();
    let mut worst = 0.0f64;
    for &v in order.iter().rev() {
        let node = tree.node(v);
        if node.kind.is_sink() {
            late[v.index()] = (1.0 + derate) * delay[v.index()];
            early[v.index()] = (1.0 - derate) * delay[v.index()];
        }
        // Combine children pairwise: any two distinct children of `v`
        // diverge exactly at `v`.
        let mut best_late = late[v.index()];
        let mut best_early = early[v.index()];
        for c in node.children() {
            if late[c.index()] > f64::NEG_INFINITY && best_early < f64::INFINITY {
                worst = worst.max(late[c.index()] - best_early - 2.0 * derate * delay[v.index()]);
            }
            if early[c.index()] < f64::INFINITY && best_late > f64::NEG_INFINITY {
                worst = worst.max(best_late - early[c.index()] - 2.0 * derate * delay[v.index()]);
            }
            best_late = best_late.max(late[c.index()]);
            best_early = best_early.min(early[c.index()]);
        }
        late[v.index()] = best_late;
        early[v.index()] = best_early;
    }
    worst
}

/// Nominal buffered latencies per node (same propagation as
/// [`crate::eval::evaluate`]).
fn nominal_delays(tree: &ClockTree, tech: &Technology, lib: &BufferLibrary) -> Vec<f64> {
    let caps = downstream_caps(tree, tech, Some(lib));
    let n_slots = tree.path_lengths().len();
    let mut delay = vec![0.0f64; n_slots];
    let mut slew = vec![tech.source_slew_ps; n_slots];
    for v in tree.topo_order() {
        let node = tree.node(v);
        if let Some(p) = node.parent() {
            let len = node.edge_len();
            let wire_load = match node.kind {
                NodeKind::Buffer { cell } => lib.cells()[cell].input_cap_ff,
                _ => caps[v.index()],
            };
            delay[v.index()] = delay[p.index()] + tech.wire_delay(len, wire_load);
            slew[v.index()] = tech.wire_output_slew(slew[p.index()], len, wire_load);
        }
        if let NodeKind::Buffer { cell } = node.kind {
            let cell = &lib.cells()[cell];
            delay[v.index()] += cell.delay(slew[v.index()], caps[v.index()]);
            slew[v.index()] = cell.output_slew(slew[v.index()], caps[v.index()]);
        }
    }
    delay
}

/// Standard normal deviate (Box–Muller).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One perturbed timing propagation (sigma 0 = nominal). Returns
/// `(max, min)` sink latency in ps.
fn trial_with_rng(
    tree: &ClockTree,
    tech: &Technology,
    lib: &BufferLibrary,
    rng: &mut StdRng,
    wire_sigma: f64,
    buffer_sigma: f64,
) -> (f64, f64) {
    let sinks = tree.sinks();
    assert!(!sinks.is_empty(), "OCV analysis of a sinkless tree");
    let caps = downstream_caps(tree, tech, Some(lib));
    let n_slots = tree.path_lengths().len();
    let mut delay = vec![0.0f64; n_slots];
    let mut slew = vec![tech.source_slew_ps; n_slots];

    for v in tree.topo_order() {
        let node = tree.node(v);
        if let Some(p) = node.parent() {
            let len = node.edge_len();
            let wire_load = match node.kind {
                NodeKind::Buffer { cell } => lib.cells()[cell].input_cap_ff,
                _ => caps[v.index()],
            };
            let m = if wire_sigma > 0.0 {
                (1.0 + wire_sigma * gauss(rng)).max(0.2)
            } else {
                1.0
            };
            delay[v.index()] = delay[p.index()] + m * tech.wire_delay(len, wire_load);
            slew[v.index()] = tech.wire_output_slew(slew[p.index()], len, wire_load);
        }
        if let NodeKind::Buffer { cell } = node.kind {
            let cell = &lib.cells()[cell];
            let load = caps[v.index()];
            let m = if buffer_sigma > 0.0 {
                (1.0 + buffer_sigma * gauss(rng)).max(0.2)
            } else {
                1.0
            };
            delay[v.index()] += m * cell.delay(slew[v.index()], load);
            slew[v.index()] = cell.output_slew(slew[v.index()], load);
        }
    }
    let mut max_l = f64::NEG_INFINITY;
    let mut min_l = f64::INFINITY;
    for &s in &sinks {
        max_l = max_l.max(delay[s.index()]);
        min_l = min_l.min(delay[s.index()]);
    }
    (max_l, min_l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baseline, constraints::CtsConstraints, flow::HierarchicalCts};
    use sllt_design::DesignSpec;

    #[test]
    fn zero_sigma_matches_nominal() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design).unwrap();
        let r = ocv_analysis(
            &tree,
            &cts.tech,
            &cts.lib,
            &OcvModel {
                wire_sigma: 0.0,
                buffer_sigma: 0.0,
                seed: 1,
            },
            5,
        );
        assert!((r.mean_skew_ps - r.nominal_skew_ps).abs() < 1e-9);
        assert!((r.max_skew_ps - r.nominal_skew_ps).abs() < 1e-9);
    }

    #[test]
    fn variation_widens_skew() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design).unwrap();
        let r = ocv_analysis(&tree, &cts.tech, &cts.lib, &OcvModel::default(), 50);
        assert!(r.mean_skew_ps > 0.0);
        assert!(r.p95_skew_ps >= r.mean_skew_ps);
        assert!(r.max_skew_ps >= r.p95_skew_ps);
    }

    #[test]
    fn derate_skew_zero_matches_nominal_skew() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design).unwrap();
        let nominal = crate::eval::evaluate(&tree, &cts.tech, &cts.lib).skew_ps;
        let d0 = derate_skew(&tree, &cts.tech, &cts.lib, 0.0);
        assert!((d0 - nominal).abs() < 1e-6, "{d0} vs {nominal}");
        // Derating can only widen it, monotonically.
        let d5 = derate_skew(&tree, &cts.tech, &cts.lib, 0.05);
        let d10 = derate_skew(&tree, &cts.tech, &cts.lib, 0.10);
        assert!(d5 >= d0 && d10 >= d5);
    }

    #[test]
    fn shallow_trees_are_more_robust_under_derates() {
        // The paper's motivation, measured with the graph-based (CPPR)
        // derate model: short paths and late divergence — what the SLLT
        // objectives buy — shrink the derate-induced skew *growth*
        // relative to the deeply structural baseline.
        let design = DesignSpec::by_name("s38584").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let ours = cts.run(&design).unwrap();
        let or_tree =
            baseline::open_road_like(&design, &CtsConstraints::paper(), &cts.tech, &cts.lib);
        let derate = 0.08;
        let growth_ours = derate_skew(&ours, &cts.tech, &cts.lib, derate)
            - derate_skew(&ours, &cts.tech, &cts.lib, 0.0);
        let growth_or = derate_skew(&or_tree, &cts.tech, &cts.lib, derate)
            - derate_skew(&or_tree, &cts.tech, &cts.lib, 0.0);
        assert!(
            growth_ours < growth_or,
            "ours +{growth_ours:.1} ps vs openroad-like +{growth_or:.1} ps"
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design).unwrap();
        let _ = ocv_analysis(&tree, &cts.tech, &cts.lib, &OcvModel::default(), 0);
    }
}
