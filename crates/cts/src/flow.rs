//! The hierarchical CTS flow (paper Fig. 3) — "Ours".
//!
//! Level by level, bottom-up:
//!
//! 1. **partition** ([`crate::partition`]) the current clock nodes with
//!    balanced K-means + min-cost flow (fanout-exact), then repair
//!    capacitance/wirelength violations with the SA boundary moves,
//! 2. **route** ([`crate::route`]) each cluster with the configured
//!    topology generator (CBS by default), carrying each node's *delay
//!    offset* — the Elmore+buffer delay already accumulated below it —
//!    into the bounded-skew merge so sibling subtrees equalize. Clusters
//!    are independent, so this stage fans out across worker threads,
//! 3. **size** ([`crate::sizing`]) each cluster's driver jointly: the
//!    cheapest library cell that can drive the net load becomes the
//!    cluster driver at the net source (tap), and the node reported to
//!    the next level carries the driver's input capacitance and the
//!    cluster's delay plus the insertion-delay estimate (paper Eq. (7)).
//!
//! When one node remains, the tree is assembled ([`crate::assemble`])
//! under the design's clock root and long wires get critical-wirelength
//! repeaters. Each level emits a [`LevelReport`] through the
//! [`FlowObserver`] the caller passes to
//! [`HierarchicalCts::run_with_observer`].

use crate::assemble::{assemble, BuiltCluster};
use crate::cancel::CancelToken;
use crate::checkpoint::{Checkpoint, CheckpointWriter};
use crate::constraints::CtsConstraints;
use crate::error::CtsError;
use crate::fault::FaultPlan;
use crate::partition::partition_level;
use crate::recovery::{Downgrade, RecoveryPolicy};
use crate::report::{FlowObserver, LevelReport, NullObserver, StageTimings};
use crate::route::{route_clusters, LevelNode, NodeSource};
use crate::sizing::size_drivers;
use sllt_buffer::DelayEstimator;
use sllt_design::Design;
use sllt_geom::Point;
use sllt_obs::vfs::{real_fs, Vfs};
use sllt_obs::{NullSink, Progress, ProgressEvent, TelemetrySink, WorkBudget};
use sllt_route::TopologyScheme;
use sllt_timing::{BufferLibrary, Technology};
use sllt_tree::ClockTree;
use std::sync::Arc;
use std::time::Instant;

/// Which routing topology generator a flow uses per cluster net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// The paper's CBS (skew-bounded, SALT-shaped).
    Cbs {
        /// Merge order for the BST steps.
        scheme: TopologyScheme,
        /// SALT shallowness budget.
        eps: f64,
    },
    /// Plain bounded-skew DME.
    Bst {
        /// Merge order.
        scheme: TopologyScheme,
    },
    /// Rectilinear SALT (no skew control inside the net).
    Salt {
        /// Shallowness budget.
        eps: f64,
    },
    /// RSMT (no skew control; lightest).
    Rsmt,
    /// Symmetric H-tree.
    HTree,
    /// Generalized H-tree.
    GhTree,
}

impl TopologyKind {
    /// Short stable name for reports, telemetry, and downgrade records.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Cbs { .. } => "cbs",
            TopologyKind::Bst { .. } => "bst",
            TopologyKind::Salt { .. } => "salt",
            TopologyKind::Rsmt => "rsmt",
            TopologyKind::HTree => "htree",
            TopologyKind::GhTree => "ghtree",
        }
    }

    /// Deterministic per-member cost weight for the route-stage work
    /// budget ([`HierarchicalCts::route_budget`]). Relative, not
    /// calibrated: CBS runs a five-step pipeline over each net, BST and
    /// SALT a single construction, RSMT and the H-trees a cheap sweep —
    /// so a topology fallback genuinely lowers the budget a level needs.
    pub fn cost_weight(&self) -> u64 {
        match self {
            TopologyKind::Cbs { .. } => 4,
            TopologyKind::Bst { .. } | TopologyKind::Salt { .. } => 2,
            TopologyKind::Rsmt | TopologyKind::HTree | TopologyKind::GhTree => 1,
        }
    }
}

/// The hierarchical CTS engine.
#[derive(Debug, Clone)]
pub struct HierarchicalCts {
    /// Design constraints (paper Table 5).
    pub constraints: CtsConstraints,
    /// Interconnect technology.
    pub tech: Technology,
    /// Buffer library.
    pub lib: BufferLibrary,
    /// Per-cluster routing topology generator.
    pub topology: TopologyKind,
    /// Whether to run the SA partition refinement.
    pub use_sa: bool,
    /// Provisional driver-delay policy (paper Eq. (7)).
    pub estimator: DelayEstimator,
    /// Fraction of the skew budget each level's nets may use.
    pub level_skew_fraction: f64,
    /// Latency slack granted to cluster-internal routing, ps: the SALT
    /// shallowness budget ε is relaxed until a path of that Elmore cost
    /// is admissible, so small clusters route like Steiner trees instead
    /// of stars (paper §3.3: "routability concerns necessitate lighter
    /// SLLT, favoring FLUTE-like tree structures; for larger designs
    /// minimizing latency … requires less shallow SLLT").
    pub cluster_latency_slack_ps: f64,
    /// Buffer sizing slack: cells are accepted when their delay is within
    /// this factor of the fastest choice at the load (1.0 = always pick
    /// the fastest → larger cells).
    pub sizing_slack: f64,
    /// Whether driver sizing equalizes cluster totals toward the slowest
    /// cluster (lower skew pressure, higher latency) instead of sizing
    /// each driver fast and letting the next level's interval-aware
    /// merge absorb the spread.
    pub equalize_sizing: bool,
    /// Width of the equalization window as a fraction of the per-level
    /// skew bound: 0 forces exact equalization; larger values let fast
    /// clusters stay fast and lean on the next level's merge.
    pub sizing_window_fraction: f64,
    /// K-means restarts per level in the small-level partition search.
    /// Must be at least 1 ([`CtsError::NoPartitionRestarts`]).
    pub partition_restarts: usize,
    /// Independent SA chains per level in the partition refinement; the
    /// lowest-cost final state wins (ties break toward the lowest chain
    /// index). Chains run across the worker pool; any chain/worker
    /// combination yields bit-identical trees. Must be at least 1 when
    /// [`use_sa`](Self::use_sa) is set.
    pub sa_chains: usize,
    /// Whether the per-cluster capacity assignment inside balanced
    /// K-means warm-starts from the nearest-centre seed and repairs only
    /// the overflow with a small min-cost flow, instead of solving the
    /// dense point×centre flow from scratch each balance round. Exact —
    /// the repaired assignment reaches the dense optimum's total cost —
    /// and several times faster; disable only to cross-check trees
    /// against the cold solver.
    pub partition_warm_mcf: bool,
    /// Worker threads for the per-cluster route stage: 0 picks the
    /// machine's available parallelism, 1 routes serially. Any value
    /// yields bit-identical trees.
    pub workers: usize,
    /// RNG seed for partitioning and the per-cluster route streams.
    pub seed: u64,
    /// Level-failure recovery: the degradation ladder. Disabled by
    /// default (fail fast, the historical behavior); see
    /// [`RecoveryPolicy::standard`].
    pub recovery: RecoveryPolicy,
    /// Cooperative per-level work budget for the route stage, in
    /// deterministic cost units (cluster members ×
    /// [`TopologyKind::cost_weight`]). `None` (default) = unlimited.
    /// Exceeding it yields [`CtsError::StageDeadline`] *before* any
    /// cluster routes — same cutoff on every run, at any worker count.
    pub route_budget: Option<u64>,
    /// Fault injection for the recovery test harness; empty (injecting
    /// nothing) by default. See [`crate::fault`].
    pub faults: FaultPlan,
    /// Cooperative cancellation flag, polled at cluster and SA-sweep
    /// granularity by every stage. Inert by default; clone the token
    /// before the run and [`cancel`](CancelToken::cancel) it from any
    /// thread (or wire it to Ctrl-C with
    /// [`install_sigint`](crate::cancel::install_sigint)) to stop the
    /// flow with [`CtsError::Cancelled`] within a bounded number of
    /// work units.
    pub cancel: CancelToken,
    /// Filesystem seam for every durable write the flow performs
    /// (checkpoint journal). The default is the real filesystem;
    /// install a [`FaultFs`](sllt_obs::FaultFs) to exercise the
    /// storage-failure paths deterministically. Excluded from the
    /// checkpoint fingerprint — the seam never changes the tree.
    pub vfs: Arc<dyn Vfs>,
    /// Live progress reporting: level start/done and within-level
    /// decile events with deterministic work-budget completion
    /// fractions (see [`sllt_obs::progress`]). Inert by default.
    /// Observation-only — attaching a sink never changes the tree.
    /// On a *failing* level attempt the serial route path stops at the
    /// first error while workers drain in-flight clusters, so decile
    /// events from failed attempts may differ across worker counts;
    /// every emitted fraction is still deterministic, and successful
    /// runs emit a worker-count-independent event set.
    pub progress: Progress,
}

impl Default for HierarchicalCts {
    /// The paper's configuration: CBS topologies (Greedy-Dist, ε = 0.2),
    /// SA refinement on, insertion-delay lower bound on.
    fn default() -> Self {
        HierarchicalCts {
            constraints: CtsConstraints::paper(),
            tech: Technology::n28(),
            lib: BufferLibrary::n28(),
            topology: TopologyKind::Cbs {
                scheme: TopologyScheme::GreedyDist,
                eps: 0.2,
            },
            use_sa: true,
            estimator: DelayEstimator::ChosenCell,
            level_skew_fraction: 0.5,
            cluster_latency_slack_ps: 6.0,
            equalize_sizing: true,
            sizing_window_fraction: 0.0,
            sizing_slack: 1.3,
            partition_restarts: 4,
            sa_chains: 2,
            partition_warm_mcf: true,
            workers: 0,
            seed: 0x05117C75,
            recovery: RecoveryPolicy::default(),
            route_budget: None,
            faults: FaultPlan::default(),
            cancel: CancelToken::default(),
            vfs: real_fs(),
            progress: Progress::none(),
        }
    }
}

/// Per-run state threaded through the stages: the built-cluster arena,
/// the current level's nodes, and the level counter.
struct FlowContext {
    clusters: Vec<BuiltCluster>,
    nodes: Vec<LevelNode>,
    level: usize,
}

impl FlowContext {
    /// Level 0: one node per design flip-flop, zero accumulated delay.
    fn seed(design: &Design) -> Self {
        FlowContext {
            clusters: Vec::new(),
            nodes: design
                .sinks
                .iter()
                .enumerate()
                .map(|(i, s)| LevelNode {
                    pos: s.pos,
                    cap_ff: s.cap_ff,
                    interval_ps: (0.0, 0.0),
                    source: NodeSource::DesignSink(i),
                })
                .collect(),
            level: 0,
        }
    }
}

/// Levels past this are a divergence, not a deep design: each level must
/// at least halve the node count.
const MAX_LEVELS: usize = 40;

/// How [`HierarchicalCts::run_core`] interacts with a checkpoint
/// journal.
enum CheckpointMode<'p> {
    /// No journal (the plain [`run`](HierarchicalCts::run) family).
    Off,
    /// Start a fresh journal at the path, truncating any existing file.
    Fresh(&'p std::path::Path),
    /// Load the journal, restore the last committed level, and append.
    Resume(&'p std::path::Path),
}

impl HierarchicalCts {
    /// Runs the flow on a design and returns the assembled, buffered
    /// clock tree. Sink nodes carry the design's sink indices.
    ///
    /// This never panics on user input: constraints, the design, and
    /// the buffer library are all checked up front, and per-level
    /// failures come back as typed [`CtsError`]s (or are retried by the
    /// [degradation ladder](RecoveryPolicy) when
    /// [`recovery`](Self::recovery) is enabled).
    ///
    /// # Errors
    ///
    /// [`CtsError::NoSinks`] for a design without flip-flops,
    /// [`CtsError::InvalidDesign`] when the sanitizer pre-flight finds a
    /// fatal defect (repair with [`sllt_design::sanitize::repair`]),
    /// [`CtsError::InvalidConstraints`] for out-of-range bounds,
    /// [`CtsError::EmptyBufferLibrary`] when no driver can be sized,
    /// [`CtsError::NoPartitionRestarts`] when the partition search has
    /// no candidates and recovery is disabled,
    /// [`CtsError::LevelRunaway`] when partitioning stops reducing the
    /// node count, per-level routing errors
    /// ([`CtsError::ClusterRoute`], [`CtsError::ClusterPanicked`],
    /// [`CtsError::StageDeadline`]) when recovery is disabled, and
    /// [`CtsError::LadderExhausted`] when it is enabled but every rung
    /// failed.
    pub fn run(&self, design: &Design) -> Result<ClockTree, CtsError> {
        self.run_with_observer(design, &mut NullObserver)
    }

    /// [`run`](Self::run), reporting each level and the final assembly
    /// to `observer` as the flow progresses.
    pub fn run_with_observer(
        &self,
        design: &Design,
        observer: &mut dyn FlowObserver,
    ) -> Result<ClockTree, CtsError> {
        self.run_with_telemetry(design, observer, &NullSink)
    }

    /// [`run_with_observer`](Self::run_with_observer), additionally
    /// recording spans and metrics into `sink`. With [`NullSink`] every
    /// instrumentation site reduces to one relaxed atomic load; with a
    /// [`RecordingSink`](sllt_obs::RecordingSink) the run's span tree
    /// and counters land in the sink's registry for post-run inspection
    /// or run-record serialization. Telemetry is observational only —
    /// the built tree is bit-identical either way, at any worker count.
    pub fn run_with_telemetry(
        &self,
        design: &Design,
        observer: &mut dyn FlowObserver,
        sink: &dyn TelemetrySink,
    ) -> Result<ClockTree, CtsError> {
        self.run_core(design, observer, sink, CheckpointMode::Off)
    }

    /// [`run`](Self::run), writing a crash-safe level checkpoint to
    /// `journal` after every committed level (truncating any existing
    /// file first). If the process dies — or the run is
    /// [cancelled](Self::cancel) — [`resume`](Self::resume) with the
    /// same configuration continues from the last committed level and
    /// produces a tree bit-identical to an uninterrupted run, at any
    /// worker count. See `DESIGN.md`, *Durability model*.
    pub fn run_checkpointed(
        &self,
        design: &Design,
        journal: &std::path::Path,
    ) -> Result<ClockTree, CtsError> {
        self.run_core(
            design,
            &mut NullObserver,
            &NullSink,
            CheckpointMode::Fresh(journal),
        )
    }

    /// [`run_checkpointed`](Self::run_checkpointed) with a progress
    /// observer.
    pub fn run_checkpointed_with_observer(
        &self,
        design: &Design,
        journal: &std::path::Path,
        observer: &mut dyn FlowObserver,
    ) -> Result<ClockTree, CtsError> {
        self.run_core(design, observer, &NullSink, CheckpointMode::Fresh(journal))
    }

    /// Resumes an interrupted [`run_checkpointed`](Self::run_checkpointed)
    /// from its journal: validates the journal against this configuration
    /// and the design (fingerprint), restores the last committed level,
    /// and continues — appending new level checkpoints to the same file.
    /// A torn final record (crash mid-append) is discarded and rebuilt.
    ///
    /// # Errors
    ///
    /// [`CtsError::Checkpoint`] when the journal is unreadable, corrupt
    /// beyond its final record, or was written by a different
    /// configuration or design; plus everything [`run`](Self::run) can
    /// return for the remaining levels.
    pub fn resume(
        &self,
        design: &Design,
        journal: &std::path::Path,
    ) -> Result<ClockTree, CtsError> {
        self.run_core(
            design,
            &mut NullObserver,
            &NullSink,
            CheckpointMode::Resume(journal),
        )
    }

    /// [`resume`](Self::resume) with a progress observer. Checkpointed
    /// levels are replayed through
    /// [`FlowObserver::on_resumed_level`] before live reports begin.
    pub fn resume_with_observer(
        &self,
        design: &Design,
        journal: &std::path::Path,
        observer: &mut dyn FlowObserver,
    ) -> Result<ClockTree, CtsError> {
        self.run_core(design, observer, &NullSink, CheckpointMode::Resume(journal))
    }

    /// The single engine loop behind every public entry point: validate,
    /// optionally restore checkpointed state, build levels (checkpointing
    /// each commit), assemble.
    fn run_core(
        &self,
        design: &Design,
        observer: &mut dyn FlowObserver,
        sink: &dyn TelemetrySink,
        mode: CheckpointMode<'_>,
    ) -> Result<ClockTree, CtsError> {
        self.constraints.validate()?;
        if design.sinks.is_empty() {
            return Err(CtsError::NoSinks);
        }
        // Sanitizer pre-flight: reject non-finite or oversized
        // coordinates and bad pin caps before any geometry runs on them.
        // O(n), allocation-free; callers holding a dirty design can
        // `sllt_design::sanitize::repair` it and re-run.
        if let Some(issue) = sllt_design::sanitize::first_fatal(design) {
            return Err(CtsError::InvalidDesign {
                detail: issue.to_string(),
            });
        }
        if self.lib.cells().is_empty() {
            return Err(CtsError::EmptyBufferLibrary);
        }
        // With recovery enabled the ladder floors restarts at
        // `min_restarts` on retry, so the misconfiguration is
        // survivable; without it, fail fast as always.
        if self.partition_restarts == 0 && !self.recovery.enabled {
            return Err(CtsError::NoPartitionRestarts);
        }
        // Declared before the spans: guards drop in reverse declaration
        // order, so every span closes before the scope merges its shard.
        let _scope = sink.registry().map(|r| r.install("main"));
        let _flow_span = sllt_obs::span("cts.flow");
        observer.on_flow_start(design.sinks.len(), self.effective_workers(usize::MAX));
        self.progress.emit(&ProgressEvent::FlowStart {
            sinks: design.sinks.len(),
        });
        // Deterministic completion model: a level's work is its node
        // count × the configured topology's cost weight (the same unit
        // as `route_budget`), and the geometric-tail estimate in
        // `WorkBudget` turns done-work into fractions. Resumed levels
        // are folded in below so a resumed run's fractions line up.
        let mut budget = WorkBudget::new();

        let mut cx = FlowContext::seed(design);
        let mut writer = match mode {
            CheckpointMode::Off => None,
            CheckpointMode::Fresh(path) => Some(CheckpointWriter::create(path, self, design)?),
            CheckpointMode::Resume(path) => {
                let ckpt = Checkpoint::load(path, self, design)?;
                // Replay the committed history, then continue from the
                // restored state. An empty journal (meta only) resumes
                // from the design sinks — identical to a fresh run.
                for report in ckpt.reports() {
                    budget.start_level(report.num_nodes as u64 * self.topology.cost_weight());
                    budget.finish_level();
                    observer.on_resumed_level(report);
                }
                if ckpt.levels() > 0 {
                    cx = FlowContext {
                        level: ckpt.levels(),
                        clusters: ckpt.clusters,
                        nodes: ckpt.nodes,
                    };
                }
                Some(CheckpointWriter::reopen(
                    self.vfs.as_ref(),
                    path,
                    ckpt.valid_len,
                    ckpt.schema,
                    &cx.nodes,
                )?)
            }
        };
        while cx.nodes.len() > 1 {
            if self.cancel.poll() {
                return Err(CtsError::Cancelled);
            }
            if cx.level >= MAX_LEVELS {
                return Err(CtsError::LevelRunaway {
                    level: cx.level,
                    nodes: cx.nodes.len(),
                });
            }
            budget.start_level(cx.nodes.len() as u64 * self.topology.cost_weight());
            self.progress.emit(&ProgressEvent::LevelStart {
                level: cx.level,
                nodes: cx.nodes.len(),
                fraction: budget.fraction_at(0),
            });
            let report = self.build_level(&mut cx, &budget)?;
            let write_err = match writer.as_mut() {
                Some(w) => {
                    // The level just committed: the clusters it appended
                    // are the arena's last `num_clusters` entries and
                    // `cx.nodes` is the next level's node list.
                    let new = &cx.clusters[cx.clusters.len() - report.num_clusters..];
                    w.append_level(&report, &cx.nodes, new).err()
                }
                None => None,
            };
            if let Some(e) = write_err {
                // Storage failure is never fatal to a running flow: drop
                // the journal and continue in-memory-only. The run still
                // produces its tree; only crash-resumability is lost —
                // which the degradation event and counter make visible.
                let detail = e.to_string();
                writer = None;
                if sllt_obs::enabled() {
                    sllt_obs::count("cts.storage.degraded", 1);
                }
                observer.on_storage_degraded(cx.level, &detail);
                self.progress.emit(&ProgressEvent::StorageDegraded {
                    level: cx.level,
                    detail,
                });
            }
            observer.on_level(&report);
            // Exit fraction *before* folding the level in: with the
            // level's work done, (completed + W)/(completed + 2W) —
            // which equals the next level's entry fraction exactly when
            // levels halve, keeping the stream monotone.
            let exit_fraction = budget.fraction_at(budget.level_work());
            budget.finish_level();
            self.progress.emit(&ProgressEvent::LevelDone {
                level: cx.level,
                parents: report.num_clusters,
                fraction: exit_fraction,
            });
            if sllt_obs::enabled() {
                // Memory-footprint gauges, sampled once per committed
                // level on the coordinating thread (deterministic, so
                // the telemetry-equivalence contract holds): the
                // built-cluster arena's tree columns, in nodes / bytes.
                let nodes: usize = cx.clusters.iter().map(|c| c.tree.len()).sum();
                let bytes: usize = cx.clusters.iter().map(|c| c.tree.arena_bytes()).sum();
                sllt_obs::gauge("cts.arena.trees", cx.clusters.len() as f64);
                sllt_obs::gauge("cts.arena.nodes", nodes as f64);
                sllt_obs::gauge("cts.arena.bytes", bytes as f64);
            }
            cx.level += 1;
        }

        let assemble_span = sllt_obs::span("cts.assemble");
        let (tree, assemble_report) = assemble(self, design, &cx.clusters, &cx.nodes[0]);
        drop(assemble_span);
        observer.on_assemble(&assemble_report);
        self.progress.emit(&ProgressEvent::Done { fraction: 1.0 });
        Ok(tree)
    }

    /// Partitions, routes, and sizes one level, advancing `cx.nodes` to
    /// the next level's nodes.
    ///
    /// This is where the degradation ladder lives: each rung from
    /// [`RecoveryPolicy::ladder`] is tried in order against an
    /// *unmodified* `cx` — a failed attempt commits nothing — and the
    /// first success records every rung climbed in
    /// [`LevelReport::downgrades`]. Non-recoverable errors propagate
    /// immediately; exhausting the ladder yields
    /// [`CtsError::LadderExhausted`] wrapping the final attempt's error.
    fn build_level(
        &self,
        cx: &mut FlowContext,
        budget: &WorkBudget,
    ) -> Result<LevelReport, CtsError> {
        let _level_span = sllt_obs::span("cts.level");
        let steps = self.recovery.ladder(self.topology);
        let mut downgrades: Vec<Downgrade> = Vec::new();
        for (attempt, step) in steps.iter().enumerate() {
            // Attempt 0 runs the configured flow verbatim; retries run a
            // relaxed clone. `self` (not `eff`) keeps providing the
            // ladder so recovery never recurses.
            let owned: HierarchicalCts;
            let eff: &HierarchicalCts = if attempt == 0 {
                self
            } else {
                let mut relaxed = self.clone();
                relaxed.constraints.skew_ps *= step.skew_factor;
                if let Some(t) = step.topology {
                    relaxed.topology = t;
                }
                relaxed.partition_restarts =
                    relaxed.partition_restarts.max(self.recovery.min_restarts);
                owned = relaxed;
                &owned
            };
            match Self::try_level(eff, cx, attempt, budget) {
                Ok((mut report, next, built)) => {
                    report.attempts = attempt + 1;
                    report.downgrades = downgrades;
                    if report.attempts > 1 && sllt_obs::enabled() {
                        sllt_obs::count("cts.recovery.levels_recovered", 1);
                        sllt_obs::count("cts.recovery.retries", attempt as u64);
                    }
                    cx.clusters.extend(built);
                    cx.nodes = next;
                    return Ok(report);
                }
                Err(e) if e.is_recoverable() && attempt + 1 < steps.len() => {
                    let next_step = &steps[attempt + 1];
                    downgrades.push(Downgrade {
                        attempt: attempt + 1,
                        skew_factor: next_step.skew_factor,
                        topology: next_step.topology.map(|t| t.name()),
                        trigger: e.to_string(),
                    });
                }
                Err(e) => {
                    // Non-recoverable, or the ladder is spent. A
                    // single-rung ladder (recovery disabled) reports the
                    // raw error — the historical contract.
                    if !e.is_recoverable() || steps.len() == 1 {
                        return Err(e);
                    }
                    return Err(CtsError::LadderExhausted {
                        level: cx.level,
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
            }
        }
        unreachable!("ladder always has at least the identity step")
    }

    /// One attempt at one level under configuration `eff`. Reads `cx`
    /// but never mutates it: the caller commits the returned nodes and
    /// clusters only on success, so a failed attempt leaves the run
    /// exactly where it was.
    #[allow(clippy::type_complexity)]
    fn try_level(
        eff: &HierarchicalCts,
        cx: &FlowContext,
        attempt: usize,
        budget: &WorkBudget,
    ) -> Result<(LevelReport, Vec<LevelNode>, Vec<BuiltCluster>), CtsError> {
        let num_nodes = cx.nodes.len();
        let positions: Vec<Point> = cx.nodes.iter().map(|n| n.pos).collect();
        let caps: Vec<f64> = cx.nodes.iter().map(|n| n.cap_ff).collect();

        let t0 = Instant::now();
        let part = {
            let _s = sllt_obs::span("cts.partition");
            partition_level(eff, &positions, &caps, cx.level, attempt)?
        };
        let t1 = Instant::now();
        let routed = {
            let _s = sllt_obs::span("cts.route");
            route_clusters(
                eff,
                &cx.nodes,
                &part.assignment,
                part.k,
                cx.level,
                attempt,
                budget,
            )?
        };
        let t2 = Instant::now();

        let wirelength_um: f64 = routed.iter().map(|r| r.tree.wirelength()).sum();
        let load_cap_ff: f64 = routed.iter().map(|r| r.load).sum();
        let workers = eff.effective_workers(routed.len());

        let (next, built, stats) = {
            let _s = sllt_obs::span("cts.sizing");
            size_drivers(eff, routed, cx.clusters.len(), cx.level, attempt)?
        };
        let t3 = Instant::now();

        let (lo, hi) = next
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, n| {
                (acc.0.min(n.interval_ps.0), acc.1.max(n.interval_ps.1))
            });
        let report = LevelReport {
            level: cx.level,
            num_nodes,
            num_clusters: next.len(),
            workers,
            timings: StageTimings {
                partition: t1 - t0,
                route: t2 - t1,
                sizing: t3 - t2,
            },
            wirelength_um,
            load_cap_ff,
            driver_input_cap_ff: stats.driver_input_cap_ff,
            driver_area_um2: stats.driver_area_um2,
            pads: stats.pads,
            delay_spread_ps: if next.is_empty() { 0.0 } else { hi - lo },
            attempts: 1,
            downgrades: Vec::new(),
        };
        Ok((report, next, built))
    }

    /// Worker threads the route stage will actually use for `jobs`
    /// clusters: the configured [`workers`](Self::workers) (0 = the
    /// machine's available parallelism), never more than the job count.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let configured = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        configured.min(jobs).max(1)
    }
}
