//! The hierarchical CTS flow (paper Fig. 3) — "Ours".
//!
//! Level by level, bottom-up:
//!
//! 1. **partition** the current clock nodes with balanced K-means +
//!    min-cost flow (fanout-exact), then repair capacitance/wirelength
//!    violations with the SA boundary moves,
//! 2. **route** each cluster with the configured topology generator (CBS
//!    by default), carrying each node's *delay offset* — the Elmore+buffer
//!    delay already accumulated below it — into the bounded-skew merge so
//!    sibling subtrees equalize,
//! 3. **buffer** each cluster: the cheapest library cell that can drive
//!    the net load becomes the cluster driver at the net source (tap),
//!    and the node reported to the next level carries the driver's input
//!    capacitance and the cluster's delay plus the insertion-delay
//!    estimate (paper Eq. (7)).
//!
//! When one node remains, the tree is assembled under the design's clock
//! root and long wires get critical-wirelength repeaters.

use crate::constraints::CtsConstraints;
use sllt_buffer::{insert_repeaters, DelayEstimator, RepeaterPolicy};
use sllt_core::cbs::{cbs_intervals, CbsConfig};
use sllt_design::Design;
use sllt_geom::{centroid, Point};
use sllt_partition::sa;
use sllt_route::{dme_intervals, ghtree, htree, rsmt, salt, DelayModel, DmeOptions, TopologyScheme};
use sllt_timing::{BufferLibrary, Technology};
use sllt_tree::{ClockNet, ClockTree, NodeId, NodeKind, Sink};

/// Which routing topology generator a flow uses per cluster net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// The paper's CBS (skew-bounded, SALT-shaped).
    Cbs {
        /// Merge order for the BST steps.
        scheme: TopologyScheme,
        /// SALT shallowness budget.
        eps: f64,
    },
    /// Plain bounded-skew DME.
    Bst {
        /// Merge order.
        scheme: TopologyScheme,
    },
    /// Rectilinear SALT (no skew control inside the net).
    Salt {
        /// Shallowness budget.
        eps: f64,
    },
    /// RSMT (no skew control; lightest).
    Rsmt,
    /// Symmetric H-tree.
    HTree,
    /// Generalized H-tree.
    GhTree,
}

/// The hierarchical CTS engine.
#[derive(Debug, Clone)]
pub struct HierarchicalCts {
    /// Design constraints (paper Table 5).
    pub constraints: CtsConstraints,
    /// Interconnect technology.
    pub tech: Technology,
    /// Buffer library.
    pub lib: BufferLibrary,
    /// Per-cluster routing topology generator.
    pub topology: TopologyKind,
    /// Whether to run the SA partition refinement.
    pub use_sa: bool,
    /// Provisional driver-delay policy (paper Eq. (7)).
    pub estimator: DelayEstimator,
    /// Fraction of the skew budget each level's nets may use.
    pub level_skew_fraction: f64,
    /// Latency slack granted to cluster-internal routing, ps: the SALT
    /// shallowness budget ε is relaxed until a path of that Elmore cost
    /// is admissible, so small clusters route like Steiner trees instead
    /// of stars (paper §3.3: "routability concerns necessitate lighter
    /// SLLT, favoring FLUTE-like tree structures; for larger designs
    /// minimizing latency … requires less shallow SLLT").
    pub cluster_latency_slack_ps: f64,
    /// Buffer sizing slack: cells are accepted when their delay is within
    /// this factor of the fastest choice at the load (1.0 = always pick
    /// the fastest → larger cells).
    pub sizing_slack: f64,
    /// Whether driver sizing equalizes cluster totals toward the slowest
    /// cluster (lower skew pressure, higher latency) instead of sizing
    /// each driver fast and letting the next level's interval-aware
    /// merge absorb the spread.
    pub equalize_sizing: bool,
    /// Width of the equalization window as a fraction of the per-level
    /// skew bound: 0 forces exact equalization; larger values let fast
    /// clusters stay fast and lean on the next level's merge.
    pub sizing_window_fraction: f64,
    /// RNG seed for partitioning.
    pub seed: u64,
}

impl Default for HierarchicalCts {
    /// The paper's configuration: CBS topologies (Greedy-Dist, ε = 0.2),
    /// SA refinement on, insertion-delay lower bound on.
    fn default() -> Self {
        HierarchicalCts {
            constraints: CtsConstraints::paper(),
            tech: Technology::n28(),
            lib: BufferLibrary::n28(),
            topology: TopologyKind::Cbs {
                scheme: TopologyScheme::GreedyDist,
                eps: 0.2,
            },
            use_sa: true,
            estimator: DelayEstimator::ChosenCell,
            level_skew_fraction: 0.5,
            cluster_latency_slack_ps: 6.0,
            equalize_sizing: true,
            sizing_window_fraction: 0.0,
            sizing_slack: 1.3,
            seed: 0x05117C75,
        }
    }
}

/// One clock node at the current level: a design FF or a built cluster's
/// driver input.
#[derive(Debug, Clone, Copy)]
struct LevelNode {
    pos: Point,
    cap_ff: f64,
    /// Delay interval (fastest, slowest) already accumulated below this
    /// node, ps.
    interval_ps: (f64, f64),
    source: NodeSource,
}

#[derive(Debug, Clone, Copy)]
enum NodeSource {
    /// Index into the design's sink list.
    DesignSink(usize),
    /// Index into the flow's built-cluster arena.
    Cluster(usize),
}

/// A routed, buffered cluster awaiting assembly.
#[derive(Debug)]
struct BuiltCluster {
    /// Tree rooted at the cluster tap; sink indices refer to `members`.
    tree: ClockTree,
    /// Members, in the order the cluster net's sinks were listed.
    members: Vec<LevelNode>,
    /// Chosen driver cell (library index).
    cell: usize,
    /// Delay-padding buffers (smallest cell) chained above the driver —
    /// inserted when sizing alone cannot slow a fast cluster to the
    /// level's equalization target. Closing that gap with buffers costs
    /// a few µm² of area; closing it with detour wire at the next level
    /// costs hundreds of µm of snaking per cluster.
    pads: usize,
    /// Driver location (the net tap).
    driver_pos: Point,
}

impl HierarchicalCts {
    /// Runs the flow on a design and returns the assembled, buffered
    /// clock tree. Sink nodes carry the design's sink indices.
    ///
    /// # Panics
    ///
    /// Panics when the design has no flip-flops or the constraints are
    /// inconsistent.
    pub fn run(&self, design: &Design) -> ClockTree {
        self.constraints.validate();
        assert!(!design.sinks.is_empty(), "CTS over a design without flip-flops");

        let mut clusters: Vec<BuiltCluster> = Vec::new();
        let mut nodes: Vec<LevelNode> = design
            .sinks
            .iter()
            .enumerate()
            .map(|(i, s)| LevelNode {
                pos: s.pos,
                cap_ff: s.cap_ff,
                interval_ps: (0.0, 0.0),
                source: NodeSource::DesignSink(i),
            })
            .collect();

        let mut level = 0usize;
        while nodes.len() > 1 {
            assert!(level < 40, "level runaway: partitioning is not reducing");
            nodes = self.build_level(&mut clusters, nodes, level);
            level += 1;
        }

        let mut tree = ClockTree::new(design.clock_root);
        let root = tree.root();
        self.attach(&clusters, &mut tree, root, &nodes[0], None);
        // Long common wires (typically the source trunk) get repeaters at
        // the library's critical wirelength.
        insert_repeaters(
            &mut tree,
            &self.lib,
            &self.tech,
            &RepeaterPolicy { cell: self.lib.cells().len() / 2, max_segment_um: None },
        );
        tree
    }

    /// Partitions and routes one level; returns the next level's nodes.
    fn build_level(
        &self,
        clusters: &mut Vec<BuiltCluster>,
        nodes: Vec<LevelNode>,
        level: usize,
    ) -> Vec<LevelNode> {
        let cons = &self.constraints;
        let positions: Vec<Point> = nodes.iter().map(|n| n.pos).collect();
        let caps: Vec<f64> = nodes.iter().map(|n| n.cap_ff).collect();

        // Cluster count: fanout-driven, bumped when capacitance or
        // wirelength binds. Wire is estimated with the classic Steiner
        // scaling WL ≈ 0.8·√(n·A); splitting into k clusters divides it
        // (and the pin cap) by roughly k.
        let n = nodes.len();
        let by_fanout = n.div_ceil(cons.max_fanout);
        let total_pin_cap: f64 = caps.iter().sum();
        let area = sllt_geom::Rect::bounding(&positions)
            .map_or(0.0, |r| r.area());
        let est_wl_total = 0.8 * (n as f64 * area).sqrt();
        let by_cap = ((total_pin_cap + self.tech.wire_cap(est_wl_total)) * 1.2
            / cons.max_cap_ff)
            .ceil() as usize;
        let by_wl = (est_wl_total * 1.2 / cons.max_wl_um).ceil() as usize;
        // Each level must shrink the node count (a singleton cluster just
        // wraps a node in another buffer): cap k at n/2. The top trunk
        // nets this creates may exceed the per-net wirelength budget on
        // large dies — unavoidable for any tree that has to cross the
        // die — and the critical-wirelength repeater pass restores their
        // electrical health.
        let k = by_fanout.max(by_cap).max(by_wl).max(1).min((n / 2).max(1));

        // Large levels use median-bisection cells with per-cell exact
        // (min-cost-flow) assignment; smaller ones pick among K-means
        // restarts with the paper's latency/capacitance-adaptive cost
        // `p·σ(Cap) + q·σ(T)` (§3.2), whose weights shift from
        // capacitance balance at the bottom toward delay balance at the
        // top. The realized cluster count may exceed the estimate.
        let part = if n > 1500 {
            sllt_partition::balanced_kmeans_grid(
                &positions,
                k,
                cons.max_fanout,
                1200,
                self.seed ^ level as u64,
            )
        } else {
            // Rough level count for the weight schedule.
            let est_levels = ((n as f64).ln() / (cons.max_fanout as f64).ln()).ceil() as usize + 1;
            let (p, q) = sllt_partition::cost::level_weights(level, est_levels.max(2));
            (0..4u64)
                .map(|t| {
                    let cand = sllt_partition::balanced_kmeans(
                        &positions,
                        k,
                        cons.max_fanout,
                        (self.seed ^ level as u64).wrapping_add(t * 0x9E37),
                    );
                    let score = self.adaptive_cluster_cost(&positions, &caps, &cand, p, q);
                    (score, cand)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .map(|(_, cand)| cand)
                .expect("at least one restart")
        };
        let k = part.centers.len();
        let mut assignment = part.assignment;
        if self.use_sa && k > 1 {
            let pc = sa::PartitionConstraints {
                max_cap_ff: cons.max_cap_ff,
                max_fanout: cons.max_fanout,
                max_wl_um: cons.max_wl_um,
                unit_wire_cap: self.tech.unit_cap_ff,
            };
            sa::refine(
                &positions,
                &caps,
                &mut assignment,
                k,
                &pc,
                &sa::SaConfig { seed: self.seed ^ (level as u64) << 8, ..Default::default() },
            );
        }

        // Route all clusters first; drivers are sized jointly afterwards
        // so buffer drive strength — not detour wire — absorbs the
        // cluster-to-cluster delay spread ("adjustments in downstream
        // buffer sizes", §3.4).
        let mut routed = Vec::new();
        for c in 0..k {
            let members: Vec<LevelNode> = nodes
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(m, _)| *m)
                .collect();
            if members.is_empty() {
                continue;
            }
            routed.push(self.route_cluster(members));
        }

        // Joint sizing: every cluster total (subtree + driver delay)
        // should land near a common target — the slowest cluster at its
        // fastest legal cell.
        let slew = self.tech.source_slew_ps;
        let target = routed
            .iter()
            .map(|r| {
                r.subtree_hi
                    + self
                        .lib
                        .cells()
                        .iter()
                        .filter(|c| c.can_drive(r.load))
                        .map(|c| c.delay(slew, r.load))
                        .fold(self.lib.largest().delay(slew, r.load), f64::min)
            })
            .fold(0.0f64, f64::max);

        let mut next = Vec::new();
        for r in routed {
            let usable = || {
                self.lib
                    .cells()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.can_drive(r.load) || c.name == self.lib.largest().name)
            };
            let cell = if self.equalize_sizing {
                // Equalize toward the slowest cluster, but never slow a
                // cluster below what the next level's bounded-skew merge
                // can absorb without detour: totals inside
                // [target − 0.8·bound, target] are all fine, so take the
                // *fastest* cell landing in that window (or the closest
                // to it).
                let bound = self.constraints.skew_ps * self.level_skew_fraction;
                let window_lo = target - self.sizing_window_fraction * bound;
                let in_window: Option<usize> = usable()
                    .filter(|(_, c)| {
                        let total = r.subtree_hi + c.delay(slew, r.load);
                        total >= window_lo && total <= target + 1e-9
                    })
                    .min_by(|(_, a), (_, b)| {
                        a.delay(slew, r.load).total_cmp(&b.delay(slew, r.load))
                    })
                    .map(|(i, _)| i);
                in_window.unwrap_or_else(|| {
                    usable()
                        .min_by(|(_, a), (_, b)| {
                            let da = (r.subtree_hi + a.delay(slew, r.load) - target).abs();
                            let db = (r.subtree_hi + b.delay(slew, r.load) - target).abs();
                            da.total_cmp(&db)
                        })
                        .map(|(i, _)| i)
                        .expect("library is non-empty")
                })
            } else {
                // Cheapest (by area) cell within `sizing_slack` of the
                // fastest at this load.
                let fastest = usable()
                    .map(|(_, c)| c.delay(slew, r.load))
                    .fold(f64::INFINITY, f64::min);
                usable()
                    .filter(|(_, c)| c.delay(slew, r.load) <= fastest * self.sizing_slack)
                    .min_by(|(_, a), (_, b)| a.area_um2.total_cmp(&b.area_um2))
                    .map(|(i, _)| i)
                    .expect("the fastest cell always qualifies")
            };
            // Delay padding: when even the slowest usable cell leaves the
            // cluster far ahead of the target, chain small buffers above
            // the driver to make up the rest.
            let pad_cell = &self.lib.cells()[0];
            let pad_delay = pad_cell.delay(slew, self.lib.cells()[cell].input_cap_ff);
            let pads = if self.equalize_sizing && pad_delay > 1e-9 {
                let total = r.subtree_hi + self.lib.cells()[cell].delay(slew, r.load);
                (((target - total) / pad_delay).floor().max(0.0) as usize).min(8)
            } else {
                0
            };
            let drv = self.estimator.provisional_delay_for(
                &self.lib,
                r.load,
                Some(&self.lib.cells()[cell]),
                slew,
            ) + pads as f64 * pad_delay;
            let input_cap = if pads > 0 {
                pad_cell.input_cap_ff
            } else {
                self.lib.cells()[cell].input_cap_ff
            };
            let idx = clusters.len();
            next.push(LevelNode {
                pos: r.tap,
                cap_ff: input_cap,
                interval_ps: (r.subtree_lo + drv, r.subtree_hi + drv),
                source: NodeSource::Cluster(idx),
            });
            clusters.push(BuiltCluster {
                tree: r.tree,
                members: r.members,
                cell,
                pads,
                driver_pos: r.tap,
            });
        }
        next
    }

    /// The paper's adaptive clustering cost `p·σ(Cap) + q·σ(T)` over a
    /// candidate partition, with per-cluster net capacitance (pins + HPWL
    /// wire) and a bounding-box delay proxy.
    fn adaptive_cluster_cost(
        &self,
        positions: &[Point],
        caps: &[f64],
        part: &sllt_partition::Partition,
        p: f64,
        q: f64,
    ) -> f64 {
        let k = part.centers.len();
        let mut cluster_caps = Vec::with_capacity(k);
        let mut cluster_delays = Vec::with_capacity(k);
        for c in 0..k {
            let members = part.members(c);
            if members.is_empty() {
                continue;
            }
            let pts: Vec<Point> = members.iter().map(|&i| positions[i]).collect();
            let pin_cap: f64 = members.iter().map(|&i| caps[i]).sum();
            let hpwl = sllt_geom::Rect::bounding(&pts).map_or(0.0, |r| r.hpwl());
            let net_cap = pin_cap + self.tech.wire_cap(hpwl);
            cluster_caps.push(net_cap);
            // Delay proxy: Elmore over half the cluster span at its load.
            cluster_delays.push(self.tech.wire_delay(hpwl / 2.0, net_cap));
        }
        sllt_partition::cluster_cost(&cluster_caps, &cluster_delays, p, q)
    }

    /// Routes one cluster and computes its timing aggregates.
    fn route_cluster(&self, members: Vec<LevelNode>) -> RoutedCluster {
        let tap = centroid(&members.iter().map(|m| m.pos).collect::<Vec<_>>())
            .expect("cluster is non-empty");
        let net = ClockNet::new(
            tap,
            members.iter().map(|m| Sink::new(m.pos, m.cap_ff)).collect(),
        );
        let intervals: Vec<(f64, f64)> = members.iter().map(|m| m.interval_ps).collect();
        let bound = self.constraints.skew_ps * self.level_skew_fraction;
        let model = DelayModel::Elmore(self.tech);

        // Adaptive shallowness: allow whatever path depth costs at most
        // `cluster_latency_slack_ps` of Elmore delay, so compact clusters
        // keep Steiner-light routing while long-haul nets stay shallow.
        let adaptive_eps = |eps: f64| -> f64 {
            let max_md = net.max_source_dist();
            if max_md <= 1e-9 {
                return eps;
            }
            let slack_len = (2.0 * self.cluster_latency_slack_ps
                / (self.tech.unit_res_ohm * self.tech.unit_cap_ff * 1e-3))
                .sqrt();
            eps.max(slack_len / max_md - 1.0).min(10.0)
        };

        let tree = match self.topology {
            TopologyKind::Cbs { scheme, eps } => cbs_intervals(
                &net,
                &CbsConfig { scheme, eps: adaptive_eps(eps), skew_bound: bound, model },
                &intervals,
            ),
            TopologyKind::Bst { scheme } => {
                let topo = scheme.build(&net);
                dme_intervals(
                    &net,
                    &topo.to_hinted(),
                    &DmeOptions { skew_bound: bound, model },
                    &intervals,
                )
            }
            TopologyKind::Salt { eps } => salt(&net, adaptive_eps(eps)),
            TopologyKind::Rsmt => rsmt::rsmt(&net),
            TopologyKind::HTree => htree(&net, 2),
            TopologyKind::GhTree => ghtree(&net, 2),
        };

        // Cluster timing: Elmore from the tap plus each member's offset.
        let caps = sllt_buffer::repeater::downstream_caps(&tree, &self.tech, Some(&self.lib));
        let (rc, map) = tree.to_rc_tree();
        let delays = rc.elmore(&self.tech, 0.0);
        let mut subtree_hi = 0.0f64;
        let mut subtree_lo = f64::INFINITY;
        for id in tree.sinks() {
            if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
                let d = delays[map[id.index()].expect("sink mapped")];
                subtree_hi = subtree_hi.max(d + intervals[sink_index].1);
                subtree_lo = subtree_lo.min(d + intervals[sink_index].0);
            }
        }
        let load = caps[tree.root().index()];
        RoutedCluster { tree, members, tap, load, subtree_lo, subtree_hi }
    }

    /// Recursively copies a level node (and everything below it) into the
    /// global tree under `parent`. `edge_len` overrides the edge's routed
    /// length (detour from the upper net); `None` wires the plain
    /// Manhattan distance.
    fn attach(
        &self,
        clusters: &[BuiltCluster],
        tree: &mut ClockTree,
        parent: NodeId,
        node: &LevelNode,
        edge_len: Option<f64>,
    ) -> NodeId {
        match node.source {
            NodeSource::DesignSink(i) => {
                let id = tree.add_sink_indexed(parent, node.pos, node.cap_ff, i);
                if let Some(e) = edge_len {
                    tree.set_edge_len(id, e.max(tree.node(id).edge_len()));
                }
                id
            }
            NodeSource::Cluster(ci) => {
                let bc = &clusters[ci];
                // Pad chain (if any) sits above the driver, co-located.
                let mut upper = parent;
                let mut first = None;
                for _ in 0..bc.pads {
                    let pad = tree.add_buffer(upper, bc.driver_pos, 0);
                    if first.is_none() {
                        first = Some(pad);
                        if let Some(e) = edge_len {
                            tree.set_edge_len(pad, e.max(tree.node(pad).edge_len()));
                        }
                    }
                    upper = pad;
                }
                let buf = tree.add_buffer(upper, bc.driver_pos, bc.cell);
                if first.is_none() {
                    if let Some(e) = edge_len {
                        tree.set_edge_len(buf, e.max(tree.node(buf).edge_len()));
                    }
                }
                self.copy_subtree(clusters, tree, buf, &bc.tree, bc.tree.root(), &bc.members);
                first.unwrap_or(buf)
            }
        }
    }

    /// Copies the children of `src_node` (in a cluster tree) under
    /// `dst_parent` in the global tree, resolving cluster-tree sinks into
    /// their level nodes.
    fn copy_subtree(
        &self,
        clusters: &[BuiltCluster],
        tree: &mut ClockTree,
        dst_parent: NodeId,
        src: &ClockTree,
        src_node: NodeId,
        members: &[LevelNode],
    ) {
        let children: Vec<NodeId> = src.node(src_node).children().to_vec();
        for child in children {
            let (kind, pos, edge) = {
                let cn = src.node(child);
                (cn.kind, cn.pos, cn.edge_len())
            };
            let id = match kind {
                // Internal sinks (RSMT/SALT cluster trees route through
                // pins) keep their subtree below the attached node.
                NodeKind::Sink { sink_index, .. } => {
                    self.attach(clusters, tree, dst_parent, &members[sink_index], Some(edge))
                }
                _ => {
                    let id = tree.add_steiner(dst_parent, pos);
                    tree.set_edge_len(id, edge.max(tree.node(id).edge_len()));
                    id
                }
            };
            self.copy_subtree(clusters, tree, id, src, child, members);
        }
    }
}

/// A routed cluster awaiting joint driver sizing.
struct RoutedCluster {
    tree: ClockTree,
    members: Vec<LevelNode>,
    tap: Point,
    load: f64,
    subtree_lo: f64,
    subtree_hi: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use sllt_design::DesignSpec;

    #[test]
    fn flow_covers_every_sink_exactly_once() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design);
        tree.validate().unwrap();
        let mut seen = vec![false; design.num_ffs()];
        for id in tree.sinks() {
            if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
                assert!(!seen[sink_index], "sink {sink_index} duplicated");
                seen[sink_index] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some sinks were dropped");
    }

    #[test]
    fn flow_meets_the_paper_constraints() {
        let design = DesignSpec::by_name("s38584").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design);
        let r = evaluate(&tree, &cts.tech, &cts.lib);
        assert!(r.skew_ps <= cts.constraints.skew_ps + 1e-6, "skew {}", r.skew_ps);
        assert!(r.num_buffers > 0);
        assert!(r.max_latency_ps > 0.0 && r.max_latency_ps < 1000.0);
    }

    #[test]
    fn sink_positions_survive_assembly() {
        let design = DesignSpec::by_name("s38417").unwrap().instantiate();
        let cts = HierarchicalCts::default();
        let tree = cts.run(&design);
        for id in tree.sinks() {
            if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
                assert!(
                    tree.node(id).pos.approx_eq(design.sinks[sink_index].pos),
                    "sink {sink_index} moved"
                );
            }
        }
    }

    #[test]
    fn single_ff_design_is_a_wire() {
        let design = Design {
            name: "one".into(),
            num_instances: 1,
            utilization: 0.5,
            die: sllt_geom::Rect::new(Point::ORIGIN, Point::new(100.0, 100.0)),
            clock_root: Point::ORIGIN,
            sinks: vec![Sink::new(Point::new(50.0, 50.0), 1.0)],
        };
        let tree = HierarchicalCts::default().run(&design);
        assert_eq!(tree.sinks().len(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn sizing_policies_all_meet_the_bound() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        for (equalize, window) in [(true, 0.0), (true, 0.5), (false, 0.0)] {
            let cts = HierarchicalCts {
                equalize_sizing: equalize,
                sizing_window_fraction: window,
                ..HierarchicalCts::default()
            };
            let tree = cts.run(&design);
            let r = evaluate(&tree, &cts.tech, &cts.lib);
            assert!(
                r.skew_ps <= cts.constraints.skew_ps + 1e-6,
                "equalize={equalize} window={window}: skew {}",
                r.skew_ps
            );
        }
    }

    #[test]
    fn estimator_policies_all_complete() {
        let design = DesignSpec::by_name("s38417").unwrap().instantiate();
        for est in [
            sllt_buffer::DelayEstimator::None,
            sllt_buffer::DelayEstimator::LowerBound,
            sllt_buffer::DelayEstimator::ChosenCell,
        ] {
            let cts = HierarchicalCts { estimator: est, ..HierarchicalCts::default() };
            let tree = cts.run(&design);
            tree.validate().unwrap();
            assert_eq!(tree.sinks().len(), design.num_ffs());
        }
    }

    #[test]
    fn topology_kind_changes_the_result() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let mut cts = HierarchicalCts::default();
        let ours = evaluate(&cts.run(&design), &cts.tech, &cts.lib);
        cts.topology = TopologyKind::HTree;
        let htree = evaluate(&cts.run(&design), &cts.tech, &cts.lib);
        assert_ne!(ours.clock_wl_um, htree.clock_wl_um);
    }
}
