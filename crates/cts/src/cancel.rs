//! Cooperative cancellation for the hierarchical flow.
//!
//! A [`CancelToken`] is a cheap, cloneable flag the flow polls at every
//! bounded unit of work: before each level, before each cluster in the
//! partition/route/sizing stages, between K-means restarts, and once per
//! SA sweep iteration. When the token fires, the stage that observes it
//! stops at its *next* poll and the flow returns
//! [`CtsError::Cancelled`](crate::error::CtsError::Cancelled) — so the
//! number of work units executed after `cancel()` is bounded by the
//! worker count plus a small constant, never by design size.
//!
//! Work committed before the cancellation is untouched: with
//! checkpointing enabled the journal still holds every completed level
//! and [`HierarchicalCts::resume`](crate::flow::HierarchicalCts::resume)
//! continues from it.
//!
//! The token is also the process-interrupt hook: [`install_signals`]
//! arranges for SIGINT (Ctrl-C) *and* SIGTERM (the service-manager
//! stop signal) to fire a token from an async-signal-safe handler (a
//! single atomic store) — so an interactive ^C and a `kill <pid>` both
//! produce the same orderly, checkpointing shutdown.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    /// Set once, never cleared. All pollers observe it on their next poll.
    fired: AtomicBool,
    /// Total number of `poll()` calls, across all clones. Drives the
    /// deterministic `fire_after_polls` test hook and lets tests measure
    /// cancellation latency in work units.
    polls: AtomicU64,
    /// Poll count at which the token self-fires (`u64::MAX` = never).
    /// Immutable after construction, so polling stays race-free.
    fire_at: u64,
}

/// Shared cancellation flag. `Default` yields an inert token that never
/// fires on its own; [`cancel`](CancelToken::cancel) it from any thread
/// (or signal handler) and every clone observes the stop.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicBool::new(false),
                polls: AtomicU64::new(0),
                fire_at: u64::MAX,
            }),
        }
    }

    /// A token that fires itself once `n` total polls have been counted
    /// across all clones — a deterministic stand-in for "the operator
    /// hits Ctrl-C at an arbitrary moment", used by the latency tests.
    pub fn fire_after_polls(n: u64) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicBool::new(false),
                polls: AtomicU64::new(0),
                fire_at: n,
            }),
        }
    }

    /// Fires the token. Idempotent; safe from any thread. Also the only
    /// operation the SIGINT handler performs.
    pub fn cancel(&self) {
        self.inner.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired, without counting a poll.
    pub fn is_cancelled(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Counts one unit of work and reports whether the caller must stop.
    /// This is the call sites' single entry point: one `fetch_add` and
    /// one load on the fast path.
    pub fn poll(&self) -> bool {
        let n = self.inner.polls.fetch_add(1, Ordering::AcqRel) + 1;
        if n >= self.inner.fire_at {
            self.inner.fired.store(true, Ordering::Release);
        }
        self.is_cancelled()
    }

    /// Total polls counted so far (all clones). Test observability only.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Acquire)
    }
}

/// Routes both termination signals — SIGINT (Ctrl-C) and SIGTERM (the
/// service-manager stop) — to `token.cancel()`.
///
/// The handler performs a single atomic store through a leaked `Arc` —
/// async-signal-safe by construction (no allocation, no locks, no
/// formatting). Installing a second token replaces the first; the
/// previously leaked `Arc` is intentionally never reclaimed (one token
/// per process lifetime is the expected use from a bin's `main`).
#[cfg(unix)]
pub fn install_signals(token: &CancelToken) {
    use std::sync::atomic::AtomicPtr;

    static TARGET: AtomicPtr<Inner> = AtomicPtr::new(std::ptr::null_mut());

    extern "C" fn on_signal(_sig: i32) {
        let p = TARGET.load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: `p` came from Arc::into_raw of an Arc we leaked, so
            // the Inner outlives the process.
            unsafe { (*p).fired.store(true, Ordering::Release) };
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    let raw = Arc::into_raw(Arc::clone(&token.inner)) as *mut Inner;
    // A replaced target is leaked rather than reclaimed: the handler may
    // be mid-read of it on another thread, and one Inner per install is
    // a bounded, intentional cost.
    TARGET.store(raw, Ordering::Release);
    // SAFETY: plain libc signal(2) registration with a fn pointer of the
    // correct C ABI; no Rust state is touched beyond the atomics above.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Routes SIGINT (Ctrl-C) to `token.cancel()`. Kept for callers that
/// predate [`install_signals`]; both signals now share one handler, so
/// this is the same installation.
#[cfg(unix)]
pub fn install_sigint(token: &CancelToken) {
    install_signals(token);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::new();
        for _ in 0..10_000 {
            assert!(!t.poll());
        }
        assert!(!t.is_cancelled());
        assert_eq!(t.polls(), 10_000);
    }

    #[test]
    fn cancel_is_seen_by_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.poll());
        t.cancel();
        assert!(c.poll());
        assert!(t.is_cancelled() && c.is_cancelled());
    }

    #[test]
    fn fire_after_polls_fires_exactly_on_schedule() {
        let t = CancelToken::fire_after_polls(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll());
        assert!(t.is_cancelled());
    }

    #[test]
    fn fire_after_zero_fires_immediately() {
        let t = CancelToken::fire_after_polls(0);
        assert!(t.poll());
    }

    #[test]
    fn polls_accumulate_across_threads() {
        let t = CancelToken::fire_after_polls(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = t.clone();
                s.spawn(move || {
                    let mut stopped = 0u64;
                    for _ in 0..100 {
                        if c.poll() {
                            stopped += 1;
                        }
                    }
                    stopped
                });
            }
        });
        // 400 total polls, threshold 64: the token must have fired.
        assert!(t.is_cancelled());
        assert_eq!(t.polls(), 400);
    }
}
