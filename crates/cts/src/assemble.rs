//! Final assembly: copy every built cluster under the design's clock
//! root and repeater long common wires.

use crate::flow::HierarchicalCts;
use crate::report::AssembleReport;
use crate::route::{LevelNode, NodeSource};
use sllt_buffer::{insert_repeaters, RepeaterPolicy};
use sllt_design::Design;
use sllt_tree::{ClockTree, NodeId, NodeKind};
use std::time::Instant;

/// A routed, buffered cluster awaiting assembly.
#[derive(Debug)]
pub(crate) struct BuiltCluster {
    /// Tree rooted at the cluster tap; sink indices refer to `members`.
    pub tree: ClockTree,
    /// Members, in the order the cluster net's sinks were listed.
    pub members: Vec<LevelNode>,
    /// Chosen driver cell (library index).
    pub cell: usize,
    /// Delay-padding buffers (smallest cell) chained above the driver —
    /// inserted when sizing alone cannot slow a fast cluster to the
    /// level's equalization target. Closing that gap with buffers costs
    /// a few µm² of area; closing it with detour wire at the next level
    /// costs hundreds of µm of snaking per cluster.
    pub pads: usize,
    /// Driver location (the net tap).
    pub driver_pos: Point,
}

use sllt_geom::Point;

/// Assembles the flow's output under the clock root and inserts
/// critical-wirelength repeaters on long common wires (typically the
/// source trunk).
pub(crate) fn assemble(
    cts: &HierarchicalCts,
    design: &Design,
    clusters: &[BuiltCluster],
    top: &LevelNode,
) -> (ClockTree, AssembleReport) {
    let start = Instant::now();
    let mut tree = ClockTree::new(design.clock_root);
    let root = tree.root();
    let top_id = attach(clusters, &mut tree, root, top, None);
    let trunk_wl_um = tree.node(top_id).edge_len();
    let buffers_before = count_buffers(&tree);
    let repeater_cell = cts.lib.cells().len() / 2;
    insert_repeaters(
        &mut tree,
        &cts.lib,
        &cts.tech,
        &RepeaterPolicy {
            cell: repeater_cell,
            max_segment_um: None,
        },
    );
    let repeaters = count_buffers(&tree) - buffers_before;
    let repeater_input_cap_ff = cts
        .lib
        .cells()
        .get(repeater_cell)
        .map_or(0.0, |c| c.input_cap_ff * repeaters as f64);
    let report = AssembleReport {
        trunk_wl_um,
        repeaters,
        repeater_input_cap_ff,
        elapsed: start.elapsed(),
    };
    (tree, report)
}

fn count_buffers(tree: &ClockTree) -> usize {
    tree.topo_order()
        .into_iter()
        .filter(|&v| matches!(tree.node(v).kind, NodeKind::Buffer { .. }))
        .count()
}

/// Recursively copies a level node (and everything below it) into the
/// global tree under `parent`. `edge_len` overrides the edge's routed
/// length (detour from the upper net); `None` wires the plain Manhattan
/// distance.
fn attach(
    clusters: &[BuiltCluster],
    tree: &mut ClockTree,
    parent: NodeId,
    node: &LevelNode,
    edge_len: Option<f64>,
) -> NodeId {
    match node.source {
        NodeSource::DesignSink(i) => {
            let id = tree.add_sink_indexed(parent, node.pos, node.cap_ff, i);
            if let Some(e) = edge_len {
                tree.set_edge_len(id, e.max(tree.node(id).edge_len()));
            }
            id
        }
        NodeSource::Cluster(ci) => {
            let bc = &clusters[ci];
            // Pad chain (if any) sits above the driver, co-located.
            let mut upper = parent;
            let mut first = None;
            for _ in 0..bc.pads {
                let pad = tree.add_buffer(upper, bc.driver_pos, 0);
                if first.is_none() {
                    first = Some(pad);
                    if let Some(e) = edge_len {
                        tree.set_edge_len(pad, e.max(tree.node(pad).edge_len()));
                    }
                }
                upper = pad;
            }
            let buf = tree.add_buffer(upper, bc.driver_pos, bc.cell);
            if first.is_none() {
                if let Some(e) = edge_len {
                    tree.set_edge_len(buf, e.max(tree.node(buf).edge_len()));
                }
            }
            copy_subtree(clusters, tree, buf, &bc.tree, bc.tree.root(), &bc.members);
            first.unwrap_or(buf)
        }
    }
}

/// Copies the children of `src_node` (in a cluster tree) under
/// `dst_parent` in the global tree, resolving cluster-tree sinks into
/// their level nodes.
fn copy_subtree(
    clusters: &[BuiltCluster],
    tree: &mut ClockTree,
    dst_parent: NodeId,
    src: &ClockTree,
    src_node: NodeId,
    members: &[LevelNode],
) {
    let children: Vec<NodeId> = src.node(src_node).children().to_vec();
    for child in children {
        let (kind, pos, edge) = {
            let cn = src.node(child);
            (cn.kind, cn.pos, cn.edge_len())
        };
        let id = match kind {
            // Internal sinks (RSMT/SALT cluster trees route through
            // pins) keep their subtree below the attached node.
            NodeKind::Sink { sink_index, .. } => {
                attach(clusters, tree, dst_parent, &members[sink_index], Some(edge))
            }
            _ => {
                let id = tree.add_steiner(dst_parent, pos);
                tree.set_edge_len(id, edge.max(tree.node(id).edge_len()));
                id
            }
        };
        copy_subtree(clusters, tree, id, src, child, members);
    }
}
