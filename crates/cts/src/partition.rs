//! Level partitioning — cluster-count estimation, balanced K-means
//! restarts, and SA boundary refinement (paper §3.2).

use crate::error::CtsError;
use crate::fault::{FaultKind, FaultStage};
use crate::flow::HierarchicalCts;
use sllt_geom::Point;
use sllt_partition::sa;

/// The chosen partition of one level's nodes.
#[derive(Debug)]
pub(crate) struct LevelPartition {
    /// Number of clusters (realized; may exceed the initial estimate).
    pub k: usize,
    /// Cluster index per node.
    pub assignment: Vec<usize>,
}

/// Estimates the cluster count and partitions one level.
///
/// Cluster count is fanout-driven, bumped when capacitance or wirelength
/// binds. Wire is estimated with the classic Steiner scaling
/// WL ≈ 0.8·√(n·A); splitting into k clusters divides it (and the pin
/// cap) by roughly k.
pub(crate) fn partition_level(
    cts: &HierarchicalCts,
    positions: &[Point],
    caps: &[f64],
    level: usize,
    attempt: usize,
) -> Result<LevelPartition, CtsError> {
    if !cts.faults.is_empty() {
        if let Some(f) = cts
            .faults
            .fires(FaultStage::Partition, level, None, attempt)
        {
            match f.kind {
                FaultKind::Error => {
                    return Err(CtsError::InjectedFault {
                        stage: "partition",
                        level,
                        cluster: None,
                    })
                }
                FaultKind::Panic => panic!("injected panic: partition level {level}"),
            }
        }
    }
    let cons = &cts.constraints;
    let n = positions.len();
    let by_fanout = n.div_ceil(cons.max_fanout);
    let total_pin_cap: f64 = caps.iter().sum();
    let area = sllt_geom::Rect::bounding(positions).map_or(0.0, |r| r.area());
    let est_wl_total = 0.8 * (n as f64 * area).sqrt();
    let by_cap =
        ((total_pin_cap + cts.tech.wire_cap(est_wl_total)) * 1.2 / cons.max_cap_ff).ceil() as usize;
    let by_wl = (est_wl_total * 1.2 / cons.max_wl_um).ceil() as usize;
    // Each level must shrink the node count (a singleton cluster just
    // wraps a node in another buffer): cap k at n/2. The top trunk nets
    // this creates may exceed the per-net wirelength budget on large
    // dies — unavoidable for any tree that has to cross the die — and
    // the critical-wirelength repeater pass restores their electrical
    // health.
    let k = by_fanout.max(by_cap).max(by_wl).max(1).min((n / 2).max(1));

    // Large levels use median-bisection cells with per-cell exact
    // (min-cost-flow) assignment, fanned out across the flow's worker
    // pool — per-cell seed streams are anchored to cell content, so the
    // partition is bit-identical at any worker count. Smaller levels
    // pick among K-means restarts with the paper's
    // latency/capacitance-adaptive cost `p·σ(Cap) + q·σ(T)` (§3.2),
    // whose weights shift from capacitance balance at the bottom toward
    // delay balance at the top. The realized cluster count may exceed
    // the estimate.
    // The restart path's exact assignment costs ~O(n^2.7) per solve
    // (10 ms at 300 points, ~700 ms at 1400), so levels past a few
    // hundred nodes pay seconds per restart; the cell path bounds every
    // solve at `max_cell` points and stays near-linear.
    let kcfg = sllt_partition::KmeansConfig {
        warm_mcf: cts.partition_warm_mcf,
        ..Default::default()
    };
    let part = if n > 600 {
        // Cell size bounds the min-cost-flow's quadratic blowup: at ~300
        // points a cell assigns in ~10 ms where 1200-point cells cost
        // ~450 ms each, and total partition time stays near-linear in
        // the sink count. Cells must still hold one full cluster.
        let max_cell = 300.max(cons.max_fanout);
        sllt_partition::balanced_kmeans_grid_sharded_cfg(
            positions,
            k,
            cons.max_fanout,
            max_cell,
            cts.seed ^ level as u64,
            cts.effective_workers(usize::MAX),
            &kcfg,
            &|| cts.cancel.poll(),
        )
        .ok_or(CtsError::Cancelled)?
    } else {
        if cts.partition_restarts == 0 {
            return Err(CtsError::NoPartitionRestarts);
        }
        // Rough level count for the weight schedule.
        let est_levels = ((n as f64).ln() / (cons.max_fanout as f64).ln()).ceil() as usize + 1;
        let (p, q) = sllt_partition::cost::level_weights(level, est_levels.max(2));
        // Restarts fan out across the worker pool with per-restart seed
        // streams; the serial strict-`<` best-of keeps `min_by`'s
        // first-minimum-wins tie-break, so the chosen partition is
        // bit-identical at any worker count (and to the old serial
        // loop). Cancellation is polled between restarts; a stopped
        // search discards every candidate.
        sllt_partition::balanced_kmeans_restarts_scored(
            positions,
            k,
            cons.max_fanout,
            cts.seed ^ level as u64,
            cts.partition_restarts,
            cts.effective_workers(cts.partition_restarts),
            &kcfg,
            &|cand| adaptive_cluster_cost(cts, positions, caps, cand, p, q),
            &|| cts.cancel.poll(),
        )
        .ok_or(CtsError::Cancelled)?
    };
    let k = part.centers.len();
    let mut assignment = part.assignment;
    if cts.use_sa && k > 1 {
        let pc = sa::PartitionConstraints {
            max_cap_ff: cons.max_cap_ff,
            max_fanout: cons.max_fanout,
            max_wl_um: cons.max_wl_um,
            unit_wire_cap: cts.tech.unit_cap_ff,
        };
        // Independent chains explore from the same start; the serial
        // best-of keeps the result bit-identical at any worker count.
        // Cancellation is polled once per SA proposal; a stopped run
        // leaves `assignment` untouched and the whole level attempt is
        // discarded as Cancelled.
        sa::refine_chains(
            positions,
            caps,
            &mut assignment,
            k,
            &pc,
            &sa::SaConfig {
                seed: cts.seed ^ (level as u64) << 8,
                ..Default::default()
            },
            cts.sa_chains.max(1),
            cts.effective_workers(cts.sa_chains.max(1)),
            &|| cts.cancel.poll(),
        )
        .ok_or(CtsError::Cancelled)?;
    }
    Ok(LevelPartition { k, assignment })
}

/// The paper's adaptive clustering cost `p·σ(Cap) + q·σ(T)` over a
/// candidate partition, with per-cluster net capacitance (pins + HPWL
/// wire) and a bounding-box delay proxy.
fn adaptive_cluster_cost(
    cts: &HierarchicalCts,
    positions: &[Point],
    caps: &[f64],
    part: &sllt_partition::Partition,
    p: f64,
    q: f64,
) -> f64 {
    let k = part.centers.len();
    let mut cluster_caps = Vec::with_capacity(k);
    let mut cluster_delays = Vec::with_capacity(k);
    // Single pass over the assignment; the per-cluster `members(c)`
    // accessor would rescan it k times.
    for members in part.members_all() {
        if members.is_empty() {
            continue;
        }
        let pts: Vec<Point> = members.iter().map(|&i| positions[i]).collect();
        let pin_cap: f64 = members.iter().map(|&i| caps[i]).sum();
        let hpwl = sllt_geom::Rect::bounding(&pts).map_or(0.0, |r| r.hpwl());
        let net_cap = pin_cap + cts.tech.wire_cap(hpwl);
        cluster_caps.push(net_cap);
        // Delay proxy: Elmore over half the cluster span at its load.
        cluster_delays.push(cts.tech.wire_delay(hpwl / 2.0, net_cap));
    }
    sllt_partition::cluster_cost(&cluster_caps, &cluster_delays, p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> (Vec<Point>, Vec<f64>) {
        let side = (n as f64).sqrt().ceil() as usize;
        let pts = (0..n)
            .map(|i| Point::new((i % side) as f64 * 10.0, (i / side) as f64 * 10.0))
            .collect();
        (pts, vec![1.0; n])
    }

    #[test]
    fn zero_restarts_is_a_typed_error() {
        let cts = HierarchicalCts {
            partition_restarts: 0,
            ..Default::default()
        };
        let (pts, caps) = grid(40);
        let err = partition_level(&cts, &pts, &caps, 0, 0).unwrap_err();
        assert_eq!(err, CtsError::NoPartitionRestarts);
    }

    #[test]
    fn partition_covers_every_node() {
        let cts = HierarchicalCts::default();
        let (pts, caps) = grid(120);
        let part = partition_level(&cts, &pts, &caps, 0, 0).unwrap();
        assert_eq!(part.assignment.len(), 120);
        assert!(part.k >= 2, "120 nodes must split");
        assert!(part.assignment.iter().all(|&a| a < part.k));
    }

    #[test]
    fn restart_count_changes_the_search_not_the_contract() {
        let (pts, caps) = grid(90);
        for restarts in [1usize, 4, 8] {
            let cts = HierarchicalCts {
                partition_restarts: restarts,
                ..Default::default()
            };
            let part = partition_level(&cts, &pts, &caps, 0, 0).unwrap();
            assert_eq!(part.assignment.len(), 90);
        }
    }
}
