//! Baseline CTS flows standing in for the paper's comparison points.
//!
//! The paper compares against OpenROAD (TritonCTS) and a commercial P&R
//! tool, neither of which can run inside this reproduction. Each baseline
//! below reproduces the *behavioural signature* the paper reports:
//!
//! * [`open_road_like`] — TritonCTS-style synthesis: a structural
//!   region-halving trunk (H-tree) buffered at every tap with large fixed
//!   cells, leaf clusters star-connected. Geometry-blind trunks and
//!   per-level buffering give the paper's observed shape: the highest
//!   latency, skew and buffer area of the three flows.
//! * [`commercial_like`] — the hierarchical engine tuned the way a mature
//!   commercial CTS behaves: plain bounded-skew DME topologies (no SALT
//!   shaping), a tighter internal skew target and aggressive buffer
//!   sizing. Lowest skew; slightly higher latency, buffer count and cap
//!   than the paper's flow.

use crate::constraints::CtsConstraints;
use crate::flow::{HierarchicalCts, TopologyKind};
use sllt_buffer::DelayEstimator;
use sllt_design::Design;
use sllt_geom::{Point, Rect};
use sllt_route::TopologyScheme;
use sllt_timing::{BufferLibrary, Technology};
use sllt_tree::{ClockTree, NodeId, Sink};

/// A commercial-tool-like configuration of the hierarchical engine.
pub fn commercial_like() -> HierarchicalCts {
    HierarchicalCts {
        topology: TopologyKind::Cbs {
            scheme: TopologyScheme::GreedyMerge,
            eps: 0.2,
        },
        // Commercial CTS converges skew well below the constraint…
        level_skew_fraction: 0.4,
        // …with the same equalizing driver sizing discipline (latency
        // tracks ours closely, as in paper Table 6).
        equalize_sizing: true,
        sizing_slack: 1.2,
        estimator: DelayEstimator::ChosenCell,
        ..HierarchicalCts::default()
    }
}

/// Builds the OpenROAD-like clock tree for a design.
///
/// Recursive region halving from the die-level bounding box, a
/// large buffer at every tap, and star connections from the last tap to
/// at most `max_fanout` sinks.
///
/// # Panics
///
/// Panics when the design has no flip-flops.
pub fn open_road_like(
    design: &Design,
    constraints: &CtsConstraints,
    _tech: &Technology,
    lib: &BufferLibrary,
) -> ClockTree {
    assert!(
        !design.sinks.is_empty(),
        "CTS over a design without flip-flops"
    );
    let mut tree = ClockTree::new(design.clock_root);
    // Mid-strength trunk cells, one size down at the leaves.
    let trunk_cell = lib.cells().len() / 2;
    let leaf_cell = (lib.cells().len() / 2).saturating_sub(1);
    let sinks: Vec<(usize, Sink)> = design.sinks.iter().copied().enumerate().collect();
    // Invariant: guarded by the is_empty assert above — a non-empty sink
    // set always has a bounding box.
    let region =
        Rect::bounding(&sinks.iter().map(|(_, s)| s.pos).collect::<Vec<_>>()).expect("nonempty");
    let root = tree.root();
    let top = tree.add_buffer(root, region.center(), trunk_cell);
    halve(
        &mut tree,
        top,
        &sinks,
        region,
        constraints.max_fanout,
        trunk_cell,
        leaf_cell,
        true,
    );
    tree
}

#[allow(clippy::too_many_arguments)]
fn halve(
    tree: &mut ClockTree,
    tap: NodeId,
    sinks: &[(usize, Sink)],
    region: Rect,
    max_fanout: usize,
    trunk_cell: usize,
    leaf_cell: usize,
    split_x: bool,
) {
    if sinks.len() <= max_fanout {
        // Leaf cluster: a buffer at the region tap driving a Steiner
        // tree over the cluster (TritonCTS routes leaf nets, it does not
        // star them).
        let leaf = tree.add_buffer(tap, region.center(), leaf_cell);
        let net =
            sllt_tree::ClockNet::new(region.center(), sinks.iter().map(|&(_, s)| s).collect());
        let routed = sllt_route::rsmt::rsmt(&net);
        graft(
            tree,
            leaf,
            &routed,
            routed.root(),
            &sinks.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
        );
        return;
    }
    let c = region.center();
    let (ra, rb) = if split_x {
        (
            Rect::new(region.lo(), Point::new(c.x, region.hi().y)),
            Rect::new(Point::new(c.x, region.lo().y), region.hi()),
        )
    } else {
        (
            Rect::new(region.lo(), Point::new(region.hi().x, c.y)),
            Rect::new(Point::new(region.lo().x, c.y), region.hi()),
        )
    };
    let (mut la, mut lb) = (Vec::new(), Vec::new());
    for &(i, s) in sinks {
        let in_a = if split_x {
            s.pos.x <= c.x
        } else {
            s.pos.y <= c.y
        };
        if in_a {
            la.push((i, s));
        } else {
            lb.push((i, s));
        }
    }
    for (half, r) in [(la, ra), (lb, rb)] {
        if half.is_empty() {
            continue;
        }
        // TritonCTS-style trunks buffer roughly every other branching
        // level, not every tap.
        let child = if split_x {
            tree.add_buffer(tap, r.center(), trunk_cell)
        } else {
            tree.add_steiner(tap, r.center())
        };
        halve(
            tree, child, &half, r, max_fanout, trunk_cell, leaf_cell, !split_x,
        );
    }
}

/// Copies a routed leaf net under the leaf buffer, mapping the net's
/// local sink indices back to design sink indices.
fn graft(
    tree: &mut ClockTree,
    dst_parent: NodeId,
    src: &ClockTree,
    src_node: NodeId,
    design_index: &[usize],
) {
    let children: Vec<NodeId> = src.node(src_node).children().to_vec();
    for child in children {
        let (kind, pos, edge) = {
            let n = src.node(child);
            (n.kind, n.pos, n.edge_len())
        };
        let id = match kind {
            sllt_tree::NodeKind::Sink { cap_ff, sink_index } => {
                tree.add_sink_indexed(dst_parent, pos, cap_ff, design_index[sink_index])
            }
            _ => tree.add_steiner(dst_parent, pos),
        };
        tree.set_edge_len(id, edge.max(tree.node(id).edge_len()));
        graft(tree, id, src, child, design_index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use sllt_design::DesignSpec;
    use sllt_tree::NodeKind;

    #[test]
    fn open_road_like_covers_all_sinks() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let tech = Technology::n28();
        let lib = BufferLibrary::n28();
        let tree = open_road_like(&design, &CtsConstraints::paper(), &tech, &lib);
        tree.validate().unwrap();
        assert_eq!(tree.sinks().len(), design.num_ffs());
        let r = evaluate(&tree, &tech, &lib);
        assert!(r.num_buffers > 10, "structural trunk must buffer every tap");
    }

    #[test]
    fn open_road_like_buffers_trunk_and_leaves() {
        let design = DesignSpec::by_name("s38417").unwrap().instantiate();
        let tech = Technology::n28();
        let lib = BufferLibrary::n28();
        let tree = open_road_like(&design, &CtsConstraints::paper(), &tech, &lib);
        let trunk = lib.cells().len() / 2;
        let leaf = trunk.saturating_sub(1);
        let count = |cell_id: usize| {
            tree.node_ids()
                .filter(|&id| matches!(tree.node(id).kind, NodeKind::Buffer { cell } if cell == cell_id))
                .count()
        };
        assert!(count(trunk) > 0, "trunk taps must be buffered");
        assert!(count(leaf) > 0, "leaf clusters must be buffered");
        // Structural flow over-buffers relative to the hierarchical one
        // (the paper's OpenROAD observation).
        assert!(count(trunk) + count(leaf) > design.num_ffs() / 32);
    }

    #[test]
    fn commercial_like_has_tighter_skew_than_ours() {
        let design = DesignSpec::by_name("s35932").unwrap().instantiate();
        let ours = HierarchicalCts::default();
        let com = commercial_like();
        let tech = ours.tech;
        let lib = ours.lib.clone();
        let r_ours = evaluate(&ours.run(&design).unwrap(), &tech, &lib);
        let r_com = evaluate(&com.run(&design).unwrap(), &tech, &lib);
        assert!(
            r_com.skew_ps <= r_ours.skew_ps + 1.0,
            "commercial-like skew {} vs ours {}",
            r_com.skew_ps,
            r_ours.skew_ps
        );
    }
}
