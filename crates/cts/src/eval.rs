//! Buffered clock tree evaluation: the metrics of paper Tables 6 and 7.
//!
//! Wires contribute distributed-RC Elmore delay per stage (a *stage* is
//! the subtree between consecutive buffers — buffers shield downstream
//! capacitance); buffers contribute the linear delay of paper Eq. (6)
//! with propagated slews.

use sllt_buffer::repeater::downstream_caps;
use sllt_timing::{BufferLibrary, Technology};
use sllt_tree::{ClockTree, NodeKind};

/// All reported metrics of one buffered clock tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeReport {
    /// Slowest source→sink latency, ps ("Latency" columns).
    pub max_latency_ps: f64,
    /// Fastest source→sink latency, ps.
    pub min_latency_ps: f64,
    /// `max − min` latency, ps ("Skew" columns).
    pub skew_ps: f64,
    /// Inserted buffers ("#Buffers").
    pub num_buffers: usize,
    /// Total buffer area, µm² ("Buf Area").
    pub buffer_area_um2: f64,
    /// Clock capacitance: sink pins + buffer input pins + wire, fF
    /// ("Clk Cap").
    pub clock_cap_ff: f64,
    /// Total routed wirelength, µm ("Clk WL").
    pub clock_wl_um: f64,
    /// Worst slew seen at any node, ps.
    pub max_slew_ps: f64,
    /// Number of load pins reached.
    pub num_sinks: usize,
}

/// Evaluates a buffered clock tree.
///
/// The source is ideal (zero resistance) at the tree root with the
/// technology's nominal slew; every buffer's delay/output slew follow its
/// library characterization.
///
/// # Panics
///
/// Panics when the tree has no sinks or references buffer cells outside
/// the library.
pub fn evaluate(tree: &ClockTree, tech: &Technology, lib: &BufferLibrary) -> TreeReport {
    let sinks = tree.sinks();
    assert!(!sinks.is_empty(), "evaluating a sinkless tree");
    let caps = downstream_caps(tree, tech, Some(lib));

    let n_slots = tree.path_lengths().len();
    let mut delay = vec![0.0f64; n_slots];
    let mut slew = vec![tech.source_slew_ps; n_slots];
    let mut max_slew = tech.source_slew_ps;
    let mut num_buffers = 0;
    let mut buffer_area = 0.0;
    let mut buffer_in_cap = 0.0;

    for v in tree.topo_order() {
        let node = tree.node(v);
        if let Some(p) = node.parent() {
            let len = node.edge_len();
            // The wire sees the node's stage load; a buffer endpoint
            // presents only its input pin (the shield boundary).
            let wire_load = match node.kind {
                NodeKind::Buffer { cell } => {
                    lib.cells()
                        .get(cell)
                        .unwrap_or_else(|| panic!("buffer cell index {cell} outside the library"))
                        .input_cap_ff
                }
                _ => caps[v.index()],
            };
            delay[v.index()] = delay[p.index()] + tech.wire_delay(len, wire_load);
            slew[v.index()] = tech.wire_output_slew(slew[p.index()], len, wire_load);
        }
        if let NodeKind::Buffer { cell } = node.kind {
            let cell = lib
                .cells()
                .get(cell)
                .unwrap_or_else(|| panic!("buffer cell index {cell} outside the library"));
            let load = caps[v.index()];
            delay[v.index()] += cell.delay(slew[v.index()], load);
            slew[v.index()] = cell.output_slew(slew[v.index()], load);
            num_buffers += 1;
            buffer_area += cell.area_um2;
            buffer_in_cap += cell.input_cap_ff;
        }
        max_slew = max_slew.max(slew[v.index()]);
    }

    let mut max_latency = f64::NEG_INFINITY;
    let mut min_latency = f64::INFINITY;
    let mut sink_cap = 0.0;
    for &s in &sinks {
        max_latency = max_latency.max(delay[s.index()]);
        min_latency = min_latency.min(delay[s.index()]);
        sink_cap += tree.node(s).cap_ff();
    }
    let wl = tree.wirelength();
    TreeReport {
        max_latency_ps: max_latency,
        min_latency_ps: min_latency,
        skew_ps: max_latency - min_latency,
        num_buffers,
        buffer_area_um2: buffer_area,
        clock_cap_ff: sink_cap + buffer_in_cap + tech.wire_cap(wl),
        clock_wl_um: wl,
        max_slew_ps: max_slew,
        num_sinks: sinks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    fn fixtures() -> (Technology, BufferLibrary) {
        (Technology::n28(), BufferLibrary::n28())
    }

    #[test]
    fn unbuffered_tree_matches_rc_elmore() {
        let (tech, lib) = fixtures();
        let mut t = ClockTree::new(Point::ORIGIN);
        let st = t.add_steiner(t.root(), Point::new(50.0, 0.0));
        t.add_sink(st, Point::new(80.0, 20.0), 2.0);
        t.add_sink(st, Point::new(80.0, -20.0), 2.0);
        let r = evaluate(&t, &tech, &lib);
        let (rc, map) = t.to_rc_tree();
        let d = rc.elmore(&tech, 0.0);
        let sinks = t.sinks();
        let expect: f64 = sinks
            .iter()
            .map(|&s| d[map[s.index()].unwrap()])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((r.max_latency_ps - expect).abs() < 1e-9);
        assert_eq!(r.num_buffers, 0);
        assert_eq!(r.buffer_area_um2, 0.0);
        assert!(r.skew_ps < 1e-9, "symmetric sinks");
        assert_eq!(r.num_sinks, 2);
    }

    #[test]
    fn buffers_add_delay_and_area() {
        let (tech, lib) = fixtures();
        let mut bare = ClockTree::new(Point::ORIGIN);
        bare.add_sink(bare.root(), Point::new(100.0, 0.0), 2.0);
        let mut buffered = ClockTree::new(Point::ORIGIN);
        let b = buffered.add_buffer(buffered.root(), Point::new(50.0, 0.0), 1);
        buffered.add_sink(b, Point::new(100.0, 0.0), 2.0);

        let r0 = evaluate(&bare, &tech, &lib);
        let r1 = evaluate(&buffered, &tech, &lib);
        assert_eq!(r1.num_buffers, 1);
        assert!(r1.buffer_area_um2 > 0.0);
        // Over this short span the buffer's intrinsic delay dominates:
        // latency goes up, but the wire delay portion halves.
        assert!(r1.max_latency_ps > r0.max_latency_ps);
        // Clock cap gains the buffer input pin but loses the shielded
        // downstream load from the source's perspective; the reported
        // total counts pins + wire.
        let cell = &lib.cells()[1];
        assert!((r1.clock_cap_ff - (r0.clock_cap_ff + cell.input_cap_ff)).abs() < 1e-9);
    }

    #[test]
    fn buffer_shields_split_stages() {
        let (tech, lib) = fixtures();
        // source --L1--> buffer --L2--> sink(5fF)
        let mut t = ClockTree::new(Point::ORIGIN);
        let b = t.add_buffer(t.root(), Point::new(60.0, 0.0), 2);
        t.add_sink(b, Point::new(120.0, 0.0), 5.0);
        let r = evaluate(&t, &tech, &lib);
        let cell = &lib.cells()[2];
        // Hand-computed: stage 1 wire drives only the buffer pin.
        let d1 = tech.wire_delay(60.0, cell.input_cap_ff);
        let s1 = tech.wire_output_slew(tech.source_slew_ps, 60.0, cell.input_cap_ff);
        let load2 = tech.wire_cap(60.0) + 5.0;
        let d2 = cell.delay(s1, load2) + tech.wire_delay(60.0, 5.0);
        assert!(
            (r.max_latency_ps - (d1 + d2)).abs() < 1e-9,
            "latency {}",
            r.max_latency_ps
        );
    }

    #[test]
    fn slew_degrades_and_is_tracked() {
        let (tech, lib) = fixtures();
        let mut t = ClockTree::new(Point::ORIGIN);
        t.add_sink(t.root(), Point::new(300.0, 0.0), 2.0);
        let r = evaluate(&t, &tech, &lib);
        assert!(
            r.max_slew_ps > tech.source_slew_ps,
            "long wire must degrade slew"
        );
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn sinkless_tree_rejected() {
        let (tech, lib) = fixtures();
        let t = ClockTree::new(Point::ORIGIN);
        let _ = evaluate(&t, &tech, &lib);
    }
}
