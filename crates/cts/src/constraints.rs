//! CTS design constraints (paper Table 5).

/// The constraint set every flow must honour per clock net (paper §3.1
/// lists the per-level form; Table 5 gives the values used throughout the
/// evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsConstraints {
    /// Global skew bound, ps.
    pub skew_ps: f64,
    /// Maximum fanout per clock net.
    pub max_fanout: usize,
    /// Maximum capacitance per clock net, fF.
    pub max_cap_ff: f64,
    /// Maximum wirelength per clock net, µm.
    pub max_wl_um: f64,
}

impl CtsConstraints {
    /// Paper Table 5: skew 80 ps, fanout 32, cap 150 fF, wirelength
    /// 300 µm.
    pub fn paper() -> Self {
        CtsConstraints {
            skew_ps: 80.0,
            max_fanout: 32,
            max_cap_ff: 150.0,
            max_wl_um: 300.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when any bound is non-positive.
    pub fn validate(&self) {
        assert!(self.skew_ps > 0.0, "non-positive skew bound");
        assert!(self.max_fanout > 0, "non-positive fanout bound");
        assert!(self.max_cap_ff > 0.0, "non-positive cap bound");
        assert!(self.max_wl_um > 0.0, "non-positive wirelength bound");
    }
}

impl Default for CtsConstraints {
    fn default() -> Self {
        CtsConstraints::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table5() {
        let c = CtsConstraints::paper();
        assert_eq!(c.skew_ps, 80.0);
        assert_eq!(c.max_fanout, 32);
        assert_eq!(c.max_cap_ff, 150.0);
        assert_eq!(c.max_wl_um, 300.0);
        c.validate();
        assert_eq!(CtsConstraints::default(), c);
    }

    #[test]
    #[should_panic(expected = "non-positive skew")]
    fn validation_catches_bad_bounds() {
        CtsConstraints {
            skew_ps: 0.0,
            ..CtsConstraints::paper()
        }
        .validate();
    }
}
