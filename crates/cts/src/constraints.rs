//! CTS design constraints (paper Table 5).

use crate::error::CtsError;

/// The constraint set every flow must honour per clock net (paper §3.1
/// lists the per-level form; Table 5 gives the values used throughout the
/// evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsConstraints {
    /// Global skew bound, ps.
    pub skew_ps: f64,
    /// Maximum fanout per clock net.
    pub max_fanout: usize,
    /// Maximum capacitance per clock net, fF.
    pub max_cap_ff: f64,
    /// Maximum wirelength per clock net, µm.
    pub max_wl_um: f64,
}

impl CtsConstraints {
    /// Paper Table 5: skew 80 ps, fanout 32, cap 150 fF, wirelength
    /// 300 µm.
    pub fn paper() -> Self {
        CtsConstraints {
            skew_ps: 80.0,
            max_fanout: 32,
            max_cap_ff: 150.0,
            max_wl_um: 300.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// Every bound must be positive and finite (`!(x > 0.0)` also
    /// rejects NaN). The first offending field is reported by name in
    /// [`CtsError::InvalidConstraints`] so a driver can log exactly
    /// which knob was mis-set. This never panics.
    ///
    /// # Errors
    ///
    /// [`CtsError::InvalidConstraints`] naming the first bad field.
    pub fn validate(&self) -> Result<(), CtsError> {
        let bad = |field: &'static str, value: f64| CtsError::InvalidConstraints { field, value };
        if !(self.skew_ps > 0.0 && self.skew_ps.is_finite()) {
            return Err(bad("skew_ps", self.skew_ps));
        }
        if self.max_fanout == 0 {
            return Err(bad("max_fanout", 0.0));
        }
        if !(self.max_cap_ff > 0.0 && self.max_cap_ff.is_finite()) {
            return Err(bad("max_cap_ff", self.max_cap_ff));
        }
        if !(self.max_wl_um > 0.0 && self.max_wl_um.is_finite()) {
            return Err(bad("max_wl_um", self.max_wl_um));
        }
        Ok(())
    }
}

impl Default for CtsConstraints {
    fn default() -> Self {
        CtsConstraints::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table5() {
        let c = CtsConstraints::paper();
        assert_eq!(c.skew_ps, 80.0);
        assert_eq!(c.max_fanout, 32);
        assert_eq!(c.max_cap_ff, 150.0);
        assert_eq!(c.max_wl_um, 300.0);
        c.validate().unwrap();
        assert_eq!(CtsConstraints::default(), c);
    }

    #[test]
    fn validation_reports_the_offending_field() {
        let cases: [(CtsConstraints, &str); 5] = [
            (
                CtsConstraints {
                    skew_ps: 0.0,
                    ..CtsConstraints::paper()
                },
                "skew_ps",
            ),
            (
                CtsConstraints {
                    skew_ps: f64::NAN,
                    ..CtsConstraints::paper()
                },
                "skew_ps",
            ),
            (
                CtsConstraints {
                    max_fanout: 0,
                    ..CtsConstraints::paper()
                },
                "max_fanout",
            ),
            (
                CtsConstraints {
                    max_cap_ff: -1.0,
                    ..CtsConstraints::paper()
                },
                "max_cap_ff",
            ),
            (
                CtsConstraints {
                    max_wl_um: f64::INFINITY,
                    ..CtsConstraints::paper()
                },
                "max_wl_um",
            ),
        ];
        for (c, want) in cases {
            match c.validate() {
                Err(CtsError::InvalidConstraints { field, .. }) => assert_eq!(field, want),
                other => panic!("expected InvalidConstraints({want}), got {other:?}"),
            }
        }
    }
}
