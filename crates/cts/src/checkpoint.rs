//! Crash-safe level checkpoints (see `DESIGN.md`, *Durability model*).
//!
//! After each hierarchical level commits, the flow appends one sealed
//! record to an append-only journal (`sllt-obs`): the level's
//! [`LevelReport`], the next level's nodes, and the clusters built at
//! that level. Because the per-level RNG streams are derived statelessly
//! from the flow seed and the level index, this is the *complete*
//! inter-level state: a resumed run re-derives everything else and
//! continues bit-identically.
//!
//! Two on-disk schemas exist:
//!
//! * **schema 2** (current) — each level is one binary journal frame:
//!   a `CKL2` payload holding the report (JSON bytes), the level nodes
//!   as raw little-endian `f64` bit patterns, and every cluster tree in
//!   the compact `sllt_tree::codec` binary form. Typically 5–15× smaller
//!   than schema 1 and still bit-exact.
//! * **schema 1** (legacy) — each level is one JSONL record with cluster
//!   trees embedded as v1 tree text. Still read transparently;
//!   [`migrate_checkpoint`] converts old journals to the binary form.
//!
//! Durability contract:
//!
//! * every record is written with a single `write` + `fdatasync`
//!   ([`DurableAppender`]), so a crash leaves at most one torn final
//!   record — which the reader detects (checksum + shape) and discards;
//! * the journal opens with a fingerprinted meta record binding it to
//!   the exact flow configuration and design, so a resume against the
//!   wrong config fails loudly instead of diverging silently;
//! * on resume the writer reopens at the intact prefix length,
//!   truncating any torn tail before appending — and keeps writing the
//!   journal's own schema, so a file never mixes the two.

use crate::assemble::BuiltCluster;
use crate::error::CtsError;
use crate::flow::HierarchicalCts;
use crate::report::LevelReport;
use crate::route::{LevelNode, NodeSource};
use crate::telemetry::{level_report_from_value, level_value};
use sllt_design::Design;
use sllt_geom::Point;
use sllt_obs::journal::read_journal_bytes;
use sllt_obs::vfs::Vfs;
use sllt_obs::{DurableAppender, Value};
use sllt_tree::codec::{decode_tree_prefix, encode_tree};
use std::path::Path;

/// Journal schema version; bump on any incompatible record change.
pub const CHECKPOINT_SCHEMA: u64 = 2;

/// The JSONL/tree-text schema older journals were written with. Read
/// support is permanent; new journals are always [`CHECKPOINT_SCHEMA`].
pub const LEGACY_CHECKPOINT_SCHEMA: u64 = 1;

fn ckpt_err(detail: impl Into<String>) -> CtsError {
    CtsError::Checkpoint {
        detail: detail.into(),
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> CtsError {
    ckpt_err(format!("{context}: {e}"))
}

/// Binds a journal to the exact (config, design) pair that wrote it.
///
/// Hashes every flow field that influences the built tree — notably NOT
/// [`workers`](HierarchicalCts::workers) (trees are bit-identical at any
/// worker count) and not the cancel token — plus the design's name,
/// clock root, and every sink's coordinate/capacitance bit pattern.
/// `Debug` formatting of f64 prints the shortest round-trip form, so the
/// hash is exact, not approximate.
fn fingerprint(cts: &HierarchicalCts, design: &Design) -> u64 {
    let config = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
        cts.constraints,
        cts.tech,
        cts.lib,
        cts.topology,
        cts.estimator,
        cts.use_sa,
        cts.level_skew_fraction,
        cts.cluster_latency_slack_ps,
        cts.sizing_slack,
        cts.equalize_sizing,
        cts.sizing_window_fraction,
        cts.partition_restarts,
        cts.sa_chains,
        cts.partition_warm_mcf,
        cts.seed,
        design.name,
        cts.recovery,
        cts.route_budget,
    );
    let mut bytes = config.into_bytes();
    bytes.extend_from_slice(&design.clock_root.x.to_bits().to_le_bytes());
    bytes.extend_from_slice(&design.clock_root.y.to_bits().to_le_bytes());
    for s in &design.sinks {
        bytes.extend_from_slice(&s.pos.x.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.pos.y.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.cap_ff.to_bits().to_le_bytes());
    }
    sllt_obs::fnv1a64(&bytes)
}

// ---------------------------------------------------------------------
// Schema 1 (legacy JSONL) encoding
// ---------------------------------------------------------------------

/// One level node as the compact array `[x, y, cap, lo, hi, kind, idx]`
/// (kind 0 = design sink, 1 = built cluster). All five floats round-trip
/// bit-exactly through the obs JSON number encoding.
fn node_value(n: &LevelNode) -> Value {
    let (kind, idx) = match n.source {
        NodeSource::DesignSink(i) => (0u64, i as u64),
        NodeSource::Cluster(i) => (1u64, i as u64),
    };
    Value::Arr(vec![
        n.pos.x.into(),
        n.pos.y.into(),
        n.cap_ff.into(),
        n.interval_ps.0.into(),
        n.interval_ps.1.into(),
        kind.into(),
        idx.into(),
    ])
}

fn node_from_value(v: &Value) -> Result<LevelNode, String> {
    let items = v.as_arr().ok_or("node is not an array")?;
    if items.len() != 7 {
        return Err(format!("node has {} fields, expected 7", items.len()));
    }
    let f = |i: usize| {
        items[i]
            .as_f64()
            .ok_or(format!("node field {i} not a number"))
    };
    let kind = items[5].as_u64().ok_or("node kind not an integer")?;
    let idx = items[6].as_u64().ok_or("node index not an integer")? as usize;
    let source = match kind {
        0 => NodeSource::DesignSink(idx),
        1 => NodeSource::Cluster(idx),
        other => return Err(format!("unknown node kind {other}")),
    };
    Ok(LevelNode {
        pos: Point::new(f(0)?, f(1)?),
        cap_ff: f(2)?,
        interval_ps: (f(3)?, f(4)?),
        source,
    })
}

/// One built cluster: sizing outcome, driver position, members, and the
/// routed tree in v1 text form (the exact-round-trip on-disk format).
fn cluster_value(c: &BuiltCluster) -> Result<Value, CtsError> {
    let mut text = Vec::new();
    sllt_tree::io::write_tree(&c.tree, &mut text)
        .map_err(|e| io_err("serializing cluster tree", e))?;
    let text = String::from_utf8(text).map_err(|e| io_err("cluster tree text is not UTF-8", e))?;
    Ok(Value::obj()
        .with("cell", c.cell as u64)
        .with("pads", c.pads as u64)
        .with("x", c.driver_pos.x)
        .with("y", c.driver_pos.y)
        .with(
            "members",
            Value::Arr(c.members.iter().map(node_value).collect()),
        )
        .with("tree", text))
}

fn cluster_from_value(v: &Value) -> Result<BuiltCluster, String> {
    let int = |k: &str| {
        v.get(k)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("cluster missing {k}"))
    };
    let num = |k: &str| {
        v.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("cluster missing {k}"))
    };
    let members = v
        .get("members")
        .and_then(Value::as_arr)
        .ok_or("cluster missing members")?
        .iter()
        .map(node_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let text = v
        .get("tree")
        .and_then(Value::as_str)
        .ok_or("cluster missing tree")?;
    let tree =
        sllt_tree::io::read_tree(&mut text.as_bytes()).map_err(|e| format!("cluster tree: {e}"))?;
    Ok(BuiltCluster {
        tree,
        members,
        cell: int("cell")?,
        pads: int("pads")?,
        driver_pos: Point::new(num("x")?, num("y")?),
    })
}

// ---------------------------------------------------------------------
// Schema 2 (binary frame) encoding
// ---------------------------------------------------------------------

/// Magic prefix of a schema-2 level payload inside its journal frame.
const LEVEL_MAGIC: &[u8; 4] = b"CKL2";

/// Node head byte: bits 0–4 flag which of the five floats (x, y, cap,
/// lo, hi) is an exact integer stored as a zigzag varint instead of raw
/// bits; bit 5 is the source kind (set = cluster); bit 6 flags that the
/// position is elided because it bit-equals the driver position of the
/// same-record cluster the node came from (verified at encode time).
const NODE_KIND_CLUSTER: u8 = 1 << 5;
const NODE_POS_FROM_CLUSTER: u8 = 1 << 6;
const NODE_HEAD_RESERVED: u8 = 0b1000_0000;

/// Member tag bytes: a member is normally a *reference* to a node of
/// the previous level (those are stored once, in the previous record),
/// falling back to an inline node if the bit-exact invariant ever
/// breaks.
const MEMBER_REF_SINK: u8 = 0;
const MEMBER_REF_CLUSTER: u8 = 1;
const MEMBER_INLINE: u8 = 2;

/// Cluster flags byte: bit 0 flags that the driver position is elided
/// because it bit-equals the tree's source position (verified at
/// encode time — it always does for trees routed by this flow).
const CLUSTER_POS_FROM_TREE: u8 = 1;

/// Minimum encoded size of one inline node: head byte, up to five
/// 1-byte zigzag varints (two elidable), 1-byte index.
const NODE_MIN_BYTES: usize = 5;

/// Minimum encoded size of one member: tag byte + 1-byte index.
const MEMBER_MIN_BYTES: usize = 2;

/// Key uniquely identifying a level node within its level: the source
/// is unique (one node per design sink / per built cluster).
type SourceKey = (u8, u64);

fn source_key(n: &LevelNode) -> SourceKey {
    match n.source {
        NodeSource::DesignSink(i) => (0, i as u64),
        NodeSource::Cluster(i) => (1, i as u64),
    }
}

/// Map from source key to the full node, for member-by-reference
/// encoding against the previous level's node list.
type NodeMap = std::collections::HashMap<SourceKey, LevelNode>;

fn node_map(nodes: &[LevelNode]) -> NodeMap {
    nodes.iter().map(|n| (source_key(n), *n)).collect()
}

/// The level-0 node list is derived, not stored: one node per design
/// sink with zero accumulated delay (mirrors the flow's seeding).
pub(crate) fn seed_nodes(design: &Design) -> Vec<LevelNode> {
    design
        .sinks
        .iter()
        .enumerate()
        .map(|(i, s)| LevelNode {
            pos: s.pos,
            cap_ff: s.cap_ff,
            interval_ps: (0.0, 0.0),
            source: NodeSource::DesignSink(i),
        })
        .collect()
}

fn nodes_bit_equal(a: &LevelNode, b: &LevelNode) -> bool {
    a.pos.x.to_bits() == b.pos.x.to_bits()
        && a.pos.y.to_bits() == b.pos.y.to_bits()
        && a.cap_ff.to_bits() == b.cap_ff.to_bits()
        && a.interval_ps.0.to_bits() == b.interval_ps.0.to_bits()
        && a.interval_ps.1.to_bits() == b.interval_ps.1.to_bits()
        && source_key(a) == source_key(b)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn put_zigzag(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, (v.wrapping_shl(1) ^ (v >> 63)) as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// `Some(i)` when `v` is an integer whose f64 form is bit-identical to
/// `v` — the value round-trips through a zigzag varint exactly.
fn as_exact_int(v: f64) -> Option<i64> {
    if !v.is_finite() {
        return None;
    }
    let t = v as i64;
    if (t as f64).to_bits() == v.to_bits() {
        Some(t)
    } else {
        None
    }
}

/// Encodes one node. `clusters` are the clusters built in the *same*
/// record: a cluster-sourced node whose position bit-equals its
/// cluster's driver position elides the 16 position bytes (flagged via
/// [`NODE_POS_FROM_CLUSTER`]). Pass an empty slice where that context
/// does not exist (inline members resolve against the previous level).
fn put_node(buf: &mut Vec<u8>, n: &LevelNode, clusters: &[BuiltCluster]) {
    let floats = [n.pos.x, n.pos.y, n.cap_ff, n.interval_ps.0, n.interval_ps.1];
    let (kind, idx) = match n.source {
        NodeSource::DesignSink(i) => (0u8, i as u64),
        NodeSource::Cluster(i) => (NODE_KIND_CLUSTER, i as u64),
    };
    let pos_from_cluster = kind == NODE_KIND_CLUSTER
        && clusters.get(idx as usize).is_some_and(|c| {
            c.driver_pos.x.to_bits() == n.pos.x.to_bits()
                && c.driver_pos.y.to_bits() == n.pos.y.to_bits()
        });
    let skip = if pos_from_cluster { 2 } else { 0 };
    let mut head = if pos_from_cluster {
        NODE_POS_FROM_CLUSTER
    } else {
        0
    };
    for (i, f) in floats.iter().enumerate().skip(skip) {
        if as_exact_int(*f).is_some() {
            head |= 1 << i;
        }
    }
    buf.push(head | kind);
    for (i, f) in floats.iter().enumerate().skip(skip) {
        match (head >> i) & 1 {
            1 => put_zigzag(buf, as_exact_int(*f).unwrap()),
            _ => put_f64(buf, *f),
        }
    }
    put_varint(buf, idx);
}

/// Encodes one cluster member: by reference into the previous level's
/// node list when the bit-exact invariant holds (2–3 bytes), inline
/// otherwise.
fn put_member(buf: &mut Vec<u8>, n: &LevelNode, prev: &NodeMap) {
    let key = source_key(n);
    if prev.get(&key).is_some_and(|p| nodes_bit_equal(p, n)) {
        buf.push(if key.0 == 0 {
            MEMBER_REF_SINK
        } else {
            MEMBER_REF_CLUSTER
        });
        put_varint(buf, key.1);
        return;
    }
    buf.push(MEMBER_INLINE);
    put_node(buf, n, &[]);
}

/// Encodes one committed level as a schema-2 frame payload: report JSON
/// bytes (small, once per level), the output nodes as tagged varint/f64
/// records, and every cluster with member references and its routed
/// tree in the compact binary tree codec. `prev` is the node list that
/// *entered* this level — members resolve against it.
fn encode_level(
    report: &LevelReport,
    nodes: &[LevelNode],
    new_clusters: &[BuiltCluster],
    prev: &NodeMap,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + nodes.len() * 48 + new_clusters.len() * 160);
    out.extend_from_slice(LEVEL_MAGIC);
    put_varint(&mut out, report.level as u64);
    let rep = level_value(report).encode();
    put_varint(&mut out, rep.len() as u64);
    out.extend_from_slice(rep.as_bytes());
    put_varint(&mut out, nodes.len() as u64);
    for n in nodes {
        put_node(&mut out, n, new_clusters);
    }
    put_varint(&mut out, new_clusters.len() as u64);
    for c in new_clusters {
        let src = c.tree.source_pos();
        let pos_from_tree = src.x.to_bits() == c.driver_pos.x.to_bits()
            && src.y.to_bits() == c.driver_pos.y.to_bits();
        out.push(if pos_from_tree {
            CLUSTER_POS_FROM_TREE
        } else {
            0
        });
        put_varint(&mut out, c.cell as u64);
        put_varint(&mut out, c.pads as u64);
        if !pos_from_tree {
            put_f64(&mut out, c.driver_pos.x);
            put_f64(&mut out, c.driver_pos.y);
        }
        put_varint(&mut out, c.members.len() as u64);
        for m in &c.members {
            put_member(&mut out, m, prev);
        }
        out.extend_from_slice(&encode_tree(&c.tree));
    }
    out
}

/// Bounds-checked cursor over a schema-2 level payload.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "truncated {what} at payload offset {}: need {n} bytes, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn varint(&mut self, what: &str) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            if shift >= 63 && b > 1 {
                return Err(format!("overlong varint in {what}"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        let s = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap())))
    }

    fn zigzag(&mut self, what: &str) -> Result<i64, String> {
        let u = self.varint(what)?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// A count that claims more elements (of at least `min_bytes` each)
    /// than the payload has room for is corruption, not an allocation
    /// request.
    fn count(&mut self, what: &str, min_bytes: usize) -> Result<usize, String> {
        let n = self.varint(what)? as usize;
        if n.saturating_mul(min_bytes) > self.bytes.len() - self.pos {
            return Err(format!(
                "{what} count {n} exceeds remaining payload ({} bytes)",
                self.bytes.len() - self.pos
            ));
        }
        Ok(n)
    }

    /// Decodes one node. When [`NODE_POS_FROM_CLUSTER`] is flagged the
    /// position bytes are absent — the returned `bool` asks the caller
    /// to copy the position from the node's same-record cluster once
    /// clusters are decoded.
    fn node(&mut self) -> Result<(LevelNode, bool), String> {
        let head = self.u8("node head")?;
        if head & NODE_HEAD_RESERVED != 0 {
            return Err(format!("reserved node head bits set ({head:#04x})"));
        }
        let pos_pending = head & NODE_POS_FROM_CLUSTER != 0;
        if pos_pending && (head & NODE_KIND_CLUSTER == 0 || head & 0b11 != 0) {
            return Err(format!(
                "node head {head:#04x} elides the position but is not a plain cluster node"
            ));
        }
        let skip = if pos_pending { 2 } else { 0 };
        let mut floats = [0.0f64; 5];
        for (i, f) in floats.iter_mut().enumerate().skip(skip) {
            *f = if (head >> i) & 1 == 1 {
                self.zigzag("node int value")? as f64
            } else {
                self.f64("node value")?
            };
        }
        let idx = self.varint("node index")? as usize;
        let source = if head & NODE_KIND_CLUSTER != 0 {
            NodeSource::Cluster(idx)
        } else {
            NodeSource::DesignSink(idx)
        };
        let node = LevelNode {
            pos: Point::new(floats[0], floats[1]),
            cap_ff: floats[2],
            interval_ps: (floats[3], floats[4]),
            source,
        };
        Ok((node, pos_pending))
    }

    fn member(&mut self, prev: &NodeMap) -> Result<LevelNode, String> {
        let tag = self.u8("member tag")?;
        match tag {
            MEMBER_REF_SINK | MEMBER_REF_CLUSTER => {
                let idx = self.varint("member index")?;
                let key = (tag, idx);
                prev.get(&key).copied().ok_or_else(|| {
                    format!(
                        "member references {} {idx} absent from the previous level",
                        if tag == MEMBER_REF_SINK {
                            "design sink"
                        } else {
                            "cluster"
                        }
                    )
                })
            }
            MEMBER_INLINE => {
                let (node, pos_pending) = self.node()?;
                if pos_pending {
                    return Err("inline member elides its position".to_string());
                }
                Ok(node)
            }
            other => Err(format!("unknown member tag {other}")),
        }
    }
}

type DecodedLevel = (usize, LevelReport, Vec<LevelNode>, Vec<BuiltCluster>);

/// Decodes one schema-2 level payload back to the flow state it sealed.
/// `prev` maps source keys of the node list that entered this level —
/// member references resolve through it.
fn decode_level(payload: &[u8], prev: &NodeMap) -> Result<DecodedLevel, String> {
    let mut cur = Cur {
        bytes: payload,
        pos: 0,
    };
    if cur.take(4, "level magic")? != LEVEL_MAGIC {
        return Err("frame payload is not a CKL2 level record".to_string());
    }
    let level = cur.varint("level index")? as usize;
    let rep_len = cur.count("report", 1)?;
    let rep_bytes = cur.take(rep_len, "report JSON")?;
    let rep_str =
        std::str::from_utf8(rep_bytes).map_err(|_| "report JSON is not UTF-8".to_string())?;
    let rep_value = sllt_obs::json::parse(rep_str).map_err(|e| format!("report JSON: {e}"))?;
    let report = level_report_from_value(&rep_value)?;
    let n_nodes = cur.count("nodes", NODE_MIN_BYTES)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut pos_pending = Vec::new();
    for i in 0..n_nodes {
        let (node, pending) = cur.node()?;
        if pending {
            pos_pending.push(i);
        }
        nodes.push(node);
    }
    let n_clusters = cur.count("clusters", NODE_MIN_BYTES)?;
    let mut clusters = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let flags = cur.u8("cluster flags")?;
        if flags & !CLUSTER_POS_FROM_TREE != 0 {
            return Err(format!("reserved cluster flag bits set ({flags:#04x})"));
        }
        let cell = cur.varint("cluster cell")? as usize;
        let pads = cur.varint("cluster pads")? as usize;
        let explicit_pos = if flags & CLUSTER_POS_FROM_TREE == 0 {
            let x = cur.f64("cluster driver x")?;
            let y = cur.f64("cluster driver y")?;
            Some(Point::new(x, y))
        } else {
            None
        };
        let n_members = cur.count("members", MEMBER_MIN_BYTES)?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(cur.member(prev)?);
        }
        let (tree, consumed) = decode_tree_prefix(&payload[cur.pos..])
            .map_err(|e| format!("cluster tree at payload offset {}: {e}", cur.pos))?;
        cur.pos += consumed;
        let driver_pos = explicit_pos.unwrap_or_else(|| tree.source_pos());
        clusters.push(BuiltCluster {
            tree,
            members,
            cell,
            pads,
            driver_pos,
        });
    }
    if cur.pos != payload.len() {
        return Err(format!(
            "{} unread bytes after level record",
            payload.len() - cur.pos
        ));
    }
    for i in pos_pending {
        let idx = match nodes[i].source {
            NodeSource::Cluster(idx) => idx,
            NodeSource::DesignSink(_) => unreachable!("validated during node decode"),
        };
        let cluster = clusters
            .get(idx)
            .ok_or_else(|| format!("node {i} elides its position via absent cluster {idx}"))?;
        nodes[i].pos = cluster.driver_pos;
    }
    Ok((level, report, nodes, clusters))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Appends sealed level records to a checkpoint journal. Created (or
/// reopened) by the flow; one [`append_level`](Self::append_level) per
/// committed level, each a single durable write.
pub(crate) struct CheckpointWriter {
    app: DurableAppender,
    schema: u64,
    /// Source-keyed view of the node list entering the next level, for
    /// member-by-reference encoding (schema 2 only).
    prev: NodeMap,
}

impl CheckpointWriter {
    /// Starts a fresh journal (truncating any existing file) in the
    /// current schema and writes the fingerprinted meta record.
    pub(crate) fn create(
        path: &Path,
        cts: &HierarchicalCts,
        design: &Design,
    ) -> Result<CheckpointWriter, CtsError> {
        Self::create_with_schema(path, cts, design, CHECKPOINT_SCHEMA)
    }

    /// [`create`](Self::create) at an explicit schema version — the
    /// legacy writer stays alive for migration round-trip tests.
    pub(crate) fn create_with_schema(
        path: &Path,
        cts: &HierarchicalCts,
        design: &Design,
        schema: u64,
    ) -> Result<CheckpointWriter, CtsError> {
        assert!(
            schema == CHECKPOINT_SCHEMA || schema == LEGACY_CHECKPOINT_SCHEMA,
            "unknown checkpoint schema {schema}"
        );
        let mut app = DurableAppender::create_with(cts.vfs.as_ref(), path)
            .map_err(|e| io_err("creating checkpoint journal", e))?;
        let meta = Value::obj()
            .with("type", "sllt-ckpt")
            .with("schema", schema)
            .with("design", design.name.as_str())
            .with("sinks", design.sinks.len() as u64)
            .with("fingerprint", format!("{:016x}", fingerprint(cts, design)));
        app.append(&meta)
            .map_err(|e| io_err("writing checkpoint meta", e))?;
        Ok(CheckpointWriter {
            app,
            schema,
            prev: node_map(&seed_nodes(design)),
        })
    }

    /// Reopens an existing journal for appending, truncating to the
    /// intact prefix `valid_len` first (discarding any torn tail). The
    /// writer continues in the journal's own `schema`, so resuming an
    /// old text checkpoint never mixes formats in one file.
    /// `entering_nodes` is the restored node list the next committed
    /// level will consume (member references resolve against it).
    pub(crate) fn reopen(
        vfs: &dyn Vfs,
        path: &Path,
        valid_len: u64,
        schema: u64,
        entering_nodes: &[LevelNode],
    ) -> Result<CheckpointWriter, CtsError> {
        let app = DurableAppender::reopen_with(vfs, path, valid_len)
            .map_err(|e| io_err("reopening checkpoint journal", e))?;
        Ok(CheckpointWriter {
            app,
            schema,
            prev: node_map(entering_nodes),
        })
    }

    /// Seals one committed level: its report, the next level's nodes,
    /// and the clusters built at this level (appended to the arena by
    /// the caller just before this call).
    pub(crate) fn append_level(
        &mut self,
        report: &LevelReport,
        nodes: &[LevelNode],
        new_clusters: &[BuiltCluster],
    ) -> Result<(), CtsError> {
        if self.schema == CHECKPOINT_SCHEMA {
            let payload = encode_level(report, nodes, new_clusters, &self.prev);
            self.prev = node_map(nodes);
            return self
                .app
                .append_binary(&payload)
                .map_err(|e| io_err("appending level checkpoint frame", e));
        }
        let clusters = new_clusters
            .iter()
            .map(cluster_value)
            .collect::<Result<Vec<_>, _>>()?;
        let record = Value::obj()
            .with("type", "level")
            .with("level", report.level as u64)
            .with("report", level_value(report))
            .with("nodes", Value::Arr(nodes.iter().map(node_value).collect()))
            .with("clusters", Value::Arr(clusters));
        self.app
            .append(&record)
            .map_err(|e| io_err("appending level checkpoint", e))
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// A loaded checkpoint: everything the flow needs to continue from the
/// last committed level.
pub struct Checkpoint {
    pub(crate) reports: Vec<LevelReport>,
    pub(crate) clusters: Vec<BuiltCluster>,
    pub(crate) nodes: Vec<LevelNode>,
    /// Per-level output nodes and new-cluster counts, retained so a
    /// loaded checkpoint can be re-emitted level by level (migration).
    level_nodes: Vec<Vec<LevelNode>>,
    cluster_counts: Vec<usize>,
    pub(crate) schema: u64,
    pub(crate) valid_len: u64,
    torn: Option<String>,
}

impl Checkpoint {
    /// Reads and validates a checkpoint journal against the flow
    /// configuration and design that will resume from it. Both the
    /// current binary schema and the legacy text schema load here.
    ///
    /// Tolerates (and reports through [`torn`](Self::torn)) a torn
    /// final record — the shape a kill mid-append leaves. Everything
    /// else is strict: a checksum failure on an interior record, a
    /// schema or fingerprint mismatch, or a gap in the level sequence
    /// is [`CtsError::Checkpoint`].
    pub fn load(
        path: &Path,
        cts: &HierarchicalCts,
        design: &Design,
    ) -> Result<Checkpoint, CtsError> {
        let bytes = cts
            .vfs
            .read(path)
            .map_err(|e| io_err("reading checkpoint journal", e))?;
        let journal =
            read_journal_bytes(&bytes).map_err(|e| io_err("reading checkpoint journal", e))?;
        let mut records = journal.records.iter();
        let meta = records.next().ok_or_else(|| {
            ckpt_err("checkpoint journal has no meta record (empty or fully torn file)")
        })?;
        if meta.get("type").and_then(Value::as_str) != Some("sllt-ckpt") {
            return Err(ckpt_err("first record is not a checkpoint meta record"));
        }
        if journal.frames.first().is_some_and(|f| f.after_record == 0) {
            return Err(ckpt_err("binary frame precedes the checkpoint meta record"));
        }
        let schema = match meta.get("schema").and_then(Value::as_u64) {
            Some(s) if s == CHECKPOINT_SCHEMA || s == LEGACY_CHECKPOINT_SCHEMA => s,
            other => {
                return Err(ckpt_err(format!(
                    "unsupported checkpoint schema {other:?} \
                     (supported: {LEGACY_CHECKPOINT_SCHEMA}, {CHECKPOINT_SCHEMA})"
                )))
            }
        };
        let expect = format!("{:016x}", fingerprint(cts, design));
        let found = meta
            .get("fingerprint")
            .and_then(Value::as_str)
            .unwrap_or("");
        if found != expect {
            return Err(ckpt_err(format!(
                "checkpoint fingerprint {found} does not match this configuration/design \
                 ({expect}): resume would not reproduce the original run"
            )));
        }

        let mut out = Checkpoint {
            reports: Vec::new(),
            clusters: Vec::new(),
            nodes: Vec::new(),
            level_nodes: Vec::new(),
            cluster_counts: Vec::new(),
            schema,
            valid_len: journal.valid_len,
            torn: journal.torn_tail.map(|t| t.reason),
        };

        if schema == LEGACY_CHECKPOINT_SCHEMA {
            if !journal.frames.is_empty() {
                return Err(ckpt_err(
                    "schema-1 checkpoint contains binary frames (journal was mixed or corrupted)",
                ));
            }
            for (i, rec) in records.enumerate() {
                let at = |msg: String| ckpt_err(format!("level record {i}: {msg}"));
                if rec.get("type").and_then(Value::as_str) != Some("level") {
                    return Err(at("unexpected record type".into()));
                }
                let level =
                    rec.get("level")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| at("missing level".into()))? as usize;
                let report = rec
                    .get("report")
                    .ok_or_else(|| at("missing report".into()))
                    .and_then(|v| level_report_from_value(v).map_err(at))?;
                let nodes = rec
                    .get("nodes")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| at("missing nodes".into()))?
                    .iter()
                    .map(node_from_value)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
                let new_clusters = rec
                    .get("clusters")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| at("missing clusters".into()))?
                    .iter()
                    .map(cluster_from_value)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(at)?;
                out.push_level(i, level, report, nodes, new_clusters)?;
            }
        } else {
            if records.next().is_some() {
                return Err(ckpt_err(
                    "binary checkpoint contains extra JSON records after the meta",
                ));
            }
            let mut prev = node_map(&seed_nodes(design));
            for (i, frame) in journal.frames.iter().enumerate() {
                let at = |msg: String| ckpt_err(format!("level frame {i}: {msg}"));
                let (level, report, nodes, new_clusters) =
                    decode_level(&frame.payload, &prev).map_err(at)?;
                prev = node_map(&nodes);
                out.push_level(i, level, report, nodes, new_clusters)?;
            }
        }

        // Arena integrity: every cluster-sourced node must resolve.
        let arena = out.clusters.len();
        let check = |n: &LevelNode| match n.source {
            NodeSource::Cluster(i) if i >= arena => Err(ckpt_err(format!(
                "node references cluster {i} outside the arena of {arena}"
            ))),
            NodeSource::DesignSink(i) if i >= design.sinks.len() => Err(ckpt_err(format!(
                "node references design sink {i} outside the design's {}",
                design.sinks.len()
            ))),
            _ => Ok(()),
        };
        for n in out
            .nodes
            .iter()
            .chain(out.clusters.iter().flat_map(|c| c.members.iter()))
        {
            check(n)?;
        }
        Ok(out)
    }

    /// Appends one decoded level, enforcing the dense level sequence and
    /// non-empty shape both schemas share.
    fn push_level(
        &mut self,
        i: usize,
        level: usize,
        report: LevelReport,
        nodes: Vec<LevelNode>,
        new_clusters: Vec<BuiltCluster>,
    ) -> Result<(), CtsError> {
        let at = |msg: String| ckpt_err(format!("level record {i}: {msg}"));
        if level != i {
            return Err(at(format!("level {level} out of sequence (expected {i})")));
        }
        if nodes.is_empty() {
            return Err(at("level has no output nodes".into()));
        }
        if new_clusters.len() != nodes.len() {
            return Err(at(format!(
                "{} clusters but {} output nodes",
                new_clusters.len(),
                nodes.len()
            )));
        }
        self.reports.push(report);
        self.cluster_counts.push(new_clusters.len());
        self.clusters.extend(new_clusters);
        self.level_nodes.push(nodes.clone());
        self.nodes = nodes;
        Ok(())
    }

    /// Number of committed levels in the journal (0 = only the meta
    /// record survived; resume restarts from the design sinks).
    pub fn levels(&self) -> usize {
        self.reports.len()
    }

    /// The committed level reports, bottom-up.
    pub fn reports(&self) -> &[LevelReport] {
        &self.reports
    }

    /// On-disk schema version the journal was written with.
    pub fn schema(&self) -> u64 {
        self.schema
    }

    /// Why the final record was discarded, when the journal ended in a
    /// torn (partially written) line.
    pub fn torn(&self) -> Option<&str> {
        self.torn.as_deref()
    }

    /// Byte length of the journal's intact prefix — where a resuming
    /// writer continues appending.
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }
}

/// Converts a checkpoint journal at `src` (either schema) into a fresh
/// current-schema journal at `dst`, re-encoding every committed level.
/// The rewritten journal loads to bit-identical flow state — resuming
/// from it reproduces exactly the tree the original would have.
///
/// Returns `(src_len, dst_len)` in bytes, so callers can report the
/// compression (binary journals are typically ≥5× smaller than text).
///
/// # Errors
///
/// [`CtsError::Checkpoint`] when `src` does not load against this
/// (config, design) pair, or when writing `dst` fails.
pub fn migrate_checkpoint(
    src: &Path,
    dst: &Path,
    cts: &HierarchicalCts,
    design: &Design,
) -> Result<(u64, u64), CtsError> {
    let ckpt = Checkpoint::load(src, cts, design)?;
    let mut writer = CheckpointWriter::create(dst, cts, design)?;
    let mut start = 0usize;
    for (i, report) in ckpt.reports.iter().enumerate() {
        let n = ckpt.cluster_counts[i];
        writer.append_level(
            report,
            &ckpt.level_nodes[i],
            &ckpt.clusters[start..start + n],
        )?;
        start += n;
    }
    let len = |p: &Path| {
        std::fs::metadata(p)
            .map(|m| m.len())
            .map_err(|e| io_err("sizing checkpoint journal", e))
    };
    Ok((len(src)?, len(dst)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_tree::ClockTree;

    fn node(x: f64, kind_cluster: bool, idx: usize) -> LevelNode {
        LevelNode {
            pos: Point::new(x, 0.1 + x / 3.0),
            cap_ff: 1.5 + x,
            interval_ps: (x * 0.25, x * 0.5 + 1e-7),
            source: if kind_cluster {
                NodeSource::Cluster(idx)
            } else {
                NodeSource::DesignSink(idx)
            },
        }
    }

    #[test]
    fn node_encoding_round_trips_bit_exactly() {
        for n in [
            node(0.0, false, 0),
            node(17.3, true, 5),
            node(1e-9, false, 3),
        ] {
            let back = node_from_value(&node_value(&n)).unwrap();
            assert_eq!(back.pos.x.to_bits(), n.pos.x.to_bits());
            assert_eq!(back.pos.y.to_bits(), n.pos.y.to_bits());
            assert_eq!(back.cap_ff.to_bits(), n.cap_ff.to_bits());
            assert_eq!(back.interval_ps.0.to_bits(), n.interval_ps.0.to_bits());
            assert_eq!(back.interval_ps.1.to_bits(), n.interval_ps.1.to_bits());
            match (back.source, n.source) {
                (NodeSource::DesignSink(a), NodeSource::DesignSink(b)) => assert_eq!(a, b),
                (NodeSource::Cluster(a), NodeSource::Cluster(b)) => assert_eq!(a, b),
                other => panic!("source kind flipped: {other:?}"),
            }
        }
        // Malformed nodes are rejected, not defaulted.
        assert!(node_from_value(&Value::Arr(vec![1.0.into()])).is_err());
        let mut bad: Vec<Value> = (0..7).map(|i| Value::from(i as f64)).collect();
        bad[5] = 9u64.into();
        assert!(node_from_value(&Value::Arr(bad)).is_err());
    }

    #[test]
    fn binary_node_encoding_round_trips_bit_exactly() {
        for n in [
            node(0.0, false, 0),
            node(17.3, true, 5),
            node(1e-9, false, usize::MAX >> 1),
            node(-3.25, true, 127),
        ] {
            let mut buf = Vec::new();
            put_node(&mut buf, &n, &[]);
            let mut cur = Cur {
                bytes: &buf,
                pos: 0,
            };
            let (back, pos_pending) = cur.node().unwrap();
            assert!(!pos_pending);
            assert_eq!(cur.pos, buf.len());
            assert_eq!(back.pos.x.to_bits(), n.pos.x.to_bits());
            assert_eq!(back.pos.y.to_bits(), n.pos.y.to_bits());
            assert_eq!(back.cap_ff.to_bits(), n.cap_ff.to_bits());
            assert_eq!(back.interval_ps.0.to_bits(), n.interval_ps.0.to_bits());
            assert_eq!(back.interval_ps.1.to_bits(), n.interval_ps.1.to_bits());
        }
    }

    #[test]
    fn cluster_encoding_round_trips_through_tree_text() {
        let mut tree = ClockTree::new(Point::new(5.0, 5.0));
        let root = tree.root();
        tree.add_sink(root, Point::new(1.0, 2.0), 1.25);
        let c = BuiltCluster {
            tree,
            members: vec![node(1.0, false, 0)],
            cell: 3,
            pads: 2,
            driver_pos: Point::new(5.0, 5.0),
        };
        let v = cluster_value(&c).unwrap();
        let back = cluster_from_value(&v).unwrap();
        assert_eq!(back.cell, 3);
        assert_eq!(back.pads, 2);
        assert_eq!(back.driver_pos, c.driver_pos);
        assert_eq!(back.members.len(), 1);
        assert_eq!(back.tree.len(), c.tree.len());
        assert_eq!(back.tree.wirelength(), c.tree.wirelength());
        // The embedded tree text survives JSONL encoding (newlines are
        // escaped inside the JSON string).
        let line = v.encode();
        assert!(!line.contains('\n'));
        let reparsed = sllt_obs::json::parse(&line).unwrap();
        assert!(cluster_from_value(&reparsed).is_ok());
    }

    fn sample_level(n_clusters: usize) -> (LevelReport, Vec<LevelNode>, Vec<BuiltCluster>) {
        let mut nodes = Vec::new();
        let mut clusters = Vec::new();
        for i in 0..n_clusters {
            nodes.push(node(i as f64 * 1.7, true, i));
            let mut tree = ClockTree::new(Point::new(i as f64, 5.0));
            let root = tree.root();
            let s = tree.add_steiner(root, Point::new(i as f64 + 1.0, 5.5));
            tree.add_sink(s, Point::new(i as f64 + 2.0, 6.25), 1.25);
            tree.add_sink(s, Point::new(i as f64 + 1.5, 4.0), 0.8);
            clusters.push(BuiltCluster {
                tree,
                members: vec![
                    node(i as f64, false, 2 * i),
                    node(i as f64 + 0.3, false, 2 * i + 1),
                ],
                cell: i % 4,
                pads: i % 3,
                driver_pos: Point::new(i as f64, 5.0),
            });
        }
        let report = LevelReport {
            level: 0,
            num_nodes: 2 * n_clusters,
            num_clusters: n_clusters,
            workers: 1,
            timings: crate::report::StageTimings::default(),
            wirelength_um: 12.5,
            load_cap_ff: 3.25,
            driver_input_cap_ff: 1.5,
            driver_area_um2: 7.0,
            pads: 1,
            delay_spread_ps: 0.75,
            attempts: 1,
            downgrades: Vec::new(),
        };
        (report, nodes, clusters)
    }

    #[test]
    fn binary_level_record_round_trips_bit_exactly() {
        let (report, nodes, clusters) = sample_level(5);
        // Empty prev map: every member encodes inline.
        let payload = encode_level(&report, &nodes, &clusters, &NodeMap::new());
        let (level, rep, back_nodes, back_clusters) =
            decode_level(&payload, &NodeMap::new()).unwrap();
        assert_eq!(level, 0);
        assert_eq!(rep.level, report.level);
        assert_eq!(back_nodes.len(), nodes.len());
        for (a, b) in back_nodes.iter().zip(&nodes) {
            assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
            assert_eq!(a.interval_ps.1.to_bits(), b.interval_ps.1.to_bits());
        }
        for (a, b) in back_clusters.iter().zip(&clusters) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.pads, b.pads);
            assert_eq!(a.driver_pos.x.to_bits(), b.driver_pos.x.to_bits());
            assert_eq!(a.members.len(), b.members.len());
            // Canonical text form is byte-identical => per-node bit-exact.
            let text = |t: &ClockTree| {
                let mut buf = Vec::new();
                sllt_tree::io::write_tree(t, &mut buf).unwrap();
                buf
            };
            assert_eq!(text(&a.tree), text(&b.tree));
        }
    }

    #[test]
    fn member_references_resolve_and_shrink_the_record() {
        let (report, nodes, clusters) = sample_level(4);
        let members: Vec<LevelNode> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        let prev = node_map(&members);
        let by_ref = encode_level(&report, &nodes, &clusters, &prev);
        let inline = encode_level(&report, &nodes, &clusters, &NodeMap::new());
        assert!(
            by_ref.len() + 30 * members.len() < inline.len(),
            "references must save ~40 bytes per member ({} vs {})",
            by_ref.len(),
            inline.len()
        );
        let (_, _, _, back) = decode_level(&by_ref, &prev).unwrap();
        for (a, b) in back.iter().zip(&clusters) {
            for (ma, mb) in a.members.iter().zip(&b.members) {
                assert!(nodes_bit_equal(ma, mb));
            }
        }
        // A dangling reference is an error, not a default.
        assert!(decode_level(&by_ref, &NodeMap::new()).is_err());
    }

    #[test]
    fn corrupt_binary_level_records_error_not_panic() {
        let (report, nodes, clusters) = sample_level(2);
        let prev = NodeMap::new();
        let payload = encode_level(&report, &nodes, &clusters, &prev);
        assert!(decode_level(b"nope", &prev).is_err());
        assert!(decode_level(&payload[..payload.len() - 1], &prev).is_err());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_level(&trailing, &prev).is_err());
        for cut in (0..payload.len()).step_by(7) {
            let _ = decode_level(&payload[..cut], &prev);
        }
        // Flipped bytes must error or decode, never panic. (Most flips
        // land in raw f64 coordinates and still decode — fine; the
        // journal frame checksum guards integrity above this layer.)
        for i in (0..payload.len()).step_by(3) {
            let mut bad = payload.clone();
            bad[i] ^= 0xA5;
            let _ = decode_level(&bad, &prev);
        }
    }

    #[test]
    fn legacy_text_checkpoint_migrates_to_smaller_binary_with_identical_resume() {
        use sllt_geom::Rect;
        let sinks: Vec<sllt_tree::Sink> = (0..192)
            .map(|i| {
                sllt_tree::Sink::new(
                    Point::new((i % 12) as f64 * 15.0, (i / 12) as f64 * 15.0),
                    1.0 + (i % 3) as f64 * 0.4,
                )
            })
            .collect();
        let design = Design {
            name: "ckptmig".into(),
            num_instances: 192,
            utilization: 0.5,
            die: Rect::new(Point::ORIGIN, Point::new(200.0, 250.0)),
            clock_root: Point::ORIGIN,
            sinks,
        };
        let cts = HierarchicalCts {
            workers: 1,
            ..HierarchicalCts::default()
        };
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let bin_path = dir.join(format!("sllt_ckpt_bin_{pid}.jsonl"));
        let reference = cts.run_checkpointed(&design, &bin_path).unwrap();
        let ckpt = Checkpoint::load(&bin_path, &cts, &design).unwrap();
        assert_eq!(ckpt.schema(), CHECKPOINT_SCHEMA);
        assert!(ckpt.levels() >= 2, "expected a multi-level run");

        // Re-emit the same committed state as a legacy text journal.
        let text_path = dir.join(format!("sllt_ckpt_txt_{pid}.jsonl"));
        let mut w = CheckpointWriter::create_with_schema(
            &text_path,
            &cts,
            &design,
            LEGACY_CHECKPOINT_SCHEMA,
        )
        .unwrap();
        let mut start = 0usize;
        for (i, r) in ckpt.reports.iter().enumerate() {
            let n = ckpt.cluster_counts[i];
            w.append_level(r, &ckpt.level_nodes[i], &ckpt.clusters[start..start + n])
                .unwrap();
            start += n;
        }
        drop(w);
        let legacy = Checkpoint::load(&text_path, &cts, &design).unwrap();
        assert_eq!(legacy.schema(), LEGACY_CHECKPOINT_SCHEMA);
        assert_eq!(legacy.levels(), ckpt.levels());
        // Old text checkpoints still resume, bit-identically.
        assert_eq!(cts.resume(&design, &text_path).unwrap(), reference);

        // Migrate text -> binary: the binary journal is >=5x smaller and
        // resumes to the same tree.
        let mig_path = dir.join(format!("sllt_ckpt_mig_{pid}.jsonl"));
        let (src_len, dst_len) = migrate_checkpoint(&text_path, &mig_path, &cts, &design).unwrap();
        assert!(
            dst_len * 5 <= src_len,
            "binary checkpoint {dst_len} B is not 5x smaller than text {src_len} B"
        );
        assert_eq!(cts.resume(&design, &mig_path).unwrap(), reference);
        for p in [bin_path, text_path, mig_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn fingerprint_separates_configs_but_ignores_workers() {
        let design = sllt_design::DesignSpec::by_name("s38584")
            .unwrap()
            .instantiate();
        let base = HierarchicalCts::default();
        let fp = fingerprint(&base, &design);
        let mut w4 = base.clone();
        w4.workers = 4;
        assert_eq!(fp, fingerprint(&w4, &design), "workers must not matter");
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(fp, fingerprint(&seeded, &design), "seed must matter");
        let mut relaxed = base.clone();
        relaxed.constraints.skew_ps *= 2.0;
        assert_ne!(
            fp,
            fingerprint(&relaxed, &design),
            "constraints must matter"
        );
        let other = sllt_design::DesignSpec::by_name("s35932")
            .unwrap()
            .instantiate();
        assert_ne!(fp, fingerprint(&base, &other), "design must matter");
    }
}
