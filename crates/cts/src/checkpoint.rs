//! Crash-safe level checkpoints (see `DESIGN.md`, *Durability model*).
//!
//! After each hierarchical level commits, the flow appends one sealed
//! record to an append-only journal (`sllt-obs`'s checksummed JSONL):
//! the level's [`LevelReport`], the next level's nodes, and the clusters
//! built at that level — their routed trees in the v1 tree text format,
//! embedded as JSON strings. Because the per-level RNG streams are
//! derived statelessly from the flow seed and the level index, this is
//! the *complete* inter-level state: a resumed run re-derives everything
//! else and continues bit-identically.
//!
//! Durability contract:
//!
//! * every record is written with a single `write` + `fdatasync`
//!   ([`DurableAppender`]), so a crash leaves at most one torn final
//!   record — which the reader detects (checksum + shape) and discards;
//! * the journal opens with a fingerprinted meta record binding it to
//!   the exact flow configuration and design, so a resume against the
//!   wrong config fails loudly instead of diverging silently;
//! * on resume the writer reopens at the intact prefix length,
//!   truncating any torn tail before appending.

use crate::assemble::BuiltCluster;
use crate::error::CtsError;
use crate::flow::HierarchicalCts;
use crate::report::LevelReport;
use crate::route::{LevelNode, NodeSource};
use crate::telemetry::{level_report_from_value, level_value};
use sllt_design::Design;
use sllt_geom::Point;
use sllt_obs::journal::read_journal;
use sllt_obs::{DurableAppender, Value};
use std::path::Path;

/// Journal schema version; bump on any incompatible record change.
pub const CHECKPOINT_SCHEMA: u64 = 1;

fn ckpt_err(detail: impl Into<String>) -> CtsError {
    CtsError::Checkpoint {
        detail: detail.into(),
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> CtsError {
    ckpt_err(format!("{context}: {e}"))
}

/// Binds a journal to the exact (config, design) pair that wrote it.
///
/// Hashes every flow field that influences the built tree — notably NOT
/// [`workers`](HierarchicalCts::workers) (trees are bit-identical at any
/// worker count) and not the cancel token — plus the design's name,
/// clock root, and every sink's coordinate/capacitance bit pattern.
/// `Debug` formatting of f64 prints the shortest round-trip form, so the
/// hash is exact, not approximate.
fn fingerprint(cts: &HierarchicalCts, design: &Design) -> u64 {
    let config = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{}|{}|{:?}|{:?}",
        cts.constraints,
        cts.tech,
        cts.lib,
        cts.topology,
        cts.estimator,
        cts.use_sa,
        cts.level_skew_fraction,
        cts.cluster_latency_slack_ps,
        cts.sizing_slack,
        cts.equalize_sizing,
        cts.sizing_window_fraction,
        cts.partition_restarts,
        cts.seed,
        design.name,
        cts.recovery,
        cts.route_budget,
    );
    let mut bytes = config.into_bytes();
    bytes.extend_from_slice(&design.clock_root.x.to_bits().to_le_bytes());
    bytes.extend_from_slice(&design.clock_root.y.to_bits().to_le_bytes());
    for s in &design.sinks {
        bytes.extend_from_slice(&s.pos.x.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.pos.y.to_bits().to_le_bytes());
        bytes.extend_from_slice(&s.cap_ff.to_bits().to_le_bytes());
    }
    sllt_obs::fnv1a64(&bytes)
}

/// One level node as the compact array `[x, y, cap, lo, hi, kind, idx]`
/// (kind 0 = design sink, 1 = built cluster). All five floats round-trip
/// bit-exactly through the obs JSON number encoding.
fn node_value(n: &LevelNode) -> Value {
    let (kind, idx) = match n.source {
        NodeSource::DesignSink(i) => (0u64, i as u64),
        NodeSource::Cluster(i) => (1u64, i as u64),
    };
    Value::Arr(vec![
        n.pos.x.into(),
        n.pos.y.into(),
        n.cap_ff.into(),
        n.interval_ps.0.into(),
        n.interval_ps.1.into(),
        kind.into(),
        idx.into(),
    ])
}

fn node_from_value(v: &Value) -> Result<LevelNode, String> {
    let items = v.as_arr().ok_or("node is not an array")?;
    if items.len() != 7 {
        return Err(format!("node has {} fields, expected 7", items.len()));
    }
    let f = |i: usize| {
        items[i]
            .as_f64()
            .ok_or(format!("node field {i} not a number"))
    };
    let kind = items[5].as_u64().ok_or("node kind not an integer")?;
    let idx = items[6].as_u64().ok_or("node index not an integer")? as usize;
    let source = match kind {
        0 => NodeSource::DesignSink(idx),
        1 => NodeSource::Cluster(idx),
        other => return Err(format!("unknown node kind {other}")),
    };
    Ok(LevelNode {
        pos: Point::new(f(0)?, f(1)?),
        cap_ff: f(2)?,
        interval_ps: (f(3)?, f(4)?),
        source,
    })
}

/// One built cluster: sizing outcome, driver position, members, and the
/// routed tree in v1 text form (the exact-round-trip on-disk format).
fn cluster_value(c: &BuiltCluster) -> Result<Value, CtsError> {
    let mut text = Vec::new();
    sllt_tree::io::write_tree(&c.tree, &mut text)
        .map_err(|e| io_err("serializing cluster tree", e))?;
    let text = String::from_utf8(text).map_err(|e| io_err("cluster tree text is not UTF-8", e))?;
    Ok(Value::obj()
        .with("cell", c.cell as u64)
        .with("pads", c.pads as u64)
        .with("x", c.driver_pos.x)
        .with("y", c.driver_pos.y)
        .with(
            "members",
            Value::Arr(c.members.iter().map(node_value).collect()),
        )
        .with("tree", text))
}

fn cluster_from_value(v: &Value) -> Result<BuiltCluster, String> {
    let int = |k: &str| {
        v.get(k)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("cluster missing {k}"))
    };
    let num = |k: &str| {
        v.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("cluster missing {k}"))
    };
    let members = v
        .get("members")
        .and_then(Value::as_arr)
        .ok_or("cluster missing members")?
        .iter()
        .map(node_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let text = v
        .get("tree")
        .and_then(Value::as_str)
        .ok_or("cluster missing tree")?;
    let tree =
        sllt_tree::io::read_tree(&mut text.as_bytes()).map_err(|e| format!("cluster tree: {e}"))?;
    Ok(BuiltCluster {
        tree,
        members,
        cell: int("cell")?,
        pads: int("pads")?,
        driver_pos: Point::new(num("x")?, num("y")?),
    })
}

/// Appends sealed level records to a checkpoint journal. Created (or
/// reopened) by the flow; one [`append_level`](Self::append_level) per
/// committed level, each a single durable write.
pub(crate) struct CheckpointWriter {
    app: DurableAppender,
}

impl CheckpointWriter {
    /// Starts a fresh journal (truncating any existing file) and writes
    /// the fingerprinted meta record.
    pub(crate) fn create(
        path: &Path,
        cts: &HierarchicalCts,
        design: &Design,
    ) -> Result<CheckpointWriter, CtsError> {
        let mut app =
            DurableAppender::create(path).map_err(|e| io_err("creating checkpoint journal", e))?;
        let meta = Value::obj()
            .with("type", "sllt-ckpt")
            .with("schema", CHECKPOINT_SCHEMA)
            .with("design", design.name.as_str())
            .with("sinks", design.sinks.len() as u64)
            .with("fingerprint", format!("{:016x}", fingerprint(cts, design)));
        app.append(&meta)
            .map_err(|e| io_err("writing checkpoint meta", e))?;
        Ok(CheckpointWriter { app })
    }

    /// Reopens an existing journal for appending, truncating to the
    /// intact prefix `valid_len` first (discarding any torn tail).
    pub(crate) fn reopen(path: &Path, valid_len: u64) -> Result<CheckpointWriter, CtsError> {
        let app = DurableAppender::reopen(path, valid_len)
            .map_err(|e| io_err("reopening checkpoint journal", e))?;
        Ok(CheckpointWriter { app })
    }

    /// Seals one committed level: its report, the next level's nodes,
    /// and the clusters built at this level (appended to the arena by
    /// the caller just before this call).
    pub(crate) fn append_level(
        &mut self,
        report: &LevelReport,
        nodes: &[LevelNode],
        new_clusters: &[BuiltCluster],
    ) -> Result<(), CtsError> {
        let clusters = new_clusters
            .iter()
            .map(cluster_value)
            .collect::<Result<Vec<_>, _>>()?;
        let record = Value::obj()
            .with("type", "level")
            .with("level", report.level as u64)
            .with("report", level_value(report))
            .with("nodes", Value::Arr(nodes.iter().map(node_value).collect()))
            .with("clusters", Value::Arr(clusters));
        self.app
            .append(&record)
            .map_err(|e| io_err("appending level checkpoint", e))
    }
}

/// A loaded checkpoint: everything the flow needs to continue from the
/// last committed level.
pub struct Checkpoint {
    pub(crate) reports: Vec<LevelReport>,
    pub(crate) clusters: Vec<BuiltCluster>,
    pub(crate) nodes: Vec<LevelNode>,
    pub(crate) valid_len: u64,
    torn: Option<String>,
}

impl Checkpoint {
    /// Reads and validates a checkpoint journal against the flow
    /// configuration and design that will resume from it.
    ///
    /// Tolerates (and reports through [`torn`](Self::torn)) a torn
    /// final record — the shape a kill mid-append leaves. Everything
    /// else is strict: a checksum failure on an interior record, a
    /// schema or fingerprint mismatch, or a gap in the level sequence
    /// is [`CtsError::Checkpoint`].
    pub fn load(
        path: &Path,
        cts: &HierarchicalCts,
        design: &Design,
    ) -> Result<Checkpoint, CtsError> {
        let journal = read_journal(path).map_err(|e| io_err("reading checkpoint journal", e))?;
        let mut records = journal.records.iter();
        let meta = records.next().ok_or_else(|| {
            ckpt_err("checkpoint journal has no meta record (empty or fully torn file)")
        })?;
        if meta.get("type").and_then(Value::as_str) != Some("sllt-ckpt") {
            return Err(ckpt_err("first record is not a checkpoint meta record"));
        }
        let schema = meta.get("schema").and_then(Value::as_u64);
        if schema != Some(CHECKPOINT_SCHEMA) {
            return Err(ckpt_err(format!(
                "unsupported checkpoint schema {schema:?} (supported: {CHECKPOINT_SCHEMA})"
            )));
        }
        let expect = format!("{:016x}", fingerprint(cts, design));
        let found = meta
            .get("fingerprint")
            .and_then(Value::as_str)
            .unwrap_or("");
        if found != expect {
            return Err(ckpt_err(format!(
                "checkpoint fingerprint {found} does not match this configuration/design \
                 ({expect}): resume would not reproduce the original run"
            )));
        }

        let mut out = Checkpoint {
            reports: Vec::new(),
            clusters: Vec::new(),
            nodes: Vec::new(),
            valid_len: journal.valid_len,
            torn: journal.torn_tail.map(|t| t.reason),
        };
        for (i, rec) in records.enumerate() {
            let at = |msg: String| ckpt_err(format!("level record {i}: {msg}"));
            if rec.get("type").and_then(Value::as_str) != Some("level") {
                return Err(at("unexpected record type".into()));
            }
            let level = rec
                .get("level")
                .and_then(Value::as_u64)
                .ok_or_else(|| at("missing level".into()))? as usize;
            if level != i {
                return Err(at(format!("level {level} out of sequence (expected {i})")));
            }
            let report = rec
                .get("report")
                .ok_or_else(|| at("missing report".into()))
                .and_then(|v| level_report_from_value(v).map_err(at))?;
            let nodes = rec
                .get("nodes")
                .and_then(Value::as_arr)
                .ok_or_else(|| at("missing nodes".into()))?
                .iter()
                .map(node_from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(at)?;
            if nodes.is_empty() {
                return Err(at("level has no output nodes".into()));
            }
            let new_clusters = rec
                .get("clusters")
                .and_then(Value::as_arr)
                .ok_or_else(|| at("missing clusters".into()))?
                .iter()
                .map(cluster_from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(at)?;
            if new_clusters.len() != nodes.len() {
                return Err(at(format!(
                    "{} clusters but {} output nodes",
                    new_clusters.len(),
                    nodes.len()
                )));
            }
            out.reports.push(report);
            out.clusters.extend(new_clusters);
            out.nodes = nodes;
        }
        // Arena integrity: every cluster-sourced node must resolve.
        let arena = out.clusters.len();
        let check = |n: &LevelNode| match n.source {
            NodeSource::Cluster(i) if i >= arena => Err(ckpt_err(format!(
                "node references cluster {i} outside the arena of {arena}"
            ))),
            NodeSource::DesignSink(i) if i >= design.sinks.len() => Err(ckpt_err(format!(
                "node references design sink {i} outside the design's {}",
                design.sinks.len()
            ))),
            _ => Ok(()),
        };
        for n in out
            .nodes
            .iter()
            .chain(out.clusters.iter().flat_map(|c| c.members.iter()))
        {
            check(n)?;
        }
        Ok(out)
    }

    /// Number of committed levels in the journal (0 = only the meta
    /// record survived; resume restarts from the design sinks).
    pub fn levels(&self) -> usize {
        self.reports.len()
    }

    /// The committed level reports, bottom-up.
    pub fn reports(&self) -> &[LevelReport] {
        &self.reports
    }

    /// Why the final record was discarded, when the journal ended in a
    /// torn (partially written) line.
    pub fn torn(&self) -> Option<&str> {
        self.torn.as_deref()
    }

    /// Byte length of the journal's intact prefix — where a resuming
    /// writer continues appending.
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_tree::ClockTree;

    fn node(x: f64, kind_cluster: bool, idx: usize) -> LevelNode {
        LevelNode {
            pos: Point::new(x, 0.1 + x / 3.0),
            cap_ff: 1.5 + x,
            interval_ps: (x * 0.25, x * 0.5 + 1e-7),
            source: if kind_cluster {
                NodeSource::Cluster(idx)
            } else {
                NodeSource::DesignSink(idx)
            },
        }
    }

    #[test]
    fn node_encoding_round_trips_bit_exactly() {
        for n in [
            node(0.0, false, 0),
            node(17.3, true, 5),
            node(1e-9, false, 3),
        ] {
            let back = node_from_value(&node_value(&n)).unwrap();
            assert_eq!(back.pos.x.to_bits(), n.pos.x.to_bits());
            assert_eq!(back.pos.y.to_bits(), n.pos.y.to_bits());
            assert_eq!(back.cap_ff.to_bits(), n.cap_ff.to_bits());
            assert_eq!(back.interval_ps.0.to_bits(), n.interval_ps.0.to_bits());
            assert_eq!(back.interval_ps.1.to_bits(), n.interval_ps.1.to_bits());
            match (back.source, n.source) {
                (NodeSource::DesignSink(a), NodeSource::DesignSink(b)) => assert_eq!(a, b),
                (NodeSource::Cluster(a), NodeSource::Cluster(b)) => assert_eq!(a, b),
                other => panic!("source kind flipped: {other:?}"),
            }
        }
        // Malformed nodes are rejected, not defaulted.
        assert!(node_from_value(&Value::Arr(vec![1.0.into()])).is_err());
        let mut bad: Vec<Value> = (0..7).map(|i| Value::from(i as f64)).collect();
        bad[5] = 9u64.into();
        assert!(node_from_value(&Value::Arr(bad)).is_err());
    }

    #[test]
    fn cluster_encoding_round_trips_through_tree_text() {
        let mut tree = ClockTree::new(Point::new(5.0, 5.0));
        let root = tree.root();
        tree.add_sink(root, Point::new(1.0, 2.0), 1.25);
        let c = BuiltCluster {
            tree,
            members: vec![node(1.0, false, 0)],
            cell: 3,
            pads: 2,
            driver_pos: Point::new(5.0, 5.0),
        };
        let v = cluster_value(&c).unwrap();
        let back = cluster_from_value(&v).unwrap();
        assert_eq!(back.cell, 3);
        assert_eq!(back.pads, 2);
        assert_eq!(back.driver_pos, c.driver_pos);
        assert_eq!(back.members.len(), 1);
        assert_eq!(back.tree.len(), c.tree.len());
        assert_eq!(back.tree.wirelength(), c.tree.wirelength());
        // The embedded tree text survives JSONL encoding (newlines are
        // escaped inside the JSON string).
        let line = v.encode();
        assert!(!line.contains('\n'));
        let reparsed = sllt_obs::json::parse(&line).unwrap();
        assert!(cluster_from_value(&reparsed).is_ok());
    }

    #[test]
    fn fingerprint_separates_configs_but_ignores_workers() {
        let design = sllt_design::DesignSpec::by_name("s38584")
            .unwrap()
            .instantiate();
        let base = HierarchicalCts::default();
        let fp = fingerprint(&base, &design);
        let mut w4 = base.clone();
        w4.workers = 4;
        assert_eq!(fp, fingerprint(&w4, &design), "workers must not matter");
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(fp, fingerprint(&seeded, &design), "seed must matter");
        let mut relaxed = base.clone();
        relaxed.constraints.skew_ps *= 2.0;
        assert_ne!(
            fp,
            fingerprint(&relaxed, &design),
            "constraints must matter"
        );
        let other = sllt_design::DesignSpec::by_name("s35932")
            .unwrap()
            .instantiate();
        assert_ne!(fp, fingerprint(&base, &other), "design must matter");
    }
}
