//! Typed failure modes of the hierarchical flow.
//!
//! [`HierarchicalCts::run`](crate::flow::HierarchicalCts::run) returns
//! these instead of panicking: a caller driving many designs (benchmark
//! sweeps, OCV Monte-Carlo) gets a value it can log and skip rather than
//! an abort.
//!
//! Errors split into two classes (see `DESIGN.md`, *Failure model*):
//!
//! * **recoverable** — a level-scoped construction failure the
//!   [degradation ladder](crate::recovery::RecoveryPolicy) may clear by
//!   relaxing the skew bound or falling back to a simpler topology
//!   ([`is_recoverable`](CtsError::is_recoverable) returns `true`);
//! * **non-recoverable** — the input or configuration itself is unusable
//!   ([`NoSinks`](CtsError::NoSinks),
//!   [`InvalidConstraints`](CtsError::InvalidConstraints), …); retrying
//!   cannot help and the ladder propagates them immediately.

use sllt_route::DmeError;
use std::fmt;

/// Why a hierarchical CTS run could not produce a tree.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtsError {
    /// The design has no flip-flops: there is nothing to build a clock
    /// tree over.
    NoSinks,
    /// The buffer library has no cells, so no cluster driver, delay pad,
    /// or repeater can ever be chosen.
    EmptyBufferLibrary,
    /// The flow was configured with zero K-means restarts
    /// ([`partition_restarts`](crate::flow::HierarchicalCts::partition_restarts)
    /// = 0), leaving no candidate partition to pick from.
    NoPartitionRestarts,
    /// A constraint bound is out of its valid range
    /// ([`CtsConstraints::validate`](crate::constraints::CtsConstraints::validate)).
    InvalidConstraints {
        /// Name of the offending field (e.g. `"skew_ps"`).
        field: &'static str,
        /// The rejected value (fanout is reported as a float).
        value: f64,
    },
    /// The design failed the sanitizer pre-flight: non-finite or
    /// oversized coordinates, non-finite or negative pin caps. Repair
    /// with [`sllt_design::sanitize::repair`] and re-run.
    InvalidDesign {
        /// Human-readable description of the first fatal lint.
        detail: String,
    },
    /// A routed cluster tree lost the RC-tree mapping for one of its
    /// sinks — the timing aggregation cannot price that member's delay.
    UnmappedSink {
        /// Level at which the cluster was routed.
        level: usize,
        /// Index of the unmapped sink within the cluster net.
        sink_index: usize,
    },
    /// Partitioning stopped reducing the node count: the level loop would
    /// never converge to a single top node.
    LevelRunaway {
        /// Level at which the runaway was detected.
        level: usize,
        /// Node count still pending at that level.
        nodes: usize,
    },
    /// A cluster's routing kernel rejected its input — most often a skew
    /// bound the merge geometry cannot satisfy.
    ClusterRoute {
        /// Level of the failing cluster.
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
        /// The routing kernel's own diagnosis.
        source: DmeError,
    },
    /// A routing worker panicked; the panic was contained at cluster
    /// granularity and converted into this error.
    ClusterPanicked {
        /// Level of the failing cluster.
        level: usize,
        /// Cluster index within the level.
        cluster: usize,
    },
    /// A stage exceeded its cooperative work budget
    /// ([`route_budget`](crate::flow::HierarchicalCts::route_budget)).
    /// The budget is counted in deterministic cost units, not wall-clock,
    /// so the same run always stops at the same place.
    StageDeadline {
        /// Level at which the budget ran out.
        level: usize,
        /// Stage name (`"route"`).
        stage: &'static str,
        /// Configured budget, cost units.
        budget: u64,
        /// Units the stage would have needed.
        required: u64,
    },
    /// A fault injected by the test harness
    /// ([`FaultPlan`](crate::fault::FaultPlan)) — never produced by a
    /// production configuration.
    InjectedFault {
        /// Stage the fault was injected into.
        stage: &'static str,
        /// Level the fault fired at.
        level: usize,
        /// Cluster it fired at, when cluster-scoped.
        cluster: Option<usize>,
    },
    /// The run observed a fired [`CancelToken`](crate::cancel::CancelToken)
    /// and stopped at the next poll point. Work committed before the
    /// cancellation (including any level checkpoint) is intact; the
    /// partially-built level is discarded.
    Cancelled,
    /// A level checkpoint could not be written, read, or matched against
    /// the current flow configuration (see `crate::checkpoint`).
    Checkpoint {
        /// What went wrong — an I/O error, a corrupt journal, or a
        /// config/design fingerprint mismatch on resume.
        detail: String,
    },
    /// Every rung of the degradation ladder failed for one level.
    LadderExhausted {
        /// The level that could not be built.
        level: usize,
        /// How many attempts were made (including the original).
        attempts: usize,
        /// The error from the final attempt.
        last: Box<CtsError>,
    },
}

impl CtsError {
    /// Whether the degradation ladder may clear this error by retrying
    /// the level under a relaxed configuration.
    ///
    /// Input/configuration errors ([`NoSinks`](CtsError::NoSinks),
    /// [`InvalidConstraints`](CtsError::InvalidConstraints), …) return
    /// `false`: no amount of skew relaxation or topology fallback can
    /// fix them, so the ladder propagates them unchanged.
    pub fn is_recoverable(&self) -> bool {
        match self {
            CtsError::NoSinks
            | CtsError::EmptyBufferLibrary
            | CtsError::InvalidConstraints { .. }
            | CtsError::InvalidDesign { .. }
            | CtsError::LevelRunaway { .. }
            // Cancellation is a caller decision, not a level failure:
            // retrying the level would fight the caller's intent.
            | CtsError::Cancelled
            | CtsError::Checkpoint { .. }
            | CtsError::LadderExhausted { .. } => false,
            // NoPartitionRestarts is recoverable: the ladder retries with
            // a floor of one restart.
            CtsError::NoPartitionRestarts
            | CtsError::UnmappedSink { .. }
            | CtsError::ClusterRoute { .. }
            | CtsError::ClusterPanicked { .. }
            | CtsError::StageDeadline { .. }
            | CtsError::InjectedFault { .. } => true,
        }
    }
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::NoSinks => write!(f, "CTS over a design without flip-flops"),
            CtsError::EmptyBufferLibrary => {
                write!(f, "buffer library is empty: no driver can be sized")
            }
            CtsError::NoPartitionRestarts => {
                write!(
                    f,
                    "partition_restarts is 0: no candidate partition to choose"
                )
            }
            CtsError::InvalidConstraints { field, value } => {
                write!(f, "invalid constraint {field} = {value}")
            }
            CtsError::InvalidDesign { detail } => write!(f, "design failed sanitization: {detail}"),
            CtsError::UnmappedSink { level, sink_index } => write!(
                f,
                "cluster sink {sink_index} at level {level} has no RC-tree node"
            ),
            CtsError::LevelRunaway { level, nodes } => write!(
                f,
                "level runaway at level {level}: partitioning is not reducing \
                 ({nodes} nodes remain)"
            ),
            CtsError::ClusterRoute {
                level,
                cluster,
                source,
            } => write!(
                f,
                "routing cluster {cluster} at level {level} failed: {source}"
            ),
            CtsError::ClusterPanicked { level, cluster } => write!(
                f,
                "routing worker panicked on cluster {cluster} at level {level} \
                 (contained; no other cluster was affected)"
            ),
            CtsError::StageDeadline {
                level,
                stage,
                budget,
                required,
            } => write!(
                f,
                "{stage} stage at level {level} exceeded its work budget \
                 ({required} cost units required, {budget} allowed)"
            ),
            CtsError::InjectedFault {
                stage,
                level,
                cluster,
            } => match cluster {
                Some(c) => write!(f, "injected fault in {stage} at level {level}, cluster {c}"),
                None => write!(f, "injected fault in {stage} at level {level}"),
            },
            CtsError::Cancelled => {
                write!(f, "run cancelled; committed levels remain checkpointed")
            }
            CtsError::Checkpoint { detail } => write!(f, "checkpoint failure: {detail}"),
            CtsError::LadderExhausted {
                level,
                attempts,
                last,
            } => write!(
                f,
                "degradation ladder exhausted at level {level} after {attempts} \
                 attempt(s); last error: {last}"
            ),
        }
    }
}

impl std::error::Error for CtsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtsError::ClusterRoute { source, .. } => Some(source),
            CtsError::LadderExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(CtsError::EmptyBufferLibrary.to_string().contains("library"));
        assert!(CtsError::NoPartitionRestarts
            .to_string()
            .contains("restarts"));
        assert!(CtsError::NoSinks.to_string().contains("flip-flops"));
        let e = CtsError::UnmappedSink {
            level: 3,
            sink_index: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));
        let e = CtsError::LevelRunaway {
            level: 40,
            nodes: 9,
        };
        assert!(e.to_string().contains("40") && e.to_string().contains('9'));
        let e = CtsError::InvalidConstraints {
            field: "skew_ps",
            value: -1.0,
        };
        assert!(e.to_string().contains("skew_ps") && e.to_string().contains("-1"));
        let e = CtsError::ClusterRoute {
            level: 2,
            cluster: 5,
            source: DmeError::NegativeSkewBound(-4.0),
        };
        assert!(e.to_string().contains("cluster 5") && e.to_string().contains("-4"));
        let e = CtsError::ClusterPanicked {
            level: 1,
            cluster: 0,
        };
        assert!(e.to_string().contains("panicked"));
        let e = CtsError::StageDeadline {
            level: 0,
            stage: "route",
            budget: 10,
            required: 25,
        };
        assert!(e.to_string().contains("budget") && e.to_string().contains("25"));
        let e = CtsError::LadderExhausted {
            level: 0,
            attempts: 6,
            last: Box::new(CtsError::ClusterPanicked {
                level: 0,
                cluster: 3,
            }),
        };
        assert!(e.to_string().contains("exhausted") && e.to_string().contains("cluster 3"));
        assert!(CtsError::Cancelled.to_string().contains("cancelled"));
        let e = CtsError::Checkpoint {
            detail: "journal corrupt at line 4".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn recoverability_splits_input_errors_from_level_failures() {
        assert!(!CtsError::NoSinks.is_recoverable());
        assert!(!CtsError::EmptyBufferLibrary.is_recoverable());
        assert!(!CtsError::InvalidConstraints {
            field: "skew_ps",
            value: 0.0
        }
        .is_recoverable());
        assert!(!CtsError::InvalidDesign { detail: "x".into() }.is_recoverable());
        assert!(CtsError::NoPartitionRestarts.is_recoverable());
        assert!(CtsError::ClusterPanicked {
            level: 0,
            cluster: 0
        }
        .is_recoverable());
        assert!(CtsError::ClusterRoute {
            level: 0,
            cluster: 0,
            source: DmeError::SinklessNet
        }
        .is_recoverable());
        assert!(CtsError::StageDeadline {
            level: 0,
            stage: "route",
            budget: 1,
            required: 2
        }
        .is_recoverable());
        // Cancellation and checkpoint faults must never be retried.
        assert!(!CtsError::Cancelled.is_recoverable());
        assert!(!CtsError::Checkpoint { detail: "x".into() }.is_recoverable());
        // An exhausted ladder must not be re-laddered.
        assert!(!CtsError::LadderExhausted {
            level: 0,
            attempts: 1,
            last: Box::new(CtsError::NoPartitionRestarts)
        }
        .is_recoverable());
    }

    #[test]
    fn error_trait_is_wired() {
        let e: Box<dyn std::error::Error> = Box::new(CtsError::NoSinks);
        assert!(!e.to_string().is_empty());
        let e = CtsError::ClusterRoute {
            level: 0,
            cluster: 0,
            source: DmeError::SinklessNet,
        };
        assert!(std::error::Error::source(&e).is_some());
    }
}
