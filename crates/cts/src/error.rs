//! Typed failure modes of the hierarchical flow.
//!
//! [`HierarchicalCts::run`](crate::flow::HierarchicalCts::run) returns
//! these instead of panicking: a caller driving many designs (benchmark
//! sweeps, OCV Monte-Carlo) gets a value it can log and skip rather than
//! an abort.

use std::fmt;

/// Why a hierarchical CTS run could not produce a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtsError {
    /// The design has no flip-flops: there is nothing to build a clock
    /// tree over.
    NoSinks,
    /// The buffer library has no cells, so no cluster driver, delay pad,
    /// or repeater can ever be chosen.
    EmptyBufferLibrary,
    /// The flow was configured with zero K-means restarts
    /// ([`partition_restarts`](crate::flow::HierarchicalCts::partition_restarts)
    /// = 0), leaving no candidate partition to pick from.
    NoPartitionRestarts,
    /// A routed cluster tree lost the RC-tree mapping for one of its
    /// sinks — the timing aggregation cannot price that member's delay.
    UnmappedSink {
        /// Level at which the cluster was routed.
        level: usize,
        /// Index of the unmapped sink within the cluster net.
        sink_index: usize,
    },
    /// Partitioning stopped reducing the node count: the level loop would
    /// never converge to a single top node.
    LevelRunaway {
        /// Level at which the runaway was detected.
        level: usize,
        /// Node count still pending at that level.
        nodes: usize,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::NoSinks => write!(f, "CTS over a design without flip-flops"),
            CtsError::EmptyBufferLibrary => {
                write!(f, "buffer library is empty: no driver can be sized")
            }
            CtsError::NoPartitionRestarts => {
                write!(
                    f,
                    "partition_restarts is 0: no candidate partition to choose"
                )
            }
            CtsError::UnmappedSink { level, sink_index } => write!(
                f,
                "cluster sink {sink_index} at level {level} has no RC-tree node"
            ),
            CtsError::LevelRunaway { level, nodes } => write!(
                f,
                "level runaway at level {level}: partitioning is not reducing \
                 ({nodes} nodes remain)"
            ),
        }
    }
}

impl std::error::Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(CtsError::EmptyBufferLibrary.to_string().contains("library"));
        assert!(CtsError::NoPartitionRestarts
            .to_string()
            .contains("restarts"));
        assert!(CtsError::NoSinks.to_string().contains("flip-flops"));
        let e = CtsError::UnmappedSink {
            level: 3,
            sink_index: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));
        let e = CtsError::LevelRunaway {
            level: 40,
            nodes: 9,
        };
        assert!(e.to_string().contains("40") && e.to_string().contains('9'));
    }

    #[test]
    fn error_trait_is_wired() {
        let e: Box<dyn std::error::Error> = Box::new(CtsError::NoSinks);
        assert!(!e.to_string().is_empty());
    }
}
