//! Joint driver sizing and delay padding (paper §3.4).
//!
//! Drivers are sized after *all* of a level's clusters are routed, so
//! buffer drive strength — not detour wire — absorbs the
//! cluster-to-cluster delay spread ("adjustments in downstream buffer
//! sizes").

use crate::assemble::BuiltCluster;
use crate::error::CtsError;
use crate::fault::{FaultKind, FaultStage};
use crate::flow::HierarchicalCts;
use crate::route::{LevelNode, NodeSource, RoutedCluster};

/// Aggregates the sizing stage reports upward for the level report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SizingStats {
    /// Input capacitance of every driver and pad inserted, fF.
    pub driver_input_cap_ff: f64,
    /// Area of every driver and pad inserted, µm².
    pub driver_area_um2: f64,
    /// Delay-padding buffers inserted.
    pub pads: usize,
}

/// Sizes every routed cluster's driver, pads fast clusters, and returns
/// the next level's nodes (in cluster order), the finished
/// [`BuiltCluster`]s, and the stage stats. The new clusters' arena
/// indices start at `base` — the caller appends them to the arena *only
/// on success*, so a failed level attempt (degradation-ladder retry)
/// leaves the arena untouched.
pub(crate) fn size_drivers(
    cts: &HierarchicalCts,
    routed: Vec<RoutedCluster>,
    base: usize,
    level: usize,
    attempt: usize,
) -> Result<(Vec<LevelNode>, Vec<BuiltCluster>, SizingStats), CtsError> {
    if !cts.faults.is_empty() {
        if let Some(f) = cts.faults.fires(FaultStage::Sizing, level, None, attempt) {
            match f.kind {
                FaultKind::Error => {
                    return Err(CtsError::InjectedFault {
                        stage: "sizing",
                        level,
                        cluster: None,
                    })
                }
                FaultKind::Panic => panic!("injected panic: sizing level {level}"),
            }
        }
    }
    // Joint sizing: every cluster total (subtree + driver delay) should
    // land near a common target — the slowest cluster at its fastest
    // legal cell.
    let slew = cts.tech.source_slew_ps;
    if cts.lib.cells().is_empty() {
        return Err(CtsError::EmptyBufferLibrary);
    }
    let target = routed
        .iter()
        .map(|r| {
            r.subtree_hi
                + cts
                    .lib
                    .cells()
                    .iter()
                    .filter(|c| c.can_drive(r.load))
                    .map(|c| c.delay(slew, r.load))
                    .fold(cts.lib.largest().delay(slew, r.load), f64::min)
        })
        .fold(0.0f64, f64::max);

    let mut next = Vec::new();
    let mut built = Vec::new();
    let mut stats = SizingStats::default();
    for r in routed {
        if cts.cancel.poll() {
            return Err(CtsError::Cancelled);
        }
        let usable = || {
            cts.lib
                .cells()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.can_drive(r.load) || c.name == cts.lib.largest().name)
        };
        let cell = if cts.equalize_sizing {
            // Equalize toward the slowest cluster, but never slow a
            // cluster below what the next level's bounded-skew merge can
            // absorb without detour: totals inside
            // [target − window·bound, target] are all fine, so take the
            // *fastest* cell landing in that window (or the closest to
            // it).
            let bound = cts.constraints.skew_ps * cts.level_skew_fraction;
            let window_lo = target - cts.sizing_window_fraction * bound;
            let in_window: Option<usize> = usable()
                .filter(|(_, c)| {
                    let total = r.subtree_hi + c.delay(slew, r.load);
                    total >= window_lo && total <= target + 1e-9
                })
                .min_by(|(_, a), (_, b)| a.delay(slew, r.load).total_cmp(&b.delay(slew, r.load)))
                .map(|(i, _)| i);
            match in_window {
                Some(i) => i,
                None => usable()
                    .min_by(|(_, a), (_, b)| {
                        let da = (r.subtree_hi + a.delay(slew, r.load) - target).abs();
                        let db = (r.subtree_hi + b.delay(slew, r.load) - target).abs();
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .ok_or(CtsError::EmptyBufferLibrary)?,
            }
        } else {
            // Cheapest (by area) cell within `sizing_slack` of the
            // fastest at this load.
            let fastest = usable()
                .map(|(_, c)| c.delay(slew, r.load))
                .fold(f64::INFINITY, f64::min);
            usable()
                .filter(|(_, c)| c.delay(slew, r.load) <= fastest * cts.sizing_slack)
                .min_by(|(_, a), (_, b)| a.area_um2.total_cmp(&b.area_um2))
                .map(|(i, _)| i)
                .ok_or(CtsError::EmptyBufferLibrary)?
        };
        // Delay padding: when even the slowest usable cell leaves the
        // cluster far ahead of the target, chain small buffers above the
        // driver to make up the rest.
        let pad_cell = &cts.lib.cells()[0];
        let pad_delay = pad_cell.delay(slew, cts.lib.cells()[cell].input_cap_ff);
        let pads = if cts.equalize_sizing && pad_delay > 1e-9 {
            let total = r.subtree_hi + cts.lib.cells()[cell].delay(slew, r.load);
            (((target - total) / pad_delay).floor().max(0.0) as usize).min(8)
        } else {
            0
        };
        let drv = cts.estimator.provisional_delay_for(
            &cts.lib,
            r.load,
            Some(&cts.lib.cells()[cell]),
            slew,
        ) + pads as f64 * pad_delay;
        let input_cap = if pads > 0 {
            pad_cell.input_cap_ff
        } else {
            cts.lib.cells()[cell].input_cap_ff
        };
        stats.driver_input_cap_ff +=
            cts.lib.cells()[cell].input_cap_ff + pads as f64 * pad_cell.input_cap_ff;
        stats.driver_area_um2 += cts.lib.cells()[cell].area_um2 + pads as f64 * pad_cell.area_um2;
        stats.pads += pads;
        let idx = base + built.len();
        next.push(LevelNode {
            pos: r.tap,
            cap_ff: input_cap,
            interval_ps: (r.subtree_lo + drv, r.subtree_hi + drv),
            source: NodeSource::Cluster(idx),
        });
        built.push(BuiltCluster {
            tree: r.tree,
            members: r.members,
            cell,
            pads,
            driver_pos: r.tap,
        });
    }
    if sllt_obs::enabled() {
        sllt_obs::count("cts.sizing.drivers", next.len() as u64);
        sllt_obs::count("cts.sizing.pads", stats.pads as u64);
    }
    Ok((next, built, stats))
}
