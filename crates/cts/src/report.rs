//! Per-level flow observability.
//!
//! The engine reports one [`LevelReport`] per bottom-up level and one
//! [`AssembleReport`] for the final assembly through a [`FlowObserver`].
//! Observers see the flow as it runs — benchmark tables, progress
//! displays, and the tie-out tests all hang off this trait instead of
//! re-instrumenting the engine.

use crate::recovery::Downgrade;
use std::time::Duration;

/// Wall time spent in each stage of one level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Balanced K-means (+ min-cost flow) and SA refinement.
    pub partition: Duration,
    /// Per-cluster topology generation and timing aggregation — the
    /// parallel stage.
    pub route: Duration,
    /// Joint driver sizing and delay padding.
    pub sizing: Duration,
}

impl StageTimings {
    /// Total wall time across the three stages.
    pub fn total(&self) -> Duration {
        self.partition + self.route + self.sizing
    }
}

/// What one bottom-up level did.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelReport {
    /// Level index (0 = the design flip-flops).
    pub level: usize,
    /// Clock nodes entering the level.
    pub num_nodes: usize,
    /// Clusters built (= nodes leaving the level).
    pub num_clusters: usize,
    /// Worker threads the route stage ran on.
    pub workers: usize,
    /// Per-stage wall time.
    pub timings: StageTimings,
    /// Total routed wirelength of this level's cluster trees, µm.
    pub wirelength_um: f64,
    /// Total load each cluster driver sees (pins + wire), fF.
    pub load_cap_ff: f64,
    /// Input capacitance this level presents to the next one — every
    /// driver and delay-padding buffer inserted here, fF.
    pub driver_input_cap_ff: f64,
    /// Area of the drivers and pads inserted at this level, µm².
    pub driver_area_um2: f64,
    /// Delay-padding buffers inserted across all clusters.
    pub pads: usize,
    /// Spread of the accumulated delay intervals handed upward, ps:
    /// max slowest − min fastest over the level's output nodes.
    pub delay_spread_ps: f64,
    /// How many attempts the level took (1 = first try succeeded; >1
    /// means the degradation ladder climbed).
    pub attempts: usize,
    /// Every ladder rung climbed before the level succeeded, in order.
    /// Empty for a clean level.
    pub downgrades: Vec<Downgrade>,
}

/// What the final assembly did.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembleReport {
    /// Wire from the clock root to the top cluster's driver, µm.
    pub trunk_wl_um: f64,
    /// Critical-wirelength repeaters inserted on long common wires.
    pub repeaters: usize,
    /// Input capacitance of those repeaters, fF.
    pub repeater_input_cap_ff: f64,
    /// Wall time of assembly + repeater insertion.
    pub elapsed: Duration,
}

/// Receives engine progress. All methods default to no-ops, so an
/// observer implements only what it cares about.
pub trait FlowObserver {
    /// The flow is starting over `num_sinks` flip-flops with the route
    /// stage configured for `workers` threads.
    fn on_flow_start(&mut self, num_sinks: usize, workers: usize) {
        let _ = (num_sinks, workers);
    }

    /// One level finished.
    fn on_level(&mut self, report: &LevelReport) {
        let _ = report;
    }

    /// A level restored from a checkpoint during
    /// [`resume`](crate::flow::HierarchicalCts::resume) — replayed in
    /// order before any freshly built level reports. Defaults to
    /// [`on_level`](Self::on_level) so collectors see a resumed run as a
    /// complete level sequence; override to distinguish replay from live
    /// progress (e.g. to skip re-printing).
    fn on_resumed_level(&mut self, report: &LevelReport) {
        self.on_level(report);
    }

    /// The tree is assembled and buffered.
    fn on_assemble(&mut self, report: &AssembleReport) {
        let _ = report;
    }

    /// A checkpoint/journal write failed at `level` and the flow
    /// degraded to in-memory-only operation (see
    /// [`HierarchicalCts::vfs`](crate::HierarchicalCts::vfs)). Nonfatal:
    /// the run continues, but a crash after this point loses
    /// resumability. Defaults to a no-op.
    fn on_storage_degraded(&mut self, level: usize, detail: &str) {
        let _ = (level, detail);
    }
}

/// Discards everything — what [`run`](crate::flow::HierarchicalCts::run)
/// uses internally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl FlowObserver for NullObserver {}

/// Keeps every report for post-run inspection and rendering.
#[derive(Debug, Clone, Default)]
pub struct CollectingObserver {
    /// One entry per level, bottom-up.
    pub levels: Vec<LevelReport>,
    /// The assembly report, once the flow finishes.
    pub assemble: Option<AssembleReport>,
}

impl CollectingObserver {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total routed wirelength across all levels plus the root trunk, µm.
    /// Matches the assembled tree's wirelength (see the tie-out test).
    pub fn total_wirelength_um(&self) -> f64 {
        self.levels.iter().map(|l| l.wirelength_um).sum::<f64>()
            + self.assemble.as_ref().map_or(0.0, |a| a.trunk_wl_um)
    }

    /// Input capacitance of every buffer the flow inserted (drivers,
    /// pads, repeaters), fF.
    pub fn total_buffer_input_cap_ff(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.driver_input_cap_ff)
            .sum::<f64>()
            + self
                .assemble
                .as_ref()
                .map_or(0.0, |a| a.repeater_input_cap_ff)
    }

    /// Wall time of the route stage summed over levels.
    pub fn route_time(&self) -> Duration {
        self.levels.iter().map(|l| l.timings.route).sum()
    }

    /// [`render`](Self::render) plus a per-cluster latency footer when
    /// the run recorded telemetry: the `cts.route.cluster_us` histogram's
    /// p50/p95/p99 (log₂-bucket estimates, within 2× — see
    /// [`sllt_obs::Histogram::percentile`]).
    pub fn render_with_metrics(&self, metrics: Option<&sllt_obs::MetricsMap>) -> String {
        let mut out = self.render();
        if let Some(h) = metrics.and_then(|m| m.histograms.get("cts.route.cluster_us")) {
            if let (Some(p50), Some(p95), Some(p99)) = (h.p50(), h.p95(), h.p99()) {
                out.push_str(&format!(
                    "route cluster us: p50 {p50} p95 {p95} p99 {p99} (n={}, log2-bucket estimate)\n",
                    h.count(),
                ));
            }
        }
        out
    }

    /// A fixed-width per-level table (levels bottom-up, then a totals
    /// footer and the assembly line). Milliseconds are always rendered
    /// `{:>10.2}` so columns stay aligned at any magnitude up to ~10 s.
    pub fn render(&self) -> String {
        let ms = |d: Duration| format!("{:>10.2}", d.as_secs_f64() * 1e3);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>7} {:>9} {:>8} {:>11} {:>10} {:>6} {:>11} {:>10} {:>10} {:>10}\n",
            "level",
            "nodes",
            "clusters",
            "workers",
            "WL (um)",
            "load (fF)",
            "pads",
            "spread(ps)",
            "part (ms)",
            "route (ms)",
            "size (ms)",
        ));
        for l in &self.levels {
            out.push_str(&format!(
                "{:>5} {:>7} {:>9} {:>8} {:>11.1} {:>10.1} {:>6} {:>11.2} {} {} {}\n",
                l.level,
                l.num_nodes,
                l.num_clusters,
                l.workers,
                l.wirelength_um,
                l.load_cap_ff,
                l.pads,
                l.delay_spread_ps,
                ms(l.timings.partition),
                ms(l.timings.route),
                ms(l.timings.sizing),
            ));
            // Recovered levels annotate their rungs right under the row,
            // so a degraded run is visible in the default table.
            for d in &l.downgrades {
                let action = match d.topology {
                    Some(t) => format!("fall back to {t} (skew x{})", d.skew_factor),
                    None => format!("relax skew x{}", d.skew_factor),
                };
                out.push_str(&format!(
                    "      downgrade[{}]: {action} after: {}\n",
                    d.attempt, d.trigger
                ));
            }
        }
        // Totals footer: stage wall time, wirelength, and load summed
        // over levels (the assembly trunk is reported on its own line).
        let sum_wl: f64 = self.levels.iter().map(|l| l.wirelength_um).sum();
        let sum_load: f64 = self.levels.iter().map(|l| l.load_cap_ff).sum();
        let sum_pads: usize = self.levels.iter().map(|l| l.pads).sum();
        let stage = |f: fn(&StageTimings) -> Duration| -> Duration {
            self.levels.iter().map(|l| f(&l.timings)).sum()
        };
        out.push_str(&format!(
            "{:>5} {:>7} {:>9} {:>8} {:>11.1} {:>10.1} {:>6} {:>11} {} {} {}\n",
            "total",
            "",
            "",
            "",
            sum_wl,
            sum_load,
            sum_pads,
            "",
            ms(stage(|t| t.partition)),
            ms(stage(|t| t.route)),
            ms(stage(|t| t.sizing)),
        ));
        if let Some(a) = &self.assemble {
            out.push_str(&format!(
                "assemble: trunk {:.1} um, {} repeaters, {} ms\n",
                a.trunk_wl_um,
                a.repeaters,
                ms(a.elapsed).trim_start(),
            ));
        }
        out
    }
}

impl FlowObserver for CollectingObserver {
    fn on_level(&mut self, report: &LevelReport) {
        self.levels.push(report.clone());
    }

    fn on_assemble(&mut self, report: &AssembleReport) {
        self.assemble = Some(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(l: usize, wl: f64) -> LevelReport {
        LevelReport {
            level: l,
            num_nodes: 10,
            num_clusters: 2,
            workers: 1,
            timings: StageTimings::default(),
            wirelength_um: wl,
            load_cap_ff: 5.0,
            driver_input_cap_ff: 1.5,
            driver_area_um2: 2.0,
            pads: 0,
            delay_spread_ps: 0.5,
            attempts: 1,
            downgrades: Vec::new(),
        }
    }

    #[test]
    fn collector_accumulates_in_order() {
        let mut obs = CollectingObserver::new();
        obs.on_level(&level(0, 100.0));
        obs.on_level(&level(1, 40.0));
        obs.on_assemble(&AssembleReport {
            trunk_wl_um: 10.0,
            repeaters: 3,
            repeater_input_cap_ff: 4.5,
            elapsed: Duration::ZERO,
        });
        assert_eq!(obs.levels.len(), 2);
        assert!((obs.total_wirelength_um() - 150.0).abs() < 1e-12);
        assert!((obs.total_buffer_input_cap_ff() - 7.5).abs() < 1e-12);
        let table = obs.render();
        assert!(table.contains("level") && table.contains("repeaters"));
    }

    #[test]
    fn render_includes_totals_footer() {
        let mut obs = CollectingObserver::new();
        obs.on_level(&level(0, 100.0));
        obs.on_level(&level(1, 40.0));
        let table = obs.render();
        let total = table
            .lines()
            .find(|l| l.trim_start().starts_with("total"))
            .expect("totals footer present");
        assert!(total.contains("140.0"), "WL sum missing: {total}");
        assert!(total.contains("10.0"), "load sum missing: {total}");
    }

    #[test]
    fn render_annotates_recovered_levels() {
        let mut obs = CollectingObserver::new();
        let mut l = level(0, 50.0);
        l.attempts = 2;
        l.downgrades.push(Downgrade {
            attempt: 1,
            skew_factor: 1.5,
            topology: None,
            trigger: "routing cluster 3 at level 0 failed".into(),
        });
        obs.on_level(&l);
        let table = obs.render();
        assert!(table.contains("downgrade[1]"), "{table}");
        assert!(table.contains("relax skew x1.5"), "{table}");
        assert!(table.contains("cluster 3"), "{table}");
    }

    #[test]
    fn null_observer_is_a_no_op() {
        let mut obs = NullObserver;
        obs.on_flow_start(5, 1);
        obs.on_level(&level(0, 1.0));
    }
}
