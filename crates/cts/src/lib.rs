//! Hierarchical clock tree synthesis (paper §3).
//!
//! The complete system: per-level partitioning (balanced K-means +
//! min-cost flow, simulated-annealing refinement), routing topology
//! generation (CBS by default), and buffering (driver selection by load,
//! insertion-delay lower bound, critical-wirelength repeaters), plus the
//! two baseline flows the paper compares against and the full metric
//! evaluation behind Tables 6 and 7.
//!
//! * [`constraints`] — the design constraints of paper Table 5,
//! * [`flow`] — the paper's flow ("Ours"): [`flow::HierarchicalCts`],
//!   a staged engine coordinating [`partition`] → [`route`] (parallel
//!   across clusters) → [`sizing`] per level, then [`assemble`]; typed
//!   failures in [`error`], per-level observability in [`report`],
//! * [`baseline`] — `OpenRoadLike` (TritonCTS-style structural H-tree
//!   with per-level buffering) and `CommercialLike` (same hierarchical
//!   engine tuned the way commercial CTS behaves: tight skew targets,
//!   aggressive buffer sizing) — see `DESIGN.md` for the substitution
//!   rationale,
//! * [`eval`] — buffered-tree timing (Elmore wires + Eq. (6) buffers,
//!   slew propagation) and every Table 6/7 metric,
//! * [`ocv`] — Monte-Carlo on-chip-variation robustness analysis (the
//!   paper's §1 motivation, quantified).
//!
//! # Example
//!
//! ```
//! use sllt_cts::{flow::HierarchicalCts, constraints::CtsConstraints, eval::evaluate};
//! use sllt_design::DesignSpec;
//!
//! let design = DesignSpec::by_name("s35932").unwrap().instantiate();
//! let cts = HierarchicalCts::default();
//! let tree = cts.run(&design).expect("well-formed design");
//! let report = evaluate(&tree, &cts.tech, &cts.lib);
//! assert_eq!(report.num_sinks, design.num_ffs());
//! assert!(report.skew_ps <= CtsConstraints::paper().skew_ps);
//! ```

mod assemble;
pub mod baseline;
pub mod cancel;
pub mod checkpoint;
pub mod constraints;
pub mod error;
pub mod eval;
pub mod fault;
pub mod flow;
pub mod ocv;
mod partition;
pub mod recovery;
pub mod report;
mod route;
mod sizing;
pub mod telemetry;

pub use baseline::{commercial_like, open_road_like};
pub use cancel::CancelToken;
pub use checkpoint::{migrate_checkpoint, Checkpoint, CHECKPOINT_SCHEMA, LEGACY_CHECKPOINT_SCHEMA};
pub use constraints::CtsConstraints;
pub use error::CtsError;
pub use eval::{evaluate, TreeReport};
pub use fault::{FaultKind, FaultPlan, FaultStage, StageFault};
pub use flow::{HierarchicalCts, TopologyKind};
pub use ocv::{derate_skew, ocv_analysis, OcvModel, OcvReport};
pub use recovery::{Downgrade, LadderStep, RecoveryPolicy};
pub use report::{
    AssembleReport, CollectingObserver, FlowObserver, LevelReport, NullObserver, StageTimings,
};
pub use sllt_obs::{
    CollectingProgress, JournalProgress, NullSink, Progress, ProgressEvent, ProgressSink,
    RecordingSink, TelemetrySink,
};
pub use telemetry::{assemble_value, downgrade_value, level_value, run_record};
