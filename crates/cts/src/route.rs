//! Per-cluster routing — the parallel stage of each level.
//!
//! Every cluster routes independently (`route_cluster` needs only
//! `&HierarchicalCts` and the cluster's members), so the stage fans out
//! across a `std::thread::scope`: workers pull cluster indices from a
//! shared atomic counter and write results into per-index slots.
//! Collection is by cluster index, and each cluster's RNG stream is
//! derived up front from the flow seed with SplitMix64 — the output is
//! bit-identical no matter how many workers run or how they interleave.

use crate::error::CtsError;
use crate::fault::{FaultKind, FaultStage};
use crate::flow::{HierarchicalCts, TopologyKind};
use sllt_core::cbs::{try_cbs_intervals, CbsConfig};
use sllt_geom::{centroid, Point};
use sllt_obs::{ProgressEvent, WorkBudget};
use sllt_rng::SplitMix64;
use sllt_route::{ghtree, htree, rsmt, salt, try_dme_intervals, DelayModel, DmeOptions};
use sllt_tree::{ClockNet, ClockTree, NodeKind, Sink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One clock node at the current level: a design FF or a built cluster's
/// driver input.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LevelNode {
    pub pos: Point,
    pub cap_ff: f64,
    /// Delay interval (fastest, slowest) already accumulated below this
    /// node, ps.
    pub interval_ps: (f64, f64),
    pub source: NodeSource,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum NodeSource {
    /// Index into the design's sink list.
    DesignSink(usize),
    /// Index into the flow's built-cluster arena.
    Cluster(usize),
}

/// A routed cluster awaiting joint driver sizing.
#[derive(Debug)]
pub(crate) struct RoutedCluster {
    pub tree: ClockTree,
    pub members: Vec<LevelNode>,
    pub tap: Point,
    pub load: f64,
    pub subtree_lo: f64,
    pub subtree_hi: f64,
}

/// One unit of route work: a cluster's members plus its private RNG
/// stream seed. Today's topology generators are deterministic and ignore
/// the seed; it is split off the flow seed *serially, in cluster order*
/// so a future stochastic generator stays reproducible under any worker
/// count.
struct ClusterJob {
    /// Dense job index — the cluster identity carried in route errors.
    index: usize,
    members: Vec<LevelNode>,
    seed: u64,
}

/// Groups `nodes` by `assignment` and routes every non-empty cluster.
/// Results are returned in cluster-index order; on error the failure of
/// the lowest-indexed failing cluster is reported (also independent of
/// worker interleaving). A panic inside any cluster's routing kernel is
/// contained at cluster granularity (`catch_unwind` around the job) and
/// surfaces as [`CtsError::ClusterPanicked`] — one bad cluster cannot
/// take down the run or poison its siblings.
pub(crate) fn route_clusters(
    cts: &HierarchicalCts,
    nodes: &[LevelNode],
    assignment: &[usize],
    k: usize,
    level: usize,
    attempt: usize,
    budget: &WorkBudget,
) -> Result<Vec<RoutedCluster>, CtsError> {
    let mut seeds = SplitMix64::new(cts.seed ^ (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Single-pass bucketing: a per-cluster scan of `nodes` is O(k·n),
    // which at a million sinks (k ≈ 5·10⁴) costs minutes of pure
    // grouping. Buckets preserve node-index order within each cluster,
    // so the job list is identical to the old filter-per-cluster form.
    let mut buckets: Vec<Vec<LevelNode>> = vec![Vec::new(); k];
    for (node, &a) in nodes.iter().zip(assignment) {
        buckets[a].push(*node);
    }
    let mut index = 0usize;
    let jobs: Vec<ClusterJob> = buckets
        .into_iter()
        .filter_map(|members| {
            // Every cluster index draws its seed, occupied or not, so the
            // streams do not shift when a cluster comes up empty.
            let seed = seeds.next_u64();
            (!members.is_empty()).then(|| {
                let job = ClusterJob {
                    index,
                    members,
                    seed,
                };
                index += 1;
                job
            })
        })
        .collect();

    // Cooperative deadline: the stage's cost is a pure function of the
    // job list and topology (members × weight, summed in cluster order),
    // so the same configuration stops at the same place on every run and
    // worker count — no wall clocks, no shared counters. Checked before
    // any cluster routes; the ladder can recover by falling back to a
    // cheaper topology.
    if let Some(budget) = cts.route_budget {
        let required: u64 = jobs
            .iter()
            .map(|j| j.members.len() as u64 * cts.topology.cost_weight())
            .sum();
        if required > budget {
            return Err(CtsError::StageDeadline {
                level,
                stage: "route",
                budget,
                required,
            });
        }
    }

    let route_contained = |job: &ClusterJob| -> Result<RoutedCluster, CtsError> {
        catch_unwind(AssertUnwindSafe(|| route_cluster(cts, job, level, attempt))).unwrap_or(Err(
            CtsError::ClusterPanicked {
                level,
                cluster: job.index,
            },
        ))
    };

    // Within-level progress: whichever completion pushes the done-work
    // counter (cluster members; the topology weight cancels out of the
    // ratio) past a tenth of the level total emits that decile's
    // event. `fetch_add` linearizes the crossings, so each decile is
    // emitted exactly once and every field is a pure function of
    // (budget, k) — the emitted set is worker-count independent.
    let total_members: u64 = jobs.iter().map(|j| j.members.len() as u64).sum();
    let done_members = AtomicU64::new(0);
    let report_progress = |members: u64| {
        if !cts.progress.enabled() || total_members == 0 {
            return;
        }
        let prev = done_members.fetch_add(members, Ordering::Relaxed);
        let prev_k = prev * 10 / total_members;
        let now_k = ((prev + members) * 10 / total_members).min(10);
        for k in prev_k + 1..=now_k {
            cts.progress.emit(&ProgressEvent::ClusterProgress {
                level,
                tenths: k as u32,
                fraction: budget.fraction_at(budget.level_work() * k / 10),
            });
        }
    };

    let workers = cts.effective_workers(jobs.len());
    if workers <= 1 {
        // Serial path: poll once per cluster so cancellation latency is
        // bounded by a single cluster's routing work.
        let mut out = Vec::with_capacity(jobs.len());
        for job in &jobs {
            if cts.cancel.poll() {
                return Err(CtsError::Cancelled);
            }
            out.push(route_contained(job)?);
            report_progress(job.members.len() as u64);
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<RoutedCluster, CtsError>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    // Telemetry hand-off: workers record into the coordinator's registry
    // (if one is installed), with their spans parented under the route
    // stage's span. Purely observational — shards merge on scope exit,
    // never mid-run, so worker interleaving stays unconstrained.
    let registry = sllt_obs::current();
    let parent_span = sllt_obs::current_span();
    std::thread::scope(|scope| {
        let (next, slots, jobs, registry) = (&next, &slots, &jobs, &registry);
        let route_contained = &route_contained;
        let report_progress = &report_progress;
        for w in 0..workers {
            scope.spawn(move || {
                let _telemetry = registry
                    .as_ref()
                    .map(|r| r.install_worker(&format!("route-worker-{w}"), parent_span));
                loop {
                    // Each worker polls before claiming a cluster, so at
                    // most `workers` clusters start after a cancel fires.
                    if cts.cancel.poll() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let result = route_contained(&jobs[i]);
                    let ok = result.is_ok();
                    slots.lock().expect("no panics hold the slot lock")[i] = Some(result);
                    if ok {
                        report_progress(jobs[i].members.len() as u64);
                    }
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        // A slot left empty means its worker saw the cancel before
        // claiming the cluster; the whole level attempt is discarded.
        .map(|slot| slot.unwrap_or(Err(CtsError::Cancelled)))
        .collect()
}

/// Routes one cluster and computes its timing aggregates.
fn route_cluster(
    cts: &HierarchicalCts,
    job: &ClusterJob,
    level: usize,
    attempt: usize,
) -> Result<RoutedCluster, CtsError> {
    if !cts.faults.is_empty() {
        if let Some(f) = cts
            .faults
            .fires(FaultStage::Route, level, Some(job.index), attempt)
        {
            match f.kind {
                FaultKind::Error => {
                    return Err(CtsError::InjectedFault {
                        stage: "route",
                        level,
                        cluster: Some(job.index),
                    })
                }
                FaultKind::Panic => {
                    panic!("injected panic: route level {level} cluster {}", job.index)
                }
            }
        }
    }
    // One span per cluster, nested under the route stage (workers
    // inherit the stage span as base parent) — this is what gives the
    // Chrome trace its per-worker lanes. Inert without telemetry.
    let _cluster_span = sllt_obs::span("cts.route.cluster");
    let started = sllt_obs::enabled().then(std::time::Instant::now);
    let members = &job.members;
    let _rng_stream = job.seed; // reserved for stochastic topology generators
                                // Invariant: the partition stage never emits an empty cluster (the
                                // min-cost flow assigns every centre at least one member), so the
                                // centroid always exists.
    let tap =
        centroid(&members.iter().map(|m| m.pos).collect::<Vec<_>>()).expect("cluster is non-empty");
    let net = ClockNet::new(
        tap,
        members.iter().map(|m| Sink::new(m.pos, m.cap_ff)).collect(),
    );
    let intervals: Vec<(f64, f64)> = members.iter().map(|m| m.interval_ps).collect();
    let bound = cts.constraints.skew_ps * cts.level_skew_fraction;
    let model = DelayModel::Elmore(cts.tech);

    // Adaptive shallowness: allow whatever path depth costs at most
    // `cluster_latency_slack_ps` of Elmore delay, so compact clusters
    // keep Steiner-light routing while long-haul nets stay shallow.
    let adaptive_eps = |eps: f64| -> f64 {
        let max_md = net.max_source_dist();
        if max_md <= 1e-9 {
            return eps;
        }
        let slack_len = (2.0 * cts.cluster_latency_slack_ps
            / (cts.tech.unit_res_ohm * cts.tech.unit_cap_ff * 1e-3))
            .sqrt();
        eps.max(slack_len / max_md - 1.0).min(10.0)
    };

    // Merge-order generation inside `scheme.build` is nearest-pair
    // accelerated (sllt-route::nnpair), so cluster sizes are not limited
    // by topology generation even when partitioning is configured coarse.
    // Skew-controlled kernels report infeasibility as a typed
    // `DmeError` → `CtsError::ClusterRoute` (recoverable by the ladder);
    // the skew-free generators cannot fail this way, and any residual
    // panic in either family is contained by the caller's
    // `catch_unwind`.
    let route_err = |source| CtsError::ClusterRoute {
        level,
        cluster: job.index,
        source,
    };
    let tree = match cts.topology {
        TopologyKind::Cbs { scheme, eps } => try_cbs_intervals(
            &net,
            &CbsConfig {
                scheme,
                eps: adaptive_eps(eps),
                skew_bound: bound,
                model,
            },
            &intervals,
        )
        .map_err(route_err)?,
        TopologyKind::Bst { scheme } => {
            let topo = scheme.build(&net);
            try_dme_intervals(
                &net,
                &topo.to_hinted(),
                &DmeOptions {
                    skew_bound: bound,
                    model,
                },
                &intervals,
            )
            .map_err(route_err)?
        }
        TopologyKind::Salt { eps } => salt(&net, adaptive_eps(eps)),
        TopologyKind::Rsmt => rsmt::rsmt(&net),
        TopologyKind::HTree => htree(&net, 2),
        TopologyKind::GhTree => ghtree(&net, 2),
    };

    // Cluster timing: Elmore from the tap plus each member's offset.
    let caps = sllt_buffer::repeater::downstream_caps(&tree, &cts.tech, Some(&cts.lib));
    let (rc, map) = tree.to_rc_tree();
    let delays = rc.elmore(&cts.tech, 0.0);
    let mut subtree_hi = 0.0f64;
    let mut subtree_lo = f64::INFINITY;
    for id in tree.sinks() {
        if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
            let d = delays[map[id.index()].ok_or(CtsError::UnmappedSink { level, sink_index })?];
            subtree_hi = subtree_hi.max(d + intervals[sink_index].1);
            subtree_lo = subtree_lo.min(d + intervals[sink_index].0);
        }
    }
    let load = caps[tree.root().index()];
    if let Some(t) = started {
        sllt_obs::count("cts.route.clusters", 1);
        sllt_obs::record("cts.route.cluster_sinks", members.len() as u64);
        sllt_obs::record("cts.route.cluster_us", t.elapsed().as_micros() as u64);
    }
    Ok(RoutedCluster {
        tree,
        members: members.clone(),
        tap,
        load,
        subtree_lo,
        subtree_hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_route::TopologyScheme;
    use sllt_timing::{BufferLibrary, Technology};

    /// Everything a route worker captures must cross threads.
    #[test]
    fn shared_flow_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HierarchicalCts>();
        assert_send_sync::<TopologyScheme>();
        assert_send_sync::<DelayModel>();
        assert_send_sync::<Technology>();
        assert_send_sync::<BufferLibrary>();
        assert_send_sync::<ClockNet>();
        assert_send_sync::<ClockTree>();
        assert_send_sync::<LevelNode>();
        assert_send_sync::<RoutedCluster>();
    }

    /// Cluster seed streams depend only on cluster index, not occupancy
    /// or worker count: the same flow seed always yields the same stream.
    #[test]
    fn cluster_seeds_are_stable() {
        let mut a = SplitMix64::new(0x05117C75 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut b = SplitMix64::new(0x05117C75 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn empty_assignment_routes_nothing() {
        let cts = HierarchicalCts::default();
        let routed = route_clusters(&cts, &[], &[], 4, 0, 0, &WorkBudget::new()).unwrap();
        assert!(routed.is_empty());
    }

    /// The deadline trips before any cluster routes, deterministically,
    /// and reports exactly what the stage would have cost.
    #[test]
    fn route_budget_is_a_typed_deadline() {
        let cts = HierarchicalCts {
            route_budget: Some(3),
            ..Default::default()
        };
        let nodes: Vec<LevelNode> = (0..4)
            .map(|i| LevelNode {
                pos: Point::new(i as f64 * 10.0, 0.0),
                cap_ff: 1.0,
                interval_ps: (0.0, 0.0),
                source: NodeSource::DesignSink(i),
            })
            .collect();
        let assignment = vec![0, 0, 1, 1];
        let err =
            route_clusters(&cts, &nodes, &assignment, 2, 0, 0, &WorkBudget::new()).unwrap_err();
        match err {
            CtsError::StageDeadline {
                level,
                stage,
                budget,
                required,
            } => {
                assert_eq!(level, 0);
                assert_eq!(stage, "route");
                assert_eq!(budget, 3);
                // 4 members × CBS weight 4.
                assert_eq!(required, 16);
            }
            other => panic!("expected StageDeadline, got {other:?}"),
        }
    }
}
