//! Deterministic fault injection for exercising the recovery machinery.
//!
//! A [`FaultPlan`] attaches to
//! [`HierarchicalCts::faults`](crate::flow::HierarchicalCts::faults) and
//! makes a chosen stage fail at a chosen level (and cluster) — as a
//! typed [`CtsError::InjectedFault`](crate::error::CtsError::InjectedFault)
//! or, in the route stage, as a real `panic!` that the worker's
//! containment must catch. The plan is *stateless*: whether a fault
//! fires is a pure function of `(stage, level, cluster, attempt)`, so no
//! atomics are needed, parallel workers cannot race on it, and runs stay
//! bit-identical at any worker count.
//!
//! By default a fault fires only on attempt 0
//! ([`max_attempt`](StageFault::max_attempt) = 1): the degradation
//! ladder's first retry runs clean, which is exactly the "transient
//! failure, bounded recovery" scenario the fault suite asserts. Raising
//! `max_attempt` past the ladder length makes the fault permanent and
//! drives the ladder to
//! [`LadderExhausted`](crate::error::CtsError::LadderExhausted).
//!
//! An empty plan (the default) injects nothing and costs one `Vec`
//! emptiness check per stage.

/// Which stage a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// Level partitioning (balanced K-means + SA).
    Partition,
    /// Per-cluster routing — the parallel stage; the only stage where
    /// [`FaultKind::Panic`] is contained and therefore meaningful.
    Route,
    /// Joint driver sizing.
    Sizing,
}

impl FaultStage {
    /// Stage name as carried in
    /// [`CtsError::InjectedFault`](crate::error::CtsError::InjectedFault).
    pub fn name(self) -> &'static str {
        match self {
            FaultStage::Partition => "partition",
            FaultStage::Route => "route",
            FaultStage::Sizing => "sizing",
        }
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The stage returns
    /// [`CtsError::InjectedFault`](crate::error::CtsError::InjectedFault).
    Error,
    /// The stage panics (`panic!`). Only the route stage contains
    /// panics; injecting this elsewhere aborts the run, which is itself
    /// a property the fault suite checks.
    Panic,
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFault {
    /// Stage to fail.
    pub stage: FaultStage,
    /// Level to fail at.
    pub level: usize,
    /// Cluster to fail at (route stage only; `None` matches every
    /// cluster of the level).
    pub cluster: Option<usize>,
    /// How the failure manifests.
    pub kind: FaultKind,
    /// The fault fires while `attempt < max_attempt`: 1 (the default
    /// via [`StageFault::once`]) means attempt 0 only, so the first
    /// ladder retry recovers; a large value makes the fault permanent.
    pub max_attempt: usize,
}

impl StageFault {
    /// A fault that fires on attempt 0 only — the transient case.
    pub fn once(stage: FaultStage, level: usize, cluster: Option<usize>, kind: FaultKind) -> Self {
        StageFault {
            stage,
            level,
            cluster,
            kind,
            max_attempt: 1,
        }
    }

    /// A fault that fires on every attempt — drives the ladder to
    /// exhaustion.
    pub fn permanent(
        stage: FaultStage,
        level: usize,
        cluster: Option<usize>,
        kind: FaultKind,
    ) -> Self {
        StageFault {
            stage,
            level,
            cluster,
            kind,
            max_attempt: usize::MAX,
        }
    }
}

/// A set of injected faults (empty by default: no injection).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<StageFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan injecting exactly `fault`.
    pub fn single(fault: StageFault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The first fault matching this site, if any. Pure: same inputs,
    /// same answer, on every worker.
    pub(crate) fn fires(
        &self,
        stage: FaultStage,
        level: usize,
        cluster: Option<usize>,
        attempt: usize,
    ) -> Option<&StageFault> {
        self.faults.iter().find(|f| {
            f.stage == stage
                && f.level == level
                && attempt < f.max_attempt
                && (f.cluster.is_none() || f.cluster == cluster)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.fires(FaultStage::Route, 0, Some(0), 0).is_none());
    }

    #[test]
    fn transient_fault_clears_on_retry() {
        let p = FaultPlan::single(StageFault::once(
            FaultStage::Route,
            1,
            Some(3),
            FaultKind::Error,
        ));
        assert!(p.fires(FaultStage::Route, 1, Some(3), 0).is_some());
        assert!(p.fires(FaultStage::Route, 1, Some(3), 1).is_none());
        // Wrong level, cluster, or stage: no fire.
        assert!(p.fires(FaultStage::Route, 0, Some(3), 0).is_none());
        assert!(p.fires(FaultStage::Route, 1, Some(2), 0).is_none());
        assert!(p.fires(FaultStage::Sizing, 1, Some(3), 0).is_none());
    }

    #[test]
    fn wildcard_cluster_matches_everything_at_the_level() {
        let p = FaultPlan::single(StageFault::once(
            FaultStage::Route,
            0,
            None,
            FaultKind::Error,
        ));
        assert!(p.fires(FaultStage::Route, 0, Some(0), 0).is_some());
        assert!(p.fires(FaultStage::Route, 0, Some(17), 0).is_some());
        assert!(p.fires(FaultStage::Route, 0, None, 0).is_some());
    }

    #[test]
    fn permanent_fault_never_clears() {
        let p = FaultPlan::single(StageFault::permanent(
            FaultStage::Partition,
            2,
            None,
            FaultKind::Error,
        ));
        for attempt in 0..64 {
            assert!(p.fires(FaultStage::Partition, 2, None, attempt).is_some());
        }
    }
}
