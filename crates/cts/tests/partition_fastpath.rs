//! Determinism and equivalence suite for the partition fast path.
//!
//! The fast path changed three execution strategies without changing
//! the contract: K-means restarts and SA chains fan out across worker
//! threads (deterministic best-of), the Lloyd nearest-centre scan is
//! grid-pruned (exact), and the per-round capacity assignment
//! warm-starts from the nearest-centre seed and repairs only the
//! overflow (cost-equal to the dense flow). These tests pin the
//! end-to-end consequences on whole trees:
//!
//! - trees are bit-identical at any worker count, on both the small
//!   (restart-scored) and large (sharded-grid) partition paths,
//! - warm and cold assignment produce the same tree on designs with
//!   random (tie-free) coordinates,
//! - the chain count changes the search, never the contract.

use sllt_cts::flow::HierarchicalCts;
use sllt_design::Design;
use sllt_geom::{Point, Rect};
use sllt_rng::prelude::*;
use sllt_tree::Sink;

/// A design with irrational-ish random coordinates: distance ties (and
/// thus alternate-optima ambiguity in the assignment flows) have
/// measure zero, so warm and cold assignment must agree exactly.
fn random_design(seed: u64, n: usize, span: f64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed);
    let sinks: Vec<Sink> = (0..n)
        .map(|_| {
            Sink::new(
                Point::new(rng.random_range(0.0..span), rng.random_range(0.0..span)),
                1.0 + rng.random_range(0.0..1.5),
            )
        })
        .collect();
    Design {
        name: format!("fastpath{n}"),
        num_instances: n,
        utilization: 0.5,
        die: Rect::new(Point::ORIGIN, Point::new(span, span)),
        clock_root: Point::ORIGIN,
        sinks,
    }
}

#[test]
fn restart_and_chain_parallelism_is_bit_identical() {
    // 180 sinks: level 0 takes the restart-scored path (n <= 600), so
    // this drives parallel K-means restarts AND parallel SA chains.
    let design = random_design(11, 180, 400.0);
    let serial = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    }
    .run(&design)
    .unwrap();
    for workers in [2usize, 4] {
        let parallel = HierarchicalCts {
            workers,
            ..HierarchicalCts::default()
        }
        .run(&design)
        .unwrap();
        assert_eq!(serial, parallel, "workers={workers} diverged from serial");
    }
}

#[test]
fn sharded_grid_parallelism_is_bit_identical() {
    // 1400 sinks: level 0 takes the sharded-grid path (n > 600) with
    // the warm overflow-repair assignment inside every cell.
    let design = random_design(23, 1400, 1500.0);
    let serial = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    }
    .run(&design)
    .unwrap();
    for workers in [2usize, 4] {
        let parallel = HierarchicalCts {
            workers,
            ..HierarchicalCts::default()
        }
        .run(&design)
        .unwrap();
        assert_eq!(serial, parallel, "workers={workers} diverged from serial");
    }
}

#[test]
fn warm_and_cold_assignment_build_the_same_tree() {
    // Random coordinates leave no assignment ties, so the exact warm
    // repair must reproduce the dense cold solve decision-for-decision
    // — all the way to an identical built tree. Cover both partition
    // paths.
    for (seed, n, span) in [(7u64, 300, 500.0), (41, 900, 1100.0)] {
        let design = random_design(seed, n, span);
        let warm = HierarchicalCts {
            partition_warm_mcf: true,
            ..HierarchicalCts::default()
        }
        .run(&design)
        .unwrap();
        let cold = HierarchicalCts {
            partition_warm_mcf: false,
            ..HierarchicalCts::default()
        }
        .run(&design)
        .unwrap();
        assert_eq!(warm, cold, "n={n}: warm assignment changed the tree");
    }
}

#[test]
fn chain_count_changes_the_search_not_the_contract() {
    let design = random_design(3, 150, 300.0);
    for chains in [1usize, 2, 4] {
        let tree = HierarchicalCts {
            sa_chains: chains,
            ..HierarchicalCts::default()
        }
        .run(&design)
        .unwrap();
        assert_eq!(tree.sinks().len(), 150, "chains={chains}");
    }
}
