//! Telemetry must be purely observational: the flow builds bit-identical
//! trees whether it runs with the [`NullSink`] or a recording sink, at
//! any worker count — and the record a real run produces must survive
//! the JSONL schema round-trip.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{run_record, CollectingObserver, NullObserver, NullSink, RecordingSink};
use sllt_design::{Design, DesignSpec};
use sllt_geom::{Point, Rect};
use sllt_obs::{RunRecord, Value};
use sllt_rng::prelude::*;
use sllt_tree::Sink;
use std::collections::BTreeMap;

/// Counters the default flow must populate on a multi-level design —
/// one per instrumented deep layer.
const EXPECTED_COUNTERS: [&str; 8] = [
    "cts.route.clusters",
    "cts.sizing.drivers",
    "route.dme.calls",
    "route.dme.merge_segments",
    "partition.kmeans.calls",
    "partition.kmeans.lloyd_iterations",
    "partition.mcf.augmentations",
    "partition.sa.calls",
];

#[test]
fn recording_sink_is_invisible_to_the_result() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let mut counters_by_workers: Vec<BTreeMap<String, u64>> = Vec::new();
    for workers in [1usize, 4] {
        let cts = HierarchicalCts {
            workers,
            ..HierarchicalCts::default()
        };
        let plain = cts
            .run_with_telemetry(&design, &mut NullObserver, &NullSink)
            .unwrap();
        let sink = RecordingSink::new();
        let mut obs = CollectingObserver::new();
        let recorded = cts.run_with_telemetry(&design, &mut obs, &sink).unwrap();
        assert_eq!(
            plain, recorded,
            "workers={workers}: recording telemetry changed the tree"
        );

        let collected = sink.registry().snapshot();
        for counter in EXPECTED_COUNTERS {
            assert!(
                collected.metrics.counter(counter) > 0,
                "workers={workers}: counter {counter} not recorded"
            );
        }

        // Span tree: the flow root is parentless, every stage span is
        // present, and every parent reference resolves.
        let spans = &collected.spans;
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        for name in [
            "cts.flow",
            "cts.level",
            "cts.partition",
            "cts.route",
            "cts.sizing",
            "cts.assemble",
        ] {
            assert!(
                spans.iter().any(|s| s.name == name),
                "workers={workers}: span {name} missing"
            );
        }
        for s in spans {
            if let Some(p) = s.parent {
                assert!(ids.contains(&p), "span {} has dangling parent {p}", s.id);
            }
        }
        let flow = spans.iter().find(|s| s.name == "cts.flow").unwrap();
        assert!(flow.parent.is_none(), "cts.flow must be the root span");

        counters_by_workers.push(collected.metrics.counters.clone());
    }
    // The algorithmic counters are part of the determinism contract:
    // worker sharding must merge to the same totals serial routing gets.
    assert_eq!(
        counters_by_workers[0], counters_by_workers[1],
        "counters diverge between 1 and 4 route workers"
    );
}

fn small_design() -> Design {
    let mut rng = StdRng::seed_from_u64(0xD0C);
    let side = 200.0;
    let sinks: Vec<Sink> = (0..150)
        .map(|_| {
            Sink::new(
                Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
                1.2,
            )
        })
        .collect();
    Design {
        name: "telemetry-unit".into(),
        num_instances: 900,
        utilization: 0.6,
        die: Rect::new(Point::ORIGIN, Point::new(side, side)),
        clock_root: Point::new(0.0, side / 2.0),
        sinks,
    }
}

#[test]
fn real_run_record_round_trips_through_the_schema() {
    let design = small_design();
    let cts = HierarchicalCts::default();
    let sink = RecordingSink::new();
    let mut obs = CollectingObserver::new();
    cts.run_with_telemetry(&design, &mut obs, &sink).unwrap();

    let meta = Value::obj()
        .with("design", design.name.as_str())
        .with("sinks", design.num_ffs());
    let rec = run_record(meta, &obs, sink.registry());
    let event_type =
        |e: &Value| -> Option<String> { e.get("type").and_then(Value::as_str).map(str::to_string) };
    assert!(rec
        .events
        .iter()
        .any(|e| event_type(e).as_deref() == Some("level")));
    assert_eq!(
        event_type(rec.events.last().unwrap()).as_deref(),
        Some("assemble")
    );

    let text = rec.to_jsonl();
    let back = RunRecord::parse_jsonl(&text).expect("real run record must validate");
    assert_eq!(back, rec);
    assert_eq!(back.to_jsonl(), text, "round-trip must be bit-exact");
}
