//! Fault-injection suite: drives the degradation ladder with
//! deterministic injected failures and asserts the recovery contract —
//! transient faults recover with recorded downgrades, permanent faults
//! exhaust the ladder into a typed error, panics are contained at
//! cluster granularity, and recovered runs stay bit-identical at any
//! worker count.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{
    CollectingObserver, CtsError, FaultKind, FaultPlan, FaultStage, RecoveryPolicy, StageFault,
};
use sllt_design::Design;
use sllt_geom::{Point, Rect};
use sllt_tree::Sink;

/// A 96-FF grid: small enough for fast ladder retries, large enough to
/// partition into several clusters per level.
fn grid_design() -> Design {
    let sinks: Vec<Sink> = (0..96)
        .map(|i| {
            Sink::new(
                Point::new((i % 12) as f64 * 15.0, (i / 12) as f64 * 15.0),
                1.0 + (i % 3) as f64 * 0.4,
            )
        })
        .collect();
    Design {
        name: "faultgrid".into(),
        num_instances: 96,
        utilization: 0.5,
        die: Rect::new(Point::ORIGIN, Point::new(200.0, 150.0)),
        clock_root: Point::ORIGIN,
        sinks,
    }
}

fn with_fault(fault: StageFault, recovery: RecoveryPolicy, workers: usize) -> HierarchicalCts {
    HierarchicalCts {
        faults: FaultPlan::single(fault),
        recovery,
        workers,
        ..HierarchicalCts::default()
    }
}

// ---- typed context without recovery ---------------------------------------

#[test]
fn injected_route_error_is_typed_with_context() {
    let cts = with_fault(
        StageFault::once(FaultStage::Route, 0, Some(1), FaultKind::Error),
        RecoveryPolicy::disabled(),
        1,
    );
    match cts.run(&grid_design()).unwrap_err() {
        CtsError::InjectedFault {
            stage,
            level,
            cluster,
        } => {
            assert_eq!(stage, "route");
            assert_eq!(level, 0);
            assert_eq!(cluster, Some(1));
        }
        other => panic!("expected InjectedFault, got {other:?}"),
    }
}

#[test]
fn injected_partition_and_sizing_errors_are_typed() {
    for (stage, name) in [
        (FaultStage::Partition, "partition"),
        (FaultStage::Sizing, "sizing"),
    ] {
        let cts = with_fault(
            StageFault::once(stage, 0, None, FaultKind::Error),
            RecoveryPolicy::disabled(),
            1,
        );
        match cts.run(&grid_design()).unwrap_err() {
            CtsError::InjectedFault {
                stage: s, level, ..
            } => {
                assert_eq!(s, name);
                assert_eq!(level, 0);
            }
            other => panic!("expected InjectedFault in {name}, got {other:?}"),
        }
    }
}

// ---- panic containment ----------------------------------------------------

#[test]
fn route_panic_is_contained_to_a_typed_error() {
    for workers in [1usize, 2] {
        let cts = with_fault(
            StageFault::once(FaultStage::Route, 0, Some(0), FaultKind::Panic),
            RecoveryPolicy::disabled(),
            workers,
        );
        match cts.run(&grid_design()).unwrap_err() {
            CtsError::ClusterPanicked { level, cluster } => {
                assert_eq!(level, 0);
                assert_eq!(cluster, 0);
            }
            other => panic!("workers={workers}: expected ClusterPanicked, got {other:?}"),
        }
    }
}

#[test]
fn panicking_cluster_reports_lowest_index_at_any_worker_count() {
    // Two clusters panic; the error must always name the lowest index,
    // regardless of which worker hit which cluster first.
    for workers in [1usize, 2, 4] {
        let cts = HierarchicalCts {
            faults: FaultPlan {
                faults: vec![
                    StageFault::once(FaultStage::Route, 0, Some(2), FaultKind::Panic),
                    StageFault::once(FaultStage::Route, 0, Some(1), FaultKind::Panic),
                ],
            },
            recovery: RecoveryPolicy::disabled(),
            workers,
            ..HierarchicalCts::default()
        };
        match cts.run(&grid_design()).unwrap_err() {
            CtsError::ClusterPanicked { cluster, .. } => assert_eq!(cluster, 1),
            other => panic!("expected ClusterPanicked, got {other:?}"),
        }
    }
}

// ---- ladder recovery ------------------------------------------------------

#[test]
fn transient_route_error_recovers_and_records_the_downgrade() {
    let cts = with_fault(
        StageFault::once(FaultStage::Route, 0, Some(0), FaultKind::Error),
        RecoveryPolicy::standard(),
        1,
    );
    let mut obs = CollectingObserver::new();
    let tree = cts.run_with_observer(&grid_design(), &mut obs).unwrap();
    tree.validate().unwrap();
    assert_eq!(tree.sinks().len(), 96);

    let l0 = &obs.levels[0];
    assert_eq!(l0.attempts, 2, "one retry clears a transient fault");
    assert_eq!(l0.downgrades.len(), 1);
    assert!(
        l0.downgrades[0].trigger.contains("injected"),
        "{:?}",
        l0.downgrades
    );
    assert_eq!(l0.downgrades[0].attempt, 1);
    // Untouched levels stay clean.
    for l in &obs.levels[1..] {
        assert_eq!(l.attempts, 1);
        assert!(l.downgrades.is_empty());
    }
}

#[test]
fn transient_panic_recovers_under_the_ladder() {
    let cts = with_fault(
        StageFault::once(FaultStage::Route, 0, Some(0), FaultKind::Panic),
        RecoveryPolicy::standard(),
        1,
    );
    let mut obs = CollectingObserver::new();
    let tree = cts.run_with_observer(&grid_design(), &mut obs).unwrap();
    tree.validate().unwrap();
    assert_eq!(obs.levels[0].attempts, 2);
    assert!(obs.levels[0].downgrades[0].trigger.contains("panicked"));
}

#[test]
fn permanent_fault_exhausts_the_ladder() {
    let cts = with_fault(
        StageFault::permanent(FaultStage::Route, 0, Some(0), FaultKind::Error),
        RecoveryPolicy::standard(),
        1,
    );
    match cts.run(&grid_design()).unwrap_err() {
        CtsError::LadderExhausted {
            level,
            attempts,
            last,
        } => {
            assert_eq!(level, 0);
            // identity + 3 skew relaxations + Bst + Rsmt.
            assert_eq!(attempts, 6);
            assert!(matches!(*last, CtsError::InjectedFault { .. }));
        }
        other => panic!("expected LadderExhausted, got {other:?}"),
    }
}

#[test]
fn zero_restarts_recovers_when_recovery_is_enabled() {
    // The same misconfiguration that is a hard error by default
    // (engine.rs::zero_partition_restarts_is_a_typed_error) becomes a
    // recorded downgrade under the ladder's restart floor.
    let cts = HierarchicalCts {
        partition_restarts: 0,
        recovery: RecoveryPolicy::standard(),
        workers: 1,
        ..HierarchicalCts::default()
    };
    let mut obs = CollectingObserver::new();
    let tree = cts.run_with_observer(&grid_design(), &mut obs).unwrap();
    tree.validate().unwrap();
    for l in &obs.levels {
        assert!(l.attempts >= 2, "every level needs the restart floor");
        assert!(l.downgrades[0].trigger.contains("restarts"));
    }
}

#[test]
fn stage_deadline_recovers_by_topology_fallback() {
    // Level 0 routes 96 members: CBS costs 96×4 = 384 units, BST 192,
    // RSMT 96. A budget of 150 forces the ladder through the skew
    // relaxations (same cost, still over) and the BST rung down to RSMT.
    let cts = HierarchicalCts {
        route_budget: Some(150),
        recovery: RecoveryPolicy::standard(),
        workers: 1,
        ..HierarchicalCts::default()
    };
    let mut obs = CollectingObserver::new();
    let tree = cts.run_with_observer(&grid_design(), &mut obs).unwrap();
    tree.validate().unwrap();

    let l0 = &obs.levels[0];
    assert_eq!(l0.attempts, 6, "must climb to the RSMT rung");
    let last = l0.downgrades.last().unwrap();
    assert_eq!(last.topology, Some("rsmt"));
    assert!(last.trigger.contains("budget"), "{:?}", last.trigger);
    // Without recovery the same budget is a typed deadline error.
    let strict = HierarchicalCts {
        route_budget: Some(150),
        ..HierarchicalCts::default()
    };
    match strict.run(&grid_design()).unwrap_err() {
        CtsError::StageDeadline {
            budget, required, ..
        } => {
            assert_eq!(budget, 150);
            assert_eq!(required, 384);
        }
        other => panic!("expected StageDeadline, got {other:?}"),
    }
}

// ---- determinism of recovered runs ----------------------------------------

#[test]
fn recovered_runs_are_bit_identical_at_any_worker_count() {
    let design = grid_design();
    let fault = || StageFault::once(FaultStage::Route, 0, Some(0), FaultKind::Error);
    let serial = with_fault(fault(), RecoveryPolicy::standard(), 1)
        .run(&design)
        .unwrap();
    for workers in [2usize, 4] {
        let parallel = with_fault(fault(), RecoveryPolicy::standard(), workers)
            .run(&design)
            .unwrap();
        assert_eq!(serial, parallel, "workers={workers} diverged");
    }
    // And recovery itself is reproducible run-to-run.
    let again = with_fault(fault(), RecoveryPolicy::standard(), 1)
        .run(&design)
        .unwrap();
    assert_eq!(serial, again);
}

#[test]
fn clean_runs_are_unchanged_by_an_enabled_ladder() {
    // With no fault firing, recovery-enabled and recovery-disabled flows
    // must build the identical tree — the ladder only engages on failure.
    let design = grid_design();
    let base = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let with_recovery = HierarchicalCts {
        recovery: RecoveryPolicy::standard(),
        workers: 1,
        ..HierarchicalCts::default()
    };
    assert_eq!(
        base.run(&design).unwrap(),
        with_recovery.run(&design).unwrap()
    );
}
