//! Behavior of the staged hierarchical engine: flow correctness
//! (migrated from the old monolithic `flow.rs` unit tests), typed
//! errors, parallel-route determinism, and the observer tie-out against
//! the evaluator.

use sllt_cts::eval::evaluate;
use sllt_cts::flow::{HierarchicalCts, TopologyKind};
use sllt_cts::{CollectingObserver, CtsError};
use sllt_design::{Design, DesignSpec};
use sllt_geom::{Point, Rect};
use sllt_timing::BufferLibrary;
use sllt_tree::{NodeKind, Sink};

// ---- flow correctness ----------------------------------------------------

#[test]
fn flow_covers_every_sink_exactly_once() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let cts = HierarchicalCts::default();
    let tree = cts.run(&design).unwrap();
    tree.validate().unwrap();
    let mut seen = vec![false; design.num_ffs()];
    for id in tree.sinks() {
        if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
            assert!(!seen[sink_index], "sink {sink_index} duplicated");
            seen[sink_index] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "some sinks were dropped");
}

#[test]
fn flow_meets_the_paper_constraints() {
    let design = DesignSpec::by_name("s38584").unwrap().instantiate();
    let cts = HierarchicalCts::default();
    let tree = cts.run(&design).unwrap();
    let r = evaluate(&tree, &cts.tech, &cts.lib);
    assert!(
        r.skew_ps <= cts.constraints.skew_ps + 1e-6,
        "skew {}",
        r.skew_ps
    );
    assert!(r.num_buffers > 0);
    assert!(r.max_latency_ps > 0.0 && r.max_latency_ps < 1000.0);
}

#[test]
fn sink_positions_survive_assembly() {
    let design = DesignSpec::by_name("s38417").unwrap().instantiate();
    let cts = HierarchicalCts::default();
    let tree = cts.run(&design).unwrap();
    for id in tree.sinks() {
        if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
            assert!(
                tree.node(id).pos.approx_eq(design.sinks[sink_index].pos),
                "sink {sink_index} moved"
            );
        }
    }
}

fn one_ff_design() -> Design {
    Design {
        name: "one".into(),
        num_instances: 1,
        utilization: 0.5,
        die: Rect::new(Point::ORIGIN, Point::new(100.0, 100.0)),
        clock_root: Point::ORIGIN,
        sinks: vec![Sink::new(Point::new(50.0, 50.0), 1.0)],
    }
}

#[test]
fn single_ff_design_is_a_wire() {
    let tree = HierarchicalCts::default().run(&one_ff_design()).unwrap();
    assert_eq!(tree.sinks().len(), 1);
    tree.validate().unwrap();
}

#[test]
fn sizing_policies_all_meet_the_bound() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    for (equalize, window) in [(true, 0.0), (true, 0.5), (false, 0.0)] {
        let cts = HierarchicalCts {
            equalize_sizing: equalize,
            sizing_window_fraction: window,
            ..HierarchicalCts::default()
        };
        let tree = cts.run(&design).unwrap();
        let r = evaluate(&tree, &cts.tech, &cts.lib);
        assert!(
            r.skew_ps <= cts.constraints.skew_ps + 1e-6,
            "equalize={equalize} window={window}: skew {}",
            r.skew_ps
        );
    }
}

#[test]
fn estimator_policies_all_complete() {
    let design = DesignSpec::by_name("s38417").unwrap().instantiate();
    for est in [
        sllt_buffer::DelayEstimator::None,
        sllt_buffer::DelayEstimator::LowerBound,
        sllt_buffer::DelayEstimator::ChosenCell,
    ] {
        let cts = HierarchicalCts {
            estimator: est,
            ..HierarchicalCts::default()
        };
        let tree = cts.run(&design).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.sinks().len(), design.num_ffs());
    }
}

#[test]
fn topology_kind_changes_the_result() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let mut cts = HierarchicalCts::default();
    let ours = evaluate(&cts.run(&design).unwrap(), &cts.tech, &cts.lib);
    cts.topology = TopologyKind::HTree;
    let htree = evaluate(&cts.run(&design).unwrap(), &cts.tech, &cts.lib);
    assert_ne!(ours.clock_wl_um, htree.clock_wl_um);
}

// ---- typed errors --------------------------------------------------------

#[test]
fn design_without_ffs_is_a_typed_error() {
    let design = Design {
        sinks: vec![],
        ..one_ff_design()
    };
    assert_eq!(
        HierarchicalCts::default().run(&design).unwrap_err(),
        CtsError::NoSinks
    );
}

#[test]
fn empty_buffer_library_is_a_typed_error() {
    let cts = HierarchicalCts {
        lib: BufferLibrary::from_cells(vec![]),
        ..HierarchicalCts::default()
    };
    assert_eq!(
        cts.run(&one_ff_design()).unwrap_err(),
        CtsError::EmptyBufferLibrary
    );
}

#[test]
fn zero_partition_restarts_is_a_typed_error() {
    let cts = HierarchicalCts {
        partition_restarts: 0,
        ..HierarchicalCts::default()
    };
    assert_eq!(
        cts.run(&one_ff_design()).unwrap_err(),
        CtsError::NoPartitionRestarts
    );
}

// ---- parallel determinism ------------------------------------------------

#[test]
fn parallel_route_is_bit_identical_to_serial() {
    for name in ["s35932", "s38584"] {
        let design = DesignSpec::by_name(name).unwrap().instantiate();
        let serial = HierarchicalCts {
            workers: 1,
            ..HierarchicalCts::default()
        }
        .run(&design)
        .unwrap();
        for workers in [2usize, 4] {
            let parallel = HierarchicalCts {
                workers,
                ..HierarchicalCts::default()
            }
            .run(&design)
            .unwrap();
            assert_eq!(
                serial, parallel,
                "{name}: workers={workers} diverged from serial"
            );
        }
    }
}

// ---- observer tie-out against the evaluator ------------------------------

#[test]
fn level_reports_tie_out_with_the_evaluator() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let cts = HierarchicalCts::default();
    let mut obs = CollectingObserver::new();
    let tree = cts.run_with_observer(&design, &mut obs).unwrap();
    let r = evaluate(&tree, &cts.tech, &cts.lib);

    assert!(!obs.levels.is_empty());
    assert!(obs.assemble.is_some());
    // Every level shrinks the node count, and cluster counts chain.
    for pair in obs.levels.windows(2) {
        assert_eq!(pair[0].num_clusters, pair[1].num_nodes);
        assert!(pair[0].num_clusters < pair[0].num_nodes);
    }
    assert_eq!(obs.levels[0].num_nodes, design.num_ffs());
    assert_eq!(obs.levels.last().unwrap().num_clusters, 1);

    // Wirelength: the assembled tree is exactly the per-level cluster
    // trees plus the root trunk (repeatering splits edges, adding none).
    let wl_sum = obs.total_wirelength_um();
    assert!(
        (wl_sum - r.clock_wl_um).abs() <= 1e-6 * r.clock_wl_um.max(1.0),
        "level WL {wl_sum} vs evaluator {}",
        r.clock_wl_um
    );

    // Capacitance: design sink pins + every buffer the flow reported
    // (drivers, pads, repeaters) + wire cap over the tied-out WL.
    let sink_cap: f64 = design.sinks.iter().map(|s| s.cap_ff).sum();
    let cap = sink_cap + obs.total_buffer_input_cap_ff() + cts.tech.wire_cap(r.clock_wl_um);
    assert!(
        (cap - r.clock_cap_ff).abs() <= 1e-6 * r.clock_cap_ff.max(1.0),
        "report cap {cap} vs evaluator {}",
        r.clock_cap_ff
    );
}
