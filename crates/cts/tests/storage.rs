//! Storage fault tolerance: a failing disk must never abort a running
//! flow. With a [`FaultFs`] injecting ENOSPC/EIO/short-writes/torn-syncs
//! into the checkpoint journal, `run_checkpointed` must degrade to
//! in-memory-only operation — emitting the structured
//! `StorageDegraded` event — and still produce a tree bit-identical to
//! an unfaulted run. Whatever journal prefix survived must stay
//! loadable and resumable.

use sllt_cts::{FlowObserver, HierarchicalCts};
use sllt_obs::progress::{CollectingProgress, ProgressEvent};
use sllt_obs::vfs::{FaultConfig, FaultFs};
use sllt_obs::{journal::read_journal, Progress};
use std::path::PathBuf;
use std::sync::Arc;

fn cts() -> HierarchicalCts {
    HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    }
}

fn design() -> sllt_design::Design {
    sllt_design::design_by_name("grid64").expect("grid64 synthesizes")
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sllt_storage_{tag}_{}.jsonl", std::process::id()))
}

#[derive(Default)]
struct DegradeSpy {
    degraded_at: Option<(usize, String)>,
}

impl FlowObserver for DegradeSpy {
    fn on_storage_degraded(&mut self, level: usize, detail: &str) {
        self.degraded_at = Some((level, detail.to_string()));
    }
}

/// One degradation scenario: run with the fault schedule, assert the
/// tree is bit-identical to the clean reference, the degradation was
/// reported, and the surviving journal prefix still resumes to the
/// same tree.
fn degrades_and_stays_bit_identical(tag: &str, fault_spec: &str) {
    let design = design();
    let clean = cts();
    let reference = clean.run(&design).expect("clean run");

    let path = tmp(tag);
    let fs = FaultFs::over_real(FaultConfig::parse(fault_spec).expect("spec"));
    let progress = Arc::new(CollectingProgress::new());
    let mut faulty = cts();
    faulty.vfs = Arc::new(fs.clone());
    faulty.progress = Progress::new(progress.clone());
    let mut spy = DegradeSpy::default();
    let tree = faulty
        .run_checkpointed_with_observer(&design, &path, &mut spy)
        .expect("storage failure must never abort the flow");
    assert_eq!(tree, reference, "degraded run must build the same tree");
    assert!(fs.injected() >= 1, "the schedule must actually fire");

    // The structured event fired, through both channels.
    let (level, detail) = spy.degraded_at.expect("observer hook fired");
    let event = progress
        .snapshot()
        .into_iter()
        .find_map(|ev| match ev {
            ProgressEvent::StorageDegraded { level, detail } => Some((level, detail)),
            _ => None,
        })
        .expect("progress stream carries the degradation event");
    assert_eq!(event, (level, detail));

    // Whatever prefix landed is a valid journal (at most one torn
    // tail), and resuming from it with a healthy disk rebuilds the
    // exact same tree.
    let j = read_journal(&path).expect("surviving journal prefix must stay readable");
    assert!(
        j.records.len() + j.frames.len() >= 1,
        "meta record must have committed before the fault"
    );
    let resumed = clean.resume(&design, &path).expect("resume from prefix");
    assert_eq!(resumed, reference, "resume must be bit-identical");
    std::fs::remove_file(&path).ok();
}

#[test]
fn enospc_mid_run_degrades_and_stays_bit_identical() {
    // Ops 1..=5 cover create + meta (write,sync) + level 0 (write,sync);
    // the level-1 append hits ENOSPC.
    degrades_and_stays_bit_identical("enospc", "seed=11,after=5,kinds=enospc");
}

#[test]
fn short_write_mid_run_degrades_and_stays_bit_identical() {
    degrades_and_stays_bit_identical("short", "seed=13,after=5,kinds=short");
}

#[test]
fn torn_sync_mid_run_degrades_and_stays_bit_identical() {
    degrades_and_stays_bit_identical("torn", "seed=17,after=6,kinds=torn");
}

#[test]
fn mixed_faults_at_low_rate_never_abort_the_flow() {
    let design = design();
    let clean = cts();
    let reference = clean.run(&design).expect("clean run");
    for seed in 0..8u64 {
        let path = tmp(&format!("mixed_{seed}"));
        let spec = format!("seed={seed},after=2,rate=0.35");
        let fs = FaultFs::over_real(FaultConfig::parse(&spec).unwrap());
        let mut faulty = cts();
        faulty.vfs = Arc::new(fs.clone());
        match faulty.run_checkpointed(&design, &path) {
            Ok(tree) => assert_eq!(tree, reference, "seed {seed}"),
            // Creating the journal (file create + meta write + meta
            // sync = the first three ops) can fault — that is a
            // pre-flight error, reported before the flow runs. Any
            // later failure must degrade, never abort.
            Err(e) => assert!(
                fs.ops() <= 3,
                "seed {seed}: flow aborted mid-run on a storage fault: {e}"
            ),
        }
        if path.exists() {
            read_journal(&path).expect("journal readable after faults");
        }
        std::fs::remove_file(&path).ok();
    }
}
