//! Live tracing and progress must be purely observational — and their
//! outputs must be well-formed.
//!
//! Three contracts pinned against the real engine on s35932:
//!
//! 1. **Bit-identity** — a traced run (recording sink + streaming trace
//!    rings) builds the same tree as an untraced run, at 1/2/4 workers;
//! 2. **Chrome export shape** — the exported trace parses, carries the
//!    stage spans, per-worker lanes, and the deep-layer counter tracks;
//! 3. **Progress determinism** — the *set* of progress events (every
//!    field, fractions included) is identical at any worker count; only
//!    the interleaving order may differ.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{
    CollectingProgress, NullObserver, NullSink, Progress, ProgressEvent, RecordingSink,
};
use sllt_design::DesignSpec;
use sllt_obs::{chrome_trace, read_trace, TraceWriter, Value};
use std::sync::Arc;

#[test]
fn traced_runs_build_bit_identical_trees() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let mut traces = Vec::new();
    for workers in [1usize, 2, 4] {
        let cts = HierarchicalCts {
            workers,
            ..HierarchicalCts::default()
        };
        let plain = cts
            .run_with_telemetry(&design, &mut NullObserver, &NullSink)
            .unwrap();

        let sink = RecordingSink::new();
        let hub = sink
            .registry()
            .enable_tracing(sllt_obs::DEFAULT_TRACE_CAPACITY);
        let traced = cts
            .run_with_telemetry(&design, &mut NullObserver, &sink)
            .unwrap();
        assert_eq!(
            plain, traced,
            "workers={workers}: tracing changed the built tree"
        );
        traces.push((workers, hub.drain()));
    }

    // The journal + Chrome pipeline over the 4-worker trace.
    let (_, chunks) = traces.iter().find(|(w, _)| *w == 4).unwrap();
    assert!(
        chunks.iter().map(|c| c.events.len()).sum::<usize>() > 0,
        "4-worker run produced no trace events"
    );
    let path = std::env::temp_dir().join(format!("sllt_cts_trace_{}.jsonl", std::process::id()));
    let mut writer = TraceWriter::create(&path, "s35932").unwrap();
    writer.write_chunks(chunks).unwrap();
    drop(writer);
    let tf = read_trace(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(tf.design, "s35932");
    assert!(!tf.torn);

    let doc = chrome_trace(&tf);
    // Self-validation: the export parses back bit-exactly.
    let text = doc.encode();
    let back = sllt_obs::json::parse(&text).expect("Chrome JSON parses");
    assert_eq!(back.encode(), text);

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let span_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for stage in [
        "cts.flow",
        "cts.level",
        "cts.partition",
        "cts.route",
        "cts.route.cluster",
        "cts.sizing",
        "cts.assemble",
    ] {
        assert!(span_names.contains(stage), "stage span {stage} missing");
    }
    // Per-worker lanes: cluster spans land on more than one tid.
    let cluster_lanes: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("B")
                && e.get("name").and_then(Value::as_str) == Some("cts.route.cluster")
        })
        .filter_map(|e| e.get("tid").and_then(Value::as_u64))
        .collect();
    assert!(
        cluster_lanes.len() > 1,
        "expected cluster spans on multiple worker lanes, got {cluster_lanes:?}"
    );
    // Counter tracks for the deep layers.
    let counter_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for counter in [
        "cts.route.clusters",
        "partition.mcf.augmentations",
        "partition.kmeans.lloyd_iterations",
    ] {
        assert!(
            counter_names.contains(counter),
            "counter track {counter} missing; have {counter_names:?}"
        );
    }
}

/// Canonical form for set comparison: the encoded JSON of every event,
/// sorted. Fractions are pure integer-derived arithmetic, so they must
/// match to the last bit across worker counts.
fn canonical(events: &[ProgressEvent]) -> Vec<String> {
    let mut enc: Vec<String> = events.iter().map(|e| e.to_value().encode()).collect();
    enc.sort();
    enc
}

#[test]
fn progress_event_set_is_worker_count_independent() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let mut sets = Vec::new();
    for workers in [1usize, 2, 4] {
        let progress = Arc::new(CollectingProgress::new());
        let cts = HierarchicalCts {
            workers,
            progress: Progress::new(progress.clone()),
            ..HierarchicalCts::default()
        };
        cts.run(&design).unwrap();
        let events = progress.snapshot();

        // Shape: starts with FlowStart, ends with Done at fraction 1.
        assert!(matches!(
            events.first(),
            Some(ProgressEvent::FlowStart { .. })
        ));
        assert!(
            matches!(events.last(), Some(ProgressEvent::Done { fraction }) if *fraction == 1.0)
        );
        // Every level crosses all ten deciles exactly once.
        let levels: std::collections::BTreeSet<usize> = events
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::LevelStart { level, .. } => Some(*level),
                _ => None,
            })
            .collect();
        for level in &levels {
            let mut tenths: Vec<u32> = events
                .iter()
                .filter_map(|e| match e {
                    ProgressEvent::ClusterProgress {
                        level: l, tenths, ..
                    } if l == level => Some(*tenths),
                    _ => None,
                })
                .collect();
            tenths.sort_unstable();
            assert_eq!(
                tenths,
                (1..=10).collect::<Vec<u32>>(),
                "workers={workers} level {level}: decile set wrong"
            );
        }
        sets.push((workers, canonical(&events)));
    }
    for (workers, set) in &sets[1..] {
        assert_eq!(
            set, &sets[0].1,
            "progress event set diverges between 1 and {workers} workers"
        );
    }
}

/// Fractions never decrease in delivery order on a clean run — the
/// work-budget estimate is conservative, not oscillating.
#[test]
fn progress_fractions_are_monotone_in_delivery_order() {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let progress = Arc::new(CollectingProgress::new());
    let cts = HierarchicalCts {
        progress: Progress::new(progress.clone()),
        ..HierarchicalCts::default()
    };
    cts.run(&design).unwrap();
    let events = progress.snapshot();
    let mut last = 0.0f64;
    for ev in &events {
        let f = ev.fraction();
        assert!(
            f + 1e-12 >= last,
            "fraction regressed: {last} -> {f} at {ev:?}"
        );
        last = f;
    }
}
