//! Degenerate-input corpus: pathological but *constructible* designs.
//!
//! The contract under test is the flow's no-panic guarantee: every case
//! here either produces a valid tree covering every sink or returns a
//! specific typed [`CtsError`] — an abort is always a bug. The corpus
//! covers the geometric degeneracies (0/1/2 sinks, all-coincident,
//! all-collinear), configuration degeneracies (one-entry buffer
//! library, broken constraints), and sanitizer-rejected inputs
//! (non-finite and oversized coordinates, negative caps).

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{CtsConstraints, CtsError};
use sllt_design::Design;
use sllt_geom::{Point, Rect};
use sllt_timing::BufferLibrary;
use sllt_tree::{NodeKind, Sink};

fn design(sinks: Vec<Sink>) -> Design {
    Design {
        name: "degenerate".into(),
        num_instances: sinks.len().max(1),
        utilization: 0.5,
        die: Rect::new(Point::ORIGIN, Point::new(200.0, 200.0)),
        clock_root: Point::ORIGIN,
        sinks,
    }
}

/// Runs the flow and, on success, checks the tree is valid and covers
/// every sink exactly once.
fn run_and_check(cts: &HierarchicalCts, d: &Design) -> Result<(), CtsError> {
    let tree = cts.run(d)?;
    tree.validate().expect("flow returned a malformed tree");
    let mut seen = vec![false; d.sinks.len()];
    for id in tree.sinks() {
        if let NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
            assert!(!seen[sink_index], "sink {sink_index} duplicated");
            seen[sink_index] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "some sinks were dropped");
    Ok(())
}

#[test]
fn zero_sinks_is_no_sinks() {
    let err = run_and_check(&HierarchicalCts::default(), &design(vec![])).unwrap_err();
    assert_eq!(err, CtsError::NoSinks);
}

#[test]
fn one_and_two_sinks_build() {
    let cts = HierarchicalCts::default();
    run_and_check(&cts, &design(vec![Sink::new(Point::new(50.0, 50.0), 1.0)])).unwrap();
    run_and_check(
        &cts,
        &design(vec![
            Sink::new(Point::new(10.0, 10.0), 1.0),
            Sink::new(Point::new(190.0, 150.0), 2.0),
        ]),
    )
    .unwrap();
}

#[test]
fn all_coincident_sinks_build() {
    // Twenty flip-flops on the same site: every merge segment collapses
    // to a point and every distance is zero.
    let sinks = (0..20)
        .map(|_| Sink::new(Point::new(100.0, 100.0), 1.0))
        .collect();
    run_and_check(&HierarchicalCts::default(), &design(sinks)).unwrap();
}

#[test]
fn all_collinear_sinks_build() {
    // Horizontal, vertical, and 45° lines (the worst case for rotated
    // (x±y)-space geometry: the whole net maps onto one rotated axis).
    for (dx, dy) in [(6.0, 0.0), (0.0, 6.0), (5.0, 5.0)] {
        let sinks = (0..30)
            .map(|i| Sink::new(Point::new(10.0 + i as f64 * dx, 10.0 + i as f64 * dy), 1.0))
            .collect();
        run_and_check(&HierarchicalCts::default(), &design(sinks))
            .unwrap_or_else(|e| panic!("collinear ({dx},{dy}): {e}"));
    }
}

#[test]
fn one_entry_buffer_library_builds_or_errors_typed() {
    // Only the largest n28 cell survives: sizing has no choices and
    // padding uses the same cell.
    let full = BufferLibrary::n28();
    let largest = full.largest().clone();
    let cts = HierarchicalCts {
        lib: BufferLibrary::from_cells(vec![largest]),
        ..HierarchicalCts::default()
    };
    let sinks = (0..64)
        .map(|i| {
            Sink::new(
                Point::new((i % 8) as f64 * 20.0, (i / 8) as f64 * 20.0),
                1.0,
            )
        })
        .collect();
    // Success or a typed error are both acceptable; a panic is not.
    let _ = run_and_check(&cts, &design(sinks));
}

#[test]
fn empty_buffer_library_is_typed() {
    let cts = HierarchicalCts {
        lib: BufferLibrary::from_cells(vec![]),
        ..HierarchicalCts::default()
    };
    let err = run_and_check(&cts, &design(vec![Sink::new(Point::new(1.0, 1.0), 1.0)])).unwrap_err();
    assert_eq!(err, CtsError::EmptyBufferLibrary);
}

#[test]
fn sanitizer_rejects_unusable_coordinates_and_caps() {
    let cases = [
        design(vec![Sink::new(Point::new(f64::NAN, 0.0), 1.0)]),
        design(vec![Sink::new(Point::new(0.0, f64::INFINITY), 1.0)]),
        design(vec![Sink::new(Point::new(2e12, 0.0), 1.0)]),
        design(vec![Sink::new(Point::new(1.0, 1.0), f64::NAN)]),
        design(vec![Sink::new(Point::new(1.0, 1.0), -2.0)]),
        {
            let mut d = design(vec![Sink::new(Point::new(1.0, 1.0), 1.0)]);
            d.clock_root = Point::new(f64::NAN, f64::NAN);
            d
        },
    ];
    for d in &cases {
        match run_and_check(&HierarchicalCts::default(), d) {
            Err(CtsError::InvalidDesign { detail }) => {
                assert!(!detail.is_empty(), "detail must name the defect");
            }
            other => panic!("expected InvalidDesign, got {other:?}"),
        }
    }
    // After repair, the same designs pass the gate: either every sink was
    // dropped (NoSinks) or the flow runs clean.
    for d in &cases {
        let (fixed, _report) = sllt_design::sanitize::repair(d);
        assert!(sllt_design::sanitize::first_fatal(&fixed).is_none());
        if fixed.sinks.is_empty() {
            assert_eq!(
                run_and_check(&HierarchicalCts::default(), &fixed).unwrap_err(),
                CtsError::NoSinks
            );
        } else {
            run_and_check(&HierarchicalCts::default(), &fixed).unwrap();
        }
    }
}

#[test]
fn broken_constraints_are_typed_not_panics() {
    let d = design(vec![
        Sink::new(Point::new(1.0, 1.0), 1.0),
        Sink::new(Point::new(9.0, 4.0), 1.0),
    ]);
    for (c, field) in [
        (
            CtsConstraints {
                skew_ps: -1.0,
                ..CtsConstraints::paper()
            },
            "skew_ps",
        ),
        (
            CtsConstraints {
                skew_ps: f64::NAN,
                ..CtsConstraints::paper()
            },
            "skew_ps",
        ),
        (
            CtsConstraints {
                max_fanout: 0,
                ..CtsConstraints::paper()
            },
            "max_fanout",
        ),
        (
            CtsConstraints {
                max_cap_ff: 0.0,
                ..CtsConstraints::paper()
            },
            "max_cap_ff",
        ),
        (
            CtsConstraints {
                max_wl_um: f64::NEG_INFINITY,
                ..CtsConstraints::paper()
            },
            "max_wl_um",
        ),
    ] {
        let cts = HierarchicalCts {
            constraints: c,
            ..HierarchicalCts::default()
        };
        match run_and_check(&cts, &d) {
            Err(CtsError::InvalidConstraints { field: f, .. }) => assert_eq!(f, field),
            other => panic!("expected InvalidConstraints({field}), got {other:?}"),
        }
    }
}

#[test]
fn degenerate_cases_also_build_under_every_topology() {
    use sllt_cts::TopologyKind;
    use sllt_route::TopologyScheme;
    let coincident: Vec<Sink> = (0..8)
        .map(|_| Sink::new(Point::new(7.0, 7.0), 1.0))
        .collect();
    let pair = vec![
        Sink::new(Point::new(0.0, 0.0), 1.0),
        Sink::new(Point::new(100.0, 100.0), 1.0),
    ];
    for topo in [
        TopologyKind::Cbs {
            scheme: TopologyScheme::GreedyDist,
            eps: 0.2,
        },
        TopologyKind::Bst {
            scheme: TopologyScheme::GreedyDist,
        },
        TopologyKind::Salt { eps: 0.2 },
        TopologyKind::Rsmt,
        TopologyKind::HTree,
        TopologyKind::GhTree,
    ] {
        let cts = HierarchicalCts {
            topology: topo,
            ..HierarchicalCts::default()
        };
        for sinks in [coincident.clone(), pair.clone()] {
            run_and_check(&cts, &design(sinks)).unwrap_or_else(|e| panic!("{topo:?}: {e}"));
        }
    }
}
