//! Cancellation-latency suite.
//!
//! Fires the [`CancelToken`] at deterministic "random" points across a
//! run and asserts the two halves of the contract: the flow stops within
//! a bounded number of work units (polls) after the fire, and the
//! checkpoint journal left behind is loadable and resumes to the exact
//! reference tree — at 1, 2, and 4 workers.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{CancelToken, Checkpoint, CtsError};
use sllt_design::Design;
use sllt_geom::{Point, Rect};
use sllt_tree::Sink;
use std::path::PathBuf;

fn grid_design() -> Design {
    let sinks: Vec<Sink> = (0..96)
        .map(|i| {
            Sink::new(
                Point::new((i % 12) as f64 * 15.0, (i / 12) as f64 * 15.0),
                1.0 + (i % 3) as f64 * 0.4,
            )
        })
        .collect();
    Design {
        name: "cancelgrid".into(),
        num_instances: 96,
        utilization: 0.5,
        die: Rect::new(Point::ORIGIN, Point::new(200.0, 150.0)),
        clock_root: Point::ORIGIN,
        sinks,
    }
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sllt_cancel_{tag}_{}.jsonl", std::process::id()))
}

fn flow(workers: usize, cancel: CancelToken) -> HierarchicalCts {
    HierarchicalCts {
        workers,
        cancel,
        ..HierarchicalCts::default()
    }
}

/// Total polls an uninterrupted serial run performs — the work-unit
/// budget the fire points sample from.
fn total_polls(design: &Design) -> u64 {
    let token = CancelToken::new();
    flow(1, token.clone()).run(design).unwrap();
    token.polls()
}

#[test]
fn pre_fired_token_stops_before_any_work() {
    let design = grid_design();
    let token = CancelToken::new();
    token.cancel();
    let err = flow(1, token.clone()).run(&design).unwrap_err();
    assert_eq!(err, CtsError::Cancelled);
    assert!(
        token.polls() <= 2,
        "a pre-fired token must stop at the first poll, took {}",
        token.polls()
    );
}

#[test]
fn cancelled_error_is_not_retried_by_the_ladder() {
    // With recovery enabled, cancellation must propagate immediately —
    // retrying a level against the caller's stop request would multiply
    // the latency by the ladder length.
    let design = grid_design();
    let token = CancelToken::fire_after_polls(3);
    let cts = HierarchicalCts {
        recovery: sllt_cts::RecoveryPolicy::standard(),
        workers: 1,
        cancel: token.clone(),
        ..HierarchicalCts::default()
    };
    assert_eq!(cts.run(&design).unwrap_err(), CtsError::Cancelled);
    let after = token.polls().saturating_sub(3);
    assert!(
        after <= 3,
        "ladder retried after cancel: {after} extra polls"
    );
}

#[test]
fn inert_token_changes_nothing() {
    let design = grid_design();
    let reference = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    }
    .run(&design)
    .unwrap();
    let tree = flow(1, CancelToken::new()).run(&design).unwrap();
    assert_eq!(tree, reference, "an unfired token must be a no-op");
}

#[test]
fn randomized_fire_points_stop_within_bounded_work_and_resume_exactly() {
    let design = grid_design();
    let budget = total_polls(&design);
    assert!(budget > 8, "run too small to sample fire points: {budget}");
    let reference = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    }
    .run(&design)
    .unwrap();

    // Deterministic "random" sample across the whole run, plus the
    // edges. (SplitMix-style mixing of the index keeps the points stable
    // run-to-run without a time-seeded RNG.)
    let mut fire_points: Vec<u64> = (0..10u64)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5);
            z ^= z >> 31;
            z % budget.max(1)
        })
        .collect();
    fire_points.extend([1, 2, budget / 2, budget - 1]);

    for workers in [1usize, 2, 4] {
        for &fire_at in &fire_points {
            let token = CancelToken::fire_after_polls(fire_at.max(1));
            let path = journal_path(&format!("w{workers}_f{fire_at}"));
            let cts = flow(workers, token.clone());
            let result = cts.run_checkpointed(&design, &path);
            match result {
                Err(CtsError::Cancelled) => {
                    // Bounded latency: after the token fires, each of
                    // the `workers` route threads may complete at most
                    // the poll it is about to make, plus the serial
                    // stage's own final poll.
                    let after = token.polls().saturating_sub(fire_at.max(1));
                    assert!(
                        after <= workers as u64 + 2,
                        "workers={workers} fire_at={fire_at}: {after} polls after fire"
                    );
                    // The journal is valid and resumes to the reference.
                    let resume_cts = flow(workers, CancelToken::new());
                    let ckpt = Checkpoint::load(&path, &resume_cts, &design).unwrap();
                    assert!(ckpt.torn().is_none(), "cancel never tears the journal");
                    let tree = resume_cts.resume(&design, &path).unwrap();
                    assert_eq!(
                        tree, reference,
                        "workers={workers} fire_at={fire_at}: resume diverged"
                    );
                }
                Ok(tree) => {
                    // Fired too late to observe (or not at all): the run
                    // completed; it must have completed *correctly*.
                    assert_eq!(tree, reference);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[cfg(unix)]
#[test]
fn sigterm_cancels_a_running_flow() {
    // The daemon's drain trigger: a SIGTERM routed through
    // `install_signals` must behave exactly like a user cancel — the
    // flow stops with `Cancelled`, it is not torn down mid-write.
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let token = CancelToken::new();
    sllt_cts::cancel::install_signals(&token);
    // SAFETY: raising a signal we just installed a handler for; the
    // handler only stores an atomic.
    unsafe {
        raise(SIGTERM);
    }
    assert!(
        token.is_cancelled(),
        "SIGTERM handler must fire the installed token"
    );

    let design = grid_design();
    let err = flow(1, token).run(&design).unwrap_err();
    assert_eq!(err, CtsError::Cancelled);
}

#[test]
fn cancellation_mid_parallel_route_reports_cancelled_not_a_cluster_error() {
    // Fire inside the widest level so several route workers see the stop
    // mid-stage; the surfaced error must be Cancelled (not a synthetic
    // cluster failure), regardless of interleaving.
    let design = grid_design();
    let budget = total_polls(&design);
    for workers in [2usize, 4] {
        for fire_at in [budget / 4, budget / 3, budget / 2] {
            let token = CancelToken::fire_after_polls(fire_at.max(1));
            match flow(workers, token).run(&design) {
                Err(CtsError::Cancelled) | Ok(_) => {}
                Err(other) => panic!("workers={workers} fire_at={fire_at}: {other}"),
            }
        }
    }
}
