//! Kill/resume determinism suite.
//!
//! Simulates a crash at every point a real kill can leave the journal —
//! after any record boundary and mid-record — and asserts that
//! [`HierarchicalCts::resume`] rebuilds a tree bit-identical to the
//! uninterrupted reference. The small synthetic-design cases run in
//! every profile; the ISCAS sweeps (s35932, s38584 × 1/2/4 workers) are
//! release-only and exercised by `scripts/ci.sh`.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{
    Checkpoint, CtsError, FaultKind, FaultPlan, FaultStage, RecoveryPolicy, StageFault,
};
use sllt_cts::{CollectingObserver, FlowObserver, LevelReport};
use sllt_design::{Design, DesignSpec};
use sllt_geom::{Point, Rect};
use sllt_tree::{ClockTree, Sink};
use std::path::{Path, PathBuf};

fn grid_design() -> Design {
    let sinks: Vec<Sink> = (0..96)
        .map(|i| {
            Sink::new(
                Point::new((i % 12) as f64 * 15.0, (i / 12) as f64 * 15.0),
                1.0 + (i % 3) as f64 * 0.4,
            )
        })
        .collect();
    Design {
        name: "ckptgrid".into(),
        num_instances: 96,
        utilization: 0.5,
        die: Rect::new(Point::ORIGIN, Point::new(200.0, 150.0)),
        clock_root: Point::ORIGIN,
        sinks,
    }
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sllt_ckpt_{tag}_{}.jsonl", std::process::id()))
}

/// Byte offsets of every record boundary in the journal (after the
/// terminating newline of each record), including 0. Record-structure
/// aware: a schema-2 binary frame's payload may contain `0x0A` bytes,
/// so newlines alone do not delimit records — frames are skipped whole
/// via their length header.
fn boundaries(bytes: &[u8]) -> Vec<usize> {
    use sllt_obs::journal::{FRAME_MARKER, FRAME_OVERHEAD};
    let mut out = vec![0usize];
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == FRAME_MARKER {
            let Some(hdr) = bytes.get(i + 1..i + 5) else {
                break;
            };
            let len = u32::from_le_bytes(hdr.try_into().unwrap()) as usize;
            i += FRAME_OVERHEAD + len;
        } else {
            match bytes[i..].iter().position(|&b| b == b'\n') {
                Some(nl) => i += nl + 1,
                None => break,
            }
        }
        if i <= bytes.len() {
            out.push(i);
        }
    }
    out
}

/// Truncates `full` to `len` bytes at `path`, resumes, and asserts the
/// rebuilt tree matches `reference`. Returns the error when resume
/// legitimately cannot proceed (journal cut before the meta record).
fn resume_truncated(
    cts: &HierarchicalCts,
    design: &Design,
    full: &[u8],
    len: usize,
    path: &Path,
    reference: &ClockTree,
) -> Result<(), CtsError> {
    std::fs::write(path, &full[..len]).unwrap();
    let tree = cts.resume(design, path)?;
    assert_eq!(
        &tree, reference,
        "resume from a journal cut at byte {len} diverged"
    );
    Ok(())
}

#[test]
fn checkpointed_run_matches_plain_run() {
    let design = grid_design();
    let cts = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let reference = cts.run(&design).unwrap();
    let path = journal_path("plain");
    let tree = cts.run_checkpointed(&design, &path).unwrap();
    assert_eq!(tree, reference, "checkpointing must be observational");
    // The journal parses and carries one record per level.
    let ckpt = Checkpoint::load(&path, &cts, &design).unwrap();
    assert!(ckpt.levels() >= 2, "expected a multi-level run");
    assert!(ckpt.torn().is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_from_every_boundary_and_mid_record_rebuilds_the_same_tree() {
    let design = grid_design();
    let cts = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let path = journal_path("cut");
    let reference = cts.run_checkpointed(&design, &path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let cuts = boundaries(&full);
    assert!(cuts.len() >= 3, "expected meta + at least two levels");

    for (i, &cut) in cuts.iter().enumerate() {
        let r = resume_truncated(&cts, &design, &full, cut, &path, &reference);
        if i == 0 {
            // No meta record at all: resume must refuse, not guess.
            assert!(matches!(r, Err(CtsError::Checkpoint { .. })), "{r:?}");
        } else {
            r.unwrap();
        }
        // Mid-record cut: the torn tail is discarded and the journal
        // behaves as if cut at the previous boundary.
        if i + 1 < cuts.len() {
            let mid = cut + (cuts[i + 1] - cut) / 2;
            let r = resume_truncated(&cts, &design, &full, mid, &path, &reference);
            if i == 0 {
                assert!(matches!(r, Err(CtsError::Checkpoint { .. })), "{r:?}");
            } else {
                r.unwrap();
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_after_kill_appends_a_journal_that_resumes_again() {
    // Two successive kills: cut once, resume (which re-appends), cut the
    // rewritten journal again, resume again. The writer must restore the
    // append invariant each time.
    let design = grid_design();
    let cts = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let path = journal_path("rekill");
    let reference = cts.run_checkpointed(&design, &path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let cuts = boundaries(&full);
    // Cut mid-way through the second level record.
    let cut = cuts[2] + 7;
    std::fs::write(&path, &full[..cut.min(full.len())]).unwrap();
    assert_eq!(cts.resume(&design, &path).unwrap(), reference);
    // The resumed run rewrote a complete journal; kill it again.
    let rewritten = std::fs::read(&path).unwrap();
    let cuts2 = boundaries(&rewritten);
    std::fs::write(&path, &rewritten[..cuts2[cuts2.len() / 2]]).unwrap();
    assert_eq!(cts.resume(&design, &path).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_replays_committed_levels_through_the_observer() {
    #[derive(Default)]
    struct Counting {
        replayed: Vec<usize>,
        live: Vec<usize>,
    }
    impl FlowObserver for Counting {
        fn on_level(&mut self, report: &LevelReport) {
            self.live.push(report.level);
        }
        fn on_resumed_level(&mut self, report: &LevelReport) {
            self.replayed.push(report.level);
        }
    }

    let design = grid_design();
    let cts = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let path = journal_path("replay");
    let mut obs = CollectingObserver::new();
    let reference = cts
        .run_checkpointed_with_observer(&design, &path, &mut obs)
        .unwrap();
    let levels = obs.levels.len();
    assert!(levels >= 2);

    // Cut after the first level record and resume.
    let full = std::fs::read(&path).unwrap();
    let cuts = boundaries(&full);
    std::fs::write(&path, &full[..cuts[2]]).unwrap();
    let mut counting = Counting::default();
    let tree = cts
        .resume_with_observer(&design, &path, &mut counting)
        .unwrap();
    assert_eq!(tree, reference);
    assert_eq!(counting.replayed, vec![0], "one committed level replays");
    assert_eq!(
        counting.live,
        (1..levels).collect::<Vec<_>>(),
        "remaining levels run live"
    );
    // The default observer hook folds replayed levels into on_level, so
    // a CollectingObserver sees the full sequence.
    std::fs::write(&path, &full[..cuts[2]]).unwrap();
    let mut collected = CollectingObserver::new();
    cts.resume_with_observer(&design, &path, &mut collected)
        .unwrap();
    assert_eq!(collected.levels.len(), levels);
    assert_eq!(
        collected.levels.iter().map(|l| l.level).collect::<Vec<_>>(),
        (0..levels).collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn fingerprint_guards_config_and_design_drift() {
    let design = grid_design();
    let cts = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let path = journal_path("fp");
    cts.run_checkpointed(&design, &path).unwrap();

    // Same journal, different seed: refuse.
    let reseeded = HierarchicalCts {
        seed: cts.seed ^ 1,
        workers: 1,
        ..HierarchicalCts::default()
    };
    match reseeded.resume(&design, &path) {
        Err(CtsError::Checkpoint { detail }) => {
            assert!(detail.contains("fingerprint"), "{detail}")
        }
        other => panic!("expected a fingerprint refusal, got {other:?}"),
    }
    // Different design: refuse.
    let mut other = grid_design();
    other.sinks[0].cap_ff += 0.5;
    assert!(matches!(
        cts.resume(&other, &path),
        Err(CtsError::Checkpoint { .. })
    ));
    // Different worker count: fine — trees are worker-invariant.
    let wide = HierarchicalCts {
        workers: 4,
        ..HierarchicalCts::default()
    };
    let reference = cts.run(&design).unwrap();
    assert_eq!(wide.resume(&design, &path).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_interior_record_is_refused() {
    let design = grid_design();
    let cts = HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    };
    let path = journal_path("corrupt");
    cts.run_checkpointed(&design, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one byte inside the second record (not the final line).
    let cuts = boundaries(&bytes);
    let target = cuts[1] + 10;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    match cts.resume(&design, &path) {
        Err(CtsError::Checkpoint { detail }) => {
            assert!(
                detail.contains("corrupt") || detail.contains("line"),
                "{detail}"
            )
        }
        other => panic!("interior corruption must refuse, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn downgraded_levels_checkpoint_and_resume_identically() {
    // A transient route fault forces the ladder to climb on level 0; the
    // downgrade's effects are embedded in the committed state, so resume
    // from any boundary must still match the recovered reference.
    let design = grid_design();
    let cts = HierarchicalCts {
        faults: FaultPlan::single(StageFault::once(
            FaultStage::Route,
            0,
            Some(0),
            FaultKind::Error,
        )),
        recovery: RecoveryPolicy::standard(),
        workers: 1,
        ..HierarchicalCts::default()
    };
    let path = journal_path("downgrade");
    let reference = cts.run_checkpointed(&design, &path).unwrap();
    assert_eq!(reference, cts.run(&design).unwrap());
    let ckpt = Checkpoint::load(&path, &cts, &design).unwrap();
    assert_eq!(
        ckpt.reports()[0].attempts,
        2,
        "level 0 must have recovered once"
    );
    assert_eq!(ckpt.reports()[0].downgrades.len(), 1);

    let full = std::fs::read(&path).unwrap();
    for &cut in &boundaries(&full)[1..] {
        resume_truncated(&cts, &design, &full, cut, &path, &reference).unwrap();
    }
    std::fs::remove_file(&path).ok();
}

/// The acceptance sweep: s35932 and s38584, interrupted at every level
/// boundary, resumed at 1, 2, and 4 workers — every resume bit-identical
/// to the uninterrupted reference. Release-only (driven by
/// `scripts/ci.sh`); debug profiles skip it for runtime.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: run via scripts/ci.sh")]
fn iscas_resume_after_kill_is_bit_identical_at_1_2_4_workers() {
    for name in ["s35932", "s38584"] {
        let design = DesignSpec::by_name(name).unwrap().instantiate();
        let writer_cts = HierarchicalCts {
            workers: 1,
            ..HierarchicalCts::default()
        };
        let path = journal_path(&format!("iscas_{name}"));
        let reference = writer_cts.run_checkpointed(&design, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cuts = boundaries(&full);
        assert!(cuts.len() >= 3, "{name}: expected a multi-level journal");
        for workers in [1usize, 2, 4] {
            let cts = HierarchicalCts {
                workers,
                ..HierarchicalCts::default()
            };
            for &cut in &cuts[1..] {
                resume_truncated(&cts, &design, &full, cut, &path, &reference)
                    .unwrap_or_else(|e| panic!("{name} workers={workers} cut={cut}: {e}"));
            }
            // One mid-record cut per worker count.
            let mid = cuts[1] + (cuts[2] - cuts[1]) / 3;
            resume_truncated(&cts, &design, &full, mid, &path, &reference).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
