//! Batch-isolation contract of the `suite` runner, driven through the
//! real binary: a panicking job must not take the batch down, the
//! manifest must record every outcome durably (including through a torn
//! final line), and `--resume` must execute only the unfinished jobs.

use sllt_obs::journal::read_journal;
use sllt_obs::Value;
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_suite");

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sllt_suite_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn suite binary")
}

/// All sealed manifest records of one type, in order.
fn records(manifest: &std::path::Path, ty: &str) -> Vec<Value> {
    read_journal(manifest)
        .expect("manifest parses")
        .records
        .into_iter()
        .filter(|r| r.get("type").and_then(Value::as_str) == Some(ty))
        .collect()
}

fn job_of(rec: &Value) -> &str {
    rec.get("job").and_then(Value::as_str).unwrap()
}

#[test]
fn panicking_job_is_contained_retried_and_finished_by_resume() {
    let dir = out_dir("isolation");
    let manifest = dir.join("manifest.jsonl");
    let dir_s = dir.to_str().unwrap();

    // One job is rigged to panic; --retries 1 grants it a second (still
    // panicking) attempt. The other jobs must complete regardless.
    let out = run(&[
        "--designs",
        "grid36,grid48",
        "--configs",
        "base",
        "--out",
        dir_s,
        "--retries",
        "1",
        "--inject-panic",
        "grid48:base",
    ]);
    assert!(
        !out.status.success(),
        "a failed job must fail the batch exit code"
    );

    let done = records(&manifest, "job_done");
    let status = |job: &str| -> Vec<&str> {
        done.iter()
            .filter(|r| job_of(r) == job)
            .map(|r| r.get("status").and_then(Value::as_str).unwrap())
            .collect()
    };
    assert_eq!(
        status("grid36:base"),
        ["ok"],
        "healthy job must survive its sibling's panic"
    );
    assert_eq!(
        status("grid48:base"),
        ["panic", "panic"],
        "rigged job must be retried exactly once and both attempts recorded"
    );

    // Simulate the batch process dying mid-append: a torn, uncommitted
    // fragment after the last sealed record. Resume must truncate it,
    // skip the finished job, and run only the panicked one.
    std::fs::OpenOptions::new()
        .append(true)
        .open(&manifest)
        .and_then(|mut f| std::io::Write::write_all(&mut f, b"{\"type\":\"job_st"))
        .unwrap();

    let out = run(&[
        "--designs",
        "grid36,grid48",
        "--configs",
        "base",
        "--out",
        dir_s,
        "--retries",
        "1",
        "--resume",
    ]);
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let starts = records(&manifest, "job_start");
    let attempts = |job: &str| starts.iter().filter(|r| job_of(r) == job).count();
    assert_eq!(
        attempts("grid36:base"),
        1,
        "resume must not re-run a job already finished ok"
    );
    assert_eq!(
        attempts("grid48:base"),
        3,
        "resume must re-run the unfinished job (2 panicked attempts + 1 ok)"
    );
    let done = records(&manifest, "job_done");
    let last = done
        .iter()
        .rfind(|r| job_of(r) == "grid48:base")
        .and_then(|r| r.get("status").and_then(Value::as_str));
    assert_eq!(last, Some("ok"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hung_job_is_sigkilled_at_the_deadline_and_batch_survives() {
    let dir = out_dir("timeout");
    let manifest = dir.join("manifest.jsonl");
    let dir_s = dir.to_str().unwrap();

    // grid48:base is rigged to wedge forever; --job-timeout must
    // SIGKILL it (twice, with --retries 1) while grid36:base completes.
    let out = run(&[
        "--designs",
        "grid36,grid48",
        "--configs",
        "base",
        "--out",
        dir_s,
        "--retries",
        "1",
        "--job-timeout",
        "1",
        "--inject-hang",
        "grid48:base",
    ]);
    assert!(!out.status.success(), "a timed-out job must fail the batch");

    let done = records(&manifest, "job_done");
    let status = |job: &str| -> Vec<&str> {
        done.iter()
            .filter(|r| job_of(r) == job)
            .map(|r| r.get("status").and_then(Value::as_str).unwrap())
            .collect()
    };
    assert_eq!(status("grid36:base"), ["ok"]);
    assert_eq!(
        status("grid48:base"),
        ["timeout", "timeout"],
        "deadline kills must be recorded and retried"
    );
    for rec in done.iter().filter(|r| job_of(r) == "grid48:base") {
        let wall = rec.get("wall_s").and_then(Value::as_f64).unwrap();
        assert!(
            wall < 30.0,
            "the deadline must actually bound the wait, took {wall}s"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retry_backoff_is_deterministic_and_journaled() {
    // Two identical runs of a panicking job must journal identical
    // backoff_ms values: 0 for attempt 1, a seeded jittered draw after.
    let backoffs = |tag: &str| -> Vec<u64> {
        let dir = out_dir(tag);
        let manifest = dir.join("manifest.jsonl");
        run(&[
            "--designs",
            "grid36",
            "--configs",
            "base",
            "--out",
            dir.to_str().unwrap(),
            "--retries",
            "2",
            "--inject-panic",
            "grid36:base",
        ]);
        let starts = records(&manifest, "job_start");
        let out = starts
            .iter()
            .map(|r| r.get("backoff_ms").and_then(Value::as_u64).unwrap())
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        out
    };
    let first = backoffs("backoff_a");
    let second = backoffs("backoff_b");
    assert_eq!(first.len(), 3, "3 attempts journaled: {first:?}");
    assert_eq!(first[0], 0, "the initial attempt never waits");
    assert!(first[1] > 0, "retries must back off: {first:?}");
    assert!(
        first[2] >= first[1],
        "backoff ceiling doubles per attempt: {first:?}"
    );
    assert_eq!(first, second, "backoff must be wall-clock independent");
}

#[test]
fn resume_refuses_a_manifest_from_a_different_matrix() {
    let dir = out_dir("mismatch");
    let dir_s = dir.to_str().unwrap();
    let ok = run(&["--designs", "grid36", "--configs", "base", "--out", dir_s]);
    assert!(ok.status.success());

    let out = run(&[
        "--designs",
        "grid36,grid48",
        "--configs",
        "base",
        "--out",
        dir_s,
        "--resume",
    ]);
    assert!(!out.status.success(), "matrix drift must be refused");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("designs"),
        "the refusal must name what drifted"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_design_or_config_exits_nonzero_before_touching_the_manifest() {
    let dir = out_dir("badargs");
    let dir_s = dir.to_str().unwrap();
    let out = run(&["--designs", "nosuchdesign", "--out", dir_s]);
    assert!(!out.status.success());
    assert!(
        !dir.join("manifest.jsonl").exists(),
        "a rejected matrix must not create a manifest"
    );
    let out = run(&[
        "--designs",
        "grid36",
        "--configs",
        "nosuchcfg",
        "--out",
        dir_s,
    ]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
