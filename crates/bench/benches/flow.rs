//! Criterion: the full hierarchical flow end to end (one small design —
//! the flow is seconds-scale, so samples are few).

use criterion::{criterion_group, criterion_main, Criterion};
use sllt_cts::{baseline, constraints::CtsConstraints, flow::HierarchicalCts};
use sllt_design::DesignSpec;
use std::time::Duration;

fn bench_flow(c: &mut Criterion) {
    let design = DesignSpec::by_name("s35932").unwrap().instantiate();
    let mut g = c.benchmark_group("full_flow_s35932");
    g.sample_size(10);
    let ours = HierarchicalCts::default();
    g.bench_function("ours_cbs", |b| {
        b.iter(|| ours.run(std::hint::black_box(&design)))
    });
    let com = baseline::commercial_like();
    g.bench_function("commercial_like", |b| {
        b.iter(|| com.run(std::hint::black_box(&design)))
    });
    g.bench_function("openroad_like", |b| {
        b.iter(|| {
            baseline::open_road_like(
                std::hint::black_box(&design),
                &CtsConstraints::paper(),
                &ours.tech,
                &ours.lib,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(10)).warm_up_time(Duration::from_secs(2)).sample_size(10);
    targets = bench_flow
}
criterion_main!(benches);
