//! Criterion: CBS construction cost — scaling with net size, skew bound
//! and SALT ε (the ablation dimensions DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sllt_core::cbs::{cbs, CbsConfig};
use sllt_geom::Point;
use sllt_rng::prelude::*;
use sllt_route::DelayModel;
use sllt_timing::Technology;
use sllt_tree::{ClockNet, Sink};
use std::time::Duration;

fn net_of(n: usize) -> ClockNet {
    let mut rng = StdRng::seed_from_u64(n as u64);
    ClockNet::new(
        Point::new(37.5, 37.5),
        (0..n)
            .map(|_| {
                Sink::new(
                    Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                    0.8,
                )
            })
            .collect(),
    )
}

fn bench_cbs_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbs_by_size");
    for n in [10usize, 20, 40, 80] {
        let net = net_of(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| cbs(std::hint::black_box(net), &CbsConfig::default()))
        });
    }
    g.finish();
}

fn bench_cbs_bound(c: &mut Criterion) {
    let tech = Technology::n28();
    let net = net_of(30);
    let mut g = c.benchmark_group("cbs_by_elmore_bound");
    for bound in [80.0f64, 10.0, 5.0, 1.0] {
        let cfg = CbsConfig {
            skew_bound: bound,
            model: DelayModel::Elmore(tech),
            ..CbsConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(bound), &cfg, |b, cfg| {
            b.iter(|| cbs(std::hint::black_box(&net), cfg))
        });
    }
    g.finish();
}

fn bench_cbs_eps(c: &mut Criterion) {
    let net = net_of(30);
    let mut g = c.benchmark_group("cbs_by_eps");
    for eps in [0.05f64, 0.2, 0.5, 2.0] {
        let cfg = CbsConfig {
            eps,
            ..CbsConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(eps), &cfg, |b, cfg| {
            b.iter(|| cbs(std::hint::black_box(&net), cfg))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_cbs_size, bench_cbs_bound, bench_cbs_eps
}
criterion_main!(benches);
