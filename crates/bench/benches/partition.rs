//! Criterion: partitioning substrate — balanced K-means (exact MCF path
//! and greedy large-n path), min-cost flow, and SA refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sllt_geom::Point;
use sllt_partition::{balanced_kmeans, sa, MinCostFlow};
use sllt_rng::prelude::*;
use std::time::Duration;

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..400.0), rng.random_range(0.0..400.0)))
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("balanced_kmeans");
    g.sample_size(20);
    for n in [200usize, 1000, 4000] {
        let pts = points(n, 7);
        let k = n.div_ceil(32);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| balanced_kmeans(std::hint::black_box(pts), k, 32, 1))
        });
    }
    g.finish();
}

fn bench_mcf(c: &mut Criterion) {
    c.bench_function("mcf_assignment_100x8", |b| {
        let pts = points(100, 9);
        let centers = points(8, 10);
        b.iter(|| {
            let mut g = MinCostFlow::new(2 + 100 + 8);
            let sink = 1 + 100 + 8;
            for (i, p) in pts.iter().enumerate() {
                g.add_edge(0, 1 + i, 1, 0.0);
                for (c, ctr) in centers.iter().enumerate() {
                    g.add_edge(1 + i, 101 + c, 1, p.dist(*ctr));
                }
            }
            for c in 0..8 {
                g.add_edge(101 + c, sink, 13, 0.0);
            }
            g.solve(0, sink)
        })
    });
}

fn bench_sa(c: &mut Criterion) {
    let pts = points(500, 21);
    let mut rng = StdRng::seed_from_u64(3);
    let caps: Vec<f64> = (0..500).map(|_| rng.random_range(0.5..8.0)).collect();
    let cons = sa::PartitionConstraints {
        max_cap_ff: 100.0,
        max_fanout: 32,
        max_wl_um: 200.0,
        unit_wire_cap: 0.16,
    };
    c.bench_function("sa_refine_500", |b| {
        b.iter(|| {
            let mut assignment: Vec<usize> = (0..500).map(|i| i % 16).collect();
            sa::refine(
                &pts,
                &caps,
                &mut assignment,
                16,
                &cons,
                &sa::SaConfig::default(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_kmeans, bench_mcf, bench_sa
}
criterion_main!(benches);
