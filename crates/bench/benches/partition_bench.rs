//! Criterion: the partition fast path — grid-pruned vs full-scan
//! nearest centre, warm (overflow-repair) vs cold (dense flow) capacity
//! assignment, and scored restarts.
//!
//! Companions to the substrate benches in `partition.rs`: these measure
//! the specific optimizations behind the partition_ms drop recorded in
//! EXPERIMENTS.md, each against its exact-equivalent slow path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sllt_geom::Point;
use sllt_partition::{
    balanced_kmeans_cfg, balanced_kmeans_restarts_scored, nearest_scan_l1, CenterGrid, KmeansConfig,
};
use sllt_rng::prelude::*;
use std::time::Duration;

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..400.0), rng.random_range(0.0..400.0)))
        .collect()
}

/// Pruned vs scan: one nearest-centre query per point over k centres —
/// the Lloyd inner loop's shape. The two must return identical indices
/// (asserted in the library's proptests); here we time them.
fn bench_nearest(c: &mut Criterion) {
    let mut g = c.benchmark_group("nearest_center");
    for k in [32usize, 128, 512] {
        let centers = points(k, 5);
        let cx: Vec<f64> = centers.iter().map(|p| p.x).collect();
        let cy: Vec<f64> = centers.iter().map(|p| p.y).collect();
        let queries = points(2000, 6);
        g.bench_with_input(BenchmarkId::new("scan", k), &queries, |b, qs| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in qs {
                    acc ^= nearest_scan_l1(&cx, &cy, q.x, q.y);
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("grid", k), &queries, |b, qs| {
            let grid = CenterGrid::build(&cx, &cy);
            b.iter(|| {
                let mut acc = 0usize;
                for q in qs {
                    acc ^= grid.nearest_l1(q.x, q.y);
                }
                acc
            })
        });
    }
    g.finish();
}

/// Warm vs cold balanced K-means: identical algorithm, the capacity
/// assignment either repairs overflow from the nearest-centre seed or
/// re-solves the dense point×centre flow every balance round.
fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("balanced_kmeans_assign");
    g.sample_size(15);
    for n in [300usize, 900] {
        let pts = points(n, 11);
        let k = n.div_ceil(32);
        for (label, warm) in [("warm", true), ("cold", false)] {
            let cfg = KmeansConfig {
                warm_mcf: warm,
                ..KmeansConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(label, n), &pts, |b, pts| {
                b.iter(|| balanced_kmeans_cfg(std::hint::black_box(pts), k, 32, 1, &cfg))
            });
        }
    }
    g.finish();
}

/// Scored restarts at one worker: the serial baseline the parallel
/// fan-out is measured against (the pool is bit-identical, so worker
/// scaling is pure wall-clock).
fn bench_restarts(c: &mut Criterion) {
    let pts = points(400, 17);
    let k = 400usize.div_ceil(32);
    let cfg = KmeansConfig::default();
    let score =
        |p: &sllt_partition::Partition| -> f64 { p.centers.iter().map(|c| c.x + c.y).sum::<f64>() };
    c.bench_function("restarts_scored_400x4", |b| {
        b.iter(|| {
            balanced_kmeans_restarts_scored(
                std::hint::black_box(&pts),
                k,
                32,
                1,
                4,
                1,
                &cfg,
                &score,
                &|| false,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_nearest, bench_warm_vs_cold, bench_restarts
}
criterion_main!(benches);
