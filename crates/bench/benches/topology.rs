//! Criterion: routing-topology generator throughput on paper-sized nets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sllt_design::NetGenerator;
use sllt_geom::Point;
use sllt_rng::prelude::*;
use sllt_route::{
    bst_dme, ghtree, greedy_dist, greedy_dist_naive, greedy_merge, greedy_merge_naive, htree,
    rsmt::rsmt, salt::salt, zst_dme, TopologyScheme,
};
use sllt_tree::{ClockNet, Sink};
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let gen = NetGenerator::paper();
    let net = gen.net(0);
    let topo = TopologyScheme::GreedyDist.build(&net);

    let mut g = c.benchmark_group("topology_40pin");
    g.bench_function("rsmt", |b| b.iter(|| rsmt(std::hint::black_box(&net))));
    g.bench_function("salt_eps0.2", |b| {
        b.iter(|| salt(std::hint::black_box(&net), 0.2))
    });
    g.bench_function("htree", |b| b.iter(|| htree(std::hint::black_box(&net), 2)));
    g.bench_function("ghtree", |b| {
        b.iter(|| ghtree(std::hint::black_box(&net), 2))
    });
    g.bench_function("zst_dme", |b| {
        b.iter(|| zst_dme(std::hint::black_box(&net), std::hint::black_box(&topo)))
    });
    g.bench_function("bst_dme_20um", |b| {
        b.iter(|| {
            bst_dme(
                std::hint::black_box(&net),
                std::hint::black_box(&topo),
                20.0,
            )
        })
    });
    g.finish();
}

fn bench_merge_orders(c: &mut Criterion) {
    let gen = NetGenerator::paper();
    let net = gen.net(1);
    let mut g = c.benchmark_group("merge_order");
    for scheme in TopologyScheme::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |b, s| {
            b.iter(|| s.build(std::hint::black_box(&net)))
        });
    }
    g.finish();
}

fn random_net(seed: u64, n: usize) -> ClockNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = 75.0 * (n as f64 / 40.0).sqrt(); // constant sink density
    ClockNet::new(
        Point::new(span / 2.0, span / 2.0),
        (0..n)
            .map(|_| {
                Sink::new(
                    Point::new(rng.random_range(0.0..span), rng.random_range(0.0..span)),
                    1.0,
                )
            })
            .collect(),
    )
}

/// Engine-backed greedy schemes vs the brute-force oracles across sink
/// counts (see EXPERIMENTS.md for the recorded scaling table; the
/// `topo_scaling` bin covers 1k–100k where the O(n³) oracle is hopeless).
fn bench_greedy_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_scaling");
    g.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        let net = random_net(7, n);
        g.bench_with_input(BenchmarkId::new("greedy_dist", n), &net, |b, net| {
            b.iter(|| greedy_dist(std::hint::black_box(net)))
        });
        g.bench_with_input(BenchmarkId::new("greedy_merge", n), &net, |b, net| {
            b.iter(|| greedy_merge(std::hint::black_box(net)))
        });
        if n <= 2_000 {
            g.bench_with_input(BenchmarkId::new("greedy_dist_naive", n), &net, |b, net| {
                b.iter(|| greedy_dist_naive(std::hint::black_box(net)))
            });
            g.bench_with_input(BenchmarkId::new("greedy_merge_naive", n), &net, |b, net| {
                b.iter(|| greedy_merge_naive(std::hint::black_box(net)))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_generators, bench_merge_orders, bench_greedy_scaling
}
criterion_main!(benches);
