//! Criterion: routing-topology generator throughput on paper-sized nets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sllt_design::NetGenerator;
use sllt_route::{bst_dme, ghtree, htree, rsmt::rsmt, salt::salt, zst_dme, TopologyScheme};
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let gen = NetGenerator::paper();
    let net = gen.net(0);
    let topo = TopologyScheme::GreedyDist.build(&net);

    let mut g = c.benchmark_group("topology_40pin");
    g.bench_function("rsmt", |b| b.iter(|| rsmt(std::hint::black_box(&net))));
    g.bench_function("salt_eps0.2", |b| {
        b.iter(|| salt(std::hint::black_box(&net), 0.2))
    });
    g.bench_function("htree", |b| b.iter(|| htree(std::hint::black_box(&net), 2)));
    g.bench_function("ghtree", |b| {
        b.iter(|| ghtree(std::hint::black_box(&net), 2))
    });
    g.bench_function("zst_dme", |b| {
        b.iter(|| zst_dme(std::hint::black_box(&net), std::hint::black_box(&topo)))
    });
    g.bench_function("bst_dme_20um", |b| {
        b.iter(|| {
            bst_dme(
                std::hint::black_box(&net),
                std::hint::black_box(&topo),
                20.0,
            )
        })
    });
    g.finish();
}

fn bench_merge_orders(c: &mut Criterion) {
    let gen = NetGenerator::paper();
    let net = gen.net(1);
    let mut g = c.benchmark_group("merge_order");
    for scheme in TopologyScheme::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |b, s| {
            b.iter(|| s.build(std::hint::black_box(&net)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_generators, bench_merge_orders
}
criterion_main!(benches);
