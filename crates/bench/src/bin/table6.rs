//! Paper Table 6: full-flow comparison (ours / commercial-like /
//! OpenROAD-like) on the six open designs.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin table6
//! ```

use sllt_bench::flows::comparison_table;
use sllt_design::SUITE;

fn main() {
    let specs: Vec<_> = SUITE.iter().filter(|s| !s.internal).collect();
    println!("Table 6 — ours (O) vs commercial-like (C) vs OpenROAD-like (R)");
    println!("{}", comparison_table(&specs));
    println!("(paper Avg. vs ours: latency C 1.062 / R 1.417; skew C 1.062 / R 1.708;");
    println!(" buffers C 1.036 / R 1.310; area C 1.051 / R 1.668; cap C 1.196 / R 1.259)");
}
