//! Paper Table 6: full-flow comparison (ours / commercial-like /
//! OpenROAD-like) on the six open designs.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin table6
//! ```

use sllt_bench::flows::comparison;
use sllt_bench::{emit_json, run_main};
use sllt_design::SUITE;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let specs: Vec<_> = SUITE.iter().filter(|s| !s.internal).collect();
        let table = comparison(&specs)?;
        println!("Table 6 — ours (O) vs commercial-like (C) vs OpenROAD-like (R)");
        println!("{}", table.render());
        emit_json("table6", vec![("table", table.to_json())]);
        println!("(paper Avg. vs ours: latency C 1.062 / R 1.417; skew C 1.062 / R 1.708;");
        println!(" buffers C 1.036 / R 1.310; area C 1.051 / R 1.668; cap C 1.196 / R 1.259)");
        Ok(())
    })
}
