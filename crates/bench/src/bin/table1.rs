//! Paper Table 1 / Fig. 1: SLLT metrics of seven routing topologies on
//! the demonstration net.
//!
//! ```text
//! cargo run -p sllt-bench --bin table1 [-- --svg <dir>]
//! ```
//!
//! `--svg <dir>` additionally writes the Fig. 1 topology gallery as SVG
//! files.

use sllt_bench::{arg_value, demo_net, emit_json, run_main, Table};
use sllt_core::cbs::{cbs, CbsConfig};
use sllt_route::{ghtree, htree, rsmt::rsmt, salt::salt, topogen::TopologyScheme, zst_dme};
use sllt_tree::{metrics::path_length_skew, svg, ClockTree, SlltMetrics};

fn main() -> std::process::ExitCode {
    run_main(run)
}

fn run() -> Result<(), String> {
    let net = demo_net();
    let ref_wl = sllt_route::rsmt::rsmt_wirelength(&net);
    let topo = TopologyScheme::GreedyDist.build(&net);

    // Bounds on the demo net are in path-length µm, like the paper's
    // PL-based Table 1 discussion.
    let rows: Vec<(&str, ClockTree, &str)> = vec![
        ("H-tree", htree(&net, 1), "yes"),
        ("GH-tree", ghtree(&net, 1), "yes"),
        ("ZST", zst_dme(&net, &topo), "yes"),
        ("BST", sllt_route::bst_dme(&net, &topo, 2.0), "yes"),
        ("FLUTE*", rsmt(&net), "no"),
        ("R-SALT", salt(&net, 0.1), "no"),
        (
            "CBS",
            cbs(
                &net,
                &CbsConfig {
                    skew_bound: 2.0,
                    eps: 0.1,
                    ..CbsConfig::default()
                },
            ),
            "yes",
        ),
    ];

    let mut table = Table::new(vec![
        "Algorithm",
        "MaxPL",
        "MinPL",
        "TotalWL",
        "MeanPL",
        "alpha",
        "beta",
        "gamma",
        "Mean",
        "SkewCtl",
    ]);
    for (name, tree, ctl) in &rows {
        let m = SlltMetrics::compute(tree, ref_wl);
        table.row(vec![
            name.to_string(),
            format!("{:.2}", m.max_path),
            format!("{:.2}", m.min_path),
            format!("{:.2}", m.wirelength),
            format!("{:.2}", m.mean_path),
            format!("{:.2}", m.shallowness),
            format!("{:.2}", m.lightness),
            format!("{:.2}", m.skewness),
            format!("{:.2}", m.mean_of_three()),
            ctl.to_string(),
        ]);
    }
    println!("Table 1 — routing topologies on the demo net (FLUTE* = RSMT substitute)");
    println!("{}", table.render());
    println!(
        "skew-controlled rows honour their bound: ZST skew = {:.3} µm, BST skew = {:.3} µm, CBS skew = {:.3} µm (bound 2 µm)",
        path_length_skew(&rows[2].1),
        path_length_skew(&rows[3].1),
        path_length_skew(&rows[6].1),
    );

    emit_json("table1", vec![("table", table.to_json())]);

    if let Some(dir) = arg_value("--svg") {
        std::fs::create_dir_all(&dir).map_err(|e| format!("create svg output dir {dir}: {e}"))?;
        for (name, tree, _) in &rows {
            let path = format!("{dir}/fig1_{}.svg", name.to_lowercase().replace('*', ""));
            std::fs::write(&path, svg::render(tree, name))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}
