//! Paper Fig. 5 ablation: the insertion-delay estimate used during
//! bottom-up timing.
//!
//! Without a provisional driver delay, upper levels balance the wrong
//! totals and the eventual buffer insertion perturbs skew, forcing repair
//! wire. Eq. (7)'s lower bound removes the load-proportional part of the
//! error; knowing the chosen cell removes nearly all of it.
//!
//! The effect needs *heterogeneous* cluster loads (uniform clusters make
//! every driver identical, so the omitted delay is common-mode and
//! cancels), so this harness builds designs with mixed register-bank
//! sizes — a few big banks among many small ones — and sizes drivers
//! independently, the regime the paper's Fig. 5 describes.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin fig5_buffering_ablation
//! ```

use sllt_bench::{emit_json, run_main, Table};
use sllt_buffer::DelayEstimator;
use sllt_cts::{eval::evaluate, flow::HierarchicalCts};
use sllt_design::Design;
use sllt_geom::{Point, Rect};
use sllt_rng::prelude::*;
use sllt_tree::Sink;

/// A design whose register banks differ wildly in size, so sibling
/// cluster loads (and hence driver delays) differ.
fn mixed_bank_design(seed: u64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 300.0;
    let mut sinks = Vec::new();
    for _ in 0..24 {
        let c = Point::new(
            rng.random_range(20.0..side - 20.0),
            rng.random_range(20.0..side - 20.0),
        );
        // Bank sizes alternate between tiny and full clusters.
        let bank = if rng.random_bool(0.5) { 6 } else { 32 };
        for _ in 0..bank {
            sinks.push(Sink::new(
                Point::new(
                    (c.x + rng.random_range(-8.0..8.0)).clamp(0.0, side),
                    (c.y + rng.random_range(-8.0..8.0)).clamp(0.0, side),
                ),
                0.8,
            ));
        }
    }
    Design {
        name: format!("mixed-{seed}"),
        num_instances: sinks.len() * 6,
        utilization: 0.6,
        die: Rect::new(Point::ORIGIN, Point::new(side, side)),
        clock_root: Point::new(0.0, side / 2.0),
        sinks,
    }
}

fn main() -> std::process::ExitCode {
    run_main(run)
}

fn run() -> Result<(), String> {
    let mut table = Table::new(vec![
        "Case",
        "Estimator",
        "Latency (ps)",
        "Skew (ps)",
        "Clk WL (µm)",
        "Clk Cap (fF)",
    ]);
    for seed in [3u64, 17, 40] {
        let design = mixed_bank_design(seed);
        for (label, est) in [
            ("none", DelayEstimator::None),
            ("Eq.(7) lower bound", DelayEstimator::LowerBound),
            ("chosen cell", DelayEstimator::ChosenCell),
        ] {
            // Drivers sized independently per cluster (no equalization):
            // the provisional estimate is what keeps sibling totals
            // honest here.
            let cts = HierarchicalCts {
                estimator: est,
                equalize_sizing: false,
                sizing_slack: 1.6,
                // Tight per-net target: the ~10-30 ps of driver delay the
                // estimate accounts for must fit the merge windows, so
                // mis-estimation surfaces as detour wire and skew.
                level_skew_fraction: 0.12,
                ..HierarchicalCts::default()
            };
            let tree = cts
                .run(&design)
                .map_err(|e| format!("{} ({label}): flow failed: {e}", design.name))?;
            let r = evaluate(&tree, &cts.tech, &cts.lib);
            table.row(vec![
                design.name.clone(),
                label.to_string(),
                format!("{:.1}", r.max_latency_ps),
                format!("{:.1}", r.skew_ps),
                format!("{:.0}", r.clock_wl_um),
                format!("{:.0}", r.clock_cap_ff),
            ]);
        }
    }
    println!("Fig. 5 ablation — insertion-delay estimation policy in bottom-up timing");
    println!("(mixed register-bank design: sibling cluster loads differ, so the driver");
    println!(" delay omitted by \"none\" varies cluster-to-cluster and surfaces as skew)");
    println!("{}", table.render());
    println!("(paper: the Eq.(7) lower bound \"lowers skew repair costs and latency by");
    println!(" reducing downstream node disparities\" relative to no estimate)");
    emit_json("fig5_buffering_ablation", vec![("table", table.to_json())]);
    Ok(())
}
