//! Paper Table 3: wirelength, capacitance and wire delay of BST-DME vs
//! CBS over random clock nets at three skew levels.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin table3 [-- --nets 10000]
//! ```

use sllt_bench::{arg_parse, emit_json, Table};
use sllt_core::cbs::{cbs, step1_initial_bst, CbsConfig};
use sllt_design::NetGenerator;
use sllt_route::{topogen::TopologyScheme, DelayModel};
use sllt_timing::Technology;
use sllt_tree::{ClockNet, ClockTree};

const SKEWS: [f64; 3] = [80.0, 10.0, 5.0];

fn measure(tree: &ClockTree, net: &ClockNet, tech: &Technology) -> (f64, f64, f64) {
    let wl = tree.wirelength();
    let cap = tech.net_cap(net.total_pin_cap(), wl);
    let (rc, map) = tree.to_rc_tree();
    let delays = rc.elmore(tech, 0.0);
    let delay = tree
        .sinks()
        .iter()
        // Invariant: to_rc_tree maps every sink of the tree it was built
        // from, so the lookup cannot miss.
        .map(|&s| delays[map[s.index()].expect("sink mapped")])
        .fold(0.0f64, f64::max);
    (wl, cap, delay)
}

fn main() {
    let nets = arg_parse("--nets", 2000usize);
    let tech = Technology::n28();
    let gen = NetGenerator::paper();

    let mut bst = [[0.0f64; 3]; 3]; // [metric][skew]
    let mut cbs_m = [[0.0f64; 3]; 3];
    for (ki, &skew) in SKEWS.iter().enumerate() {
        for net in gen.take(nets) {
            let cfg = CbsConfig {
                scheme: TopologyScheme::GreedyDist,
                skew_bound: skew,
                eps: 0.2,
                model: DelayModel::Elmore(tech),
            };
            let b = measure(&step1_initial_bst(&net, &cfg), &net, &tech);
            let c = measure(&cbs(&net, &cfg), &net, &tech);
            for (m, (&bv, &cv)) in [b.0, b.1, b.2].iter().zip(&[c.0, c.1, c.2]).enumerate() {
                bst[m][ki] += bv;
                cbs_m[m][ki] += cv;
            }
        }
        for m in 0..3 {
            bst[m][ki] /= nets as f64;
            cbs_m[m][ki] /= nets as f64;
        }
    }

    println!("Table 3 — BST-DME vs CBS, {nets} nets per skew level");
    let mut table = Table::new(vec![
        "",
        "WL 80ps",
        "WL 10ps",
        "WL 5ps",
        "Cap 80ps",
        "Cap 10ps",
        "Cap 5ps",
        "Delay 80ps",
        "Delay 10ps",
        "Delay 5ps",
    ]);
    let units = ["µm", "fF", "ps"];
    let _ = units;
    let fmt = |v: f64| format!("{v:.1}");
    table.row({
        let mut r = vec!["BST-DME".to_string()];
        for row in &bst {
            r.extend(row.iter().map(|&v| fmt(v)));
        }
        r
    });
    table.row({
        let mut r = vec!["CBS".to_string()];
        for row in &cbs_m {
            r.extend(row.iter().map(|&v| fmt(v)));
        }
        r
    });
    table.row({
        let mut r = vec!["Reduce".to_string()];
        for m in 0..3 {
            for k in 0..3 {
                r.push(format!(
                    "{:+.1}%",
                    (bst[m][k] - cbs_m[m][k]) / bst[m][k] * 100.0
                ));
            }
        }
        r
    });
    println!("{}", table.render());
    println!("(columns: wirelength µm, net cap fF, max Elmore wire delay ps;");
    println!(" paper: CBS reduces BST-DME by ~16 % WL, ~13 % cap, ~25 % delay at every level)");
    emit_json("table3", vec![("table", table.to_json())]);
}
