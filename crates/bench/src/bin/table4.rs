//! Paper Table 4: design statistics, plus the synthesized-placement
//! parameters this reproduction derives from them.
//!
//! ```text
//! cargo run -p sllt-bench --bin table4
//! ```

use sllt_bench::{emit_json, Table};
use sllt_design::SUITE;

fn main() {
    println!("Table 4 — design statistics (synthetic placements; see DESIGN.md)");
    let mut table = Table::new(vec![
        "Case",
        "#Insts.",
        "#FFs",
        "Util",
        "Die (µm)",
        "FF cap (fF)",
    ]);
    for spec in &SUITE {
        let d = spec.instantiate();
        table.row(vec![
            spec.name.to_string(),
            spec.num_instances.to_string(),
            spec.num_ffs.to_string(),
            format!("{:.3}", spec.utilization),
            format!("{:.0}×{:.0}", d.die.width(), d.die.height()),
            format!("{:.1}", d.total_sink_cap()),
        ]);
    }
    println!("{}", table.render());
    println!("Constraints (Table 5): skew 80 ps, fanout 32, cap 150 fF, wirelength 300 µm");
    emit_json("table4", vec![("table", table.to_json())]);
}
