//! Machine-readable run records for the hierarchical flow.
//!
//! Runs the paper's flow on the benchmark suite with a recording
//! telemetry sink, writes one validated JSONL run record per design
//! (`results/run_record_<design>.jsonl`: meta + level/assemble events +
//! span tree + merged counters/gauges/histograms), and summarizes the
//! sweep into `BENCH_cts.json` at the repo root (per-stage wall time,
//! wirelength, skew, and the deep-layer counters).
//!
//! ```text
//! cargo run --release -p sllt-bench --bin run_record [-- --design s35932]
//!     [--out BENCH_cts.json] [--force]
//! ```
//!
//! Every record is parsed back before it is written; a record that does
//! not round-trip bit-identically is a schema bug and exits nonzero.
//! The summary lands at `--out` (default `BENCH_cts.json`); when the
//! existing file carries a **newer** schema than this binary writes,
//! the overwrite is refused (exit nonzero) unless `--force` is given —
//! a stale toolchain must not silently downgrade the committed
//! baseline that `bench_diff` gates CI on.

use sllt_bench::{arg_flag, arg_value, run_main};
use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{evaluate, run_record, CollectingObserver, RecordingSink};
use sllt_design::{Design, SUITE};
use sllt_obs::{rate_per_sec, RunRecord, Value};
use std::time::{Duration, Instant};

fn main() -> std::process::ExitCode {
    run_main(run)
}

/// A full sweep covers every placed suite design (paper Table 1) plus
/// one large synthetic grid point, so the recorded benchmark tracks the
/// sharded-partition / SoA-tree scale path as well as the paper
/// comparisons.
const SCALE_POINT: &str = "grid100000";

fn design_by_name(name: &str) -> Result<Design, String> {
    sllt_design::design_by_name(name)
        .ok_or_else(|| format!("unknown design {name:?}; see `table4` for the suite"))
}

/// Refuses to clobber a benchmark summary written by a newer schema.
/// An unreadable or unparseable existing file does not block: the whole
/// point of regenerating is to repair it.
fn check_overwrite(path: &str) -> Result<(), String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Ok(existing) = sllt_obs::json::parse(&text) else {
        return Ok(());
    };
    let Some(schema) = existing.get("schema").and_then(Value::as_u64) else {
        return Ok(());
    };
    if schema > sllt_obs::SCHEMA_VERSION {
        return Err(format!(
            "{path} carries schema {schema}, newer than this binary's {}: refusing to \
             overwrite a baseline from a newer toolchain. Rebuild from the branch that \
             wrote it (or migrate the file), or pass --force to discard it.",
            sllt_obs::SCHEMA_VERSION
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_cts.json".into());
    if !arg_flag("--force") {
        check_overwrite(&out)?;
    }
    let designs: Vec<Design> = match arg_value("--design") {
        Some(name) => vec![design_by_name(&name)?],
        None => SUITE
            .iter()
            .map(|s| s.instantiate())
            .chain([design_by_name(SCALE_POINT)?])
            .collect(),
    };
    std::fs::create_dir_all("results").map_err(|e| format!("create results directory: {e}"))?;

    let mut summaries: Vec<Value> = Vec::new();
    for design in designs {
        let cts = HierarchicalCts::default();
        let sink = RecordingSink::new();
        let mut obs = CollectingObserver::new();
        let t0 = Instant::now();
        let tree = cts
            .run_with_telemetry(&design, &mut obs, &sink)
            .map_err(|e| format!("{}: flow failed: {e}", design.name))?;
        let wall = t0.elapsed();
        let report = evaluate(&tree, &cts.tech, &cts.lib);

        let meta = Value::obj()
            .with("design", design.name.as_str())
            .with("sinks", design.num_ffs())
            .with("seed", cts.seed)
            .with("levels", obs.levels.len());
        let rec = run_record(meta, &obs, sink.registry());
        let text = rec.to_jsonl();
        // Self-validation: what lands on disk must parse back into the
        // same byte stream, or the schema has drifted.
        match RunRecord::parse_jsonl(&text) {
            Ok(back) if back.to_jsonl() == text => {}
            Ok(_) => {
                return Err(format!("{}: run record did not round-trip", design.name));
            }
            Err(e) => {
                return Err(format!("{}: invalid run record: {e}", design.name));
            }
        }
        let path = format!("results/run_record_{}.jsonl", design.name);
        std::fs::write(&path, &text).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "{}: {} sinks, {} spans, {} counters -> {path}",
            design.name,
            design.num_ffs(),
            rec.spans.len(),
            rec.metrics.counters.len()
        );

        let stage = |f: fn(&sllt_cts::StageTimings) -> Duration| -> f64 {
            obs.levels
                .iter()
                .map(|l| f(&l.timings))
                .sum::<Duration>()
                .as_secs_f64()
                * 1e3
        };
        let mut counters = Value::obj();
        for (name, v) in &rec.metrics.counters {
            counters.set(name, Value::from(*v));
        }
        summaries.push(
            Value::obj()
                .with("design", design.name.as_str())
                .with("sinks", design.num_ffs())
                .with("levels", obs.levels.len())
                .with("wall_ms", wall.as_secs_f64() * 1e3)
                .with("partition_ms", stage(|t| t.partition))
                .with("route_ms", stage(|t| t.route))
                .with("sizing_ms", stage(|t| t.sizing))
                .with(
                    "assemble_ms",
                    obs.assemble.as_ref().map(|a| a.elapsed.as_secs_f64() * 1e3),
                )
                .with("clock_wl_um", report.clock_wl_um)
                .with("skew_ps", report.skew_ps)
                .with("max_latency_ps", report.max_latency_ps)
                .with("num_buffers", report.num_buffers)
                .with("clock_cap_ff", report.clock_cap_ff)
                // Rates are None (JSON null) on a sub-resolution window
                // rather than +inf.
                .with(
                    "merge_segments_per_sec",
                    rate_per_sec(rec.metrics.counter("route.dme.merge_segments"), wall),
                )
                .with(
                    "clusters_per_sec",
                    rate_per_sec(rec.metrics.counter("cts.route.clusters"), wall),
                )
                .with("counters", counters),
        );
    }

    let bench = Value::obj()
        .with("bench", "cts")
        .with("schema", sllt_obs::SCHEMA_VERSION)
        .with("designs", summaries);
    std::fs::write(&out, bench.encode() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}
