//! The staged engine, level by level: per-level cluster counts, routed
//! wirelength, and stage wall times, plus a route-stage scaling sweep
//! across worker counts (the numbers behind EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p sllt-bench --bin engine_levels [-- <design-name>]
//! ```
//!
//! `<design-name>` is a placed suite design (`s38584`, …) or a
//! synthetic `grid<N>` (e.g. `grid100000`) for scaling looks.

use sllt_bench::{emit_json, run_main, Table};
use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{level_value, CollectingObserver, RecordingSink};
use sllt_obs::Value;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(run)
}

fn run() -> Result<(), String> {
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "s38584".to_string());
    let design = sllt_design::design_by_name(&name)
        .ok_or_else(|| format!("unknown design {name:?}; see `table4` for the suite"))?;
    println!("{}: {} FFs", design.name, design.num_ffs());

    let cts = HierarchicalCts::default();
    let mut obs = CollectingObserver::new();
    let sink = RecordingSink::new();
    cts.run_with_telemetry(&design, &mut obs, &sink)
        .map_err(|e| format!("flow failed: {e}"))?;
    let metrics = sink.registry().snapshot().metrics;
    println!(
        "\nper-level engine report:\n{}",
        obs.render_with_metrics(Some(&metrics))
    );
    let levels: Vec<Value> = obs.levels.iter().map(level_value).collect();

    // Route-stage scaling: identical trees, different worker counts.
    // Swept to at least 4 so the determinism/overhead picture is visible
    // even on single-core machines (where no speedup is possible).
    let max_workers = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .max(4);
    let mut table = Table::new(vec!["workers", "route (ms)", "speedup", "total (ms)"]);
    let mut serial_route_ms = 0.0;
    let mut workers = 1usize;
    while workers <= max_workers {
        let cts = HierarchicalCts {
            workers,
            ..HierarchicalCts::default()
        };
        let mut obs = CollectingObserver::new();
        cts.run_with_observer(&design, &mut obs)
            .map_err(|e| format!("flow failed at {workers} workers: {e}"))?;
        let route_ms = obs.route_time().as_secs_f64() * 1e3;
        let total_ms = obs
            .levels
            .iter()
            .map(|l| l.timings.total().as_secs_f64() * 1e3)
            .sum::<f64>();
        if workers == 1 {
            serial_route_ms = route_ms;
        }
        // Sub-precision route stages happen on tiny designs; report no
        // speedup rather than a division-by-zero artifact.
        let speedup = if route_ms > 0.0 {
            format!("{:.2}x", serial_route_ms / route_ms)
        } else {
            "—".to_string()
        };
        table.row(vec![
            workers.to_string(),
            format!("{route_ms:.1}"),
            speedup,
            format!("{total_ms:.1}"),
        ]);
        workers *= 2;
    }
    println!(
        "route-stage scaling on {}:\n{}",
        design.name,
        table.render()
    );
    emit_json(
        "engine_levels",
        vec![
            ("design", design.name.as_str().into()),
            ("levels", levels.into()),
            ("scaling", table.to_json()),
        ],
    );
    Ok(())
}
