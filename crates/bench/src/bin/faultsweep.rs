//! Fault-injection sweep over the resilient driver layer.
//!
//! Runs a fixed scenario matrix (transient route error/panic, partition
//! and sizing errors, a route-stage deadline) against a suite design with
//! the degradation ladder enabled, at several worker counts, and checks
//! the recovery contract end to end:
//!
//! * every scenario recovers into a valid tree covering all sinks,
//! * the recovery log is non-empty (each run records its downgrades),
//! * recovered trees are bit-identical across worker counts.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin faultsweep [-- --design s35932]
//! ```
//!
//! Writes `results/faultsweep_<design>.json` and exits nonzero on any
//! contract violation, so CI can use it as a smoke test.

use sllt_bench::arg_value;
use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{CollectingObserver, FaultKind, FaultPlan, FaultStage, RecoveryPolicy, StageFault};
use sllt_design::DesignSpec;
use sllt_obs::Value;

const WORKERS: [usize; 3] = [1, 2, 4];

struct Scenario {
    name: &'static str,
    faults: FaultPlan,
    route_budget: Option<u64>,
}

fn scenarios(num_sinks: u64) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "transient-route-error",
            faults: FaultPlan::single(StageFault::once(
                FaultStage::Route,
                0,
                Some(0),
                FaultKind::Error,
            )),
            route_budget: None,
        },
        Scenario {
            name: "transient-route-panic",
            faults: FaultPlan::single(StageFault::once(
                FaultStage::Route,
                0,
                Some(0),
                FaultKind::Panic,
            )),
            route_budget: None,
        },
        Scenario {
            name: "partition-error",
            faults: FaultPlan::single(StageFault::once(
                FaultStage::Partition,
                0,
                None,
                FaultKind::Error,
            )),
            route_budget: None,
        },
        Scenario {
            name: "sizing-error",
            faults: FaultPlan::single(StageFault::once(
                FaultStage::Sizing,
                0,
                None,
                FaultKind::Error,
            )),
            route_budget: None,
        },
        Scenario {
            name: "route-deadline",
            faults: FaultPlan::none(),
            // Level 0 costs 4 units/member under CBS, 1 under RSMT; a
            // budget just under the BST cost (2/member) forces the ladder
            // all the way down to the RSMT rung.
            route_budget: Some(num_sinks * 2 - 1),
        },
    ]
}

fn main() -> std::process::ExitCode {
    sllt_bench::run_main(run)
}

fn run() -> Result<(), String> {
    // Injected panics are expected here; keep the default hook from
    // spamming a backtrace per contained panic.
    let quiet_design = arg_value("--design").unwrap_or_else(|| "s35932".into());
    let spec = DesignSpec::by_name(&quiet_design)
        .ok_or_else(|| format!("unknown design {quiet_design:?}; see `table4` for the suite"))?;
    let design = spec.instantiate();
    std::fs::create_dir_all("results").map_err(|e| format!("create results directory: {e}"))?;
    std::panic::set_hook(Box::new(|_| {}));

    let mut failures = 0usize;
    let mut rows: Vec<Value> = Vec::new();
    for sc in scenarios(design.num_ffs() as u64) {
        let mut trees = Vec::new();
        let mut downgrades = 0usize;
        let mut attempts = 0usize;
        let mut triggers: Vec<Value> = Vec::new();
        let mut ok = true;
        for workers in WORKERS {
            let cts = HierarchicalCts {
                faults: sc.faults.clone(),
                route_budget: sc.route_budget,
                recovery: RecoveryPolicy::standard(),
                workers,
                ..HierarchicalCts::default()
            };
            let mut obs = CollectingObserver::new();
            match cts.run_with_observer(&design, &mut obs) {
                Ok(tree) => {
                    if let Err(e) = tree.validate() {
                        eprintln!("FAIL {}: workers={workers}: invalid tree: {e}", sc.name);
                        ok = false;
                    }
                    if tree.sinks().len() != design.num_ffs() {
                        eprintln!("FAIL {}: workers={workers}: sink count mismatch", sc.name);
                        ok = false;
                    }
                    downgrades = obs.levels.iter().map(|l| l.downgrades.len()).sum();
                    attempts = obs.levels.iter().map(|l| l.attempts).sum();
                    if workers == WORKERS[0] {
                        triggers = obs
                            .levels
                            .iter()
                            .flat_map(|l| &l.downgrades)
                            .map(|d| Value::from(d.trigger.as_str()))
                            .collect();
                    }
                    trees.push(tree);
                }
                Err(e) => {
                    eprintln!("FAIL {}: workers={workers}: did not recover: {e}", sc.name);
                    ok = false;
                }
            }
        }
        // The recovery log must not be empty: a sweep that recovers
        // without recording its downgrades is a telemetry regression.
        if downgrades == 0 {
            eprintln!("FAIL {}: recovery log is empty", sc.name);
            ok = false;
        }
        let deterministic = trees.windows(2).all(|w| w[0] == w[1]);
        if !deterministic {
            eprintln!(
                "FAIL {}: recovered trees diverge across worker counts",
                sc.name
            );
            ok = false;
        }
        if !ok {
            failures += 1;
        }
        println!(
            "{:<24} recovered={} downgrades={downgrades} attempts={attempts} deterministic={deterministic}",
            sc.name,
            trees.len() == WORKERS.len(),
        );
        rows.push(
            Value::obj()
                .with("scenario", sc.name)
                .with("recovered", trees.len() == WORKERS.len())
                .with("downgrades", downgrades)
                .with("attempts", attempts)
                .with("deterministic", deterministic)
                .with("triggers", Value::Arr(triggers)),
        );
    }

    let out = Value::obj()
        .with("bench", "faultsweep")
        .with("schema", sllt_obs::SCHEMA_VERSION)
        .with("design", design.name.as_str())
        .with("sinks", design.num_ffs())
        .with(
            "workers",
            Value::Arr(WORKERS.iter().map(|&w| Value::from(w)).collect()),
        )
        .with("scenarios", rows);
    let path = format!("results/faultsweep_{}.json", design.name);
    std::fs::write(&path, out.encode() + "\n")
        .map_err(|e| format!("write faultsweep results: {e}"))?;
    println!("wrote {path}");
    if failures > 0 {
        return Err(format!(
            "{failures} scenario(s) violated the recovery contract"
        ));
    }
    Ok(())
}
