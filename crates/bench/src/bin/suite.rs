//! Fault-isolated batch suite runner: designs × constraint configs, one
//! OS process per job.
//!
//! The parent process walks the job matrix and re-execs itself
//! (`--job design:config`) for each cell, so a job that fails, panics,
//! or is cancelled never takes the batch down — the worst outcome is a
//! nonzero final exit code and a manifest row saying why. Progress is
//! journaled to a checksummed, fsync'd manifest (`manifest.jsonl` in
//! `--out`, same sealed-JSONL format as the level checkpoints; see
//! DESIGN.md "Durability model"), so a killed batch restarts with
//! `--resume` and executes only the jobs that never finished.
//!
//! Each child runs with the PR-4 recovery ladder enabled and writes a
//! per-job level checkpoint next to the manifest; a child that died
//! mid-run resumes its own flow from the last committed level on the
//! next attempt.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin suite [-- --designs s35932,s38584
//!     --configs base,tight --out results/suite --retries 1 --resume]
//! ```
//!
//! `--designs` accepts suite names (`s35932`, …) and synthetic
//! `grid<N>` designs (an N-sink register grid) for fast smoke runs.
//! `--inject-panic design:config` makes that child panic mid-job and
//! `--inject-hang design:config` wedges it forever — the isolation and
//! deadline contracts' test hooks.
//!
//! Robustness knobs shared with the `slltd` daemon (same primitives,
//! `sllt-server` crate): `--job-timeout <s>` SIGKILLs a child that
//! outlives its wall-clock deadline (status `timeout`, retryable), and
//! retries back off with deterministic jittered exponential delays —
//! a pure function of the job name and attempt, journaled as
//! `backoff_ms` in each `job_start` record. `--fault-fs <spec>` routes
//! the manifest and per-job progress journals through the deterministic
//! fault-injecting filesystem (see `sllt_obs::vfs`).

use sllt_bench::{arg_flag, arg_parse, arg_value, peak_rss_bytes, run_main, Table};
use sllt_cts::{evaluate, CancelToken, CtsError, Progress};
use sllt_design::Design;
use sllt_obs::journal::{fnv1a64, read_journal};
use sllt_obs::vfs::{real_fs, FaultConfig, FaultFs, Vfs};
use sllt_obs::{DurableAppender, JournalProgress, Value};
use sllt_server::backoff::{backoff_ms, BASE_MS, CAP_MS};
use sllt_server::jobs::config_by_name;
use sllt_server::supervise::{run_supervised, SuperviseOpts};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SUITE_SCHEMA: u64 = 1;
/// Child exit codes the parent interprets; anything else (libstd's 101,
/// or death by signal) is classified as a panic.
const EXIT_JOB_ERROR: i32 = 2;
const EXIT_JOB_CANCELLED: i32 = 3;

fn main() -> ExitCode {
    if let Some(job) = arg_value("--job") {
        return child_main(&job);
    }
    run_main(parent_main)
}

// ---------------------------------------------------------------- jobs

/// Resolves a design name: the benchmark suite by name, or a synthetic
/// `grid<N>` register grid ([`sllt_design::GridSpec`]) for smoke tests
/// that must not pay ISCAS-scale runtimes.
fn design_by_name(name: &str) -> Result<Design, String> {
    sllt_design::design_by_name(name)
        .ok_or_else(|| format!("unknown design {name:?}; see `table4` for the suite"))
}

/// The storage seam shared by the manifest and per-job progress
/// journals: `--fault-fs seed=N[,after=N][,rate=F][,kinds=...]` swaps
/// the real filesystem for a deterministic fault injector, so ENOSPC
/// and torn-sync behaviour of the batch paths is testable on a healthy
/// disk.
fn fault_vfs() -> Result<Arc<dyn Vfs>, String> {
    match arg_value("--fault-fs") {
        None => Ok(real_fs()),
        Some(spec) => {
            let cfg = FaultConfig::parse(&spec).map_err(|e| format!("--fault-fs: {e}"))?;
            Ok(Arc::new(FaultFs::over_real(cfg)))
        }
    }
}

fn ckpt_path(out_dir: &Path, job: &str) -> PathBuf {
    out_dir.join(format!("ckpt_{}.jsonl", job.replace(':', "_")))
}

/// The per-job progress journal: level start/done and decile events,
/// sealed JSONL, written live so a dashboard can tail a running batch.
fn progress_path(out_dir: &Path, job: &str) -> PathBuf {
    out_dir.join(format!("progress_{}.jsonl", job.replace(':', "_")))
}

// --------------------------------------------------------------- child

/// Runs one `design:config` job in-process and reports through the exit
/// code plus a `RESULT {json}` stdout line. This is the isolation
/// boundary: everything in here may fail, panic, or be interrupted
/// without consequence for the parent.
fn child_main(job: &str) -> ExitCode {
    match child_run(job) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => ExitCode::from(code),
    }
}

fn child_run(job: &str) -> Result<(), u8> {
    let fail = |msg: String| -> u8 {
        eprintln!("error: {msg}");
        EXIT_JOB_ERROR as u8
    };
    let (dname, cname) = job
        .split_once(':')
        .ok_or_else(|| fail(format!("bad job {job:?}: expected design:config")))?;
    let design = design_by_name(dname).map_err(fail)?;
    let mut cts = config_by_name(cname).map_err(fail)?;
    cts.workers = arg_parse("--workers", 1usize);
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| "results/suite".into()));

    let token = CancelToken::new();
    cts.cancel = token.clone();
    #[cfg(unix)]
    sllt_cts::cancel::install_signals(&token);

    if arg_flag("--child-panic") {
        panic!("injected child panic ({job}); suite isolation test hook");
    }
    if arg_flag("--child-hang") {
        // The deadline contract's test hook: wedge forever, ignoring the
        // cooperative machinery. Only the parent's SIGKILL ends this.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Live progress: deterministic work-budget events stream into the
    // job's sealed journal. A journal that cannot be created is not
    // fatal — progress is observability, never a reason to fail a job.
    let progress = progress_path(&out_dir, job);
    let vfs = fault_vfs().map_err(fail)?;
    if let Ok(sink) = JournalProgress::create_with(vfs.as_ref(), &progress) {
        cts.progress = Progress::new(Arc::new(sink));
    }

    let ckpt = ckpt_path(&out_dir, job);
    let t0 = Instant::now();
    let result = if ckpt.exists() {
        match cts.resume(&design, &ckpt) {
            // A stale or mismatched journal (config drift, corrupt tail
            // beyond tolerance) is discarded, not fatal: start fresh.
            Err(CtsError::Checkpoint { .. }) => {
                std::fs::remove_file(&ckpt).ok();
                cts.run_checkpointed(&design, &ckpt)
            }
            other => other,
        }
    } else {
        cts.run_checkpointed(&design, &ckpt)
    };

    match result {
        Ok(tree) => {
            let report = evaluate(&tree, &cts.tech, &cts.lib);
            let v = Value::obj()
                .with("job", job)
                .with("sinks", design.num_ffs())
                .with("skew_ps", report.skew_ps)
                .with("wl_um", report.clock_wl_um)
                .with("runtime_s", t0.elapsed().as_secs_f64())
                // VmHWM, bytes; JSON null off Linux (no procfs).
                .with("peak_rss_bytes", peak_rss_bytes());
            println!("RESULT {}", v.encode());
            // The manifest row is the durable record of a finished job;
            // its level checkpoint has nothing left to resume.
            std::fs::remove_file(&ckpt).ok();
            Ok(())
        }
        Err(CtsError::Cancelled) => {
            eprintln!(
                "{job}: cancelled; committed levels remain at {}",
                ckpt.display()
            );
            Err(EXIT_JOB_CANCELLED as u8)
        }
        Err(e) => Err(fail(format!("{job}: {e}"))),
    }
}

// -------------------------------------------------------------- parent

#[derive(Debug, Clone)]
struct Outcome {
    status: String,
    attempts: usize,
    skew_ps: Option<f64>,
    runtime_s: Option<f64>,
    detail: String,
}

fn parent_main() -> Result<(), String> {
    let designs: Vec<String> = arg_value("--designs")
        .unwrap_or_else(|| "s35932,s38584".into())
        .split(',')
        .map(str::to_string)
        .collect();
    let configs: Vec<String> = arg_value("--configs")
        .unwrap_or_else(|| "base,tight".into())
        .split(',')
        .map(str::to_string)
        .collect();
    let retries = arg_parse("--retries", 1usize);
    let workers = arg_parse("--workers", 1usize);
    let inject = arg_value("--inject-panic");
    let inject_hang = arg_value("--inject-hang");
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| "results/suite".into()));
    let resume = arg_flag("--resume");
    let seed: u64 = arg_parse("--seed", 0u64);
    let job_timeout = match arg_value("--job-timeout") {
        None => None,
        Some(raw) => match raw.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => Some(Duration::from_secs_f64(s)),
            _ => return Err(format!("bad --job-timeout {raw:?}: want seconds > 0")),
        },
    };

    // Validate the whole matrix before journaling anything: a typo must
    // not burn a manifest.
    for d in &designs {
        design_by_name(d).map(|_| ())?;
    }
    for c in &configs {
        config_by_name(c).map(|_| ())?;
    }
    let jobs: Vec<String> = designs
        .iter()
        .flat_map(|d| configs.iter().map(move |c| format!("{d}:{c}")))
        .collect();

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let vfs = fault_vfs()?;
    let manifest = out_dir.join("manifest.jsonl");
    let (mut app, finished) =
        open_manifest(vfs.as_ref(), &manifest, resume, &designs, &configs, retries)?;

    let token = CancelToken::new();
    #[cfg(unix)]
    sllt_cts::cancel::install_signals(&token);

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut outcomes: BTreeMap<String, Outcome> = finished
        .iter()
        .map(|(job, o)| (job.clone(), o.clone()))
        .collect();
    let mut interrupted = false;

    for job in &jobs {
        if finished.contains_key(job) {
            continue;
        }
        if token.is_cancelled() {
            interrupted = true;
            break;
        }
        let mut outcome = Outcome {
            status: "pending".into(),
            attempts: 0,
            skew_ps: None,
            runtime_s: None,
            detail: String::new(),
        };
        for attempt in 1..=retries + 1 {
            outcome.attempts = attempt;
            // Deterministic jittered exponential backoff before each
            // retry: a pure function of (seed, job, attempt), so a
            // replayed batch waits identically and the manifest's
            // backoff_ms values are reproducible.
            let backoff = backoff_ms(
                seed ^ fnv1a64(job.as_bytes()),
                attempt as u32,
                BASE_MS,
                CAP_MS,
            );
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
            append(
                &mut app,
                Value::obj()
                    .with("type", "job_start")
                    .with("job", job.as_str())
                    .with("attempt", attempt)
                    .with("backoff_ms", backoff),
            )?;
            let mut cmd = Command::new(&exe);
            cmd.arg("--job")
                .arg(job)
                .arg("--workers")
                .arg(workers.to_string())
                .arg("--out")
                .arg(&out_dir);
            if inject.as_deref() == Some(job.as_str()) {
                cmd.arg("--child-panic");
            }
            if inject_hang.as_deref() == Some(job.as_str()) {
                cmd.arg("--child-hang");
            }
            if let Some(spec) = arg_value("--fault-fs") {
                // Children get the same schedule: their progress
                // journals go through the injector too.
                cmd.arg("--fault-fs").arg(spec);
            }
            let opts = SuperviseOpts {
                timeout: job_timeout,
                interrupt: Some(token.clone()),
                ..SuperviseOpts::default()
            };
            let sup = run_supervised(&mut cmd, &opts)
                .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
            let stdout = sup.stdout.as_str();
            let stderr = sup.stderr.as_str();

            let mut done = Value::obj()
                .with("type", "job_done")
                .with("job", job.as_str())
                .with("attempt", attempt)
                // Parent-measured wall time: present for every outcome,
                // including panics and errors (the child's runtime_s is
                // only reported on success).
                .with("wall_s", sup.wall.as_secs_f64());
            if sup.timed_out && !sup.interrupted {
                // The deadline fired and the child was SIGKILLed; a hung
                // job may be a flaky one, so the remaining attempts run.
                outcome.status = "timeout".into();
                outcome.detail = format!(
                    "SIGKILLed after {:.2}s (--job-timeout)",
                    sup.wall.as_secs_f64()
                );
                done.set("status", "timeout");
                done.set("detail", outcome.detail.as_str());
                append(&mut app, done)?;
                continue;
            }
            match sup.status.code() {
                Some(0) => match parse_result_line(stdout) {
                    Some(r) => {
                        outcome.status = "ok".into();
                        outcome.skew_ps = r.get("skew_ps").and_then(Value::as_f64);
                        outcome.runtime_s = r.get("runtime_s").and_then(Value::as_f64);
                        done.set("status", "ok");
                        done.set("skew_ps", outcome.skew_ps);
                        done.set("runtime_s", outcome.runtime_s);
                        // Child VmHWM (bytes); null off Linux.
                        done.set(
                            "peak_rss_bytes",
                            r.get("peak_rss_bytes").cloned().unwrap_or(Value::Null),
                        );
                    }
                    None => {
                        outcome.status = "error".into();
                        outcome.detail = "child exited 0 without a RESULT line".into();
                        done.set("status", "error");
                        done.set("detail", outcome.detail.as_str());
                    }
                },
                Some(EXIT_JOB_CANCELLED) => {
                    outcome.status = "cancelled".into();
                    outcome.detail = "job cancelled; its level checkpoint is kept".into();
                    done.set("status", "cancelled");
                }
                Some(EXIT_JOB_ERROR) => {
                    outcome.status = "error".into();
                    outcome.detail = last_line(stderr);
                    done.set("status", "error");
                    done.set("detail", outcome.detail.as_str());
                }
                code => {
                    // 101 (Rust panic), any other code, or death by
                    // signal: the child blew up. The batch carries on.
                    outcome.status = "panic".into();
                    outcome.detail = match code {
                        Some(c) => format!("child exited {c}: {}", last_line(stderr)),
                        None => "child killed by signal".into(),
                    };
                    done.set("status", "panic");
                    done.set("detail", outcome.detail.as_str());
                }
            }
            append(&mut app, done)?;
            // Cancellation is a stop request, not a flaky job: never
            // retry it. Errors and panics get the remaining attempts.
            if outcome.status == "ok" || outcome.status == "cancelled" {
                break;
            }
        }
        if outcome.status == "cancelled" {
            interrupted = true;
        }
        outcomes.insert(job.clone(), outcome);
        if interrupted {
            break;
        }
    }

    let mut table = Table::new(vec!["Job", "Status", "Attempts", "Skew (ps)", "Time (s)"]);
    let mut failures = 0usize;
    let mut pending = 0usize;
    for job in &jobs {
        match outcomes.get(job) {
            Some(o) => {
                if o.status != "ok" {
                    failures += 1;
                    if !o.detail.is_empty() {
                        eprintln!("{job}: {}: {}", o.status, o.detail);
                    }
                }
                let prev = if finished.contains_key(job) {
                    " (previous run)"
                } else {
                    ""
                };
                table.row(vec![
                    job.clone(),
                    format!("{}{prev}", o.status),
                    o.attempts.to_string(),
                    o.skew_ps.map_or("—".into(), |s| format!("{s:.1}")),
                    o.runtime_s.map_or("—".into(), |s| format!("{s:.2}")),
                ]);
            }
            None => {
                pending += 1;
                table.row(vec![
                    job.clone(),
                    "not run".to_string(),
                    "0".to_string(),
                    "—".to_string(),
                    "—".to_string(),
                ]);
            }
        }
    }
    println!(
        "suite — {} jobs, manifest {}",
        jobs.len(),
        manifest.display()
    );
    println!("{}", table.render());

    if interrupted {
        return Err(format!(
            "batch interrupted; rerun with --resume --out {} to finish {} job(s)",
            out_dir.display(),
            failures + pending
        ));
    }
    if failures > 0 {
        return Err(format!(
            "{failures} job(s) failed; manifest at {}",
            manifest.display()
        ));
    }
    Ok(())
}

/// Opens (or resumes) the batch manifest. Returns the appender plus the
/// jobs already finished `ok` in previous runs, with their recorded
/// outcomes. On resume the journal's torn final line — the signature of
/// a batch killed mid-append — is truncated away and appending
/// continues from the last intact record.
fn open_manifest(
    vfs: &dyn Vfs,
    manifest: &Path,
    resume: bool,
    designs: &[String],
    configs: &[String],
    retries: usize,
) -> Result<(DurableAppender, BTreeMap<String, Outcome>), String> {
    let meta = Value::obj()
        .with("type", "suite-meta")
        .with("schema", SUITE_SCHEMA)
        .with(
            "designs",
            Value::Arr(designs.iter().map(|d| Value::from(d.as_str())).collect()),
        )
        .with(
            "configs",
            Value::Arr(configs.iter().map(|c| Value::from(c.as_str())).collect()),
        )
        .with("retries", retries);

    if resume && manifest.exists() {
        let journal = read_journal(manifest).map_err(|e| format!("{}: {e}", manifest.display()))?;
        let head = journal
            .records
            .first()
            .ok_or_else(|| format!("{}: empty manifest", manifest.display()))?;
        if head.get("type").and_then(Value::as_str) != Some("suite-meta") {
            return Err(format!("{}: not a suite manifest", manifest.display()));
        }
        for key in ["designs", "configs"] {
            if head.get(key).map(Value::encode) != meta.get(key).map(Value::encode) {
                return Err(format!(
                    "{}: manifest {key} do not match this invocation; \
                     use a fresh --out for a different matrix",
                    manifest.display()
                ));
            }
        }
        let mut finished = BTreeMap::new();
        for rec in &journal.records[1..] {
            if rec.get("type").and_then(Value::as_str) != Some("job_done") {
                continue;
            }
            let (Some(job), Some(status)) = (
                rec.get("job").and_then(Value::as_str),
                rec.get("status").and_then(Value::as_str),
            ) else {
                continue;
            };
            if status == "ok" {
                finished.insert(
                    job.to_string(),
                    Outcome {
                        status: "ok".into(),
                        attempts: rec.get("attempt").and_then(Value::as_u64).unwrap_or(0) as usize,
                        skew_ps: rec.get("skew_ps").and_then(Value::as_f64),
                        runtime_s: rec.get("runtime_s").and_then(Value::as_f64),
                        detail: String::new(),
                    },
                );
            }
        }
        let app = DurableAppender::reopen_with(vfs, manifest, journal.valid_len)
            .map_err(|e| format!("reopen {}: {e}", manifest.display()))?;
        return Ok((app, finished));
    }

    let mut app = DurableAppender::create_with(vfs, manifest)
        .map_err(|e| format!("create {}: {e}", manifest.display()))?;
    append(&mut app, meta)?;
    Ok((app, BTreeMap::new()))
}

fn append(app: &mut DurableAppender, record: Value) -> Result<(), String> {
    app.append(&record)
        .map_err(|e| format!("manifest append: {e}"))
}

fn parse_result_line(stdout: &str) -> Option<Value> {
    let line = stdout
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("RESULT "))?;
    sllt_obs::json::parse(line).ok()
}

fn last_line(stderr: &str) -> String {
    stderr
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty() && !l.starts_with("note:"))
        .unwrap_or("(no stderr)")
        .to_string()
}
