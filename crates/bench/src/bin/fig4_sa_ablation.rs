//! Paper Fig. 4 ablation: the simulated-annealing partition refinement.
//!
//! The SA boundary-move neighbourhood exists to repair capacitance and
//! wirelength violations left by balanced K-means. This harness builds a
//! deliberately stressed partitioning instance (heavy pins, tight cap
//! budget) plus two real designs, and reports the violation cost before
//! and after refinement.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin fig4_sa_ablation
//! ```

use sllt_bench::{emit_json, Table};
use sllt_geom::Point;
use sllt_partition::{balanced_kmeans_restarts, sa};
use sllt_rng::prelude::*;

fn stress_case(seed: u64, n: usize) -> (Vec<Point>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.random_range(0.0..150.0), rng.random_range(0.0..150.0)))
        .collect();
    // Mixed pin weights: a few heavy macro-ish pins amid light flops.
    let caps: Vec<f64> = (0..n)
        .map(|_| {
            if rng.random_bool(0.1) {
                rng.random_range(8.0..20.0)
            } else {
                rng.random_range(0.5..1.5)
            }
        })
        .collect();
    (points, caps)
}

fn main() {
    let cons = sa::PartitionConstraints {
        max_cap_ff: 60.0,
        max_fanout: 24,
        max_wl_um: 120.0,
        unit_wire_cap: 0.16,
    };
    let mut table = Table::new(vec![
        "Case",
        "n",
        "k",
        "cost before (fF)",
        "cost after (fF)",
        "reduction",
    ]);
    for (name, seed, n) in [
        ("stress-a", 11u64, 240usize),
        ("stress-b", 23, 360),
        ("stress-c", 37, 480),
    ] {
        let (points, caps) = stress_case(seed, n);
        let k = n.div_ceil(cons.max_fanout);
        let part = balanced_kmeans_restarts(&points, k, cons.max_fanout, seed, 4);
        let mut assignment = part.assignment;
        let before = sa::total_cost(&points, &caps, &assignment, k, &cons);
        let after = sa::refine(
            &points,
            &caps,
            &mut assignment,
            k,
            &cons,
            &sa::SaConfig {
                iterations: 3000,
                seed,
                ..Default::default()
            },
        );
        table.row(vec![
            name.to_string(),
            n.to_string(),
            k.to_string(),
            format!("{before:.1}"),
            format!("{after:.1}"),
            if before > 0.0 {
                format!("{:.1}%", (before - after) / before * 100.0)
            } else {
                "—".to_string()
            },
        ]);
    }
    println!("Fig. 4 ablation — SA boundary-move refinement of violating partitions");
    println!("{}", table.render());
    println!("(the SA neighbourhood moves convex-hull instances of expensive nets to their");
    println!(" nearest neighbour net, as in paper Fig. 4)");
    emit_json("fig4_sa_ablation", vec![("table", table.to_json())]);
}
