//! Sink-count scaling of the full hierarchical flow (the million-sink
//! data-layout numbers): wall time, per-sink cost, and peak RSS across
//! a sweep of square `grid<N>` designs.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin scale_sweep \
//!     [-- --sizes 10000,100000,1000000] [--workers 0] [--json]
//!     [--no-sa] [--levels]
//! ```
//!
//! `--levels` prints a per-level partition/route breakdown — the first
//! place to look when a size scales worse than its neighbours.
//!
//! Sizes run ascending so the monotone `VmHWM` reading after each run
//! bounds that size's true peak. The sweep prints per-sink wall time —
//! near-constant per-sink cost across decades is the near-linear
//! scaling the SoA/CSR arena, binary checkpoints, and sharded level-0
//! partitioning exist to deliver.

use sllt_bench::{arg_parse, arg_value, emit_json, peak_rss_bytes, run_main, Table};
use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{CollectingObserver, FlowObserver, LevelReport};
use sllt_design::GridSpec;
use sllt_obs::Value;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    run_main(run)
}

/// Collects level reports and, under `--levels`, narrates each level to
/// stderr as it completes — long scaling points should show where they
/// are, not go dark for minutes.
struct Progress {
    inner: CollectingObserver,
    live: bool,
}

impl FlowObserver for Progress {
    fn on_flow_start(&mut self, num_sinks: usize, workers: usize) {
        self.inner.on_flow_start(num_sinks, workers);
    }
    fn on_level(&mut self, report: &LevelReport) {
        if self.live {
            eprintln!(
                "  L{}: {} nodes -> {} clusters, partition {:.3}s, route {:.3}s, \
                 sizing {:.3}s, {} pads ({} attempts)",
                report.level,
                report.num_nodes,
                report.num_clusters,
                report.timings.partition.as_secs_f64(),
                report.timings.route.as_secs_f64(),
                report.timings.sizing.as_secs_f64(),
                report.pads,
                report.attempts,
            );
        }
        self.inner.on_level(report);
    }
    fn on_assemble(&mut self, report: &sllt_cts::AssembleReport) {
        self.inner.on_assemble(report);
    }
}

fn run() -> Result<(), String> {
    let sizes: Vec<usize> = arg_value("--sizes")
        .unwrap_or_else(|| "10000,100000,1000000".into())
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad --sizes entry {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    if sizes.windows(2).any(|w| w[0] >= w[1]) {
        return Err("--sizes must be strictly ascending (RSS readings are monotone)".into());
    }
    let workers: usize = arg_parse("--workers", 0);

    let mut table = Table::new(vec![
        "sinks",
        "levels",
        "wall (s)",
        "us/sink",
        "partition (s)",
        "route (s)",
        "sizing (s)",
        "peak RSS (MB)",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    for &n in &sizes {
        let design = GridSpec::square(n).instantiate();
        let cts = HierarchicalCts {
            workers,
            use_sa: !sllt_bench::arg_flag("--no-sa"),
            ..HierarchicalCts::default()
        };
        let mut obs = Progress {
            inner: CollectingObserver::new(),
            live: sllt_bench::arg_flag("--levels"),
        };
        let t0 = Instant::now();
        let tree = cts
            .run_with_observer(&design, &mut obs)
            .map_err(|e| format!("grid{n}: flow failed: {e}"))?;
        let obs = obs.inner;
        let wall = t0.elapsed().as_secs_f64();
        let sinks = tree.sinks().len();
        if sinks != n {
            return Err(format!("grid{n}: built tree has {sinks} sinks"));
        }
        let rss = peak_rss_bytes();
        let us_per_sink = wall * 1e6 / n as f64;
        let stage = |f: fn(&sllt_cts::StageTimings) -> std::time::Duration| -> f64 {
            obs.levels
                .iter()
                .map(|l| f(&l.timings))
                .sum::<std::time::Duration>()
                .as_secs_f64()
        };
        let (part_s, route_s, sizing_s) = (
            stage(|t| t.partition),
            stage(|t| t.route),
            stage(|t| t.sizing),
        );
        table.row(vec![
            n.to_string(),
            obs.levels.len().to_string(),
            format!("{wall:.2}"),
            format!("{us_per_sink:.2}"),
            format!("{part_s:.2}"),
            format!("{route_s:.2}"),
            format!("{sizing_s:.2}"),
            rss.map_or("n/a".into(), |b| format!("{:.0}", b as f64 / 1e6)),
        ]);
        rows.push(
            Value::obj()
                .with("sinks", n as u64)
                .with("levels", obs.levels.len() as u64)
                .with("wall_s", wall)
                .with("us_per_sink", us_per_sink)
                .with("partition_s", part_s)
                .with("route_s", route_s)
                .with("sizing_s", sizing_s)
                .with("peak_rss_bytes", rss),
        );
        println!("grid{n}: {wall:.2}s ({us_per_sink:.2} us/sink)");
    }
    println!("\n{}", table.render());
    emit_json(
        "scale_sweep",
        vec![("sizes", Value::Arr(rows)), ("table", table.to_json())],
    );
    Ok(())
}
