//! Randomized storage/crash torture harness for the durability stack.
//!
//! Two phases, both driven from one seed so a failing run replays
//! exactly:
//!
//! * **Phase A — fault schedules.** `--schedules N` randomized
//!   [`FaultFs`] schedules (ENOSPC/EIO/short/torn at varying rates and
//!   onsets) over `run_checkpointed`, asserting the flow degrades
//!   rather than aborts, the produced tree is bit-identical to a clean
//!   reference, and the surviving journal prefix is readable. Each
//!   schedule then gets a randomized **kill point**: the checkpoint
//!   journal is truncated at an arbitrary byte offset and the resume
//!   path must either rebuild the identical tree from the prefix or
//!   refuse the journal cleanly and rebuild from scratch — never panic,
//!   never produce a different tree.
//! * **Phase B — daemon crash cycles** (unix only). `--daemon-cycles N`
//!   rounds of: start a real `slltd` (sibling binary) with a tiny disk
//!   budget, submit jobs, SIGKILL the whole process group mid-flight,
//!   assert the journal stayed readable and no orphan process lingers,
//!   then `--resume` and assert every job still reaches a final `ok`,
//!   the artifact footprint honors the budget, and a SIGTERM drain
//!   exits 0.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin torture -- --schedules 32 --json
//! ```
//!
//! Exit is nonzero when any invariant is violated; `--json` prints a
//! single machine-readable summary line.

use sllt_bench::{arg_flag, arg_parse, arg_value};
use sllt_cts::{CtsError, HierarchicalCts};
use sllt_design::Design;
use sllt_obs::journal::read_journal;
use sllt_obs::vfs::{FaultConfig, FaultFs};
use sllt_obs::Value;
use sllt_rng::SplitMix64;
use sllt_tree::ClockTree;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Collected invariant violations; empty means a green run.
#[derive(Default)]
struct Tally {
    checks: u64,
    violations: Vec<String>,
}

impl Tally {
    fn check(&mut self, ok: bool, what: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            let msg = what();
            eprintln!("torture: VIOLATION: {msg}");
            self.violations.push(msg);
        }
    }
}

fn cts() -> HierarchicalCts {
    HierarchicalCts {
        workers: 1,
        ..HierarchicalCts::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sllt_torture_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn main() -> ExitCode {
    let schedules: u64 = arg_parse("--schedules", 16u64);
    let daemon_cycles: u64 = arg_parse("--daemon-cycles", 2u64);
    let seed: u64 = arg_parse("--seed", 0x7021_u64);
    let design_name = arg_value("--design").unwrap_or_else(|| "grid64".into());
    let json = arg_flag("--json");

    let design = match sllt_design::design_by_name(&design_name) {
        Some(d) => d,
        None => {
            eprintln!("error: unknown design {design_name:?}");
            return ExitCode::from(2);
        }
    };

    let t0 = Instant::now();
    let mut tally = Tally::default();
    fault_schedule_phase(&mut tally, &design, schedules, seed);
    let cycles_run = daemon_phase(&mut tally, daemon_cycles, seed);

    let summary = Value::obj()
        .with("schedules", schedules)
        .with("daemon_cycles", cycles_run)
        .with("checks", tally.checks)
        .with("violations", tally.violations.len())
        .with(
            "details",
            Value::Arr(
                tally
                    .violations
                    .iter()
                    .map(|v| Value::from(v.as_str()))
                    .collect(),
            ),
        )
        .with("wall_s", t0.elapsed().as_secs_f64());
    if json {
        println!("{}", summary.encode());
    } else {
        println!(
            "torture — {} schedules, {} daemon cycle(s), {} checks, {} violation(s) in {:.1}s",
            schedules,
            cycles_run,
            tally.checks,
            tally.violations.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    if tally.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ------------------------------------------------- phase A: fault schedules

/// Random fault schedule `i`: onset, rate, and seed all derived from
/// the run seed, so `--seed`+index replays one schedule exactly.
fn schedule_spec(seed: u64, i: u64) -> String {
    let mut rng = SplitMix64::new(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let fault_seed = rng.next_u64();
    let after = 2 + rng.next_u64() % 12;
    let rate = 0.25 + (rng.next_u64() % 1000) as f64 / 1000.0 * 0.75;
    format!("seed={fault_seed},after={after},rate={rate:.3}")
}

fn fault_schedule_phase(tally: &mut Tally, design: &Design, schedules: u64, seed: u64) {
    let dir = scratch("schedules");
    let clean = cts();
    let reference = clean.run(design).expect("clean reference run");

    for i in 0..schedules {
        let spec = schedule_spec(seed, i);
        let path = dir.join(format!("ckpt_{i}.jsonl"));
        let fs = FaultFs::over_real(FaultConfig::parse(&spec).expect("generated spec parses"));
        let mut faulty = cts();
        faulty.vfs = Arc::new(fs.clone());
        match faulty.run_checkpointed(design, &path) {
            Ok(tree) => tally.check(tree == reference, || {
                format!("schedule {i} ({spec}): degraded run diverged from the clean tree")
            }),
            // Journal creation (create + meta write + meta sync) is
            // pre-flight: a fault there is a clean Err. Anything later
            // must degrade, never abort.
            Err(e) => tally.check(fs.ops() <= 3, || {
                format!("schedule {i} ({spec}): flow aborted mid-run: {e}")
            }),
        }
        if path.exists() {
            tally.check(read_journal(&path).is_ok(), || {
                format!("schedule {i} ({spec}): surviving journal unreadable")
            });
            kill_point_resume(tally, design, &reference, &path, i, seed);
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncates the journal at a random byte offset (a crash mid-write)
/// and asserts resume either rebuilds the identical tree from the
/// prefix or refuses the journal cleanly and rebuilds from scratch.
fn kill_point_resume(
    tally: &mut Tally,
    design: &Design,
    reference: &ClockTree,
    path: &Path,
    i: u64,
    seed: u64,
) {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => return,
    };
    let mut rng = SplitMix64::new(seed ^ 0xDEAD ^ i);
    let cut = (rng.next_u64() % (bytes.len() as u64 + 1)) as usize;
    if std::fs::write(path, &bytes[..cut]).is_err() {
        return;
    }
    tally.check(read_journal(path).is_ok(), || {
        format!(
            "schedule {i}: truncation at {cut}/{} unreadable",
            bytes.len()
        )
    });
    let clean = cts();
    match clean.resume(design, path) {
        Ok(tree) => tally.check(&tree == reference, || {
            format!("schedule {i}: resume after cut at {cut} diverged from the clean tree")
        }),
        Err(CtsError::Checkpoint { .. }) => {
            // The prefix was too mangled to trust (e.g. the meta record
            // itself is gone): refusing is correct, and a fresh run on
            // the same path must still match.
            std::fs::remove_file(path).ok();
            match clean.run_checkpointed(design, path) {
                Ok(tree) => tally.check(&tree == reference, || {
                    format!("schedule {i}: fresh rebuild after refused prefix diverged")
                }),
                Err(e) => tally.check(false, || {
                    format!("schedule {i}: fresh rebuild after refused prefix failed: {e}")
                }),
            }
        }
        Err(e) => tally.check(false, || {
            format!("schedule {i}: resume after cut at {cut} aborted: {e}")
        }),
    }
}

// --------------------------------------------- phase B: daemon crash cycles

#[cfg(unix)]
fn daemon_phase(tally: &mut Tally, cycles: u64, seed: u64) -> u64 {
    let Some(slltd) = find_slltd() else {
        eprintln!("torture: slltd binary not found next to torture; skipping daemon phase");
        return 0;
    };
    for c in 0..cycles {
        if let Err(e) = daemon_cycle(tally, &slltd, c, seed) {
            tally.check(false, || format!("daemon cycle {c}: {e}"));
        }
    }
    cycles
}

#[cfg(not(unix))]
fn daemon_phase(_tally: &mut Tally, _cycles: u64, _seed: u64) -> u64 {
    0
}

#[cfg(unix)]
fn find_slltd() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let p = exe.parent()?.join("slltd");
    p.exists().then_some(p)
}

#[cfg(unix)]
mod unix_daemon {
    pub const SIGKILL: i32 = 9;
    pub const SIGTERM: i32 = 15;
    extern "C" {
        pub fn kill(pid: i32, sig: i32) -> i32;
    }

    /// Pids (other than ours) whose cmdline mentions `needle` — the
    /// orphan detector. Non-Linux unix has no procfs; report nothing.
    pub fn procs_referencing(needle: &str) -> Vec<i32> {
        let mut out = Vec::new();
        let Ok(rd) = std::fs::read_dir("/proc") else {
            return out;
        };
        for e in rd.flatten() {
            let Ok(pid) = e.file_name().to_string_lossy().parse::<i32>() else {
                continue;
            };
            if pid == std::process::id() as i32 {
                continue;
            }
            if let Ok(cmd) = std::fs::read(format!("/proc/{pid}/cmdline")) {
                if String::from_utf8_lossy(&cmd).contains(needle) {
                    out.push(pid);
                }
            }
        }
        out
    }
}

/// One crash cycle: start → submit → SIGKILL the group → resume →
/// verify completion, bounded disk, clean drain, no orphans.
#[cfg(unix)]
fn daemon_cycle(tally: &mut Tally, slltd: &Path, c: u64, seed: u64) -> Result<(), String> {
    use sllt_server::client::{req, Client};
    use sllt_server::net::Endpoint;
    use std::os::unix::process::CommandExt;
    use std::process::{Command, Stdio};
    use unix_daemon::*;

    const DISK_BUDGET_MB: &str = "0.001"; // ~1 KiB: forces aggressive GC
    const DISK_BUDGET_BYTES: u64 = 1048;

    let mut rng = SplitMix64::new(seed ^ 0xDAE0 ^ c);
    let dir = scratch(&format!("daemon_{c}"));
    let sock = dir.join("slltd.sock");
    let ep = Endpoint::Unix(sock.clone());
    let spawn = |resume: bool| -> Result<std::process::Child, String> {
        let mut cmd = Command::new(slltd);
        cmd.arg("--state-dir")
            .arg(&dir)
            .arg("--listen")
            .arg(&sock)
            .arg("--workers")
            .arg("2")
            .arg("--disk-budget")
            .arg(DISK_BUDGET_MB)
            .arg("--drain-grace")
            .arg("0.3")
            .arg("--cancel-grace")
            .arg("0.5")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .process_group(0);
        if resume {
            cmd.arg("--resume");
        }
        cmd.spawn().map_err(|e| format!("spawn slltd: {e}"))
    };
    let wait_ready = || -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(mut cl) = Client::connect(&ep) {
                if cl.request(&req::ping()).is_ok() {
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err("slltd never answered ping".into());
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    let rpc = |v: &Value| -> Result<Value, String> {
        Client::connect(&ep)
            .map_err(|e| format!("connect: {e}"))?
            .request(v)
    };

    // --- run 1: submit, then SIGKILL the whole group mid-flight ---
    let mut child = spawn(false)?;
    wait_ready()?;
    let mut jobs = Vec::new();
    for j in 0..3u64 {
        let sleep_ms = 500 + rng.next_u64() % 1500;
        let reply = rpc(&req::submit("grid36", "base").with("fault", format!("sleep:{sleep_ms}")))?;
        let id = reply
            .get("job")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("submit {j} refused: {}", reply.encode()))?
            .to_string();
        jobs.push(id);
    }
    std::thread::sleep(Duration::from_millis(100 + rng.next_u64() % 600));
    unsafe { kill(-(child.id() as i32), SIGKILL) };
    child.wait().ok();

    let needle = dir.display().to_string();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !procs_referencing(&needle).is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    tally.check(procs_referencing(&needle).is_empty(), || {
        format!("cycle {c}: orphan job children survived the group SIGKILL")
    });
    tally.check(read_journal(&dir.join("jobs.jsonl")).is_ok(), || {
        format!("cycle {c}: journal unreadable after SIGKILL")
    });

    // --- run 2: resume; every job must still reach a final ok ---
    let mut child = spawn(true)?;
    wait_ready()?;
    for id in &jobs {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let reply = rpc(&req::result(id, true))?;
            if reply.get("done") == Some(&Value::Bool(true)) {
                let status = reply.get("status").and_then(Value::as_str).unwrap_or("?");
                tally.check(status == "ok", || {
                    format!("cycle {c}: resumed {id} ended {status}: {}", reply.encode())
                });
                break;
            }
            if Instant::now() >= deadline {
                return Err(format!("cycle {c}: {id} never finished after resume"));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    // Bounded disk: the budget GC must pull finished-job artifacts
    // under the ceiling shortly after the last job lands.
    let artifact_bytes = || -> u64 {
        std::fs::read_dir(&dir)
            .into_iter()
            .flatten()
            .filter_map(Result::ok)
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with("tree_") || n.starts_with("progress_") || n.starts_with("ckpt_")
            })
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while artifact_bytes() > DISK_BUDGET_BYTES && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    tally.check(artifact_bytes() <= DISK_BUDGET_BYTES, || {
        format!(
            "cycle {c}: artifacts not bounded by the disk budget ({} bytes)",
            artifact_bytes()
        )
    });

    // --- clean drain: SIGTERM must end in exit 0 and a sealed journal ---
    unsafe { kill(child.id() as i32, SIGTERM) };
    let status = child.wait().map_err(|e| format!("reap: {e}"))?;
    tally.check(status.success(), || {
        format!("cycle {c}: drain exited {status:?}")
    });
    tally.check(read_journal(&dir.join("jobs.jsonl")).is_ok(), || {
        format!("cycle {c}: journal unreadable after drain")
    });
    tally.check(procs_referencing(&needle).is_empty(), || {
        format!("cycle {c}: processes still reference the state dir after drain")
    });
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
