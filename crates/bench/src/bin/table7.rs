//! Paper Table 7: full-flow comparison on the four internal ysyx designs.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin table7
//! ```

use sllt_bench::flows::comparison;
use sllt_bench::{emit_json, run_main};
use sllt_design::SUITE;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let specs: Vec<_> = SUITE.iter().filter(|s| s.internal).collect();
        let table = comparison(&specs)?;
        println!("Table 7 — ours (O) vs commercial-like (C) vs OpenROAD-like (R), ysyx designs");
        println!("{}", table.render());
        emit_json("table7", vec![("table", table.to_json())]);
        println!("(paper Avg. vs ours: latency C 1.017 / R 1.449; buffers C 1.019 / R 1.215;");
        println!(" area C 1.016 / R 3.082; cap C 1.101 / R 0.650; WL C 1.003 / R 1.063)");
        Ok(())
    })
}
