//! OCV robustness comparison across the three flows — quantifying the
//! paper's §1 motivation ("conventional CTS that focuses solely on skew
//! is inadequate" under on-chip variation).
//!
//! Two variation views per flow and design:
//! * **derate** — graph-based ±8 % derates on non-common paths (CPPR),
//! * **Monte-Carlo** — 200 trials of per-segment/per-buffer noise.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin ocv_robustness
//! ```

use sllt_bench::{run_main, Table};
use sllt_cts::{baseline, constraints::CtsConstraints, flow::HierarchicalCts, ocv};
use sllt_design::SUITE;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(run)
}

fn run() -> Result<(), String> {
    let mut table = Table::new(vec![
        "Case",
        "Flow",
        "nominal (ps)",
        "derate ±8% (ps)",
        "MC p95 (ps)",
        "MC max (ps)",
    ]);
    for spec in SUITE.iter().filter(|s| !s.internal).take(3) {
        let design = spec.instantiate();
        let ours = HierarchicalCts::default();
        let flows: Vec<(&str, sllt_tree::ClockTree)> = vec![
            (
                "ours",
                ours.run(&design)
                    .map_err(|e| format!("{}: flow failed: {e}", spec.name))?,
            ),
            (
                "commercial-like",
                baseline::commercial_like()
                    .run(&design)
                    .map_err(|e| format!("{}: commercial-like flow failed: {e}", spec.name))?,
            ),
            (
                "openroad-like",
                baseline::open_road_like(&design, &CtsConstraints::paper(), &ours.tech, &ours.lib),
            ),
        ];
        for (name, tree) in &flows {
            let nominal = ocv::derate_skew(tree, &ours.tech, &ours.lib, 0.0);
            let derated = ocv::derate_skew(tree, &ours.tech, &ours.lib, 0.08);
            let mc = ocv::ocv_analysis(tree, &ours.tech, &ours.lib, &ocv::OcvModel::default(), 200);
            table.row(vec![
                spec.name.to_string(),
                name.to_string(),
                format!("{nominal:.1}"),
                format!("{derated:.1}"),
                format!("{:.1}", mc.p95_skew_ps),
                format!("{:.1}", mc.max_skew_ps),
            ]);
        }
    }
    println!("OCV robustness — nominal vs derated vs Monte-Carlo skew");
    println!("{}", table.render());
    println!("(shallow SLLT trees diverge late and keep paths short, so the derate-induced");
    println!(" growth is smallest for the paper's flow — its §1 motivation, quantified)");
    Ok(())
}
