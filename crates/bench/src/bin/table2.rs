//! Paper Table 2: mean wirelength of R-SALT vs CBS over random clock
//! nets, for three BST merge-order schemes × three skew levels.
//!
//! ```text
//! cargo run --release -p sllt-bench --bin table2 [-- --nets 10000]
//! ```
//!
//! The paper uses 10,000 nets per cell; the default here is 2,000 to keep
//! interactive runs snappy — pass `--nets 10000` for the full workload.

use sllt_bench::{arg_parse, emit_json, Table};
use sllt_core::cbs::{cbs, CbsConfig};
use sllt_design::NetGenerator;
use sllt_route::{salt::salt, topogen::TopologyScheme, DelayModel};
use sllt_timing::Technology;

/// The paper's skew levels, ps (relaxed / moderate / stringent).
const SKEWS: [f64; 3] = [80.0, 10.0, 5.0];
const SCHEMES: [TopologyScheme; 3] = [
    TopologyScheme::GreedyDist,
    TopologyScheme::GreedyMerge,
    TopologyScheme::BiPartition,
];
const EPS: f64 = 0.2;

fn main() {
    let nets = arg_parse("--nets", 2000usize);
    let tech = Technology::n28();
    let gen = NetGenerator::paper();

    // R-SALT is skew-independent: one pass.
    let mut salt_wl = 0.0;
    for net in gen.take(nets) {
        salt_wl += salt(&net, EPS).wirelength();
    }
    salt_wl /= nets as f64;

    let mut cbs_wl = vec![[0.0f64; 3]; SCHEMES.len()];
    for (scheme, row) in SCHEMES.iter().zip(cbs_wl.iter_mut()) {
        for (&skew, cell) in SKEWS.iter().zip(row.iter_mut()) {
            let mut total = 0.0;
            for net in gen.take(nets) {
                let cfg = CbsConfig {
                    scheme: *scheme,
                    skew_bound: skew,
                    eps: EPS,
                    model: DelayModel::Elmore(tech),
                };
                total += cbs(&net, &cfg).wirelength();
            }
            *cell = total / nets as f64;
        }
    }

    println!("Table 2 — wirelength (µm) R-SALT vs CBS, {nets} nets per cell");
    let mut table = Table::new(vec![
        "", "GD 80ps", "GD 10ps", "GD 5ps", "GM 80ps", "GM 10ps", "GM 5ps", "BP 80ps", "BP 10ps",
        "BP 5ps",
    ]);
    let mut salt_row = vec!["R-SALT".to_string()];
    let mut cbs_row = vec!["CBS".to_string()];
    let mut red_row = vec!["Reduce".to_string()];
    for row in &cbs_wl {
        for &v in row {
            salt_row.push(format!("{salt_wl:.1}"));
            cbs_row.push(format!("{v:.1}"));
            red_row.push(format!("{:+.2}%", (salt_wl - v) / salt_wl * 100.0));
        }
    }
    table.row(salt_row);
    table.row(cbs_row);
    table.row(red_row);
    println!("{}", table.render());
    println!("(positive Reduce = CBS lighter than R-SALT; paper: +2.7 % at 80 ps shrinking to ~0 at 5 ps)");
    emit_json("table2", vec![("table", table.to_json())]);
}
