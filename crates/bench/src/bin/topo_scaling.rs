//! Greedy merge-order scaling sweep: engine-backed Greedy-Dist and
//! Greedy-Merge from 1k to 100k sinks, with the brute-force oracles at
//! the sizes where O(n³) is still affordable (the numbers behind the
//! EXPERIMENTS.md scaling table).
//!
//! ```text
//! cargo run --release -p sllt-bench --bin topo_scaling
//! ```

use sllt_bench::{emit_json, Table};
use sllt_geom::Point;
use sllt_rng::prelude::*;
use sllt_route::{greedy_dist, greedy_dist_naive, greedy_merge, greedy_merge_naive};
use sllt_tree::{ClockNet, Sink};
use std::time::Instant;

fn random_net(seed: u64, n: usize) -> ClockNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = 75.0 * (n as f64 / 40.0).sqrt(); // constant sink density
    ClockNet::new(
        Point::new(span / 2.0, span / 2.0),
        (0..n)
            .map(|_| {
                Sink::new(
                    Point::new(rng.random_range(0.0..span), rng.random_range(0.0..span)),
                    1.0,
                )
            })
            .collect(),
    )
}

fn time_ms(f: impl FnOnce() -> sllt_tree::Topology) -> (f64, usize) {
    let t0 = Instant::now();
    let topo = f();
    (t0.elapsed().as_secs_f64() * 1e3, topo.depth())
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else {
        format!("{ms:.1}")
    }
}

fn main() {
    // Above this the O(n³) oracles are skipped (minutes of runtime).
    const NAIVE_MAX: usize = 4_000;
    let mut table = Table::new(vec![
        "sinks",
        "dist (ms)",
        "dist naive (ms)",
        "merge (ms)",
        "merge naive (ms)",
    ]);
    for n in [1_000usize, 2_000, 4_000, 10_000, 20_000, 50_000, 100_000] {
        let net = random_net(42, n);
        let (dist_ms, _) = time_ms(|| greedy_dist(&net));
        let (merge_ms, _) = time_ms(|| greedy_merge(&net));
        let (dist_naive, merge_naive) = if n <= NAIVE_MAX {
            let (dn, _) = time_ms(|| greedy_dist_naive(&net));
            let (mn, _) = time_ms(|| greedy_merge_naive(&net));
            (fmt_ms(dn), fmt_ms(mn))
        } else {
            ("—".to_string(), "—".to_string())
        };
        table.row(vec![
            n.to_string(),
            fmt_ms(dist_ms),
            dist_naive,
            fmt_ms(merge_ms),
            merge_naive,
        ]);
    }
    println!("greedy merge-order scaling (random nets, constant density):");
    println!("{}", table.render());

    // Degenerate shape: collinear sinks (worst case for the grid).
    let mut degen = Table::new(vec!["sinks (collinear)", "dist (ms)", "merge (ms)"]);
    for n in [10_000usize, 50_000, 200_000] {
        let net = ClockNet::new(
            Point::ORIGIN,
            (0..n)
                .map(|i| Sink::new(Point::new(i as f64 * 0.5, 0.0), 1.0))
                .collect(),
        );
        let (dist_ms, _) = time_ms(|| greedy_dist(&net));
        let (merge_ms, _) = time_ms(|| greedy_merge(&net));
        degen.row(vec![n.to_string(), fmt_ms(dist_ms), fmt_ms(merge_ms)]);
    }
    println!("\ncollinear degenerate case:");
    println!("{}", degen.render());
    emit_json(
        "topo_scaling",
        vec![("scaling", table.to_json()), ("collinear", degen.to_json())],
    );
}
