//! Benchmark regression gate: diff a fresh flow run against the
//! committed `BENCH_cts.json` baseline.
//!
//! The hierarchical flow is bit-deterministic (same seed, any worker
//! count), so everything the engine *counts* — clusters routed, MCF
//! augmentations, Lloyd iterations, merge segments, buffers inserted —
//! must match the committed baseline exactly; any drift means the
//! algorithm changed and the baseline (plus the change log) must be
//! regenerated deliberately. Wall times are machine noise and only
//! *warn* when they move past `--noise` (ratio vs the baseline).
//!
//! ```text
//! cargo run --release -p sllt-bench --bin bench_diff [-- --design s35932]
//!     [--baseline BENCH_cts.json] [--noise 2.0] [--inject-drift <counter>]
//! ```
//!
//! Exit is nonzero on any deterministic drift. `--inject-drift <name>`
//! bumps one fresh counter by 1 before comparing — CI's self-test that
//! the gate actually trips.

use sllt_bench::{arg_parse, arg_value, run_main, Table};
use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{evaluate, CollectingObserver, RecordingSink};
use sllt_design::Design;
use sllt_obs::Value;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() -> std::process::ExitCode {
    run_main(run)
}

fn design_by_name(name: &str) -> Result<Design, String> {
    sllt_design::design_by_name(name)
        .ok_or_else(|| format!("unknown design {name:?}; see `table4` for the suite"))
}

/// A fresh-run summary in the same shape as one `BENCH_cts.json`
/// designs entry (the fields the diff consumes).
struct Fresh {
    sinks: usize,
    levels: usize,
    num_buffers: usize,
    wall_ms: f64,
    exact: BTreeMap<String, f64>,
    counters: BTreeMap<String, u64>,
}

fn fresh_run(design: &Design) -> Result<Fresh, String> {
    let cts = HierarchicalCts::default();
    let sink = RecordingSink::new();
    let mut obs = CollectingObserver::new();
    let t0 = Instant::now();
    let tree = cts
        .run_with_telemetry(design, &mut obs, &sink)
        .map_err(|e| format!("{}: flow failed: {e}", design.name))?;
    let wall = t0.elapsed();
    let report = evaluate(&tree, &cts.tech, &cts.lib);
    let metrics = sink.registry().snapshot().metrics;
    let mut exact = BTreeMap::new();
    exact.insert("clock_wl_um".into(), report.clock_wl_um);
    exact.insert("skew_ps".into(), report.skew_ps);
    exact.insert("max_latency_ps".into(), report.max_latency_ps);
    exact.insert("clock_cap_ff".into(), report.clock_cap_ff);
    Ok(Fresh {
        sinks: design.num_ffs(),
        levels: obs.levels.len(),
        num_buffers: report.num_buffers,
        wall_ms: wall.as_secs_f64() * 1e3,
        exact,
        counters: metrics.counters.into_iter().collect(),
    })
}

fn baseline_entry<'a>(bench: &'a Value, design: &str) -> Result<&'a Value, String> {
    let designs = bench
        .get("designs")
        .and_then(Value::as_arr)
        .ok_or("baseline has no designs array")?;
    designs
        .iter()
        .find(|d| d.get("design").and_then(Value::as_str) == Some(design))
        .ok_or_else(|| {
            format!("baseline has no entry for {design:?}; regenerate it with run_record")
        })
}

fn run() -> Result<(), String> {
    let baseline_path = arg_value("--baseline").unwrap_or_else(|| "BENCH_cts.json".into());
    let design_name = arg_value("--design").unwrap_or_else(|| "s35932".into());
    let noise: f64 = arg_parse("--noise", 2.0);
    let inject = arg_value("--inject-drift");

    let text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let bench =
        sllt_obs::json::parse(&text).map_err(|e| format!("{baseline_path}: invalid JSON: {e}"))?;
    if bench.get("bench").and_then(Value::as_str) != Some("cts") {
        return Err(format!("{baseline_path}: not a cts benchmark summary"));
    }
    let schema = bench.get("schema").and_then(Value::as_u64).unwrap_or(0);
    if schema > sllt_obs::SCHEMA_VERSION {
        return Err(format!(
            "{baseline_path}: schema {schema} is newer than this binary's {} — \
             rebuild from the branch that wrote it",
            sllt_obs::SCHEMA_VERSION
        ));
    }
    let base = baseline_entry(&bench, &design_name)?;

    let design = design_by_name(&design_name)?;
    let mut fresh = fresh_run(&design)?;
    if let Some(name) = inject {
        *fresh.counters.entry(name.clone()).or_insert(0) += 1;
        eprintln!("self-test: injected +1 drift into counter {name:?}");
    }

    let mut drift = Table::new(vec!["field", "baseline", "fresh"]);
    let mut drifts = 0usize;
    let mut check_int = |field: &str, base_v: Option<u64>, fresh_v: u64| {
        if base_v != Some(fresh_v) {
            drifts += 1;
            drift.row(vec![
                field.to_string(),
                base_v.map_or("(missing)".into(), |v| v.to_string()),
                fresh_v.to_string(),
            ]);
        }
    };
    check_int(
        "sinks",
        base.get("sinks").and_then(Value::as_u64),
        fresh.sinks as u64,
    );
    check_int(
        "levels",
        base.get("levels").and_then(Value::as_u64),
        fresh.levels as u64,
    );
    check_int(
        "num_buffers",
        base.get("num_buffers").and_then(Value::as_u64),
        fresh.num_buffers as u64,
    );

    // Counters: the union of both key sets must agree exactly. A counter
    // present on one side only is drift too (an instrumentation site
    // appeared or vanished).
    let base_counters: BTreeMap<String, u64> = match base.get("counters") {
        Some(Value::Obj(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
            .collect(),
        _ => BTreeMap::new(),
    };
    let keys: std::collections::BTreeSet<&String> =
        base_counters.keys().chain(fresh.counters.keys()).collect();
    for key in keys {
        let b = base_counters.get(key).copied();
        let f = fresh.counters.get(key).copied();
        if b != f {
            drifts += 1;
            drift.row(vec![
                format!("counters.{key}"),
                b.map_or("(missing)".into(), |v| v.to_string()),
                f.map_or("(missing)".into(), |v| v.to_string()),
            ]);
        }
    }

    // Deterministic floats: same code + same seed => same arithmetic.
    // A tiny relative tolerance absorbs decimal-text round-tripping,
    // nothing more.
    for (field, fresh_v) in &fresh.exact {
        let base_v = base.get(field).and_then(Value::as_f64);
        let same = base_v.is_some_and(|b| {
            let scale = b.abs().max(fresh_v.abs()).max(1.0);
            (b - fresh_v).abs() <= 1e-9 * scale
        });
        if !same {
            drifts += 1;
            drift.row(vec![
                field.clone(),
                base_v.map_or("(missing)".into(), |v| format!("{v}")),
                format!("{fresh_v}"),
            ]);
        }
    }

    // Wall time: machine-dependent, warn-only. Sub-100ms baselines are
    // all scheduler noise; skip the ratio check there.
    if let Some(base_wall) = base.get("wall_ms").and_then(Value::as_f64) {
        if base_wall.max(fresh.wall_ms) >= 100.0 {
            let ratio = fresh.wall_ms / base_wall.max(1e-9);
            if !(1.0 / noise..=noise).contains(&ratio) {
                eprintln!(
                    "warning: {design_name} wall time moved {ratio:.2}x \
                     ({base_wall:.1} ms -> {:.1} ms, noise threshold {noise}x)",
                    fresh.wall_ms
                );
            }
        }
    }

    if drifts > 0 {
        eprintln!("{}", drift.render());
        return Err(format!(
            "{design_name}: {drifts} deterministic field(s) drifted from {baseline_path}; \
             if the change is intentional, regenerate the baseline with run_record"
        ));
    }
    println!(
        "{design_name}: {} counters and all deterministic metrics match {baseline_path}",
        fresh.counters.len()
    );
    Ok(())
}
