//! Shared Table 6/7 machinery: run the three flows on a design list and
//! render the paper's comparison columns.

use crate::Table;
use sllt_cts::{
    baseline, constraints::CtsConstraints, eval::evaluate, eval::TreeReport, flow::HierarchicalCts,
};
use sllt_design::DesignSpec;
use std::time::Instant;

/// One flow's result on one design.
#[derive(Debug, Clone, Copy)]
pub struct FlowResult {
    /// All tree metrics.
    pub report: TreeReport,
    /// Wall-clock runtime, seconds.
    pub runtime_s: f64,
}

/// Runs ours / commercial-like / OpenROAD-like on a design.
///
/// # Errors
///
/// Returns a message naming the design and flow when either engine-based
/// flow fails, so table binaries can exit nonzero instead of panicking.
pub fn run_three(spec: &DesignSpec) -> Result<[FlowResult; 3], String> {
    let design = spec.instantiate();
    let ours = HierarchicalCts::default();
    let com = baseline::commercial_like();

    let t0 = Instant::now();
    let tree = ours
        .run(&design)
        .map_err(|e| format!("{}: hierarchical flow failed: {e}", spec.name))?;
    let ours_res = FlowResult {
        report: evaluate(&tree, &ours.tech, &ours.lib),
        runtime_s: t0.elapsed().as_secs_f64(),
    };

    let t0 = Instant::now();
    let tree = com
        .run(&design)
        .map_err(|e| format!("{}: commercial-like flow failed: {e}", spec.name))?;
    let com_res = FlowResult {
        report: evaluate(&tree, &com.tech, &com.lib),
        runtime_s: t0.elapsed().as_secs_f64(),
    };

    let t0 = Instant::now();
    let tree = baseline::open_road_like(&design, &CtsConstraints::paper(), &ours.tech, &ours.lib);
    let or_res = FlowResult {
        report: evaluate(&tree, &ours.tech, &ours.lib),
        runtime_s: t0.elapsed().as_secs_f64(),
    };

    Ok([ours_res, com_res, or_res])
}

/// Renders the Table 6/7 layout for a set of designs and returns it.
///
/// # Errors
///
/// Propagates the first flow failure from [`run_three`].
pub fn comparison_table(specs: &[&DesignSpec]) -> Result<String, String> {
    Ok(comparison(specs)?.render())
}

/// Builds the Table 6/7 comparison as a [`Table`] (one row per design
/// plus the ratio-average footer), so callers can render it or emit it
/// as JSON.
///
/// # Errors
///
/// Propagates the first flow failure from [`run_three`].
pub fn comparison(specs: &[&DesignSpec]) -> Result<Table, String> {
    let mut table = Table::new(vec![
        "Case",
        "Lat O/C/R (ps)",
        "Skew O/C/R (ps)",
        "#Buf O/C/R",
        "Area O/C/R (µm²)",
        "Cap O/C/R (fF)",
        "WL O/C/R (µm)",
        "Time O/C/R (s)",
    ]);
    // Ratio accumulators: [metric][flow], normalized to "ours".
    let mut ratios = [[0.0f64; 3]; 7];
    for spec in specs {
        let res = run_three(spec)?;
        let cols: Vec<[f64; 3]> = vec![
            [0, 1, 2].map(|i| res[i].report.max_latency_ps),
            [0, 1, 2].map(|i| res[i].report.skew_ps),
            [0, 1, 2].map(|i| res[i].report.num_buffers as f64),
            [0, 1, 2].map(|i| res[i].report.buffer_area_um2),
            [0, 1, 2].map(|i| res[i].report.clock_cap_ff),
            [0, 1, 2].map(|i| res[i].report.clock_wl_um),
            [0, 1, 2].map(|i| res[i].runtime_s),
        ];
        for (m, col) in cols.iter().enumerate() {
            for f in 0..3 {
                ratios[m][f] += col[f] / col[0].max(1e-12);
            }
        }
        let f1 = |v: [f64; 3]| format!("{:.1}/{:.1}/{:.1}", v[0], v[1], v[2]);
        let f0 = |v: [f64; 3]| format!("{:.0}/{:.0}/{:.0}", v[0], v[1], v[2]);
        table.row(vec![
            spec.name.to_string(),
            f1(cols[0]),
            f1(cols[1]),
            f0(cols[2]),
            f0(cols[3]),
            f0(cols[4]),
            f0(cols[5]),
            format!("{:.1}/{:.1}/{:.1}", cols[6][0], cols[6][1], cols[6][2]),
        ]);
    }
    let n = specs.len() as f64;
    let favg = |m: usize| {
        format!(
            "{:.3}/{:.3}/{:.3}",
            ratios[m][0] / n,
            ratios[m][1] / n,
            ratios[m][2] / n
        )
    };
    table.row(vec![
        "Avg.".to_string(),
        favg(0),
        favg(1),
        favg(2),
        favg(3),
        favg(4),
        favg(5),
        favg(6),
    ]);
    Ok(table)
}
