//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the DAC'24 SLLT paper;
//! see `DESIGN.md` for the experiment index. This crate holds the common
//! plumbing: CLI flags, aligned table rendering, and the demo net used by
//! Table 1 / Fig. 1.

pub mod flows;

use sllt_geom::Point;
use sllt_obs::Value;
use sllt_tree::{ClockNet, Sink};
use std::path::PathBuf;

/// Reads a `--name value` flag from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Reads a `--name value` flag and parses it, falling back to `default`.
///
/// Exits with code 2 and a usage message when the value does not parse:
/// a malformed flag must never look like a successful run to CI.
pub fn arg_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a number, got {v:?}");
            std::process::exit(2);
        }),
    }
}

/// Wraps a fallible `main` body: on `Err` the message goes to stderr and
/// the process exits with code 2, so every bench binary fails loudly
/// instead of printing a partial table and exiting 0.
pub fn run_main(body: impl FnOnce() -> Result<(), String>) -> std::process::ExitCode {
    match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(2)
        }
    }
}

/// Whether a bare `--name` flag is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Machine-readable form: `{"headers": [...], "rows": [[...], ...]}`.
    pub fn to_json(&self) -> Value {
        let headers: Vec<Value> = self.headers.iter().map(|h| h.as_str().into()).collect();
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|r| {
                Value::from(
                    r.iter()
                        .map(|c| Value::from(c.as_str()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        Value::obj().with("headers", headers).with("rows", rows)
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Writes `value` as pretty-enough JSON (single line + trailing newline)
/// to `results/<name>.json`, creating the directory, and returns the
/// path.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, full disk).
pub fn write_json(name: &str, value: &Value) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.encode() + "\n")?;
    Ok(path)
}

/// The `--json` contract shared by every table/figure binary: when the
/// flag is present, bundle the named sections into one object and write
/// it to `results/<bin>.json`. Exits nonzero on a write failure so CI
/// catches broken output paths.
pub fn emit_json(bin: &str, sections: Vec<(&str, Value)>) {
    if !arg_flag("--json") {
        return;
    }
    let mut out = Value::obj().with("bin", bin);
    for (name, v) in sections {
        out.set(name, v);
    }
    match write_json(bin, &out) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write results/{bin}.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux. Monotone over the process
/// lifetime — scaling sweeps should run sizes ascending so each
/// reading bounds that size's true peak.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The 8-sink demonstration net used for Table 1 and the Fig. 1 gallery:
/// a source on the boundary driving pins spread over a 6×6 region, with
/// both near and far pins so the algorithm trade-offs are visible.
pub fn demo_net() -> ClockNet {
    ClockNet::new(
        Point::new(0.0, 3.0),
        vec![
            Sink::new(Point::new(2.0, 1.0), 1.0),
            Sink::new(Point::new(2.0, 5.0), 1.0),
            Sink::new(Point::new(3.5, 3.0), 1.0),
            Sink::new(Point::new(4.5, 0.5), 1.0),
            Sink::new(Point::new(4.5, 5.5), 1.0),
            Sink::new(Point::new(5.5, 2.0), 1.0),
            Sink::new(Point::new(5.5, 4.0), 1.0),
            Sink::new(Point::new(6.0, 3.0), 1.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333"]);
        let s = t.render();
        assert!(s.contains("  a  bb") || s.contains("a  bb"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn table_to_json_mirrors_cells() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333"]);
        let v = t.to_json();
        let headers = v.get("headers").and_then(Value::as_arr).unwrap();
        assert_eq!(headers.len(), 2);
        let rows = v.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        // Short rows were padded on entry, so JSON rows are rectangular.
        assert_eq!(rows[1].as_arr().unwrap().len(), 2);
        // The encoded form must parse back.
        assert!(sllt_obs::json::parse(&v.encode()).is_ok());
    }

    #[test]
    fn demo_net_shape() {
        let net = demo_net();
        assert_eq!(net.len(), 8);
        assert!(net.max_source_dist() > net.mean_source_dist());
    }
}
