//! Deferred-merge embedding: zero-skew and bounded-skew trees.
//!
//! Classic two-phase DME (Chao et al. '92 for ZST; Cong–Kahng–Koh–Tsao '98
//! for BST), supporting both delay models the paper uses:
//!
//! * [`DelayModel::PathLength`] — the wirelength proxy of paper
//!   Eq. (1)–(3); skew bounds are in µm of path length,
//! * [`DelayModel::Elmore`] — distributed-RC Elmore delay; skew bounds are
//!   in ps. This is the model behind the paper's ps-denominated skew
//!   constraints (Tables 2, 3, 5), and it is *kinder* to shallow trees:
//!   delay grows quadratically along a path, so sinks tapping a shared
//!   trunk midway are far closer in delay than in path length.
//!
//! The algorithm:
//!
//! * **bottom-up**: every topology node gets a *merging region* — a tilted
//!   rectangle, kept as an axis-aligned [`RRect`] in rotated space — plus a
//!   delay interval `[lo, hi]` over its sinks and (for Elmore) its total
//!   downstream capacitance. Each merge picks the wire split `(e_a, e_b)`
//!   with `e_a + e_b = dist` that keeps the merged interval within the
//!   skew bound; when no split suffices, detour (snaking) wire is added on
//!   the fast side. Delay is monotone in the split for both models, so
//!   splits are found by bisection.
//! * **top-down**: the root is embedded at the region point nearest the
//!   clock source and every child at its region's point nearest to its
//!   parent; edges keep their assigned lengths, so detour survives as
//!   `edge_len > manhattan distance`.
//!
//! Hinted topologies ([`HintedTopology`], produced by CBS step 4) bias
//! each merge inside its skew-feasible window toward a hint position —
//! that is what lets the CBS re-embedding stay close to the SALT geometry
//! wherever the bound leaves slack.
//!
//! Simplification note: full BST-DME propagates merging regions that can
//! be general octilinear polygons; we commit each merge to a single
//! `(e_a, e_b)` split and keep regions closed under
//! intersection/inflation as rotated rectangles. This forfeits a little
//! optimality (paper Table 3 shows BST-DME behind CBS by 13–27 % — the
//! gap we reproduce) but keeps every skew guarantee intact.

use sllt_geom::{Point, RRect};
use sllt_timing::Technology;
use sllt_tree::{ClockNet, ClockTree, HintedTopology, NodeId, Topology};
use std::fmt;

/// Why a DME construction could not produce a tree.
///
/// [`try_dme_intervals`] returns these instead of panicking, so a caller
/// that feeds DME with possibly-degenerate inputs (a hierarchical flow
/// retrying a failed level, a fuzzer) gets a value it can match on. The
/// panicking entry points ([`dme`], [`bst_dme`], …) keep their historical
/// contract by unwrapping the same checks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DmeError {
    /// The net has no sinks: there is nothing to embed.
    SinklessNet,
    /// The skew bound is negative (or NaN).
    NegativeSkewBound(f64),
    /// `intervals.len()` does not match the net's sink count.
    IntervalCountMismatch {
        /// Intervals supplied.
        intervals: usize,
        /// Sinks in the net.
        sinks: usize,
    },
    /// A sink interval is negative, inverted, or non-finite.
    BadSinkInterval {
        /// Sink index.
        sink: usize,
        /// Interval low end, ps (or µm under the path-length model).
        lo: f64,
        /// Interval high end.
        hi: f64,
    },
    /// A sink interval is already wider than the skew bound: no merge
    /// above it can shrink the spread, so the subtree cannot be fixed
    /// from above.
    IntervalExceedsBound {
        /// Sink index.
        sink: usize,
        /// Interval width.
        width: f64,
        /// The configured bound.
        bound: f64,
    },
    /// The topology references a sink index the net does not have.
    SinkIndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Net sink count.
        len: usize,
    },
    /// The net's source or a sink position is NaN or infinite —
    /// rotated-space (x ± y) arithmetic would poison every region.
    NonFiniteGeometry,
    /// The detour search for a skew-balancing merge did not converge
    /// within a generous range (detours beyond ~10⁶ µm indicate corrupt
    /// inputs).
    DetourDiverged,
}

impl fmt::Display for DmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmeError::SinklessNet => write!(f, "DME over a sinkless net"),
            DmeError::NegativeSkewBound(b) => write!(f, "negative skew bound {b}"),
            DmeError::IntervalCountMismatch { intervals, sinks } => {
                write!(
                    f,
                    "one interval per sink: got {intervals} for {sinks} sinks"
                )
            }
            DmeError::BadSinkInterval { sink, lo, hi } => {
                write!(f, "bad sink interval ({lo}, {hi}) at sink {sink}")
            }
            DmeError::IntervalExceedsBound { sink, width, bound } => write!(
                f,
                "sink {sink} interval wider ({width}) than the bound ({bound})"
            ),
            DmeError::SinkIndexOutOfRange { index, len } => {
                write!(f, "topology sink index {index} out of range ({len} sinks)")
            }
            DmeError::NonFiniteGeometry => {
                write!(f, "non-finite source or sink coordinates")
            }
            DmeError::DetourDiverged => write!(f, "detour search diverged"),
        }
    }
}

impl std::error::Error for DmeError {}

/// Delay model used for merge balancing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Delay = routed path length; skew bounds in µm.
    PathLength,
    /// Distributed-RC Elmore delay; skew bounds in ps.
    Elmore(Technology),
}

impl DelayModel {
    /// Delay added by `e` µm of wire feeding a subtree of `cap` fF.
    #[inline]
    fn wire_delay(&self, e: f64, cap: f64) -> f64 {
        match self {
            DelayModel::PathLength => e,
            DelayModel::Elmore(t) => t.wire_delay(e, cap),
        }
    }

    /// Capacitance added by `e` µm of wire (0 under the proxy model —
    /// caps are not tracked there).
    #[inline]
    fn wire_cap(&self, e: f64) -> f64 {
        match self {
            DelayModel::PathLength => 0.0,
            DelayModel::Elmore(t) => t.wire_cap(e),
        }
    }
}

/// Options for a DME run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmeOptions {
    /// Skew bound: µm for [`DelayModel::PathLength`], ps for
    /// [`DelayModel::Elmore`].
    pub skew_bound: f64,
    /// Delay model for merge balancing.
    pub model: DelayModel,
}

/// Builds a zero-skew tree over `net` using merge order `topo`, under the
/// path-length delay model.
///
/// # Panics
///
/// Panics when the net is sinkless or `topo` references sink indices out
/// of range.
pub fn zst_dme(net: &ClockNet, topo: &Topology) -> ClockTree {
    bst_dme(net, topo, 0.0)
}

/// Builds a bounded-skew tree under the path-length delay model: the
/// spread of routed source→sink path lengths is at most `skew_bound_um`.
///
/// # Panics
///
/// Panics when the net is sinkless, `skew_bound_um` is negative, or
/// `topo` references sink indices out of range.
pub fn bst_dme(net: &ClockNet, topo: &Topology, skew_bound_um: f64) -> ClockTree {
    dme(
        net,
        &topo.to_hinted(),
        &DmeOptions {
            skew_bound: skew_bound_um,
            model: DelayModel::PathLength,
        },
    )
}

/// Builds a bounded-skew tree under the Elmore delay model: the spread of
/// source→sink Elmore delays (ideal source) is at most `skew_bound_ps`.
///
/// # Panics
///
/// Panics when the net is sinkless, `skew_bound_ps` is negative, or
/// `topo` references sink indices out of range.
pub fn bst_dme_elmore(
    net: &ClockNet,
    topo: &Topology,
    skew_bound_ps: f64,
    tech: &Technology,
) -> ClockTree {
    dme(
        net,
        &topo.to_hinted(),
        &DmeOptions {
            skew_bound: skew_bound_ps,
            model: DelayModel::Elmore(*tech),
        },
    )
}

/// Builds a bounded-skew tree over a [`HintedTopology`] with explicit
/// [`DmeOptions`]. This is the full-control entry point; CBS step 5 calls
/// it with SALT-derived hints.
///
/// # Panics
///
/// Panics when the net is sinkless, the bound is negative, or the
/// topology references sink indices out of range.
pub fn dme(net: &ClockNet, topo: &HintedTopology, opts: &DmeOptions) -> ClockTree {
    dme_intervals(net, topo, opts, &vec![(0.0, 0.0); net.len()])
}

/// Like [`dme`], but each sink `i` starts at delay `offsets[i]` instead of
/// zero. Hierarchical CTS uses this to balance lower-level subtrees: a
/// cluster driver appears as a sink whose offset is the delay already
/// accumulated below it, and the merge balancing equalizes *total*
/// delays within the bound.
///
/// # Panics
///
/// Panics when `offsets.len() != net.len()`, any offset is negative, the
/// net is sinkless, or the bound is negative.
pub fn dme_offsets(
    net: &ClockNet,
    topo: &HintedTopology,
    opts: &DmeOptions,
    offsets: &[f64],
) -> ClockTree {
    let intervals: Vec<(f64, f64)> = offsets.iter().map(|&o| (o, o)).collect();
    dme_intervals(net, topo, opts, &intervals)
}

/// Like [`dme_offsets`], but each sink carries a full delay *interval*
/// `(fastest, slowest)` — the spread already present inside the subtree
/// it stands for. Intervals are what make hierarchical skew bounds
/// compose: the merged interval at the net root covers every leaf of
/// every subtree, so bounding its width bounds true global skew instead
/// of just the spread of subtree maxima.
///
/// # Panics
///
/// Panics when [`try_dme_intervals`] would return an error — see its
/// error list. Callers that cannot guarantee well-formed inputs should
/// use the fallible variant instead.
pub fn dme_intervals(
    net: &ClockNet,
    topo: &HintedTopology,
    opts: &DmeOptions,
    intervals: &[(f64, f64)],
) -> ClockTree {
    try_dme_intervals(net, topo, opts, intervals).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`dme_intervals`]: every input degeneracy the panicking
/// entry points assert on becomes a typed [`DmeError`]. This is the
/// entry point resilient callers (the hierarchical flow's degradation
/// ladder, fuzzers) should use.
///
/// # Errors
///
/// [`DmeError::SinklessNet`], [`DmeError::NegativeSkewBound`],
/// [`DmeError::IntervalCountMismatch`], [`DmeError::BadSinkInterval`],
/// [`DmeError::IntervalExceedsBound`],
/// [`DmeError::SinkIndexOutOfRange`],
/// [`DmeError::NonFiniteGeometry`], and [`DmeError::DetourDiverged`].
pub fn try_dme_intervals(
    net: &ClockNet,
    topo: &HintedTopology,
    opts: &DmeOptions,
    intervals: &[(f64, f64)],
) -> Result<ClockTree, DmeError> {
    if net.is_empty() {
        return Err(DmeError::SinklessNet);
    }
    if opts.skew_bound < 0.0 || opts.skew_bound.is_nan() {
        return Err(DmeError::NegativeSkewBound(opts.skew_bound));
    }
    if intervals.len() != net.len() {
        return Err(DmeError::IntervalCountMismatch {
            intervals: intervals.len(),
            sinks: net.len(),
        });
    }
    if !net.source.x.is_finite()
        || !net.source.y.is_finite()
        || net
            .sinks
            .iter()
            .any(|s| !s.pos.x.is_finite() || !s.pos.y.is_finite() || !s.cap_ff.is_finite())
    {
        return Err(DmeError::NonFiniteGeometry);
    }
    for (sink, &(lo, hi)) in intervals.iter().enumerate() {
        if !(lo >= 0.0 && hi >= lo && lo.is_finite() && hi.is_finite()) {
            return Err(DmeError::BadSinkInterval { sink, lo, hi });
        }
        if hi - lo > opts.skew_bound + 1e-9 {
            return Err(DmeError::IntervalExceedsBound {
                sink,
                width: hi - lo,
                bound: opts.skew_bound,
            });
        }
    }

    let mut nodes: Vec<MergeNode> = Vec::new();
    let root_idx = build_up(net, topo, opts, intervals, &mut nodes)?;

    let mut tree = ClockTree::new(net.source);
    let root_pt = nodes[root_idx].region.nearest_to(net.source);
    let source_node = tree.root();
    embed_down(net, &nodes, root_idx, &mut tree, source_node, root_pt, None);
    if sllt_obs::enabled() {
        sllt_obs::count("route.dme.calls", 1);
        sllt_obs::count(
            "route.dme.merge_segments",
            nodes.len().saturating_sub(net.len()) as u64,
        );
        sllt_obs::count("route.dme.embed_passes", 1);
        sllt_obs::count("route.dme.embed_nodes", nodes.len() as u64);
    }
    Ok(tree)
}

/// One bottom-up merge node.
#[derive(Debug, Clone)]
struct MergeNode {
    region: RRect,
    lo: f64,
    hi: f64,
    /// Downstream capacitance (fF) under the Elmore model, 0 otherwise.
    cap: f64,
    /// `Some((left, right, e_left, e_right))` for merges, `None` for sinks.
    kids: Option<(usize, usize, f64, f64)>,
    /// Sink index for leaves.
    sink: Option<usize>,
}

/// Bottom-up merging-region construction (DME phase 1), as an explicit
/// postorder stack machine: greedy merge orders degenerate to n-deep
/// chains on collinear or clustered sinks, which the recursive
/// formulation cannot traverse on an 8 MiB thread stack at production
/// sink counts. The arena (`out`) fills in exactly the order the
/// recursion used — left subtree, right subtree, merge node — so node
/// indices and all downstream arithmetic are unchanged.
fn build_up(
    net: &ClockNet,
    topo: &HintedTopology,
    opts: &DmeOptions,
    intervals: &[(f64, f64)],
    out: &mut Vec<MergeNode>,
) -> Result<usize, DmeError> {
    enum W<'t> {
        Visit(&'t HintedTopology),
        Build(Option<Point>),
    }
    let mut work = vec![W::Visit(topo)];
    // Arena indices of completed subtrees, consumed two at a time by Build.
    let mut done: Vec<usize> = Vec::new();
    while let Some(w) = work.pop() {
        match w {
            W::Visit(HintedTopology::Sink(i)) => {
                let i = *i;
                if i >= net.sinks.len() {
                    return Err(DmeError::SinkIndexOutOfRange {
                        index: i,
                        len: net.sinks.len(),
                    });
                }
                let cap = match opts.model {
                    DelayModel::PathLength => 0.0,
                    DelayModel::Elmore(_) => net.sinks[i].cap_ff,
                };
                out.push(MergeNode {
                    region: RRect::from_point(net.sinks[i].pos),
                    lo: intervals[i].0,
                    hi: intervals[i].1,
                    cap,
                    kids: None,
                    sink: Some(i),
                });
                done.push(out.len() - 1);
            }
            W::Visit(HintedTopology::Merge(a, b, hint)) => {
                work.push(W::Build(*hint));
                work.push(W::Visit(b));
                work.push(W::Visit(a));
            }
            W::Build(hint) => {
                // Invariant, not input-dependent: every Build is pushed
                // with exactly two Visit frames above it, and each Visit
                // pushes one `done` entry (or errors out first).
                let ib = done.pop().expect("build follows two subtrees");
                let ia = done.pop().expect("build follows two subtrees");
                let m = merge(&out[ia], &out[ib], opts, hint)?;
                // Detour merges wire more than the region gap to hold the
                // skew bound — the trajectory metric behind snaking cost.
                if sllt_obs::enabled() && m.ea + m.eb > out[ia].region.dist(&out[ib].region) + 1e-9
                {
                    sllt_obs::count("route.dme.detour_merges", 1);
                }
                out.push(MergeNode {
                    region: m.region,
                    lo: m.lo,
                    hi: m.hi,
                    cap: m.cap,
                    kids: Some((ia, ib, m.ea, m.eb)),
                    sink: None,
                });
                done.push(out.len() - 1);
            }
        }
    }
    // Invariant: the caller rejected sinkless nets, so at least one
    // Visit ran and left exactly one completed root on the stack.
    Ok(done.pop().expect("nonempty topology"))
}

struct Merged {
    region: RRect,
    lo: f64,
    hi: f64,
    cap: f64,
    ea: f64,
    eb: f64,
}

/// Balances one merge within the skew bound. Works for both delay models
/// because the delay contribution of each child's wire is monotone in its
/// length; splits and detours are located by bisection.
fn merge(
    a: &MergeNode,
    b: &MergeNode,
    opts: &DmeOptions,
    hint: Option<Point>,
) -> Result<Merged, DmeError> {
    let model = &opts.model;
    let bound = opts.skew_bound;
    let d = a.region.dist(&b.region);

    // With split `ea ∈ [0, d]` (eb = d − ea), the merged interval is
    //   [min(a.lo + Da, b.lo + Db), max(a.hi + Da, b.hi + Db)],
    // where Da = wire_delay(ea, a.cap) grows and Db shrinks with ea.
    let da = |ea: f64| model.wire_delay(ea, a.cap);
    let db = |ea: f64| model.wire_delay(d - ea, b.cap);
    // Constraint 1 (a's slow end vs b's fast end), increasing in ea:
    let g1 = |ea: f64| (a.hi + da(ea)) - (b.lo + db(ea)) - bound;
    // Constraint 2 (b's slow end vs a's fast end), decreasing in ea:
    let g2 = |ea: f64| (b.hi + db(ea)) - (a.lo + da(ea)) - bound;

    let (ea, eb);
    if g2(d) > 1e-12 {
        // Even all-wire-on-a leaves b too slow: eb = 0 and a detours.
        let need = b.hi - a.lo - bound; // Da(ea) must reach `need`
        let ea_det = solve_increasing(|e| model.wire_delay(e, a.cap) - need, d)?;
        ea = ea_det;
        eb = 0.0;
    } else if g1(0.0) > 1e-12 {
        // Even all-wire-on-b leaves a too slow: ea = 0 and b detours.
        let need = a.hi - b.lo - bound;
        let eb_det = solve_increasing(|e| model.wire_delay(e, b.cap) - need, d)?;
        ea = 0.0;
        eb = eb_det;
    } else {
        // A feasible window exists inside [0, d].
        let ea_lo = if g2(0.0) <= 0.0 {
            0.0
        } else {
            bisect(&g2, 0.0, d, false)
        };
        let ea_hi = if g1(d) <= 0.0 {
            d
        } else {
            bisect(&g1, 0.0, d, true)
        };
        let (ea_lo, ea_hi) = if ea_lo <= ea_hi {
            (ea_lo, ea_hi)
        } else {
            let m = (ea_lo + ea_hi) / 2.0;
            (m, m)
        };
        let pick = match hint {
            Some(h) if ea_hi > ea_lo + 1e-12 => pick_split_toward(a, b, d, ea_lo, ea_hi, h),
            _ => {
                // Centre-align the child intervals (classic balanced DME):
                // h(ea) = centre_a(ea) − centre_b(ea) is increasing.
                let h = |ea: f64| (a.lo + a.hi) / 2.0 + da(ea) - ((b.lo + b.hi) / 2.0 + db(ea));
                if h(ea_lo) >= 0.0 {
                    ea_lo
                } else if h(ea_hi) <= 0.0 {
                    ea_hi
                } else {
                    bisect(&h, ea_lo, ea_hi, true)
                }
            }
        };
        ea = pick;
        eb = d - pick;
    }

    let da_v = model.wire_delay(ea, a.cap);
    let db_v = model.wire_delay(eb, b.cap);
    // Invariant, not input-dependent: the caller pre-checked that all
    // geometry is finite, and every branch above yields ea + eb ≥ dist
    // (splits partition d exactly; detours only add wire), so the
    // inflated regions always intersect.
    let region = a
        .region
        .inflated(ea)
        .intersection(&b.region.inflated(eb))
        .expect("inflated child regions must intersect: e_a + e_b >= dist");
    Ok(Merged {
        region,
        lo: (a.lo + da_v).min(b.lo + db_v),
        hi: (a.hi + da_v).max(b.hi + db_v),
        cap: a.cap + b.cap + model.wire_cap(ea + eb),
        ea,
        eb,
    })
}

/// Root of an increasing function `f` with `f(0) < 0`, searched upward
/// from an initial bracket of `start`.
///
/// # Errors
///
/// [`DmeError::DetourDiverged`] when no root is found within a generous
/// range (detour lengths beyond ~10⁶ µm indicate corrupt inputs).
fn solve_increasing(f: impl Fn(f64) -> f64, start: f64) -> Result<f64, DmeError> {
    let mut hi = (start.max(1.0)) * 2.0;
    let mut guard = 0;
    while f(hi) < 0.0 {
        hi *= 2.0;
        guard += 1;
        if guard >= 60 {
            return Err(DmeError::DetourDiverged);
        }
    }
    Ok(bisect(&f, 0.0, hi, true))
}

/// Bisection for a monotone `f` on `[lo, hi]`. With `increasing == true`
/// returns the root of an increasing function (largest point with
/// `f ≤ 0`); otherwise of a decreasing one (smallest point with `f ≤ 0`).
fn bisect(f: &impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, increasing: bool) -> f64 {
    for _ in 0..70 {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        let go_right = if increasing { v < 0.0 } else { v > 0.0 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Samples the feasible split window and returns the split whose merge
/// region lies closest to the hint. Distance-to-hint is piecewise linear
/// in the split, so uniform sampling finds a near-optimal slide.
fn pick_split_toward(
    a: &MergeNode,
    b: &MergeNode,
    d: f64,
    ea_lo: f64,
    ea_hi: f64,
    hint: Point,
) -> f64 {
    const SAMPLES: usize = 17;
    let mut best_ea = ea_lo;
    let mut best_d = f64::INFINITY;
    for k in 0..SAMPLES {
        let ea = ea_lo + (ea_hi - ea_lo) * k as f64 / (SAMPLES - 1) as f64;
        let eb = d - ea;
        let Some(region) = a.region.inflated(ea).intersection(&b.region.inflated(eb)) else {
            continue;
        };
        let dist = region.dist_to_point(hint);
        if dist < best_d {
            best_d = dist;
            best_ea = ea;
        }
    }
    best_ea
}

/// Skew of a finished tree under a delay model: the spread of
/// source→sink path lengths (µm) or Elmore delays from an ideal source
/// (ps).
pub fn skew_of(tree: &ClockTree, model: &DelayModel) -> f64 {
    match model {
        DelayModel::PathLength => sllt_tree::metrics::path_length_skew(tree),
        DelayModel::Elmore(tech) => {
            let sinks = tree.sinks();
            if sinks.is_empty() {
                return 0.0;
            }
            let (rc, map) = tree.to_rc_tree();
            let delays = rc.elmore(tech, 0.0);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for s in sinks {
                // Invariant: `to_rc_tree` maps every node of the tree it
                // was built from, and `s` came from that same tree.
                let d = delays[map[s.index()].expect("sink mapped")];
                lo = lo.min(d);
                hi = hi.max(d);
            }
            hi - lo
        }
    }
}

/// Embeds node `root_idx` at `root_pos` under tree node `root_parent`,
/// wiring each edge with its assigned length (None for the source→root
/// trunk, which is a plain shortest wire).
///
/// Explicit preorder stack (left child pushed last, so embedded first):
/// tree node ids are allocated in exactly the order the recursive
/// formulation allocated them, and chain-deep topologies embed without
/// touching the thread stack.
fn embed_down(
    net: &ClockNet,
    nodes: &[MergeNode],
    root_idx: usize,
    tree: &mut ClockTree,
    root_parent: NodeId,
    root_pos: Point,
    root_edge: Option<f64>,
) {
    let mut stack: Vec<(usize, NodeId, Point, Option<f64>)> =
        vec![(root_idx, root_parent, root_pos, root_edge)];
    while let Some((idx, parent, pos, edge)) = stack.pop() {
        let n = &nodes[idx];
        let id = match n.sink {
            Some(i) => tree.add_sink_indexed(parent, pos, net.sinks[i].cap_ff, i),
            None => tree.add_steiner(parent, pos),
        };
        if let Some(e) = edge {
            tree.set_edge_len(id, e.max(tree.node(id).edge_len()));
        }
        if let Some((ia, ib, ea, eb)) = n.kids {
            let pa = nodes[ia].region.nearest_to(pos);
            let pb = nodes[ib].region.nearest_to(pos);
            stack.push((ib, id, pb, Some(eb)));
            stack.push((ia, id, pa, Some(ea)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topogen::TopologyScheme;
    use sllt_rng::prelude::*;
    use sllt_tree::{metrics::path_length_skew, Sink, SlltMetrics};

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    /// Elmore skew of a tree's sinks (ideal source).
    fn elmore_skew(tree: &ClockTree, tech: &Technology) -> f64 {
        let (rc, map) = tree.to_rc_tree();
        let delays = rc.elmore(tech, 0.0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in tree.sinks() {
            let d = delays[map[s.index()].expect("sink mapped")];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        hi - lo
    }

    #[test]
    fn zst_has_zero_pathlength_skew() {
        for seed in 0..10 {
            let net = random_net(seed, 17);
            for scheme in TopologyScheme::ALL {
                let topo = scheme.build(&net);
                let t = zst_dme(&net, &topo);
                t.validate().unwrap();
                assert_eq!(t.sinks().len(), 17);
                let skew = path_length_skew(&t);
                assert!(skew < 1e-6, "{scheme} seed {seed}: skew {skew}");
            }
        }
    }

    #[test]
    fn bst_respects_every_bound() {
        for seed in 0..10 {
            let net = random_net(seed + 50, 24);
            for bound in [0.0, 5.0, 20.0, 80.0, 400.0] {
                let topo = TopologyScheme::GreedyDist.build(&net);
                let t = bst_dme(&net, &topo, bound);
                t.validate().unwrap();
                let skew = path_length_skew(&t);
                assert!(
                    skew <= bound + 1e-6,
                    "seed {seed} bound {bound}: skew {skew}"
                );
            }
        }
    }

    #[test]
    fn elmore_zst_has_zero_elmore_skew() {
        let tech = Technology::n28();
        for seed in 0..6 {
            let net = random_net(seed + 20, 15);
            let topo = TopologyScheme::GreedyDist.build(&net);
            let t = bst_dme_elmore(&net, &topo, 0.0, &tech);
            t.validate().unwrap();
            let skew = elmore_skew(&t, &tech);
            assert!(skew < 1e-6, "seed {seed}: Elmore skew {skew} ps");
        }
    }

    #[test]
    fn elmore_bst_respects_ps_bounds() {
        let tech = Technology::n28();
        for seed in 0..6 {
            let net = random_net(seed + 80, 20);
            for bound in [1.0, 5.0, 10.0, 80.0] {
                let topo = TopologyScheme::BiCluster.build(&net);
                let t = bst_dme_elmore(&net, &topo, bound, &tech);
                let skew = elmore_skew(&t, &tech);
                assert!(
                    skew <= bound + 1e-6,
                    "seed {seed} bound {bound} ps: skew {skew} ps"
                );
            }
        }
    }

    #[test]
    fn looser_bounds_save_wire() {
        let mut tighter_total = 0.0;
        let mut looser_total = 0.0;
        for seed in 0..20 {
            let net = random_net(seed + 200, 20);
            let topo = TopologyScheme::GreedyDist.build(&net);
            tighter_total += bst_dme(&net, &topo, 2.0).wirelength();
            looser_total += bst_dme(&net, &topo, 100.0).wirelength();
        }
        assert!(
            looser_total < tighter_total,
            "relaxing skew must reduce wire on aggregate: {looser_total} vs {tighter_total}"
        );
    }

    #[test]
    fn single_sink_is_direct_wire() {
        let net = ClockNet::new(Point::ORIGIN, vec![Sink::new(Point::new(3.0, 4.0), 1.0)]);
        let t = zst_dme(&net, &Topology::Sink(0));
        assert_eq!(t.sinks().len(), 1);
        assert!((t.wirelength() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn two_symmetric_sinks_merge_at_middle() {
        let net = ClockNet::new(
            Point::new(0.0, 10.0),
            vec![
                Sink::new(Point::new(-10.0, 0.0), 1.0),
                Sink::new(Point::new(10.0, 0.0), 1.0),
            ],
        );
        let topo = Topology::merge(Topology::Sink(0), Topology::Sink(1));
        let t = zst_dme(&net, &topo);
        assert!(path_length_skew(&t) < 1e-9);
        // No detour needed for a symmetric pair.
        let direct: f64 = 20.0; // merge wire
        assert!(
            t.wirelength() <= direct + 20.0 + 1e-9,
            "wl {}",
            t.wirelength()
        );
    }

    /// Sinks A/B merge into a subtree of delay 6; sink C sits only 4 µm
    /// from the merge point. Balancing a delay-6 subtree against a
    /// delay-0 sink over 4 µm of distance forces 2 µm of detour under
    /// zero skew.
    fn detour_net_and_topo() -> (ClockNet, Topology) {
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(0.0, 6.0), 1.0),
                Sink::new(Point::new(0.0, -6.0), 1.0),
                Sink::new(Point::new(4.0, 0.0), 1.0),
            ],
        );
        let topo = Topology::merge(
            Topology::merge(Topology::Sink(0), Topology::Sink(1)),
            Topology::Sink(2),
        );
        (net, topo)
    }

    #[test]
    fn detour_appears_for_imbalanced_merges() {
        let (net, topo) = detour_net_and_topo();
        let t = zst_dme(&net, &topo);
        assert!(path_length_skew(&t) < 1e-6);
        // A/B edges (6+6) + C edge carrying 6 (4 distance + 2 detour).
        assert!(
            (t.wirelength() - 18.0).abs() < 1e-6,
            "wl {}",
            t.wirelength()
        );
        t.validate().unwrap();
    }

    #[test]
    fn bst_trades_skew_for_detour_wire() {
        let (net, topo) = detour_net_and_topo();
        let zst = zst_dme(&net, &topo).wirelength();
        let bst_tree = bst_dme(&net, &topo, 3.0);
        let bst = bst_tree.wirelength();
        assert!(bst < zst, "bound 3 should save detour: {bst} vs {zst}");
        assert!((bst - 16.0).abs() < 1e-6, "wl {bst}");
        assert!(path_length_skew(&bst_tree) <= 3.0 + 1e-9);
    }

    #[test]
    fn zst_metrics_match_paper_shape() {
        // ZST: γ = 1 exactly; α and β pay for it (paper Table 1).
        let net = random_net(7, 16);
        let topo = TopologyScheme::GreedyDist.build(&net);
        let t = zst_dme(&net, &topo);
        let ref_wl = crate::rsmt::rsmt_wirelength(&net);
        let m = SlltMetrics::compute(&t, ref_wl);
        assert!((m.skewness - 1.0).abs() < 1e-6);
        assert!(m.lightness >= 1.0);
        assert!(m.shallowness >= 1.0);
    }

    #[test]
    fn looser_elmore_bounds_save_wire() {
        let tech = Technology::n28();
        let (mut tight, mut loose) = (0.0, 0.0);
        for seed in 0..10 {
            let net = random_net(seed + 400, 18);
            let topo = TopologyScheme::GreedyDist.build(&net);
            tight += bst_dme_elmore(&net, &topo, 0.1, &tech).wirelength();
            loose += bst_dme_elmore(&net, &topo, 20.0, &tech).wirelength();
        }
        assert!(
            loose < tight,
            "relaxing the ps bound must reduce wire on aggregate: {loose} vs {tight}"
        );
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn empty_net_rejected() {
        let net = ClockNet::new(Point::ORIGIN, vec![]);
        let _ = zst_dme(&net, &Topology::Sink(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_topology_rejected() {
        let net = ClockNet::new(Point::ORIGIN, vec![Sink::new(Point::new(1.0, 1.0), 1.0)]);
        let _ = zst_dme(&net, &Topology::Sink(3));
    }

    fn two_sink_net() -> (ClockNet, HintedTopology) {
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(0.0, 4.0), 1.0),
                Sink::new(Point::new(4.0, 0.0), 1.0),
            ],
        );
        let topo = Topology::merge(Topology::Sink(0), Topology::Sink(1)).to_hinted();
        (net, topo)
    }

    #[test]
    fn try_dme_reports_every_degeneracy() {
        let opts = DmeOptions {
            skew_bound: 1.0,
            model: DelayModel::PathLength,
        };
        let (net, topo) = two_sink_net();

        let empty = ClockNet::new(Point::ORIGIN, vec![]);
        assert_eq!(
            try_dme_intervals(&empty, &Topology::Sink(0).to_hinted(), &opts, &[]),
            Err(DmeError::SinklessNet)
        );

        let bad_bound = DmeOptions {
            skew_bound: -1.0,
            ..opts
        };
        assert_eq!(
            try_dme_intervals(&net, &topo, &bad_bound, &[(0.0, 0.0); 2]),
            Err(DmeError::NegativeSkewBound(-1.0))
        );

        assert_eq!(
            try_dme_intervals(&net, &topo, &opts, &[(0.0, 0.0)]),
            Err(DmeError::IntervalCountMismatch {
                intervals: 1,
                sinks: 2
            })
        );

        assert_eq!(
            try_dme_intervals(&net, &topo, &opts, &[(2.0, 1.0), (0.0, 0.0)]),
            Err(DmeError::BadSinkInterval {
                sink: 0,
                lo: 2.0,
                hi: 1.0
            })
        );

        let err = try_dme_intervals(&net, &topo, &opts, &[(0.0, 0.0), (1.0, 9.0)]).unwrap_err();
        assert!(matches!(
            err,
            DmeError::IntervalExceedsBound { sink: 1, bound, .. } if bound == 1.0
        ));

        let bad_topo = Topology::merge(Topology::Sink(0), Topology::Sink(7)).to_hinted();
        assert_eq!(
            try_dme_intervals(&net, &bad_topo, &opts, &[(0.0, 0.0); 2]),
            Err(DmeError::SinkIndexOutOfRange { index: 7, len: 2 })
        );

        let poisoned = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(f64::NAN, 4.0), 1.0),
                Sink::new(Point::new(4.0, 0.0), 1.0),
            ],
        );
        assert_eq!(
            try_dme_intervals(&poisoned, &topo, &opts, &[(0.0, 0.0); 2]),
            Err(DmeError::NonFiniteGeometry)
        );
    }

    #[test]
    fn try_dme_matches_the_panicking_path_on_good_input() {
        let (net, topo) = two_sink_net();
        let opts = DmeOptions {
            skew_bound: 2.0,
            model: DelayModel::PathLength,
        };
        let intervals = [(0.0, 0.5), (0.0, 0.0)];
        let a = try_dme_intervals(&net, &topo, &opts, &intervals).unwrap();
        let b = dme_intervals(&net, &topo, &opts, &intervals);
        assert_eq!(a, b);
    }

    #[test]
    fn dme_error_display_is_informative() {
        for (e, needle) in [
            (DmeError::SinklessNet, "sinkless"),
            (DmeError::NegativeSkewBound(-2.0), "-2"),
            (
                DmeError::IntervalExceedsBound {
                    sink: 3,
                    width: 9.0,
                    bound: 1.0,
                },
                "wider",
            ),
            (
                DmeError::SinkIndexOutOfRange { index: 7, len: 2 },
                "out of range",
            ),
            (DmeError::NonFiniteGeometry, "non-finite"),
            (DmeError::DetourDiverged, "diverged"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    #[cfg(feature = "proptest")]
    fn proptest_bst_bound_holds() {
        use proptest::prelude::*;
        proptest!(|(seed in 0u64..100, n in 2usize..20, bound in 0f64..60.0)| {
            let net = random_net(seed + 1000, n);
            let topo = TopologyScheme::BiCluster.build(&net);
            let t = bst_dme(&net, &topo, bound);
            prop_assert!(path_length_skew(&t) <= bound + 1e-6);
            prop_assert!(t.validate().is_ok());
        });
    }

    #[test]
    #[cfg(feature = "proptest")]
    fn proptest_elmore_bound_holds() {
        use proptest::prelude::*;
        let tech = Technology::n28();
        proptest!(|(seed in 0u64..60, n in 2usize..15, bound in 0f64..20.0)| {
            let net = random_net(seed + 3000, n);
            let topo = TopologyScheme::GreedyDist.build(&net);
            let t = bst_dme_elmore(&net, &topo, bound, &tech);
            prop_assert!(elmore_skew(&t, &tech) <= bound + 1e-6);
            prop_assert!(t.validate().is_ok());
        });
    }
}
