//! Rectilinear Steiner shallow-light trees (R-SALT).
//!
//! After Chen & Young (TCAD'19): start from a light tree, walk it from the
//! source, and whenever a node's routed path exceeds `(1 + ε)` times its
//! Manhattan distance, *shortcut* it to an ancestor so the shallowness
//! budget holds again; a Steinerization pass then recovers lightness. The
//! result is a `(1 + ε, O(1))`-shallow-light tree: every source→sink path
//! is within `1 + ε` of its lower bound while total wirelength stays close
//! to the RSMT.

use sllt_tree::{ClockNet, ClockTree, NodeId};

use crate::rsmt::{rsmt, steinerize};

/// Builds an R-SALT over the net with shallowness budget `1 + eps`.
///
/// `eps = 0` forces every path to its Manhattan shortest (a shortest-path
/// star shape, heavy); large `eps` degenerates to the RSMT (light). The
/// paper's R-SALT experiments use a small ε.
///
/// # Panics
///
/// Panics when `eps` is negative.
pub fn salt(net: &ClockNet, eps: f64) -> ClockTree {
    let base = rsmt(net);
    salt_from_tree(net, base, eps)
}

/// Applies the SALT relaxation to an existing tree over the same net —
/// the entry point CBS uses (Fig. 2, step 3) to relax a bounded-skew tree.
///
/// Every node whose routed path length exceeds `(1 + eps) ·
/// MD(node)` is reparented to the deepest ancestor that restores the
/// budget (the source always qualifies). Detour wire on edges is dropped
/// by the rewiring only where a shortcut happens; untouched subtrees keep
/// their routed lengths. A final Steinerization + dead-node sweep recovers
/// lightness.
///
/// # Panics
///
/// Panics when `eps` is negative or `tree`'s root is not at the net's
/// source.
pub fn salt_from_tree(net: &ClockNet, mut tree: ClockTree, eps: f64) -> ClockTree {
    assert!(eps >= 0.0, "negative shallowness budget");
    assert!(
        tree.source_pos().approx_eq(net.source),
        "tree root must sit at the net source"
    );
    // Alternate shallowness enforcement with wirelength refinement.
    // Relocation may stretch individual paths, so each round re-enforces
    // the budget; the final round ends with refinements that provably
    // never lengthen paths, keeping the α guarantee at exit.
    for _ in 0..2 {
        enforce_shallowness(net, &mut tree, eps);
        crate::rsmt::relocate_steiner(&mut tree);
        steinerize(&mut tree);
        sllt_tree::edits::eliminate_redundant_steiner(&mut tree);
    }
    enforce_shallowness(net, &mut tree, eps);
    steinerize(&mut tree);
    sllt_tree::edits::eliminate_redundant_steiner(&mut tree);
    tree
}

/// One SALT shortcut pass: every node whose routed path exceeds
/// `(1 + eps) · MD` is reparented to the deepest ancestor that restores
/// the budget (the source always qualifies).
fn enforce_shallowness(net: &ClockNet, tree: &mut ClockTree, eps: f64) {
    let src = net.source;
    let budget = 1.0 + eps;

    // DFS with incremental path lengths; children are fetched after the
    // potential reparent of the current node so subtree updates propagate.
    let mut pl = vec![0.0f64; 0];
    pl.resize(tree.path_lengths().len(), 0.0);
    let mut stack: Vec<NodeId> = vec![tree.root()];
    // Ancestor chain is recovered by walking parent pointers on demand;
    // path lengths of processed nodes are valid because parents are
    // processed before children (DFS from the root).
    while let Some(v) = stack.pop() {
        if v != tree.root() {
            let p = tree.node(v).parent().expect("non-root");
            pl[v.index()] = pl[p.index()] + tree.node(v).edge_len();
            let md = src.dist(tree.node(v).pos);
            if pl[v.index()] > budget * md + 1e-9 {
                // Deepest ancestor that restores the budget; the root
                // always works (pl = 0, direct wire = md).
                let mut best = tree.root();
                let mut cur = tree.node(v).parent();
                while let Some(a) = cur {
                    let cand = pl[a.index()] + tree.node(a).pos.dist(tree.node(v).pos);
                    if cand <= budget * md + 1e-9 {
                        best = a;
                        break;
                    }
                    cur = tree.node(a).parent();
                }
                tree.reparent(v, best);
                pl[v.index()] = pl[best.index()] + tree.node(v).edge_len();
            }
        }
        stack.extend(tree.node(v).children());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;
    use sllt_rng::prelude::*;
    use sllt_tree::{Sink, SlltMetrics};

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn shallowness_budget_holds() {
        for seed in 0..15 {
            let net = random_net(seed, 30);
            for eps in [0.0, 0.05, 0.2, 0.5] {
                let t = salt(&net, eps);
                t.validate().unwrap();
                let m = SlltMetrics::compute(&t, crate::rsmt::rsmt_wirelength(&net));
                assert!(
                    m.shallowness <= 1.0 + eps + 1e-6,
                    "seed {seed} eps {eps}: α = {}",
                    m.shallowness
                );
            }
        }
    }

    #[test]
    fn zero_eps_gives_shortest_paths() {
        let net = random_net(3, 20);
        let t = salt(&net, 0.0);
        let m = SlltMetrics::compute(&t, crate::rsmt::rsmt_wirelength(&net));
        assert!((m.shallowness - 1.0).abs() < 1e-6);
    }

    #[test]
    fn large_eps_stays_light() {
        // With a huge budget nothing is shortcut: SALT = RSMT.
        let net = random_net(4, 25);
        let t = salt(&net, 100.0);
        let r = rsmt(&net);
        assert!((t.wirelength() - r.wirelength()).abs() < 1e-6);
    }

    #[test]
    fn lightness_degrades_gracefully_with_eps() {
        // Tighter ε can only add wire. The guarantee is directional, not
        // per-instance (SALT is a heuristic), so average across nets.
        let mut tight_sum = 0.0;
        let mut loose_sum = 0.0;
        for seed in 0..12 {
            let net = random_net(seed + 5, 30);
            let ref_wl = crate::rsmt::rsmt_wirelength(&net);
            let loose = salt(&net, 0.3).wirelength();
            tight_sum += salt(&net, 0.0).wirelength();
            loose_sum += loose;
            // R-SALT stays within a small constant of the RSMT (paper
            // Table 1: β ≈ 1.02 on the demo net; generous slack on
            // random nets).
            assert!(loose / ref_wl < 1.6);
        }
        assert!(
            tight_sum >= loose_sum - 1e-6,
            "tight {tight_sum} < loose {loose_sum}"
        );
    }

    #[test]
    fn salt_from_tree_keeps_sinks() {
        let net = random_net(6, 20);
        let base = rsmt(&net);
        let t = salt_from_tree(&net, base, 0.1);
        assert_eq!(t.sinks().len(), 20);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "negative shallowness")]
    fn negative_eps_rejected() {
        let net = random_net(7, 5);
        let _ = salt(&net, -0.1);
    }

    #[test]
    #[should_panic(expected = "net source")]
    fn mismatched_root_rejected() {
        let net = random_net(8, 5);
        let other = ClockTree::new(Point::new(-100.0, -100.0));
        let _ = salt_from_tree(&net, other, 0.1);
    }

    #[test]
    fn single_sink_is_direct() {
        let net = ClockNet::new(Point::ORIGIN, vec![Sink::new(Point::new(10.0, 10.0), 1.0)]);
        let t = salt(&net, 0.0);
        assert_eq!(t.sinks().len(), 1);
        assert!((t.wirelength() - 20.0).abs() < 1e-9);
    }
}
