//! Nearest-pair acceleration for greedy agglomerative merge orders.
//!
//! Greedy-Dist and Greedy-Merge both repeat one primitive n−1 times: *find
//! the live cluster pair with the smallest cost, merge it, insert the
//! result*. The brute-force formulation rescans all pairs per merge —
//! O(n²) per step, O(n³) overall — which caps usable sink counts around a
//! few thousand. This module provides the shared ~O(n log n) engine:
//!
//! * a **spatial hash grid in rotated (u, v) space** over live cluster
//!   positions. Rotating by 45° turns placement-plane L1 into L∞
//!   ([`sllt_geom::RPoint`]), so a ring of grid cells at Chebyshev cell
//!   distance `r` gives the exact lower bound `(r − 1)·cell` on the L1
//!   distance to anything inside it — nearest-neighbor ring search prunes
//!   tightly with no corner slop;
//! * a **lazy-deletion best-pair heap**: every cluster pushes its current
//!   nearest pair at creation. Popped entries naming a dead cluster are
//!   *stale*; if the other endpoint is still alive its nearest pair is
//!   recomputed and re-pushed. Cluster states are immutable after creation
//!   so keys never rot silently — staleness is detectable from liveness
//!   alone;
//! * **incremental reinsertion**: a merge removes two grid entries,
//!   inserts one, and pushes one heap entry. The grid is rebuilt (resized
//!   to the live population) whenever 3/4 of the clusters it was built for
//!   have died.
//!
//! # Determinism and bit-identity
//!
//! The engine must reproduce the brute-force path *bit for bit*. Two rules
//! make that hold:
//!
//! * **Exact costs come from the caller.** The grid and its ring bounds
//!   are used only to *prune* candidates; every comparison uses
//!   [`PairMetric::cost`], the same function (same operations, same
//!   order) the brute-force path evaluates. Conservative floating-point
//!   margin on the prune bound means a candidate is never dropped by
//!   rounding.
//! * **Ties break on creation order.** Pairs are ordered by the key
//!   `(cost, lower id, higher id)` where ids are assigned in creation
//!   order (sinks first, then merged clusters in merge order). Both the
//!   engine and the brute-force path select the minimum of that total
//!   order, so equal-cost pairs — ubiquitous on degenerate (collinear,
//!   coincident) inputs — resolve identically, independent of heap or
//!   scan order.
//!
//! # Correctness of lazy deletion
//!
//! Invariant: *whenever the engine pops, some heap entry keys ≤ the
//! current true minimum pair.* Let `(a, b)` be the true minimum pair with
//! key `k`, `b` the younger endpoint. When `b` was created it pushed its
//! then-nearest pair, whose key was ≤ key(a, b) ≤ `k` (a was already alive
//! and has stayed alive). If that entry was since popped, it was popped
//! stale (a merge would have consumed `b`), and the pop re-pushed `b`'s
//! then-current nearest pair — again ≤ `k` by the same argument. Chaining,
//! an entry with key ≤ `k` is always present; the heap therefore never
//! pops a live pair worse than the true minimum.

use sllt_geom::RPoint;
use sllt_tree::Topology;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Cost model plugged into [`agglomerate`]. `State` is whatever a scheme
/// tracks per cluster (centroid + weight, merging region + delay, …);
/// states are immutable once created.
pub trait PairMetric {
    /// Per-cluster state.
    type State;

    /// Representative position in rotated (u, v) space, used only for
    /// grid binning and ring pruning — never for exact comparisons.
    fn position(s: &Self::State) -> RPoint;

    /// Half-extent of the cluster around [`Self::position`] in (u, v) L∞:
    /// the cost to a cluster in a ring at L∞ distance `d` from the
    /// position is at least `d − half_extent(query) − max half_extent`.
    /// Zero for point-like clusters.
    fn half_extent(s: &Self::State) -> f64;

    /// Exact pair cost. Must be the very computation the brute-force path
    /// performs (bit-identical results depend on it). Symmetric.
    fn cost(a: &Self::State, b: &Self::State) -> f64;

    /// Merged state; `a` is always the older cluster (smaller id), so
    /// asymmetric formulas (centroid accumulation order, delay split
    /// orientation) match the brute-force path exactly.
    fn merge(a: &Self::State, b: &Self::State) -> Self::State;
}

/// The shared total order on selection keys `(cost, lower id, higher id)`.
/// The engine and the brute-force paths both select with exactly this
/// comparison so that equal-cost merges resolve identically.
pub(crate) fn key_less(a: (f64, u32, u32), b: (f64, u32, u32)) -> bool {
    a.0.total_cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
        == Ordering::Less
}

/// A candidate pair in the lazy heap. Ordered by `(cost, lo, hi)`
/// ascending via [`Reverse`]-free manual ordering (we implement the
/// reversed order directly so `BinaryHeap`'s max-pop yields the minimum
/// key).
#[derive(Clone, Copy, Debug)]
struct Entry {
    cost: f64,
    lo: u32,
    hi: u32,
}

impl Entry {
    fn key(&self) -> (f64, u32, u32) {
        (self.cost, self.lo, self.hi)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (cost, lo, hi) is the heap maximum.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.lo.cmp(&self.lo))
            .then_with(|| other.hi.cmp(&self.hi))
    }
}

/// Spatial hash grid over rotated-space positions. Cells are square; only
/// occupied cells are stored. The cell size adapts so occupancy stays
/// bounded even on lower-dimensional inputs (collinear sinks occupy only
/// the grid diagonal — a √n×√n grid would pile √n points per cell).
struct Grid {
    cell: f64,
    u0: f64,
    v0: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
    /// Occupied-cell bounding box, for ring clipping.
    lo: (i64, i64),
    hi: (i64, i64),
}

/// Target maximum cell occupancy during construction; cells are refined
/// (cell size halved) until met or the refinement cap is hit.
const OCCUPANCY_TARGET: usize = 12;

impl Grid {
    fn build(items: &[(u32, RPoint)]) -> Grid {
        debug_assert!(!items.is_empty());
        let (mut ulo, mut uhi, mut vlo, mut vhi) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(_, p) in items {
            ulo = ulo.min(p.u);
            uhi = uhi.max(p.u);
            vlo = vlo.min(p.v);
            vhi = vhi.max(p.v);
        }
        let span = (uhi - ulo).max(vhi - vlo).max(1e-9);
        let mut per_axis = ((items.len() as f64).sqrt().ceil() as i64).max(1);
        let mut refinements = 0u64;
        loop {
            let cell = span / per_axis as f64;
            let mut g = Grid {
                cell,
                u0: ulo,
                v0: vlo,
                cells: HashMap::with_capacity(items.len()),
                lo: (i64::MAX, i64::MAX),
                hi: (i64::MIN, i64::MIN),
            };
            let mut worst = 0usize;
            for &(id, p) in items {
                let c = g.cell_of(p);
                let bucket = g.cells.entry(c).or_default();
                bucket.push(id);
                worst = worst.max(bucket.len());
                g.lo = (g.lo.0.min(c.0), g.lo.1.min(c.1));
                g.hi = (g.hi.0.max(c.0), g.hi.1.max(c.1));
            }
            // Coincident points can never spread, so cap the refinement at
            // one cell per item.
            if worst <= OCCUPANCY_TARGET || per_axis as usize >= items.len() {
                sllt_obs::count("route.nnpair.grid_refinements", refinements);
                return g;
            }
            per_axis = (per_axis * 2).min(items.len() as i64);
            refinements += 1;
        }
    }

    #[inline]
    fn cell_of(&self, p: RPoint) -> (i64, i64) {
        (
            ((p.u - self.u0) / self.cell).floor() as i64,
            ((p.v - self.v0) / self.cell).floor() as i64,
        )
    }

    fn insert(&mut self, id: u32, p: RPoint) {
        let c = self.cell_of(p);
        self.cells.entry(c).or_default().push(id);
        self.lo = (self.lo.0.min(c.0), self.lo.1.min(c.1));
        self.hi = (self.hi.0.max(c.0), self.hi.1.max(c.1));
    }

    fn remove(&mut self, id: u32, p: RPoint) {
        let c = self.cell_of(p);
        let bucket = self.cells.get_mut(&c).expect("cluster binned at insert");
        let at = bucket
            .iter()
            .position(|&x| x == id)
            .expect("cluster present in its cell");
        bucket.swap_remove(at);
        if bucket.is_empty() {
            self.cells.remove(&c);
        }
    }

    /// Visits the buckets of the ring of cells at Chebyshev distance `r`
    /// around `(cu, cv)`, clipped to the occupied bounding box.
    fn for_ring(&self, cu: i64, cv: i64, r: i64, mut f: impl FnMut(&[u32])) {
        let visit = |u: i64, v: i64, f: &mut dyn FnMut(&[u32])| {
            if let Some(b) = self.cells.get(&(u, v)) {
                f(b);
            }
        };
        if r == 0 {
            visit(cu, cv, &mut f);
            return;
        }
        let (ulo, uhi) = ((cu - r).max(self.lo.0), (cu + r).min(self.hi.0));
        let (vlo, vhi) = ((cv - r).max(self.lo.1), (cv + r).min(self.hi.1));
        if ulo > uhi || vlo > vhi {
            return;
        }
        // Top and bottom rows of the ring.
        for row in [cv + r, cv - r] {
            if row >= vlo && row <= vhi {
                for u in ulo..=uhi {
                    visit(u, row, &mut f);
                }
            }
        }
        // Left and right columns, excluding ring corners already visited.
        for col in [cu - r, cu + r] {
            if col >= ulo && col <= uhi {
                for v in (cv - r + 1).max(vlo)..=(cv + r - 1).min(vhi) {
                    visit(col, v, &mut f);
                }
            }
        }
    }

    /// Largest Chebyshev cell distance from `(cu, cv)` to any occupied
    /// cell; rings beyond it are empty forever.
    fn max_ring(&self, cu: i64, cv: i64) -> i64 {
        let du = (cu - self.lo.0).abs().max((self.hi.0 - cu).abs());
        let dv = (cv - self.lo.1).abs().max((self.hi.1 - cv).abs());
        du.max(dv)
    }
}

/// Finds the minimum-key pair `(cost, lo, hi)` incident to cluster `q`
/// over all live clusters, by expanding grid rings with a conservative
/// lower-bound cut-off.
fn nearest_pair<M: PairMetric>(
    q: u32,
    states: &[Option<M::State>],
    grid: &Grid,
    max_half_extent: f64,
    alive: usize,
    margin: f64,
    total_examined: &mut u64,
) -> Entry {
    let sq = states[q as usize].as_ref().expect("query cluster is alive");
    let pq = M::position(sq);
    let slack = M::half_extent(sq) + max_half_extent + margin;
    let (cu, cv) = grid.cell_of(pq);
    let max_ring = grid.max_ring(cu, cv);
    let mut best: Option<Entry> = None;
    let mut examined = 0usize;
    let mut r: i64 = 0;
    while r <= max_ring {
        // Everything in ring r is at L∞ ≥ (r − 1)·cell from pq, hence at
        // cost ≥ that minus the extent slack. Strictly-greater cut-off:
        // equal-cost candidates are never pruned, so id tie-breaks see
        // every contender.
        if let Some(b) = &best {
            if (r - 1) as f64 * grid.cell - slack > b.cost {
                break;
            }
        }
        grid.for_ring(cu, cv, r, |bucket| {
            for &x in bucket {
                if x == q {
                    continue;
                }
                let sx = states[x as usize].as_ref().expect("grid holds only live");
                let cost = M::cost(sq, sx);
                let (lo, hi) = if x < q { (x, q) } else { (q, x) };
                let cand = Entry { cost, lo, hi };
                if best.is_none_or(|b| key_less(cand.key(), b.key())) {
                    best = Some(cand);
                }
                examined += 1;
            }
        });
        if examined >= alive - 1 {
            break; // every live partner has been cost-compared exactly
        }
        r += 1;
    }
    *total_examined += examined as u64;
    best.expect("a live partner exists whenever alive ≥ 2")
}

/// Tallies one [`agglomerate`] call: plain locals in the hot loop,
/// emitted to the telemetry shard (if any) once at the end.
#[derive(Default)]
struct EngineCounters {
    pushes: u64,
    pops: u64,
    stale: u64,
    rebuilds: u64,
    examined: u64,
}

impl EngineCounters {
    fn emit(&self, merges: u64) {
        if !sllt_obs::enabled() {
            return;
        }
        sllt_obs::count("route.nnpair.calls", 1);
        sllt_obs::count("route.nnpair.merges", merges);
        sllt_obs::count("route.nnpair.heap_push", self.pushes);
        sllt_obs::count("route.nnpair.heap_pop", self.pops);
        sllt_obs::count("route.nnpair.stale_discard", self.stale);
        sllt_obs::count("route.nnpair.grid_rebuilds", self.rebuilds);
        sllt_obs::count("route.nnpair.candidates_examined", self.examined);
    }
}

/// Runs greedy agglomeration to a single topology: repeatedly merges the
/// live pair minimizing `(cost, lo id, hi id)` until one cluster remains.
/// Bit-identical to the brute-force scan under the same metric (see the
/// module docs for why).
pub fn agglomerate<M: PairMetric>(initial: Vec<M::State>) -> Topology {
    let n = initial.len();
    assert!(n > 0, "agglomeration over zero clusters");
    if n == 1 {
        return Topology::sink(0);
    }
    // Slot i holds cluster id i (creation order: sinks 0..n, then merges).
    let mut states: Vec<Option<M::State>> = initial.into_iter().map(Some).collect();
    let mut topos: Vec<Option<Topology>> = (0..n).map(|i| Some(Topology::sink(i))).collect();
    states.reserve(n - 1);
    topos.reserve(n - 1);

    let mut max_half_extent = states
        .iter()
        .map(|s| M::half_extent(s.as_ref().expect("all alive at start")))
        .fold(0.0, f64::max);
    let positions: Vec<(u32, RPoint)> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u32, M::position(s.as_ref().expect("alive"))))
        .collect();
    let mut grid = Grid::build(&positions);
    // Absolute slop added to the pruning slack: covers the rounding gap
    // between the rotated-space ring bound and the caller's exact cost.
    let coord_scale = positions
        .iter()
        .fold(1.0f64, |m, &(_, p)| m.max(p.u.abs()).max(p.v.abs()));
    let margin = coord_scale * 1e-9;
    drop(positions);

    let mut alive = n;
    let mut grid_population = n;
    let mut tally = EngineCounters::default();
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(2 * n);
    for id in 0..n as u32 {
        heap.push(nearest_pair::<M>(
            id,
            &states,
            &grid,
            max_half_extent,
            alive,
            margin,
            &mut tally.examined,
        ));
        tally.pushes += 1;
    }

    while alive > 1 {
        let e = heap
            .pop()
            .expect("lazy-heap invariant: a live pair is enqueued");
        tally.pops += 1;
        let (i, j) = (e.lo as usize, e.hi as usize);
        match (states[i].is_some(), states[j].is_some()) {
            (false, false) => {
                tally.stale += 1;
                continue; // fully stale
            }
            (true, true) => {
                let sa = states[i].take().expect("checked");
                let sb = states[j].take().expect("checked");
                grid.remove(e.lo, M::position(&sa));
                grid.remove(e.hi, M::position(&sb));
                let merged = M::merge(&sa, &sb);
                let ta = topos[i].take().expect("topology tracks state");
                let tb = topos[j].take().expect("topology tracks state");
                let id = states.len() as u32;
                max_half_extent = max_half_extent.max(M::half_extent(&merged));
                grid.insert(id, M::position(&merged));
                states.push(Some(merged));
                topos.push(Some(Topology::merge(ta, tb)));
                alive -= 1;
                if alive >= 2 {
                    if alive * 4 <= grid_population {
                        let live: Vec<(u32, RPoint)> = states
                            .iter()
                            .enumerate()
                            .filter_map(|(k, s)| s.as_ref().map(|s| (k as u32, M::position(s))))
                            .collect();
                        grid = Grid::build(&live);
                        grid_population = alive;
                        tally.rebuilds += 1;
                    }
                    heap.push(nearest_pair::<M>(
                        id,
                        &states,
                        &grid,
                        max_half_extent,
                        alive,
                        margin,
                        &mut tally.examined,
                    ));
                    tally.pushes += 1;
                }
            }
            (i_alive, _) => {
                // Half-stale: one endpoint outlived the entry. Re-arm the
                // survivor with its current nearest pair (see module docs
                // for why this preserves the pop-order invariant).
                tally.stale += 1;
                let survivor = if i_alive { e.lo } else { e.hi };
                heap.push(nearest_pair::<M>(
                    survivor,
                    &states,
                    &grid,
                    max_half_extent,
                    alive,
                    margin,
                    &mut tally.examined,
                ));
                tally.pushes += 1;
            }
        }
    }

    tally.emit((n - 1) as u64);
    states
        .iter()
        .position(|s| s.is_some())
        .and_then(|k| topos[k].take())
        .expect("exactly one live cluster remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    /// Plain L1 metric over points — enough to exercise the engine
    /// machinery in isolation.
    struct PointMetric;
    impl PairMetric for PointMetric {
        type State = Point;
        fn position(s: &Point) -> RPoint {
            RPoint::from_xy(*s)
        }
        fn half_extent(_: &Point) -> f64 {
            0.0
        }
        fn cost(a: &Point, b: &Point) -> f64 {
            a.dist(*b)
        }
        fn merge(a: &Point, b: &Point) -> Point {
            Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
        }
    }

    /// Brute-force oracle with the identical (cost, lo, hi) selection.
    fn agglomerate_naive(points: Vec<Point>) -> Topology {
        assert!(!points.is_empty());
        let mut live: Vec<(u32, Point, Topology)> = points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p, Topology::sink(i)))
            .collect();
        let mut next = live.len() as u32;
        while live.len() > 1 {
            let (mut bi, mut bj) = (0, 1);
            let mut bk = (f64::INFINITY, u32::MAX, u32::MAX);
            for i in 0..live.len() {
                for j in (i + 1)..live.len() {
                    let c = PointMetric::cost(&live[i].1, &live[j].1);
                    let (lo, hi) = if live[i].0 < live[j].0 {
                        (live[i].0, live[j].0)
                    } else {
                        (live[j].0, live[i].0)
                    };
                    let k = (c, lo, hi);
                    if key_less(k, bk) {
                        (bi, bj, bk) = (i, j, k);
                    }
                }
            }
            if live[bi].0 > live[bj].0 {
                std::mem::swap(&mut bi, &mut bj);
            }
            let (hi_slot, lo_slot) = if bi < bj { (bj, bi) } else { (bi, bj) };
            let b = live.swap_remove(hi_slot);
            let a = live.swap_remove(lo_slot);
            let (a, b) = if a.0 < b.0 { (a, b) } else { (b, a) };
            live.push((
                next,
                PointMetric::merge(&a.1, &b.1),
                Topology::merge(a.2, b.2),
            ));
            next += 1;
        }
        live.pop().expect("nonempty").2
    }

    fn pseudo_points(seed: u64, n: usize) -> Vec<Point> {
        use sllt_rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..500.0), rng.random_range(0.0..500.0)))
            .collect()
    }

    #[test]
    fn engine_matches_oracle_on_random_inputs() {
        for seed in 0..6 {
            for n in [1usize, 2, 3, 7, 40, 120] {
                let pts = pseudo_points(seed, n);
                assert_eq!(
                    agglomerate::<PointMetric>(pts.clone()),
                    agglomerate_naive(pts),
                    "seed {seed} n {n}"
                );
            }
        }
    }

    #[test]
    fn engine_matches_oracle_on_degenerate_inputs() {
        // Collinear: greedy produces a chain; every pair distance ties in
        // batches, so this leans hard on the id tie-break.
        let collinear: Vec<Point> = (0..60).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(
            agglomerate::<PointMetric>(collinear.clone()),
            agglomerate_naive(collinear)
        );
        // Coincident: all costs zero, selection is pure id order.
        let coincident: Vec<Point> = (0..40).map(|_| Point::new(7.0, -3.0)).collect();
        assert_eq!(
            agglomerate::<PointMetric>(coincident.clone()),
            agglomerate_naive(coincident)
        );
    }

    #[test]
    fn grid_refines_under_collinear_load() {
        let items: Vec<(u32, RPoint)> = (0..1000)
            .map(|i| (i as u32, RPoint::from_xy(Point::new(i as f64, 0.0))))
            .collect();
        let g = Grid::build(&items);
        let worst = g.cells.values().map(Vec::len).max().unwrap_or(0);
        assert!(
            worst <= OCCUPANCY_TARGET,
            "collinear occupancy {worst} exceeds target"
        );
    }

    #[test]
    fn grid_caps_refinement_on_coincident_points() {
        let items: Vec<(u32, RPoint)> = (0..100)
            .map(|i| (i as u32, RPoint::new(1.0, 1.0)))
            .collect();
        let g = Grid::build(&items); // must terminate despite occupancy 100
        assert_eq!(g.cells.len(), 1);
    }
}
