//! Useful-skew trees (UST-DME).
//!
//! Tsao–Koh (TODAES'02) generalize bounded skew to *useful skew*: timing
//! analysis assigns every sink an **arrival window** `[lo, hi]` (ps) and
//! any clock tree whose arrivals land inside the windows is legal —
//! deliberately unequal arrivals can donate margin to critical paths.
//!
//! The DME adaptation tracks, per subtree, the *launch window*: the set of
//! clock departure times at the subtree root for which every sink below
//! arrives inside its window. A leaf's launch window is its arrival
//! window; wiring a subtree through `e` µm shifts its window down by the
//! wire delay; a merge intersects the two shifted windows, spending
//! detour on the *early* side when they do not overlap. Detour only adds
//! delay, so a feasible tree always exists (it may be wire-expensive when
//! windows conflict strongly).

use crate::dme::{DelayModel, DmeOptions};
use sllt_geom::{Point, RRect};
use sllt_tree::{ClockNet, ClockTree, HintedTopology, NodeId, Topology};

/// A useful-skew tree: the routed tree plus the launch window at its
/// root.
#[derive(Debug, Clone)]
pub struct UstTree {
    /// The routed tree (root at the net source).
    pub tree: ClockTree,
    /// Departure times at the *tree root* (after the source trunk) for
    /// which every sink arrival lands in its window, ps.
    pub launch_window: (f64, f64),
    /// Delay of the source→root trunk, ps — subtract from the launch
    /// window to get source departure times.
    pub trunk_delay: f64,
}

/// Builds a useful-skew tree: every sink `i` must arrive within
/// `windows[i]` (ps from clock departure at the tree root) under the
/// given delay model.
///
/// # Panics
///
/// Panics when the net is sinkless, `windows.len() != net.len()`, or a
/// window is inverted/negative.
pub fn ust_dme(
    net: &ClockNet,
    topo: &Topology,
    windows: &[(f64, f64)],
    opts: &DmeOptions,
) -> UstTree {
    assert!(!net.is_empty(), "UST over a sinkless net");
    assert_eq!(windows.len(), net.len(), "one window per sink");
    for &(lo, hi) in windows {
        assert!(lo >= 0.0 && hi >= lo, "bad arrival window ({lo}, {hi})");
    }
    let hinted = topo.to_hinted();
    let mut nodes: Vec<UstNode> = Vec::new();
    let root = build(net, &hinted, windows, &opts.model, &mut nodes);

    let mut tree = ClockTree::new(net.source);
    let root_pt = nodes[root].region.nearest_to(net.source);
    let source_node = tree.root();
    embed(net, &nodes, root, &mut tree, source_node, root_pt, None);

    // The trunk wire shifts every arrival equally; report its delay so
    // callers can translate the window to source departure times.
    let trunk_len = net.source.dist(root_pt);
    let trunk_delay = match &opts.model {
        DelayModel::PathLength => trunk_len,
        DelayModel::Elmore(t) => t.wire_delay(trunk_len, nodes[root].cap),
    };
    UstTree {
        tree,
        launch_window: (nodes[root].lo, nodes[root].hi),
        trunk_delay,
    }
}

struct UstNode {
    region: RRect,
    /// Launch window at this node, ps.
    lo: f64,
    hi: f64,
    cap: f64,
    kids: Option<(usize, usize, f64, f64)>,
    sink: Option<usize>,
}

/// Bottom-up window-merge construction as an explicit postorder stack
/// machine (same shape as `dme::build_up`): greedy merge orders can be
/// n-deep chains, which recursion cannot traverse at production sink
/// counts. Arena order matches the recursive formulation exactly.
fn build(
    net: &ClockNet,
    topo: &HintedTopology,
    windows: &[(f64, f64)],
    model: &DelayModel,
    out: &mut Vec<UstNode>,
) -> usize {
    enum W<'t> {
        Visit(&'t HintedTopology),
        Build,
    }
    let mut work = vec![W::Visit(topo)];
    let mut done: Vec<usize> = Vec::new();
    while let Some(w) = work.pop() {
        match w {
            W::Visit(HintedTopology::Sink(i)) => {
                let i = *i;
                assert!(i < net.sinks.len(), "topology sink index {i} out of range");
                let cap = match model {
                    DelayModel::PathLength => 0.0,
                    DelayModel::Elmore(_) => net.sinks[i].cap_ff,
                };
                out.push(UstNode {
                    region: RRect::from_point(net.sinks[i].pos),
                    lo: windows[i].0,
                    hi: windows[i].1,
                    cap,
                    kids: None,
                    sink: Some(i),
                });
                done.push(out.len() - 1);
            }
            W::Visit(HintedTopology::Merge(a, b, _)) => {
                work.push(W::Build);
                work.push(W::Visit(b));
                work.push(W::Visit(a));
            }
            W::Build => {
                let ib = done.pop().expect("build follows two subtrees");
                let ia = done.pop().expect("build follows two subtrees");
                let m = merge_windows(&out[ia], &out[ib], model);
                out.push(UstNode {
                    region: m.region,
                    lo: m.lo,
                    hi: m.hi,
                    cap: m.cap,
                    kids: Some((ia, ib, m.ea, m.eb)),
                    sink: None,
                });
                done.push(out.len() - 1);
            }
        }
    }
    done.pop().expect("nonempty topology")
}

struct MergedWindow {
    region: RRect,
    lo: f64,
    hi: f64,
    cap: f64,
    ea: f64,
    eb: f64,
}

/// One useful-skew merge. With split `ea ∈ [0, d]` the children's launch
/// windows, as seen at the merge point, are `W_a − Da(ea)` and
/// `W_b − Db(d − ea)`; we want them to overlap with as much slack as
/// possible, detouring the *late-window* (early-arriving) child when the
/// full split range cannot make them meet.
fn merge_windows(a: &UstNode, b: &UstNode, model: &DelayModel) -> MergedWindow {
    let d = a.region.dist(&b.region);
    let da = |ea: f64| wire_delay(model, ea, a.cap);
    let db = |ea: f64| wire_delay(model, d - ea, b.cap);

    // Overlap condition at split ea:
    //   max(a.lo − Da, b.lo − Db) ≤ min(a.hi − Da, b.hi − Db).
    // g(ea) = (a.lo − Da) − (b.hi − Db) is decreasing in ea;
    // h(ea) = (b.lo − Db) − (a.hi − Da) is increasing in ea.
    let g = |ea: f64| (a.lo - da(ea)) - (b.hi - db(ea));
    let h = |ea: f64| (b.lo - db(ea)) - (a.hi - da(ea));

    let (ea, eb);
    if g(d) > 1e-12 {
        // Even all wire on a's side leaves a's window too late: detour a.
        let need = a.lo - b.hi; // Da(ea) − Db(0) must reach `need`
        let eb_val = 0.0;
        let target = need + wire_delay(model, eb_val, b.cap);
        ea = solve_delay(model, a.cap, target, d);
        eb = eb_val;
    } else if h(0.0) > 1e-12 {
        let need = b.lo - a.hi;
        let ea_val = 0.0;
        let target = need + wire_delay(model, ea_val, a.cap);
        eb = solve_delay(model, b.cap, target, d);
        ea = ea_val;
    } else {
        // Some split in [0, d] overlaps. Choose the one maximizing the
        // merged window (equivalently centring the two windows), found by
        // bisection on the difference of window centres.
        let centre_gap = |ea: f64| (a.lo + a.hi) / 2.0 - da(ea) - ((b.lo + b.hi) / 2.0 - db(ea));
        // centre_gap is decreasing in ea.
        let pick = if centre_gap(0.0) <= 0.0 {
            0.0
        } else if centre_gap(d) >= 0.0 {
            d
        } else {
            let (mut lo_e, mut hi_e) = (0.0, d);
            for _ in 0..70 {
                let mid = 0.5 * (lo_e + hi_e);
                if centre_gap(mid) > 0.0 {
                    lo_e = mid;
                } else {
                    hi_e = mid;
                }
            }
            0.5 * (lo_e + hi_e)
        };
        // Clamp into the overlap-feasible range [root of g, root of h]
        // (g decreasing gates the lower end, h increasing the upper).
        let lo_feas = if g(0.0) <= 0.0 {
            0.0
        } else {
            bisect_decreasing(&g, 0.0, d)
        };
        let hi_feas = if h(d) <= 0.0 {
            d
        } else {
            bisect_increasing(&h, 0.0, d)
        };
        ea = pick.clamp(lo_feas.min(hi_feas), hi_feas.max(lo_feas));
        eb = d - ea;
    }

    let (da_v, db_v) = (wire_delay(model, ea, a.cap), wire_delay(model, eb, b.cap));
    let lo = (a.lo - da_v).max(b.lo - db_v);
    let hi = (a.hi - da_v).min(b.hi - db_v);
    let region = a
        .region
        .inflated(ea)
        .intersection(&b.region.inflated(eb))
        .expect("e_a + e_b >= dist keeps regions intersecting");
    MergedWindow {
        region,
        lo,
        hi: hi.max(lo), // numerical guard: windows touch at worst
        cap: a.cap + b.cap + wire_cap(model, ea + eb),
        ea,
        eb,
    }
}

fn wire_delay(model: &DelayModel, e: f64, cap: f64) -> f64 {
    match model {
        DelayModel::PathLength => e,
        DelayModel::Elmore(t) => t.wire_delay(e, cap),
    }
}

fn wire_cap(model: &DelayModel, e: f64) -> f64 {
    match model {
        DelayModel::PathLength => 0.0,
        DelayModel::Elmore(t) => t.wire_cap(e),
    }
}

/// Smallest `e ≥ min_e` with `wire_delay(e, cap) ≥ target`.
fn solve_delay(model: &DelayModel, cap: f64, target: f64, min_e: f64) -> f64 {
    let f = |e: f64| wire_delay(model, e, cap) - target;
    let mut hi = (min_e.max(1.0)) * 2.0;
    let mut guard = 0;
    while f(hi) < 0.0 {
        hi *= 2.0;
        guard += 1;
        assert!(guard < 60, "UST detour search diverged");
    }
    bisect_increasing(&f, 0.0, hi).max(min_e)
}

fn bisect_increasing(f: &impl Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    for _ in 0..70 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn bisect_decreasing(f: &impl Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    for _ in 0..70 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Top-down embedding as an explicit preorder stack (left child pushed
/// last, so embedded first — tree node ids come out in recursive order);
/// see `dme::embed_down`.
#[allow(clippy::too_many_arguments)]
fn embed(
    net: &ClockNet,
    nodes: &[UstNode],
    root_idx: usize,
    tree: &mut ClockTree,
    root_parent: NodeId,
    root_pos: Point,
    root_edge: Option<f64>,
) {
    let mut stack: Vec<(usize, NodeId, Point, Option<f64>)> =
        vec![(root_idx, root_parent, root_pos, root_edge)];
    while let Some((idx, parent, pos, edge)) = stack.pop() {
        let n = &nodes[idx];
        let id = match n.sink {
            Some(i) => tree.add_sink_indexed(parent, pos, net.sinks[i].cap_ff, i),
            None => tree.add_steiner(parent, pos),
        };
        if let Some(e) = edge {
            tree.set_edge_len(id, e.max(tree.node(id).edge_len()));
        }
        if let Some((ia, ib, ea, eb)) = n.kids {
            let pa = nodes[ia].region.nearest_to(pos);
            let pb = nodes[ib].region.nearest_to(pos);
            stack.push((ib, id, pb, Some(eb)));
            stack.push((ia, id, pa, Some(ea)));
        }
    }
}

/// Verifies a UST result: with departure at `launch` ps (measured at the
/// tree root, i.e. inside [`UstTree::launch_window`]), does every sink
/// arrive within its window? Returns the worst violation in ps (≤ 0 means
/// all windows met).
pub fn window_violation(
    ust: &UstTree,
    windows: &[(f64, f64)],
    model: &DelayModel,
    launch: f64,
) -> f64 {
    let tree = &ust.tree;
    let (rc, map) = tree.to_rc_tree();
    let delays = match model {
        DelayModel::PathLength => {
            let pl = tree.path_lengths();
            (0..pl.len()).map(|i| pl[i]).collect::<Vec<_>>()
        }
        DelayModel::Elmore(t) => {
            let d = rc.elmore(t, 0.0);
            let mut by_raw = vec![0.0; tree.path_lengths().len()];
            for (raw, slot) in map.iter().enumerate() {
                if let Some(ri) = slot {
                    by_raw[raw] = d[*ri];
                }
            }
            by_raw
        }
    };
    // Delay from the *tree root* (after trunk): subtract the trunk leg.
    let mut worst = f64::NEG_INFINITY;
    for id in tree.sinks() {
        if let sllt_tree::NodeKind::Sink { sink_index, .. } = tree.node(id).kind {
            let arrival = launch + delays[id.index()] - ust.trunk_delay;
            let (lo, hi) = windows[sink_index];
            worst = worst.max(lo - arrival).max(arrival - hi);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topogen::TopologyScheme;
    use sllt_rng::prelude::*;
    use sllt_tree::Sink;

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    fn opts_pl() -> DmeOptions {
        DmeOptions {
            skew_bound: 0.0,
            model: DelayModel::PathLength,
        }
    }

    #[test]
    fn identical_point_windows_reduce_to_zero_skew() {
        // Every sink must arrive at exactly 120 µm of path: a ZST with a
        // fixed total path length.
        let net = random_net(1, 12);
        let topo = TopologyScheme::GreedyDist.build(&net);
        let windows = vec![(120.0, 120.0); net.len()];
        let ust = ust_dme(&net, &topo, &windows, &opts_pl());
        ust.tree.validate().unwrap();
        let skew = sllt_tree::metrics::path_length_skew(&ust.tree);
        assert!(skew < 1e-6, "point windows force zero skew, got {skew}");
        // Launch window collapses to the single feasible departure.
        assert!(ust.launch_window.1 - ust.launch_window.0 < 1e-6);
        let v = window_violation(&ust, &windows, &DelayModel::PathLength, ust.launch_window.0);
        assert!(v <= 1e-6, "violation {v}");
    }

    #[test]
    fn wide_windows_cost_no_detour() {
        // A configuration where zero skew *forces* detour (a deep pair
        // merged with a nearby shallow sink): wide windows skip it.
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(0.0, 6.0), 1.0),
                Sink::new(Point::new(0.0, -6.0), 1.0),
                Sink::new(Point::new(4.0, 0.0), 1.0),
            ],
        );
        let topo = Topology::merge(
            Topology::merge(Topology::Sink(0), Topology::Sink(1)),
            Topology::Sink(2),
        );
        let wide = vec![(0.0, 1e6); net.len()];
        let ust = ust_dme(&net, &topo, &wide, &opts_pl());
        let zst = crate::dme::zst_dme(&net, &topo);
        assert!(
            (zst.wirelength() - 18.0).abs() < 1e-6,
            "zst {}",
            zst.wirelength()
        );
        assert!(
            ust.tree.wirelength() <= 16.0 + 1e-6,
            "wide windows must skip the detour: {}",
            ust.tree.wirelength()
        );
        let mid = (ust.launch_window.0 + ust.launch_window.1) / 2.0;
        assert!(window_violation(&ust, &wide, &DelayModel::PathLength, mid) <= 1e-6);

        // And on random nets, never heavier than the zero-skew tree.
        for seed in 0..10 {
            let net = random_net(seed + 40, 15);
            let topo = TopologyScheme::GreedyDist.build(&net);
            let wide = vec![(0.0, 1e6); net.len()];
            let ust = ust_dme(&net, &topo, &wide, &opts_pl());
            let zst = crate::dme::zst_dme(&net, &topo);
            assert!(ust.tree.wirelength() <= zst.wirelength() + 1e-6);
        }
    }

    #[test]
    fn staggered_windows_are_honoured() {
        // Two groups with disjoint arrival windows: the tree must skew
        // deliberately.
        let net = random_net(3, 10);
        let topo = TopologyScheme::BiCluster.build(&net);
        let windows: Vec<(f64, f64)> = (0..net.len())
            .map(|i| {
                if i % 2 == 0 {
                    (100.0, 130.0)
                } else {
                    (160.0, 190.0)
                }
            })
            .collect();
        let ust = ust_dme(&net, &topo, &windows, &opts_pl());
        ust.tree.validate().unwrap();
        let launch = (ust.launch_window.0 + ust.launch_window.1) / 2.0;
        let v = window_violation(&ust, &windows, &DelayModel::PathLength, launch);
        assert!(v <= 1e-6, "violation {v}");
        // The realized skew is non-zero by design.
        assert!(sllt_tree::metrics::path_length_skew(&ust.tree) > 10.0);
    }

    #[test]
    fn elmore_windows_are_honoured() {
        let tech = sllt_timing::Technology::n28();
        let model = DelayModel::Elmore(tech);
        let net = random_net(4, 12);
        let topo = TopologyScheme::GreedyDist.build(&net);
        let windows: Vec<(f64, f64)> = (0..net.len())
            .map(|i| if i < 6 { (10.0, 14.0) } else { (15.0, 20.0) })
            .collect();
        let ust = ust_dme(
            &net,
            &topo,
            &windows,
            &DmeOptions {
                skew_bound: 0.0,
                model,
            },
        );
        ust.tree.validate().unwrap();
        let launch = (ust.launch_window.0 + ust.launch_window.1) / 2.0;
        let v = window_violation(&ust, &windows, &model, launch);
        assert!(v <= 1e-6, "violation {v} ps");
    }

    #[test]
    #[cfg(feature = "proptest")]
    fn proptest_ust_always_feasible() {
        use proptest::prelude::*;
        proptest!(|(seed in 0u64..60, n in 2usize..14)| {
            let net = random_net(seed + 900, n);
            let topo = TopologyScheme::GreedyDist.build(&net);
            let mut rng = StdRng::seed_from_u64(seed);
            let windows: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let lo = rng.random_range(80.0..200.0);
                    (lo, lo + rng.random_range(0.5..40.0))
                })
                .collect();
            let ust = ust_dme(&net, &topo, &windows, &opts_pl());
            prop_assert!(ust.tree.validate().is_ok());
            prop_assert!(ust.launch_window.1 + 1e-9 >= ust.launch_window.0);
            let launch = (ust.launch_window.0 + ust.launch_window.1) / 2.0;
            let v = window_violation(&ust, &windows, &DelayModel::PathLength, launch);
            prop_assert!(v <= 1e-6, "violation {}", v);
        });
    }

    #[test]
    #[should_panic(expected = "bad arrival window")]
    fn inverted_window_rejected() {
        let net = random_net(5, 3);
        let topo = TopologyScheme::GreedyDist.build(&net);
        let windows = vec![(10.0, 5.0); 3];
        let _ = ust_dme(&net, &topo, &windows, &opts_pl());
    }
}
