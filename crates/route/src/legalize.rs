//! Skew legalization of a routed tree by detour insertion.
//!
//! Given a tree with fixed geometry, a bottom-up pass restores a skew
//! bound by snaking extra wire onto the edges of *fast* subtrees. At each
//! internal node the children's delay windows are compared; children whose
//! fastest sink undercuts the slowest sink by more than the bound get
//! detour on their top edge — the highest-capacitance edge exclusive to
//! that subtree, which under the Elmore model buys the most ps per µm of
//! snake.
//!
//! This is the cheap half of CBS step 5: when the SALT tree's natural skew
//! is already close to the bound, legalizing it in place is far lighter
//! than a full DME re-embedding (which restructures geometry); when the
//! bound is stringent, the re-embedding wins. [`sllt_core`'s CBS] takes
//! whichever is lighter.

use crate::dme::DelayModel;
use sllt_tree::{ClockTree, NodeId};

/// Adds detour wire so the tree's sink-to-sink skew (under `model`) drops
/// to at most `bound`. Geometry (node positions, topology) is untouched;
/// only routed edge lengths grow. Returns the total detour added, µm.
///
/// Works bottom-up, so the bound holds at every subtree, not just
/// globally.
///
/// # Panics
///
/// Panics when `bound` is negative, or when a load pin is not a leaf
/// (normalize with [`sllt_tree::edits::sinks_to_leaves`] first) — an
/// internal sink pins its subtree's fast end and cannot be slowed by edge
/// detour.
pub fn skew_legalize(tree: &mut ClockTree, model: &DelayModel, bound: f64) -> f64 {
    skew_legalize_offsets(tree, model, bound, &[])
}

/// Like [`skew_legalize`], but sink `i` (by its `sink_index`) starts at
/// delay `offsets[i]` — the accumulated delay of the subtree it stands
/// for in a hierarchical flow. An empty slice means all-zero offsets.
///
/// # Panics
///
/// As [`skew_legalize`]; additionally panics when `offsets` is non-empty
/// but too short for some sink index.
pub fn skew_legalize_offsets(
    tree: &mut ClockTree,
    model: &DelayModel,
    bound: f64,
    offsets: &[f64],
) -> f64 {
    let intervals: Vec<(f64, f64)> = offsets.iter().map(|&o| (o, o)).collect();
    skew_legalize_intervals(tree, model, bound, &intervals)
}

/// Like [`skew_legalize_offsets`], but each sink carries a delay
/// *interval* `(fastest, slowest)`; an empty slice means all-zero.
///
/// # Panics
///
/// As [`skew_legalize`].
pub fn skew_legalize_intervals(
    tree: &mut ClockTree,
    model: &DelayModel,
    bound: f64,
    intervals: &[(f64, f64)],
) -> f64 {
    assert!(bound >= 0.0, "negative skew bound");
    let n_slots = tree.path_lengths().len();
    // Per-node downstream cap and delay interval measured from the node.
    let mut cap = vec![0.0f64; n_slots];
    let mut lo = vec![0.0f64; n_slots];
    let mut hi = vec![0.0f64; n_slots];
    let mut added = 0.0;

    let order = tree.topo_order();
    for &v in order.iter().rev() {
        let node = tree.node(v);
        if let sllt_tree::NodeKind::Sink { sink_index, .. } = node.kind {
            assert!(
                node.children().is_empty(),
                "internal load pin {v}: normalize the tree before legalizing"
            );
            cap[v.index()] = node.cap_ff();
            if !intervals.is_empty() {
                let (l, h) = intervals[sink_index];
                lo[v.index()] = l;
                hi[v.index()] = h;
            }
            continue;
        }
        let children: Vec<NodeId> = node.children().to_vec();
        if children.is_empty() {
            continue; // barren Steiner leaf: no sinks below, nothing to do
        }
        // Children with sinks below them, with their windows as seen
        // from `v` (edge delay included).
        let mut windows: Vec<(NodeId, f64, f64)> = Vec::with_capacity(children.len());
        for &c in &children {
            if !has_sink_below(tree, c) {
                continue;
            }
            let e = tree.node(c).edge_len();
            let d = wire_delay(model, e, cap[c.index()]);
            windows.push((c, lo[c.index()] + d, hi[c.index()] + d));
        }
        if windows.is_empty() {
            continue;
        }
        let slowest = windows.iter().fold(f64::NEG_INFINITY, |m, w| m.max(w.2));
        let mut v_lo = f64::INFINITY;
        let mut v_hi = f64::NEG_INFINITY;
        for (c, w_lo, w_hi) in windows {
            let deficit = (slowest - bound) - w_lo;
            let (w_lo, w_hi) = if deficit > 1e-12 {
                // Slow this child: grow its edge until its fast end meets
                // the window. Delay is increasing in the extra length.
                let base = tree.node(c).edge_len();
                let base_delay = wire_delay(model, base, cap[c.index()]);
                let extra = solve_extra(model, base, cap[c.index()], base_delay + deficit);
                tree.add_detour(c, extra);
                added += extra;
                let d = wire_delay(model, base + extra, cap[c.index()]);
                (lo[c.index()] + d, hi[c.index()] + d)
            } else {
                (w_lo, w_hi)
            };
            v_lo = v_lo.min(w_lo);
            v_hi = v_hi.max(w_hi);
        }
        lo[v.index()] = v_lo;
        hi[v.index()] = v_hi;
        // Accumulate capacitance (wire + subtrees) for the parent.
        cap[v.index()] = tree.node(v).cap_ff()
            + children
                .iter()
                .map(|&c| cap[c.index()] + wire_cap(model, tree.node(c).edge_len()))
                .sum::<f64>();
    }
    added
}

fn has_sink_below(tree: &ClockTree, v: NodeId) -> bool {
    if tree.node(v).kind.is_sink() {
        return true;
    }
    tree.node(v).children().any(|c| has_sink_below(tree, c))
}

fn wire_delay(model: &DelayModel, e: f64, cap: f64) -> f64 {
    match model {
        DelayModel::PathLength => e,
        DelayModel::Elmore(t) => t.wire_delay(e, cap),
    }
}

fn wire_cap(model: &DelayModel, e: f64) -> f64 {
    match model {
        DelayModel::PathLength => 0.0,
        DelayModel::Elmore(t) => t.wire_cap(e),
    }
}

/// Smallest `extra ≥ 0` with `wire_delay(base + extra, cap) ≥ target`.
fn solve_extra(model: &DelayModel, base: f64, cap: f64, target: f64) -> f64 {
    let f = |extra: f64| wire_delay(model, base + extra, cap) - target;
    let mut hi = 1.0;
    let mut guard = 0;
    while f(hi) < 0.0 {
        hi *= 2.0;
        guard += 1;
        assert!(guard < 60, "legalization detour search diverged");
    }
    let mut lo = 0.0;
    for _ in 0..70 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dme::skew_of;
    use crate::salt::salt;
    use sllt_geom::Point;
    use sllt_rng::prelude::*;
    use sllt_timing::Technology;
    use sllt_tree::{ClockNet, Sink};

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn legalize_meets_pathlength_bounds() {
        for seed in 0..10 {
            let net = random_net(seed, 20);
            for bound in [0.0, 10.0, 50.0] {
                let mut t = salt(&net, 0.2);
                sllt_tree::edits::sinks_to_leaves(&mut t);
                let added = skew_legalize(&mut t, &DelayModel::PathLength, bound);
                assert!(added >= 0.0);
                t.validate().unwrap();
                let skew = skew_of(&t, &DelayModel::PathLength);
                assert!(
                    skew <= bound + 1e-6,
                    "seed {seed} bound {bound}: skew {skew}"
                );
            }
        }
    }

    #[test]
    fn legalize_meets_elmore_bounds() {
        let model = DelayModel::Elmore(Technology::n28());
        for seed in 0..10 {
            let net = random_net(seed + 40, 25);
            for bound in [0.5, 2.0, 5.0] {
                let mut t = salt(&net, 0.2);
                sllt_tree::edits::sinks_to_leaves(&mut t);
                skew_legalize(&mut t, &model, bound);
                t.validate().unwrap();
                let skew = skew_of(&t, &model);
                assert!(
                    skew <= bound + 1e-6,
                    "seed {seed} bound {bound}: skew {skew}"
                );
            }
        }
    }

    #[test]
    fn already_legal_trees_are_untouched() {
        let model = DelayModel::Elmore(Technology::n28());
        let net = random_net(3, 20);
        let mut t = salt(&net, 0.2);
        sllt_tree::edits::sinks_to_leaves(&mut t);
        let natural = skew_of(&t, &model);
        let before = t.wirelength();
        let added = skew_legalize(&mut t, &model, natural + 1.0);
        assert_eq!(added, 0.0);
        assert!((t.wirelength() - before).abs() < 1e-12);
    }

    #[test]
    fn detour_lands_on_high_cap_edges() {
        // A fast two-sink cluster vs a slow far sink: the detour should go
        // on the cluster's shared top edge, not on the two leaf edges.
        let tech = Technology::n28();
        let model = DelayModel::Elmore(tech);
        let mut t = sllt_tree::ClockTree::new(Point::ORIGIN);
        let top = t.add_steiner(t.root(), Point::new(5.0, 0.0));
        let s1 = t.add_sink(top, Point::new(6.0, 1.0), 1.0);
        let s2 = t.add_sink(top, Point::new(6.0, -1.0), 1.0);
        let far = t.add_sink(t.root(), Point::new(80.0, 0.0), 1.0);
        skew_legalize(&mut t, &model, 0.5);
        let skew = skew_of(&t, &model);
        assert!(skew <= 0.5 + 1e-6, "skew {skew}");
        // Leaf edges untouched; the shared top edge carries the snake.
        assert!((t.node(s1).edge_len() - 2.0).abs() < 1e-9);
        assert!((t.node(s2).edge_len() - 2.0).abs() < 1e-9);
        assert!(t.node(top).edge_len() > 5.0);
        assert!((t.node(far).edge_len() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn tighter_bounds_cost_more_detour() {
        let model = DelayModel::Elmore(Technology::n28());
        let net = random_net(8, 25);
        let base = {
            let mut t = salt(&net, 0.2);
            sllt_tree::edits::sinks_to_leaves(&mut t);
            t
        };
        let mut added = Vec::new();
        for bound in [5.0, 2.0, 0.5] {
            let mut t = base.clone();
            added.push(skew_legalize(&mut t, &model, bound));
        }
        assert!(added[0] <= added[1] + 1e-9);
        assert!(added[1] <= added[2] + 1e-9);
    }

    #[test]
    #[should_panic(expected = "normalize the tree")]
    fn internal_sinks_rejected() {
        let mut t = sllt_tree::ClockTree::new(Point::ORIGIN);
        let s = t.add_sink(t.root(), Point::new(5.0, 0.0), 1.0);
        t.add_sink(s, Point::new(10.0, 0.0), 1.0);
        skew_legalize(&mut t, &DelayModel::PathLength, 1.0);
    }
}
