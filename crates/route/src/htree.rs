//! Symmetric H-trees.
//!
//! The textbook symmetric topology: a tap point at the centre of the sink
//! bounding box, recursively split into halves with taps at the half
//! centres. Structure, not sink positions, balances the paths — which is
//! why the H-tree controls skew well but pays heavily in wirelength and
//! shallowness (paper Table 1: α 2.00, β 1.32, γ 1.03).

use sllt_geom::{Point, Rect};
use sllt_tree::{ClockNet, ClockTree, NodeId, Sink};

/// Builds an H-tree over the net. Recursion stops when a region holds at
/// most `leaf_size` sinks; those attach directly to the local tap.
///
/// # Panics
///
/// Panics when the net is sinkless or `leaf_size` is zero.
pub fn htree(net: &ClockNet, leaf_size: usize) -> ClockTree {
    assert!(!net.is_empty(), "H-tree over a sinkless net");
    assert!(leaf_size > 0, "leaf_size must be positive");
    let mut tree = ClockTree::new(net.source);
    let sinks: Vec<(usize, Sink)> = net.sinks.iter().copied().enumerate().collect();
    let region = Rect::bounding(&net.positions()).expect("nonempty");
    let top_tap = tree.add_steiner(tree.root(), region.center());
    subdivide(&mut tree, top_tap, &sinks, region, leaf_size, true);
    tree
}

fn subdivide(
    tree: &mut ClockTree,
    tap: NodeId,
    sinks: &[(usize, Sink)],
    region: Rect,
    leaf_size: usize,
    split_x: bool,
) {
    // Coincident sinks make the region zero-extent: both halves equal the
    // parent and the recursion would never terminate. Attach directly.
    let coincident = sinks.windows(2).all(|w| w[0].1.pos == w[1].1.pos);
    if sinks.len() <= leaf_size || coincident {
        for &(i, s) in sinks {
            tree.add_sink_indexed(tap, s.pos, s.cap_ff, i);
        }
        return;
    }
    let c = region.center();
    // Split the region in half along the alternating axis; child taps sit
    // at the half centres so the trunk wiring is perfectly symmetric.
    let (ra, rb) = if split_x {
        (
            Rect::new(region.lo(), Point::new(c.x, region.hi().y)),
            Rect::new(Point::new(c.x, region.lo().y), region.hi()),
        )
    } else {
        (
            Rect::new(region.lo(), Point::new(region.hi().x, c.y)),
            Rect::new(Point::new(region.lo().x, c.y), region.hi()),
        )
    };
    let (mut la, mut lb) = (Vec::new(), Vec::new());
    for &(i, s) in sinks {
        let take_a = if split_x {
            s.pos.x <= c.x
        } else {
            s.pos.y <= c.y
        };
        if take_a {
            la.push((i, s));
        } else {
            lb.push((i, s));
        }
    }
    for (half_sinks, half_region) in [(la, ra), (lb, rb)] {
        if half_sinks.is_empty() {
            continue;
        }
        let child = tree.add_steiner(tap, half_region.center());
        subdivide(tree, child, &half_sinks, half_region, leaf_size, !split_x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_rng::prelude::*;
    use sllt_tree::{metrics::path_length_skew, SlltMetrics};

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn covers_all_sinks() {
        let net = random_net(1, 33);
        let t = htree(&net, 2);
        assert_eq!(t.sinks().len(), 33);
        t.validate().unwrap();
    }

    #[test]
    fn four_fold_symmetric_sinks_have_zero_skew() {
        // Sinks at (±20, ±20) with the source at the centre: every
        // quadrant is congruent, so all four paths are identical.
        let sinks: Vec<Sink> = [(-20.0, -20.0), (-20.0, 20.0), (20.0, -20.0), (20.0, 20.0)]
            .into_iter()
            .map(|(x, y)| Sink::new(Point::new(x, y), 1.0))
            .collect();
        let net = ClockNet::new(Point::new(0.0, 0.0), sinks);
        let t = htree(&net, 1);
        let skew = path_length_skew(&t);
        assert!(skew < 1e-6, "symmetric H-tree skew {skew}");
    }

    #[test]
    fn grid_skew_is_modest_relative_to_latency() {
        // On a regular grid the structural trunk is symmetric; only the
        // final sink attach differs. Skew stays a small fraction of the
        // maximum path (paper Table 1: H-tree γ = 1.03).
        let sinks: Vec<Sink> = (0..16)
            .map(|i| {
                Sink::new(
                    Point::new((i % 4) as f64 * 20.0, (i / 4) as f64 * 20.0),
                    1.0,
                )
            })
            .collect();
        let net = ClockNet::new(Point::new(30.0, 30.0), sinks);
        let t = htree(&net, 1);
        let m = sllt_tree::SlltMetrics::compute(&t, crate::rsmt::rsmt_wirelength(&net));
        assert!(m.skewness < 1.25, "grid H-tree γ = {}", m.skewness);
    }

    #[test]
    fn htree_is_heavier_than_rsmt() {
        // The symmetric trunk always costs more wire than a Steiner tree.
        let net = random_net(2, 30);
        let h = htree(&net, 2);
        let r = crate::rsmt::rsmt(&net);
        assert!(h.wirelength() > r.wirelength());
        let m = SlltMetrics::compute(&h, r.wirelength());
        assert!(m.lightness > 1.0);
    }

    #[test]
    fn clustered_sinks_skip_empty_halves() {
        // All sinks in one corner: recursion must not spin on empty halves.
        let sinks: Vec<Sink> = (0..8)
            .map(|i| Sink::new(Point::new(i as f64 * 0.5, 0.0), 1.0))
            .collect();
        let net = ClockNet::new(Point::ORIGIN, sinks);
        let t = htree(&net, 1);
        assert_eq!(t.sinks().len(), 8);
        t.validate().unwrap();
    }

    #[test]
    fn coincident_sinks_terminate() {
        // Zero-extent region: splitting makes no progress, so the sinks
        // must attach directly instead of recursing forever.
        let sinks: Vec<Sink> = (0..16)
            .map(|_| Sink::new(Point::new(5.0, 5.0), 1.0))
            .collect();
        let net = ClockNet::new(Point::ORIGIN, sinks);
        let t = htree(&net, 2);
        assert_eq!(t.sinks().len(), 16);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn empty_net_rejected() {
        let net = ClockNet::new(Point::ORIGIN, vec![]);
        let _ = htree(&net, 2);
    }
}
