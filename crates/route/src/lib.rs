//! Routing topology generators for clock tree synthesis.
//!
//! This crate implements every tree family the SLLT paper compares
//! (Fig. 1, Table 1):
//!
//! * [`rsmt`](mod@rsmt) — a rectilinear Steiner minimum tree heuristic (the paper
//!   uses FLUTE; FLUTE's lookup tables are not redistributable, so we use
//!   a Prim MST plus median-point Steinerization that lands within a few
//!   percent of FLUTE on CTS-sized nets — see `DESIGN.md`),
//! * [`salt`](mod@salt) — the rectilinear Steiner shallow-light tree (R-SALT,
//!   Chen & Young, TCAD'19): guarantees shallowness `α ≤ 1 + ε`,
//! * [`htree`](mod@htree) / [`ghtree`](mod@ghtree) — the symmetric H-tree and the generalized
//!   H-tree with per-level branching factors (Han–Kahng–Li, TCAD'18),
//! * [`dme`](mod@dme) — deferred-merge embedding: zero-skew (ZST-DME) and
//!   bounded-skew (BST-DME) trees over an abstract merge
//!   [`Topology`](sllt_tree::Topology),
//! * [`topogen`] — the paper's four candidate merge orders: *Greedy-Dist*,
//!   *Greedy-Merge*, *Bi-Partition* and *Bi-Cluster* (§2.3 footnote),
//! * [`ust`](mod@ust) — useful-skew trees (UST-DME, Tsao–Koh): per-sink
//!   arrival windows instead of a single global bound.
//!
//! All generators consume a [`ClockNet`] and produce a
//! [`sllt_tree::ClockTree`] whose sinks carry the net's sink indices.
//!
//! # Example
//!
//! ```
//! use sllt_geom::Point;
//! use sllt_tree::{ClockNet, Sink, SlltMetrics};
//! use sllt_route::{rsmt, salt, dme, topogen};
//!
//! let net = ClockNet::new(
//!     Point::new(0.0, 0.0),
//!     (0..8).map(|i| Sink::new(Point::new((i % 4) as f64 * 10.0, (i / 4) as f64 * 10.0), 1.0)).collect(),
//! );
//! let light = rsmt::rsmt(&net);
//! let shallow = salt::salt(&net, 0.1);
//! let topo = topogen::greedy_dist(&net);
//! let skew_controlled = dme::bst_dme(&net, &topo, 5.0);
//!
//! let ref_wl = light.wirelength();
//! let m = SlltMetrics::compute(&shallow, ref_wl);
//! assert!(m.shallowness <= 1.1 + 1e-6);
//! ```

pub mod dme;
pub mod ghtree;
pub mod htree;
pub mod legalize;
pub mod nnpair;
pub mod rmst_fast;
pub mod rsmt;
pub mod salt;
pub mod topogen;
pub mod ust;

pub use sllt_tree::{ClockNet, Sink};

pub use dme::{
    bst_dme, bst_dme_elmore, dme, dme_intervals, dme_offsets, skew_of, try_dme_intervals, zst_dme,
    DelayModel, DmeError, DmeOptions,
};
pub use ghtree::ghtree;
pub use htree::htree;
pub use legalize::{skew_legalize, skew_legalize_intervals, skew_legalize_offsets};
pub use rmst_fast::rmst_octant;
pub use rsmt::{rmst, rsmt};
pub use salt::{salt, salt_from_tree};
pub use topogen::{
    bi_cluster, bi_partition, greedy_dist, greedy_dist_naive, greedy_merge, greedy_merge_naive,
    TopologyScheme,
};
pub use ust::{ust_dme, window_violation, UstTree};
