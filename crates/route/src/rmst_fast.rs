//! Scalable rectilinear MST via the octant nearest-neighbour graph.
//!
//! Guibas–Stolfi: the L1 minimum spanning tree is a subgraph of the graph
//! connecting every point to its nearest neighbour in each of the eight
//! 45° octants around it. That graph has at most `8n` edges, so Kruskal
//! over it yields the exact RMST while the quadratic Prim scan is only
//! needed as a reference.
//!
//! Octant nearest neighbours are found with a uniform grid and expanding
//! ring search — near-linear on the placement-like distributions this
//! workspace routes, and never incorrect: the search only stops once the
//! ring lower bound exceeds every unresolved octant's current best.

use sllt_geom::{Point, Rect};
use sllt_tree::{ClockNet, ClockTree};

/// Builds the rectilinear *spanning* tree rooted at the net source using
/// the octant-graph construction. Produces the same total wirelength as
/// the quadratic Prim (`crate::rsmt::rmst`) — the MST weight is unique —
/// at near-linear cost.
///
/// # Panics
///
/// Panics when the net has no sinks... no: an empty net yields the bare
/// source, matching [`crate::rsmt::rmst`].
pub fn rmst_octant(net: &ClockNet) -> ClockTree {
    let n = net.sinks.len();
    let mut tree = ClockTree::new(net.source);
    if n == 0 {
        return tree;
    }
    let mut pts = Vec::with_capacity(n + 1);
    pts.push(net.source);
    pts.extend(net.sinks.iter().map(|s| s.pos));

    // Candidate edges: octant nearest neighbours.
    let mut edges = octant_edges(&pts);
    edges.sort_by(|a, b| a.2.total_cmp(&b.2));

    // Kruskal.
    let mut dsu = Dsu::new(pts.len());
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); pts.len()];
    let mut taken = 0;
    for &(a, b, _) in &edges {
        if dsu.union(a, b) {
            adj[a].push(b);
            adj[b].push(a);
            taken += 1;
            if taken == pts.len() - 1 {
                break;
            }
        }
    }
    assert_eq!(
        taken,
        pts.len() - 1,
        "octant graph must be connected (it contains the MST)"
    );

    // Root at the source and materialize.
    let mut node_of = vec![None; pts.len()];
    node_of[0] = Some(tree.root());
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(v) = queue.pop_front() {
        let parent = node_of[v].expect("visited");
        for &u in &adj[v] {
            if node_of[u].is_none() {
                let sink = &net.sinks[u - 1];
                node_of[u] = Some(tree.add_sink_indexed(parent, sink.pos, sink.cap_ff, u - 1));
                queue.push_back(u);
            }
        }
    }
    tree
}

/// Octant index of `q` relative to `p` (0..8). Octants partition the
/// plane by the signs of `dx ± dy` and `dx`, `dy`; any consistent
/// partition works for the MST property.
fn octant(p: Point, q: Point) -> usize {
    let (dx, dy) = (q.x - p.x, q.y - p.y);
    let right = dx >= 0.0;
    let up = dy >= 0.0;
    let steep = dy.abs() > dx.abs();
    match (right, up, steep) {
        (true, true, false) => 0,
        (true, true, true) => 1,
        (false, true, true) => 2,
        (false, true, false) => 3,
        (false, false, false) => 4,
        (false, false, true) => 5,
        (true, false, true) => 6,
        (true, false, false) => 7,
    }
}

/// For every point, its nearest neighbour in each octant (when any), as
/// `(a, b, dist)` edges.
fn octant_edges(pts: &[Point]) -> Vec<(usize, usize, f64)> {
    let n = pts.len();
    let bbox = Rect::bounding(pts).expect("nonempty");
    let side = bbox.width().max(bbox.height()).max(1e-9);
    let cells_per_axis = ((n as f64).sqrt().ceil() as usize).clamp(1, 1024);
    let cell = side / cells_per_axis as f64;

    let cell_of = |p: Point| -> (usize, usize) {
        let cx = (((p.x - bbox.lo().x) / cell) as usize).min(cells_per_axis - 1);
        let cy = (((p.y - bbox.lo().y) / cell) as usize).min(cells_per_axis - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells_per_axis * cells_per_axis];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * cells_per_axis + cx].push(i);
    }

    let mut edges = Vec::with_capacity(8 * n);
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        let mut best = [(usize::MAX, f64::INFINITY); 8];
        let mut ring = 0usize;
        loop {
            // Lower bound on L1 distance to any point in ring `ring`.
            let ring_lb = if ring == 0 {
                0.0
            } else {
                (ring - 1) as f64 * cell
            };
            let unresolved = best.iter().any(|&(_, d)| ring_lb < d);
            if !unresolved && ring > 0 {
                break;
            }
            let mut any_cell = false;
            let r = ring as isize;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx.abs().max(dy.abs()) != r {
                        continue; // ring boundary only
                    }
                    let (x, y) = (cx as isize + dx, cy as isize + dy);
                    if x < 0
                        || y < 0
                        || x >= cells_per_axis as isize
                        || y >= cells_per_axis as isize
                    {
                        continue;
                    }
                    any_cell = true;
                    for &j in &grid[y as usize * cells_per_axis + x as usize] {
                        if j == i {
                            continue;
                        }
                        let d = p.dist(pts[j]);
                        let o = octant(p, pts[j]);
                        // Deterministic tie-break on index keeps runs
                        // reproducible.
                        if d < best[o].1 || (d == best[o].1 && j < best[o].0) {
                            best[o] = (j, d);
                        }
                    }
                }
            }
            if !any_cell && ring > cells_per_axis {
                break; // searched past the whole grid
            }
            ring += 1;
        }
        for &(j, d) in &best {
            if j != usize::MAX {
                edges.push((i.min(j), i.max(j), d));
            }
        }
    }
    edges.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    edges
}

struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsmt::rmst;
    use sllt_rng::prelude::*;
    use sllt_tree::Sink;

    fn random_net(seed: u64, n: usize, side: f64) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn octant_partition_covers_the_plane() {
        let p = Point::ORIGIN;
        let mut seen = [false; 8];
        for k in 0..64 {
            let ang = k as f64 * std::f64::consts::TAU / 64.0 + 0.01;
            let q = Point::new(ang.cos() * 10.0, ang.sin() * 10.0);
            seen[octant(p, q)] = true;
        }
        assert!(seen.iter().all(|&s| s), "octants {seen:?}");
    }

    #[test]
    fn matches_prim_weight_on_random_sets() {
        for seed in 0..25 {
            let net = random_net(seed, 60, 75.0);
            let a = rmst(&net).wirelength();
            let b = rmst_octant(&net).wirelength();
            assert!((a - b).abs() < 1e-6, "seed {seed}: prim {a} vs octant {b}");
        }
    }

    #[test]
    fn matches_prim_weight_on_clustered_sets() {
        // Register-bank-like blobs: the grid is very non-uniform here.
        let mut rng = StdRng::seed_from_u64(77);
        let mut sinks = Vec::new();
        for _ in 0..6 {
            let c = Point::new(rng.random_range(0.0..400.0), rng.random_range(0.0..400.0));
            for _ in 0..40 {
                sinks.push(Sink::new(
                    Point::new(
                        c.x + rng.random_range(-5.0..5.0),
                        c.y + rng.random_range(-5.0..5.0),
                    ),
                    1.0,
                ));
            }
        }
        let net = ClockNet::new(Point::ORIGIN, sinks);
        let a = rmst(&net).wirelength();
        let b = rmst_octant(&net).wirelength();
        assert!((a - b).abs() < 1e-6, "prim {a} vs octant {b}");
    }

    #[test]
    fn handles_duplicates_and_collinear_points() {
        let p = Point::new(5.0, 5.0);
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(p, 1.0),
                Sink::new(p, 1.0),
                Sink::new(Point::new(10.0, 5.0), 1.0),
                Sink::new(Point::new(15.0, 5.0), 1.0),
            ],
        );
        let t = rmst_octant(&net);
        t.validate().unwrap();
        assert_eq!(t.sinks().len(), 4);
        let a = rmst(&net).wirelength();
        assert!((t.wirelength() - a).abs() < 1e-6);
    }

    #[test]
    fn empty_and_single_nets() {
        let empty = ClockNet::new(Point::ORIGIN, vec![]);
        assert!(rmst_octant(&empty).is_empty());
        let one = ClockNet::new(Point::ORIGIN, vec![Sink::new(Point::new(3.0, 4.0), 1.0)]);
        assert!((rmst_octant(&one).wirelength() - 7.0).abs() < 1e-9);
    }

    #[test]
    #[cfg(feature = "proptest")]
    fn proptest_weight_equivalence() {
        use proptest::prelude::*;
        proptest!(|(seed in 0u64..60, n in 1usize..40)| {
            let net = random_net(seed + 300, n, 100.0);
            let a = rmst(&net).wirelength();
            let b = rmst_octant(&net).wirelength();
            prop_assert!((a - b).abs() < 1e-6, "prim {} vs octant {}", a, b);
        });
    }
}
