//! Generalized H-trees.
//!
//! Han–Kahng–Li (TCAD'18) extend the H-tree with a per-level *branching
//! factor*: instead of always splitting a region in two, each level may
//! fan out to `k` subregions. We pick `k` level-by-level with a one-step
//! lookahead cost (trunk wire to the `k` cluster taps plus an estimate of
//! the remaining wire inside each cluster), which recovers the paper's
//! observed behaviour: better α/β than the H-tree at slightly worse γ
//! (Table 1: GH-tree α 1.60, β 1.13, γ 1.18).

use sllt_geom::{centroid, Point, Rect};
use sllt_tree::{ClockNet, ClockTree, NodeId, Sink};

/// Branching factors the per-level search considers.
const CANDIDATE_K: [usize; 4] = [2, 3, 4, 5];

/// Builds a generalized H-tree. Regions with at most `leaf_size` sinks
/// attach them directly to the local tap.
///
/// # Panics
///
/// Panics when the net is sinkless or `leaf_size` is zero.
pub fn ghtree(net: &ClockNet, leaf_size: usize) -> ClockTree {
    assert!(!net.is_empty(), "GH-tree over a sinkless net");
    assert!(leaf_size > 0, "leaf_size must be positive");
    let mut tree = ClockTree::new(net.source);
    let sinks: Vec<(usize, Sink)> = net.sinks.iter().copied().enumerate().collect();
    let tap_pos = centroid(&net.positions()).expect("nonempty");
    let tap = tree.add_steiner(tree.root(), tap_pos);
    expand(&mut tree, tap, &sinks, leaf_size);
    tree
}

fn expand(tree: &mut ClockTree, tap: NodeId, sinks: &[(usize, Sink)], leaf_size: usize) {
    if sinks.len() <= leaf_size {
        for &(i, s) in sinks {
            tree.add_sink_indexed(tap, s.pos, s.cap_ff, i);
        }
        return;
    }
    let tap_pos = tree.node(tap).pos;
    // Pick the branching factor with the cheapest one-step lookahead.
    type Clusters = Vec<Vec<(usize, Sink)>>;
    let mut best: Option<(f64, Clusters)> = None;
    for k in CANDIDATE_K {
        if k >= sinks.len() {
            break;
        }
        let clusters = kmeans(sinks, k);
        let mut cost = 0.0;
        for cl in &clusters {
            let pts: Vec<Point> = cl.iter().map(|&(_, s)| s.pos).collect();
            let c = centroid(&pts).expect("cluster nonempty");
            // Trunk wire to the tap + bbox half-perimeter as the estimate
            // of the wire still needed inside the cluster.
            cost += tap_pos.dist(c) + Rect::bounding(&pts).expect("nonempty").hpwl();
        }
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, clusters));
        }
    }
    // No progress means the recursion would never terminate: fewer sinks
    // than the smallest branching factor, or k-means collapsed to a single
    // cluster (all sinks coincident). Attach directly in both cases.
    let Some((_, clusters)) = best.filter(|(_, c)| c.len() > 1) else {
        for &(i, s) in sinks {
            tree.add_sink_indexed(tap, s.pos, s.cap_ff, i);
        }
        return;
    };
    for cl in clusters {
        if cl.is_empty() {
            continue;
        }
        let pts: Vec<Point> = cl.iter().map(|&(_, s)| s.pos).collect();
        let child = tree.add_steiner(tap, centroid(&pts).expect("nonempty"));
        expand(tree, child, &cl, leaf_size);
    }
}

/// Small deterministic Lloyd k-means over sink positions (the heavyweight
/// balanced variant with min-cost-flow lives in `sllt-partition`; a plain
/// one is enough for GH-tree taps).
fn kmeans(sinks: &[(usize, Sink)], k: usize) -> Vec<Vec<(usize, Sink)>> {
    debug_assert!(k < sinks.len());
    // Seed with evenly strided members of an x-sorted order.
    let mut order: Vec<usize> = (0..sinks.len()).collect();
    order.sort_by(|&a, &b| {
        (sinks[a].1.pos.x + sinks[a].1.pos.y).total_cmp(&(sinks[b].1.pos.x + sinks[b].1.pos.y))
    });
    let mut centers: Vec<Point> = (0..k)
        .map(|j| sinks[order[j * sinks.len() / k]].1.pos)
        .collect();
    let mut assign = vec![0usize; sinks.len()];
    for _ in 0..15 {
        let mut changed = false;
        for (si, &(_, s)) in sinks.iter().enumerate() {
            let j = (0..k)
                .min_by(|&a, &b| {
                    s.pos
                        .dist_l2_sq(centers[a])
                        .total_cmp(&s.pos.dist_l2_sq(centers[b]))
                })
                .expect("k > 0");
            if assign[si] != j {
                assign[si] = j;
                changed = true;
            }
        }
        let mut sums = vec![Point::ORIGIN; k];
        let mut counts = vec![0usize; k];
        for (si, &(_, s)) in sinks.iter().enumerate() {
            sums[assign[si]] = sums[assign[si]] + s.pos;
            counts[assign[si]] += 1;
        }
        for j in 0..k {
            if counts[j] > 0 {
                centers[j] = sums[j] / counts[j] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = vec![Vec::new(); k];
    for (si, &entry) in sinks.iter().enumerate() {
        out[assign[si]].push(entry);
    }
    out.retain(|c| !c.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_rng::prelude::*;
    use sllt_tree::SlltMetrics;

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn covers_all_sinks() {
        for seed in 0..5 {
            let net = random_net(seed, 40);
            let t = ghtree(&net, 3);
            assert_eq!(t.sinks().len(), 40);
            t.validate().unwrap();
        }
    }

    #[test]
    fn ghtree_lighter_than_htree() {
        // The adaptive branching factor is the whole point: on aggregate
        // the GH-tree spends less wire than the rigid H-tree.
        let (mut gh_total, mut h_total) = (0.0, 0.0);
        for seed in 0..10 {
            let net = random_net(seed + 10, 32);
            gh_total += ghtree(&net, 2).wirelength();
            h_total += crate::htree::htree(&net, 2).wirelength();
        }
        assert!(gh_total < h_total, "GH {gh_total} vs H {h_total}");
    }

    #[test]
    fn metrics_improve_on_htree() {
        // Source at the die corner, as in realistic top-level clock entry
        // (a centre source makes α = PL/MD blow up for sinks next to it
        // and drowns the comparison in noise).
        let mut rng = StdRng::seed_from_u64(99);
        let mut gh_mean = 0.0;
        let mut h_mean = 0.0;
        let runs = 10;
        for _ in 0..runs {
            let net = ClockNet::new(
                Point::ORIGIN,
                (0..30)
                    .map(|_| {
                        Sink::new(
                            Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                            1.0,
                        )
                    })
                    .collect(),
            );
            let ref_wl = crate::rsmt::rsmt_wirelength(&net);
            let gh = SlltMetrics::compute(&ghtree(&net, 2), ref_wl);
            let h = SlltMetrics::compute(&crate::htree::htree(&net, 2), ref_wl);
            // Lightness + max-path: the two quantities the branching
            // factor optimizes (paper Table 1: GH β 1.13 < H β 1.32).
            // Shallowness is excluded: α = PL/MD explodes for sinks that
            // happen to land next to the source and drowns the signal.
            gh_mean += gh.lightness + gh.max_path / ref_wl;
            h_mean += h.lightness + h.max_path / ref_wl;
        }
        assert!(
            gh_mean < h_mean * 1.02,
            "GH score {gh_mean} vs H score {h_mean}"
        );
    }

    #[test]
    fn tiny_nets_attach_directly() {
        let net = random_net(3, 2);
        let t = ghtree(&net, 1);
        assert_eq!(t.sinks().len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn coincident_sinks_terminate() {
        // k-means collapses to one full-size cluster here; expansion must
        // attach directly instead of recursing on the same set forever.
        let sinks: Vec<Sink> = (0..16)
            .map(|_| Sink::new(Point::new(5.0, 5.0), 1.0))
            .collect();
        let net = ClockNet::new(Point::ORIGIN, sinks);
        let t = ghtree(&net, 2);
        assert_eq!(t.sinks().len(), 16);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn empty_net_rejected() {
        let net = ClockNet::new(Point::ORIGIN, vec![]);
        let _ = ghtree(&net, 2);
    }
}
