//! Rectilinear Steiner minimum tree heuristic (FLUTE substitute).
//!
//! Two stages:
//!
//! 1. **RMST** — a Prim minimum spanning tree in the L1 metric rooted at
//!    the clock source,
//! 2. **Steinerization** — repeated best-gain insertion of median points:
//!    for a node `v` with neighbours `a, b`, the component-wise median `m`
//!    of `(v, a, b)` lies inside both `bbox(a, v)` and `bbox(b, v)`, so
//!    replacing the star `{v–a, v–b}` by `{v–m, m–a, m–b}` never lengthens
//!    any source→sink path while saving `d(v,a) + d(v,b) − d(v,m) −
//!    d(m,a) − d(m,b)` µm of wire.
//!
//! On 10–40-pin clock nets this lands within a few percent of FLUTE's
//! wirelength (the RMST is at most 1.5× the RSMT; Steinerization
//! recovers most of the gap), which is all the lightness baseline of the
//! paper needs — see `DESIGN.md` for the substitution note.

use sllt_geom::Point;
use sllt_tree::{ClockNet, ClockTree, NodeId};

/// Builds the rectilinear *spanning* tree (no Steiner points), rooted at
/// the net's source. Runs Prim in O(n²).
pub fn rmst(net: &ClockNet) -> ClockTree {
    let mut tree = ClockTree::new(net.source);
    let n = net.sinks.len();
    if n == 0 {
        return tree;
    }
    // points[0] = source, points[i+1] = sink i.
    let mut pts = Vec::with_capacity(n + 1);
    pts.push(net.source);
    pts.extend(net.sinks.iter().map(|s| s.pos));

    let mut in_tree = vec![false; n + 1];
    let mut best_dist = vec![f64::INFINITY; n + 1];
    let mut best_link = vec![0usize; n + 1];
    let mut node_of: Vec<Option<NodeId>> = vec![None; n + 1];

    in_tree[0] = true;
    node_of[0] = Some(tree.root());
    for i in 1..=n {
        best_dist[i] = pts[0].dist(pts[i]);
    }
    for _ in 0..n {
        // Pick the closest unattached point.
        let (mut pick, mut pick_d) = (usize::MAX, f64::INFINITY);
        for i in 1..=n {
            if !in_tree[i] && best_dist[i] < pick_d {
                pick = i;
                pick_d = best_dist[i];
            }
        }
        let parent = node_of[best_link[pick]].expect("link is in tree");
        let sink = &net.sinks[pick - 1];
        let id = tree.add_sink_indexed(parent, sink.pos, sink.cap_ff, pick - 1);
        node_of[pick] = Some(id);
        in_tree[pick] = true;
        for i in 1..=n {
            if !in_tree[i] {
                let d = pts[pick].dist(pts[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_link[i] = pick;
                }
            }
        }
    }
    tree
}

/// Builds a rectilinear Steiner tree: [`rmst`] followed by
/// [`steinerize`]. The result's wirelength is the workspace's lightness
/// reference (`β`-denominator).
pub fn rsmt(net: &ClockNet) -> ClockTree {
    // The quadratic Prim is fine for CTS-sized nets; whole-design nets go
    // through the octant-graph MST (same weight, near-linear).
    let mut tree = if net.len() > 512 {
        crate::rmst_fast::rmst_octant(net)
    } else {
        rmst(net)
    };
    steinerize(&mut tree);
    tree
}

/// Convenience: the RSMT wirelength of a net, µm.
pub fn rsmt_wirelength(net: &ClockNet) -> f64 {
    rsmt(net).wirelength()
}

/// Component-wise median of three points.
fn median3(a: Point, b: Point, c: Point) -> Point {
    fn med(x: f64, y: f64, z: f64) -> f64 {
        x.max(y).min(x.max(z)).min(y.max(z))
    }
    Point::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

/// Greedy median-point Steinerization. Mutates `tree` in place; returns
/// the total wirelength saved.
///
/// Only straight-distance edges are touched: an edge carrying detour wire
/// (routed length above the Manhattan distance) is left alone, since the
/// detour encodes a deliberate delay-balancing decision.
pub fn steinerize(tree: &mut ClockTree) -> f64 {
    let mut saved = 0.0;
    // Bounded passes; each pass scans all nodes and applies the best gain
    // move per node.
    for _ in 0..8 {
        let mut improved = false;
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for v in ids {
            if !tree.is_alive(v) {
                continue;
            }
            loop {
                let gain = best_median_move(tree, v);
                match gain {
                    Some((a, b, m, g)) if g > 1e-9 => {
                        apply_median_move(tree, v, a, b, m);
                        saved += g;
                        improved = true;
                    }
                    _ => break,
                }
            }
        }
        if !improved {
            break;
        }
    }
    saved
}

/// Iterated 1-median relocation of Steiner points. Each Steiner node is
/// moved to the component-wise median of its neighbours whenever that
/// shortens the adjacent wire; passes repeat to a fixed point. Returns
/// the wirelength saved.
///
/// Nodes touching detour-carrying edges are left in place — the detour
/// encodes a deliberate delay-balancing decision, and relocation would
/// discard it. Unlike [`steinerize`], relocation may *lengthen*
/// individual source→sink paths (while shortening total wire), so
/// shallowness-sensitive callers must re-enforce their budget afterwards.
pub fn relocate_steiner(tree: &mut ClockTree) -> f64 {
    fn median_of(pts: &[Point]) -> Point {
        let mut xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let mut ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        xs.sort_by(f64::total_cmp);
        ys.sort_by(f64::total_cmp);
        // Lower median: exact optimum for odd counts, optimal-corner for
        // even ones.
        Point::new(xs[(xs.len() - 1) / 2], ys[(ys.len() - 1) / 2])
    }
    let mut saved = 0.0;
    for _ in 0..10 {
        let mut improved = false;
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for v in ids {
            if !tree.is_alive(v) || !tree.node(v).kind.is_steiner() {
                continue;
            }
            let node = tree.node(v);
            let pv = node.pos;
            let mut nbr_pos = Vec::new();
            let mut straight = true;
            if let Some(p) = node.parent() {
                straight &= node.edge_len() <= tree.node(p).pos.dist(pv) + 1e-9;
                nbr_pos.push(tree.node(p).pos);
            }
            for c in node.children() {
                straight &= tree.node(c).edge_len() <= tree.node(c).pos.dist(pv) + 1e-9;
                nbr_pos.push(tree.node(c).pos);
            }
            if !straight || nbr_pos.len() < 2 {
                continue;
            }
            let m = median_of(&nbr_pos);
            if m.approx_eq(pv) {
                continue;
            }
            let before: f64 = nbr_pos.iter().map(|&q| pv.dist(q)).sum();
            let after: f64 = nbr_pos.iter().map(|&q| m.dist(q)).sum();
            if after + 1e-9 < before {
                tree.move_node(v, m);
                saved += before - after;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    saved
}

/// Finds the best median insertion around `v`: a pair of its straight
/// neighbour edges and the median point, with the wirelength gain.
fn best_median_move(tree: &ClockTree, v: NodeId) -> Option<(NodeId, NodeId, Point, f64)> {
    let node = tree.node(v);
    let pv = node.pos;
    // Straight (detour-free) neighbours only.
    let mut nbrs: Vec<NodeId> = Vec::new();
    if let Some(p) = node.parent() {
        if node.edge_len() <= tree.node(p).pos.dist(pv) + 1e-9 {
            nbrs.push(p);
        }
    }
    for c in node.children() {
        if tree.node(c).edge_len() <= tree.node(c).pos.dist(pv) + 1e-9 {
            nbrs.push(c);
        }
    }
    let mut best: Option<(NodeId, NodeId, Point, f64)> = None;
    for i in 0..nbrs.len() {
        for j in (i + 1)..nbrs.len() {
            let (a, b) = (nbrs[i], nbrs[j]);
            let (pa, pb) = (tree.node(a).pos, tree.node(b).pos);
            let m = median3(pv, pa, pb);
            if m.approx_eq(pv) || m.approx_eq(pa) || m.approx_eq(pb) {
                continue;
            }
            let g = pv.dist(pa) + pv.dist(pb) - (pv.dist(m) + m.dist(pa) + m.dist(pb));
            if g > best.map_or(0.0, |(_, _, _, bg)| bg) {
                best = Some((a, b, m, g));
            }
        }
    }
    best
}

/// Rewires the star `{v–a, v–b}` through a new Steiner node at `m`.
fn apply_median_move(tree: &mut ClockTree, v: NodeId, a: NodeId, b: NodeId, m: Point) {
    let parent = tree.node(v).parent();
    if parent == Some(a) {
        // a is v's parent: a → m → {v, b}.
        let s = tree.add_steiner(a, m);
        tree.reparent(v, s);
        tree.reparent(b, s);
    } else if parent == Some(b) {
        let s = tree.add_steiner(b, m);
        tree.reparent(v, s);
        tree.reparent(a, s);
    } else {
        // Both are children: v → m → {a, b}.
        let s = tree.add_steiner(v, m);
        tree.reparent(a, s);
        tree.reparent(b, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_rng::prelude::*;
    use sllt_tree::Sink;

    fn random_net(seed: u64, n: usize, side: f64) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn median3_is_in_all_pair_boxes() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 2.0);
        let c = Point::new(4.0, 8.0);
        let m = median3(a, b, c);
        assert_eq!(m, Point::new(4.0, 2.0));
        // Lies inside bbox of every pair: distances decompose exactly.
        assert!((a.dist(m) + m.dist(b) - a.dist(b)).abs() < 1e-12);
        assert!((a.dist(m) + m.dist(c) - a.dist(c)).abs() < 1e-12);
        assert!((b.dist(m) + m.dist(c) - b.dist(c)).abs() < 1e-12);
    }

    #[test]
    fn rmst_spans_all_sinks() {
        let net = random_net(1, 20, 75.0);
        let t = rmst(&net);
        assert_eq!(t.sinks().len(), 20);
        t.validate().unwrap();
    }

    #[test]
    fn rmst_of_empty_net_is_bare_source() {
        let net = ClockNet::new(Point::ORIGIN, vec![]);
        assert!(rmst(&net).is_empty());
    }

    #[test]
    fn classic_l_corner_gains_a_steiner_point() {
        // Source at origin; sinks at (10,0) and (10,10): the RMST chains
        // them (WL 20); the RSMT is identical here. But sinks at (8, 4)
        // and (8, -4) from origin: MST = 8+4 + 8 (chain) vs Steiner at
        // (8, 0): 8 + 4 + 4 = 16.
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(8.0, 4.0), 1.0),
                Sink::new(Point::new(8.0, -4.0), 1.0),
            ],
        );
        let mst_wl = rmst(&net).wirelength();
        let t = rsmt(&net);
        assert!((mst_wl - 20.0).abs() < 1e-9);
        assert!(
            (t.wirelength() - 16.0).abs() < 1e-9,
            "got {}",
            t.wirelength()
        );
        t.validate().unwrap();
    }

    #[test]
    fn steinerization_never_hurts_and_respects_validity() {
        for seed in 0..20 {
            let net = random_net(seed, 25, 75.0);
            let before = rmst(&net).wirelength();
            let t = rsmt(&net);
            t.validate().unwrap();
            assert!(t.wirelength() <= before + 1e-9);
            assert_eq!(t.sinks().len(), 25);
        }
    }

    #[test]
    fn steinerization_never_lengthens_paths() {
        for seed in 0..10 {
            let net = random_net(seed + 100, 20, 75.0);
            let base = rmst(&net);
            let pl_before = base.path_lengths();
            let sink_pl_before: Vec<(usize, f64)> = base
                .sinks()
                .iter()
                .map(|&id| match base.node(id).kind {
                    sllt_tree::NodeKind::Sink { sink_index, .. } => {
                        (sink_index, pl_before[id.index()])
                    }
                    _ => unreachable!(),
                })
                .collect();
            let t = rsmt(&net);
            let pl_after = t.path_lengths();
            for &id in &t.sinks() {
                let (sink_index, after) = match t.node(id).kind {
                    sllt_tree::NodeKind::Sink { sink_index, .. } => {
                        (sink_index, pl_after[id.index()])
                    }
                    _ => unreachable!(),
                };
                let before = sink_pl_before
                    .iter()
                    .find(|(i, _)| *i == sink_index)
                    .expect("sink preserved")
                    .1;
                assert!(
                    after <= before + 1e-6,
                    "path to sink {sink_index} grew: {before} -> {after}"
                );
            }
        }
    }

    #[test]
    fn rsmt_beats_or_ties_mst_on_random_nets() {
        let mut total_gain = 0.0;
        for seed in 0..30 {
            let net = random_net(seed + 500, 30, 75.0);
            let mst = rmst(&net).wirelength();
            let st = rsmt(&net).wirelength();
            assert!(st <= mst + 1e-9);
            total_gain += (mst - st) / mst;
        }
        // Median-point Steinerization typically recovers ~5-10 % of MST WL.
        assert!(
            total_gain / 30.0 > 0.02,
            "mean gain {:.4}",
            total_gain / 30.0
        );
    }

    #[test]
    fn duplicate_sink_positions_are_handled() {
        let p = Point::new(5.0, 5.0);
        let net = ClockNet::new(Point::ORIGIN, vec![Sink::new(p, 1.0); 3]);
        let t = rsmt(&net);
        assert_eq!(t.sinks().len(), 3);
        t.validate().unwrap();
        assert!((t.wirelength() - 10.0).abs() < 1e-9);
    }
}
