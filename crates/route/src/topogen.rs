//! Candidate merge-order (topology) generation.
//!
//! Paper §2.3, footnote 1 — the BST step of CBS may use any of four merge
//! orders:
//!
//! * **Greedy-Dist** — "the two closest subtrees are merged greedily at
//!   each step";
//! * **Greedy-Merge** — "selects and merges the two subtrees with the
//!   minimum merging cost at each step" (merging cost = wire the DME merge
//!   would add, i.e. the distance between merging regions);
//! * **Bi-Partition** — "performs binary partitioning in each round based
//!   on the diameter cost of the partitioned subsets";
//! * **Bi-Cluster** — "recursively performing binary partitions in a
//!   clustering manner" (2-means).

use sllt_geom::{Point, RRect};
use sllt_tree::{ClockNet, Topology};
use std::fmt;

/// Which merge-order scheme to use for the BST/CBS topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyScheme {
    /// Merge the two geometrically closest subtrees first.
    GreedyDist,
    /// Merge the pair with the smallest DME merging cost first.
    GreedyMerge,
    /// Recursive median bi-partition minimizing subset diameters.
    BiPartition,
    /// Recursive 2-means clustering.
    BiCluster,
}

impl TopologyScheme {
    /// All four schemes, in the paper's order.
    pub const ALL: [TopologyScheme; 4] = [
        TopologyScheme::GreedyDist,
        TopologyScheme::GreedyMerge,
        TopologyScheme::BiPartition,
        TopologyScheme::BiCluster,
    ];

    /// Builds the merge order for `net` under this scheme.
    ///
    /// # Panics
    ///
    /// Panics when the net has no sinks.
    pub fn build(self, net: &ClockNet) -> Topology {
        match self {
            TopologyScheme::GreedyDist => greedy_dist(net),
            TopologyScheme::GreedyMerge => greedy_merge(net),
            TopologyScheme::BiPartition => bi_partition(net),
            TopologyScheme::BiCluster => bi_cluster(net),
        }
    }
}

impl fmt::Display for TopologyScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyScheme::GreedyDist => "GreedyDist",
            TopologyScheme::GreedyMerge => "GreedyMerge",
            TopologyScheme::BiPartition => "BiPartition",
            TopologyScheme::BiCluster => "BiCluster",
        };
        f.write_str(s)
    }
}

fn check_nonempty(net: &ClockNet) {
    assert!(!net.is_empty(), "topology generation over a sinkless net");
}

/// Greedy-Dist: repeatedly merge the two subtrees whose centroids are
/// closest in L1.
pub fn greedy_dist(net: &ClockNet) -> Topology {
    check_nonempty(net);
    struct Cluster {
        topo: Topology,
        centroid: Point,
        weight: f64,
    }
    let mut clusters: Vec<Cluster> = net
        .sinks
        .iter()
        .enumerate()
        .map(|(i, s)| Cluster {
            topo: Topology::sink(i),
            centroid: s.pos,
            weight: 1.0,
        })
        .collect();
    while clusters.len() > 1 {
        let (mut bi, mut bj, mut bd) = (0, 1, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = clusters[i].centroid.dist(clusters[j].centroid);
                if d < bd {
                    (bi, bj, bd) = (i, j, d);
                }
            }
        }
        let b = clusters.swap_remove(bj);
        let a = clusters.swap_remove(if bi == clusters.len() { bj } else { bi });
        let w = a.weight + b.weight;
        clusters.push(Cluster {
            centroid: (a.centroid * a.weight + b.centroid * b.weight) / w,
            topo: Topology::merge(a.topo, b.topo),
            weight: w,
        });
    }
    clusters.pop().expect("nonempty").topo
}

/// Greedy-Merge: repeatedly merge the pair with the smallest DME merging
/// cost — the wire a balanced merge would add, i.e. the L1 distance
/// between the two merging regions (plus any detour a delay imbalance
/// forces under the linear delay model).
pub fn greedy_merge(net: &ClockNet) -> Topology {
    check_nonempty(net);
    struct Cluster {
        topo: Topology,
        region: RRect,
        delay: f64, // linear-model delay (path length) at the region
    }
    let cost = |a: &Cluster, b: &Cluster| -> f64 {
        let d = a.region.dist(&b.region);
        // Balanced merge needs d of wire; a delay gap beyond d forces
        // detour on the fast side.
        d.max((a.delay - b.delay).abs())
    };
    let mut clusters: Vec<Cluster> = net
        .sinks
        .iter()
        .enumerate()
        .map(|(i, s)| Cluster {
            topo: Topology::sink(i),
            region: RRect::from_point(s.pos),
            delay: 0.0,
        })
        .collect();
    while clusters.len() > 1 {
        let (mut bi, mut bj, mut bc) = (0, 1, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let c = cost(&clusters[i], &clusters[j]);
                if c < bc {
                    (bi, bj, bc) = (i, j, c);
                }
            }
        }
        let b = clusters.swap_remove(bj);
        let a = clusters.swap_remove(if bi == clusters.len() { bj } else { bi });
        let d = a.region.dist(&b.region);
        // Zero-skew split of the connecting wire (linear delay model).
        let mut ea = (b.delay - a.delay + d) / 2.0;
        let mut eb = d - ea;
        if ea < 0.0 {
            ea = 0.0;
            eb = a.delay - b.delay;
        } else if eb < 0.0 {
            eb = 0.0;
            ea = b.delay - a.delay;
        }
        let region = a
            .region
            .inflated(ea)
            .intersection(&b.region.inflated(eb))
            .unwrap_or_else(|| {
                // Detour merges may not intersect exactly due to fp noise;
                // fall back to the midpoint of the nearest approach.
                RRect::from_point(a.region.nearest_to(b.region.center()))
            });
        clusters.push(Cluster {
            topo: Topology::merge(a.topo, b.topo),
            region,
            delay: a.delay + ea,
        });
    }
    clusters.pop().expect("nonempty").topo
}

/// Bi-Partition: recursively split the sink set in two along the axis
/// that minimizes the larger subset diameter (half-perimeter).
pub fn bi_partition(net: &ClockNet) -> Topology {
    check_nonempty(net);
    let idx: Vec<usize> = (0..net.sinks.len()).collect();
    split_partition(net, idx)
}

fn diameter(net: &ClockNet, idx: &[usize]) -> f64 {
    sllt_geom::Rect::bounding(&idx.iter().map(|&i| net.sinks[i].pos).collect::<Vec<_>>())
        .map_or(0.0, |r| r.hpwl())
}

fn split_partition(net: &ClockNet, mut idx: Vec<usize>) -> Topology {
    if idx.len() == 1 {
        return Topology::sink(idx[0]);
    }
    let mid = idx.len() / 2;
    // Try the median split on each axis; keep the one whose worse half has
    // the smaller diameter.
    let mut by_x = idx.clone();
    by_x.sort_by(|&a, &b| net.sinks[a].pos.x.total_cmp(&net.sinks[b].pos.x));
    idx.sort_by(|&a, &b| net.sinks[a].pos.y.total_cmp(&net.sinks[b].pos.y));
    let by_y = idx;
    let cost = |v: &[usize]| diameter(net, &v[..mid]).max(diameter(net, &v[mid..]));
    let chosen = if cost(&by_x) <= cost(&by_y) {
        by_x
    } else {
        by_y
    };
    let (lo, hi) = chosen.split_at(mid);
    Topology::merge(
        split_partition(net, lo.to_vec()),
        split_partition(net, hi.to_vec()),
    )
}

/// Bi-Cluster: recursive 2-means (Lloyd, L2 objective, deterministic
/// farthest-pair seeding).
pub fn bi_cluster(net: &ClockNet) -> Topology {
    check_nonempty(net);
    let idx: Vec<usize> = (0..net.sinks.len()).collect();
    split_cluster(net, idx)
}

fn split_cluster(net: &ClockNet, idx: Vec<usize>) -> Topology {
    if idx.len() == 1 {
        return Topology::sink(idx[0]);
    }
    if idx.len() == 2 {
        return Topology::merge(Topology::sink(idx[0]), Topology::sink(idx[1]));
    }
    let pos = |i: usize| net.sinks[i].pos;
    // Seed with the two mutually farthest members (exact for these sizes).
    let (mut sa, mut sb, mut far) = (idx[0], idx[1], -1.0);
    for (k, &i) in idx.iter().enumerate() {
        for &j in &idx[k + 1..] {
            let d = pos(i).dist(pos(j));
            if d > far {
                (sa, sb, far) = (i, j, d);
            }
        }
    }
    let (mut ca, mut cb) = (pos(sa), pos(sb));
    let mut assign = vec![false; idx.len()]; // false → a, true → b
    for _ in 0..12 {
        let mut changed = false;
        for (k, &i) in idx.iter().enumerate() {
            let to_b = pos(i).dist_l2_sq(cb) < pos(i).dist_l2_sq(ca);
            if assign[k] != to_b {
                assign[k] = to_b;
                changed = true;
            }
        }
        let (mut na, mut nb) = (Point::ORIGIN, Point::ORIGIN);
        let (mut wa, mut wb) = (0usize, 0usize);
        for (k, &i) in idx.iter().enumerate() {
            if assign[k] {
                nb = nb + pos(i);
                wb += 1;
            } else {
                na = na + pos(i);
                wa += 1;
            }
        }
        if wa == 0 || wb == 0 {
            break;
        }
        ca = na / wa as f64;
        cb = nb / wb as f64;
        if !changed {
            break;
        }
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (k, &i) in idx.iter().enumerate() {
        if assign[k] {
            b.push(i);
        } else {
            a.push(i);
        }
    }
    // Lloyd can collapse a side; fall back to a median split.
    if a.is_empty() || b.is_empty() {
        let mut v = idx;
        v.sort_by(|&x, &y| pos(x).x.total_cmp(&pos(y).x));
        let mid = v.len() / 2;
        let (lo, hi) = v.split_at(mid);
        return Topology::merge(
            split_cluster(net, lo.to_vec()),
            split_cluster(net, hi.to_vec()),
        );
    }
    Topology::merge(split_cluster(net, a), split_cluster(net, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_rng::prelude::*;
    use sllt_tree::Sink;

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn all_schemes_cover_every_sink_exactly_once() {
        for seed in 0..10 {
            let net = random_net(seed, 23);
            for scheme in TopologyScheme::ALL {
                let topo = scheme.build(&net);
                let mut leaves = topo.leaves();
                leaves.sort_unstable();
                assert_eq!(leaves, (0..23).collect::<Vec<_>>(), "{scheme} seed {seed}");
            }
        }
    }

    #[test]
    fn single_sink_topology() {
        let net = random_net(1, 1);
        for scheme in TopologyScheme::ALL {
            assert_eq!(scheme.build(&net), Topology::Sink(0));
        }
    }

    #[test]
    fn greedy_dist_merges_closest_pair_first() {
        // Two tight pairs far apart: each pair must be merged internally
        // before the cross merge.
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(0.0, 0.0), 1.0),
                Sink::new(Point::new(1.0, 0.0), 1.0),
                Sink::new(Point::new(100.0, 0.0), 1.0),
                Sink::new(Point::new(101.0, 0.0), 1.0),
            ],
        );
        let topo = greedy_dist(&net);
        match topo {
            Topology::Merge(a, b) => {
                let mut la = a.leaves();
                let mut lb = b.leaves();
                la.sort_unstable();
                lb.sort_unstable();
                let (la, lb) = if la[0] == 0 { (la, lb) } else { (lb, la) };
                assert_eq!(la, vec![0, 1]);
                assert_eq!(lb, vec![2, 3]);
            }
            _ => panic!("expected a merge at the root"),
        }
    }

    #[test]
    fn bi_partition_is_balanced() {
        let net = random_net(2, 32);
        let topo = bi_partition(&net);
        assert_eq!(
            topo.depth(),
            5,
            "median splits give a perfectly balanced tree"
        );
    }

    #[test]
    fn bi_cluster_depth_is_reasonable() {
        let net = random_net(3, 32);
        let topo = bi_cluster(&net);
        // 2-means trees are near-balanced on uniform data.
        assert!(topo.depth() <= 12, "depth {}", topo.depth());
    }

    #[test]
    fn greedy_merge_on_collinear_points() {
        let net = ClockNet::new(
            Point::ORIGIN,
            (0..6)
                .map(|i| Sink::new(Point::new(i as f64 * 10.0, 0.0), 1.0))
                .collect(),
        );
        let topo = greedy_merge(&net);
        assert_eq!(topo.len(), 6);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(TopologyScheme::GreedyDist.to_string(), "GreedyDist");
        assert_eq!(TopologyScheme::GreedyMerge.to_string(), "GreedyMerge");
        assert_eq!(TopologyScheme::BiPartition.to_string(), "BiPartition");
        assert_eq!(TopologyScheme::BiCluster.to_string(), "BiCluster");
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn empty_net_rejected() {
        let net = ClockNet::new(Point::ORIGIN, vec![]);
        let _ = greedy_dist(&net);
    }
}
