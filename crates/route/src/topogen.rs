//! Candidate merge-order (topology) generation.
//!
//! Paper §2.3, footnote 1 — the BST step of CBS may use any of four merge
//! orders:
//!
//! * **Greedy-Dist** — "the two closest subtrees are merged greedily at
//!   each step";
//! * **Greedy-Merge** — "selects and merges the two subtrees with the
//!   minimum merging cost at each step" (merging cost = wire the DME merge
//!   would add, i.e. the distance between merging regions);
//! * **Bi-Partition** — "performs binary partitioning in each round based
//!   on the diameter cost of the partitioned subsets";
//! * **Bi-Cluster** — "recursively performing binary partitions in a
//!   clustering manner" (2-means).

use crate::nnpair::{self, key_less, PairMetric};
use sllt_geom::{Point, RPoint, RRect};
use sllt_tree::{ClockNet, Topology};
use std::fmt;

/// Which merge-order scheme to use for the BST/CBS topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyScheme {
    /// Merge the two geometrically closest subtrees first.
    GreedyDist,
    /// Merge the pair with the smallest DME merging cost first.
    GreedyMerge,
    /// Recursive median bi-partition minimizing subset diameters.
    BiPartition,
    /// Recursive 2-means clustering.
    BiCluster,
}

impl TopologyScheme {
    /// All four schemes, in the paper's order.
    pub const ALL: [TopologyScheme; 4] = [
        TopologyScheme::GreedyDist,
        TopologyScheme::GreedyMerge,
        TopologyScheme::BiPartition,
        TopologyScheme::BiCluster,
    ];

    /// Builds the merge order for `net` under this scheme.
    ///
    /// # Panics
    ///
    /// Panics when the net has no sinks.
    pub fn build(self, net: &ClockNet) -> Topology {
        match self {
            TopologyScheme::GreedyDist => greedy_dist(net),
            TopologyScheme::GreedyMerge => greedy_merge(net),
            TopologyScheme::BiPartition => bi_partition(net),
            TopologyScheme::BiCluster => bi_cluster(net),
        }
    }
}

impl fmt::Display for TopologyScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyScheme::GreedyDist => "GreedyDist",
            TopologyScheme::GreedyMerge => "GreedyMerge",
            TopologyScheme::BiPartition => "BiPartition",
            TopologyScheme::BiCluster => "BiCluster",
        };
        f.write_str(s)
    }
}

fn check_nonempty(net: &ClockNet) {
    assert!(!net.is_empty(), "topology generation over a sinkless net");
}

/// Below this sink count the brute-force scan wins on constant factor
/// (no grid or heap setup); above it the nearest-pair engine takes over.
/// Results are bit-identical either way, so the cutoff is pure tuning.
const NAIVE_CUTOFF: usize = 32;

/// Greedy-Dist cluster state: weighted centroid of the merged sinks.
struct DistState {
    centroid: Point,
    weight: f64,
}

/// The exact Greedy-Dist cost — L1 centroid distance. Shared verbatim by
/// the engine-backed and brute-force paths (bit-identity depends on it).
fn dist_cost(a: &DistState, b: &DistState) -> f64 {
    a.centroid.dist(b.centroid)
}

/// The exact Greedy-Dist merge; `a` is the older (smaller-id) cluster, so
/// the accumulation order of the weighted mean is deterministic.
fn dist_merge(a: &DistState, b: &DistState) -> DistState {
    let w = a.weight + b.weight;
    DistState {
        centroid: (a.centroid * a.weight + b.centroid * b.weight) / w,
        weight: w,
    }
}

struct DistMetric;

impl PairMetric for DistMetric {
    type State = DistState;
    fn position(s: &DistState) -> RPoint {
        RPoint::from_xy(s.centroid)
    }
    fn half_extent(_: &DistState) -> f64 {
        0.0 // centroids are points
    }
    fn cost(a: &DistState, b: &DistState) -> f64 {
        dist_cost(a, b)
    }
    fn merge(a: &DistState, b: &DistState) -> DistState {
        dist_merge(a, b)
    }
}

fn dist_states(net: &ClockNet) -> Vec<DistState> {
    net.sinks
        .iter()
        .map(|s| DistState {
            centroid: s.pos,
            weight: 1.0,
        })
        .collect()
}

/// Greedy-Dist: repeatedly merge the two subtrees whose centroids are
/// closest in L1; ties break toward the oldest pair (creation-order ids).
///
/// Runs on the nearest-pair engine ([`crate::nnpair`]) in ~O(n log n);
/// bit-identical to [`greedy_dist_naive`].
pub fn greedy_dist(net: &ClockNet) -> Topology {
    check_nonempty(net);
    if net.sinks.len() <= NAIVE_CUTOFF {
        return greedy_dist_naive(net);
    }
    nnpair::agglomerate::<DistMetric>(dist_states(net))
}

/// Brute-force Greedy-Dist: full pairwise rescan per merge, O(n³)
/// overall. Retained as the oracle the accelerated path is cross-checked
/// against, and as the small-n fast path.
pub fn greedy_dist_naive(net: &ClockNet) -> Topology {
    check_nonempty(net);
    agglomerate_naive(dist_states(net), dist_cost, dist_merge)
}

/// Greedy-Merge cluster state: DME merging region plus linear-model delay
/// (path length) at that region.
struct MergeState {
    region: RRect,
    delay: f64,
}

/// The exact Greedy-Merge cost — the wire a balanced merge would add: the
/// L1 distance between merging regions, or the delay gap when the gap
/// exceeds it (the fast side must detour that much under the linear
/// model). Shared verbatim by both paths.
fn merge_cost(a: &MergeState, b: &MergeState) -> f64 {
    let d = a.region.dist(&b.region);
    d.max((a.delay - b.delay).abs())
}

/// The exact Greedy-Merge merge: zero-skew split of the connecting wire
/// under the linear delay model. `a` is the older (smaller-id) cluster,
/// fixing the orientation of the split.
fn merge_merge(a: &MergeState, b: &MergeState) -> MergeState {
    let d = a.region.dist(&b.region);
    let mut ea = (b.delay - a.delay + d) / 2.0;
    let mut eb = d - ea;
    if ea < 0.0 {
        ea = 0.0;
        eb = a.delay - b.delay;
    } else if eb < 0.0 {
        eb = 0.0;
        ea = b.delay - a.delay;
    }
    let region = a
        .region
        .inflated(ea)
        .intersection(&b.region.inflated(eb))
        .unwrap_or_else(|| {
            // Detour merges may not intersect exactly due to fp noise;
            // fall back to the midpoint of the nearest approach.
            RRect::from_point(a.region.nearest_to(b.region.center()))
        });
    MergeState {
        region,
        delay: a.delay + ea,
    }
}

struct MergeMetric;

impl PairMetric for MergeMetric {
    type State = MergeState;
    fn position(s: &MergeState) -> RPoint {
        let (ulo, uhi, vlo, vhi) = s.region.bounds();
        RPoint::new((ulo + uhi) / 2.0, (vlo + vhi) / 2.0)
    }
    fn half_extent(s: &MergeState) -> f64 {
        let (ulo, uhi, vlo, vhi) = s.region.bounds();
        ((uhi - ulo).max(vhi - vlo)) / 2.0
    }
    fn cost(a: &MergeState, b: &MergeState) -> f64 {
        merge_cost(a, b)
    }
    fn merge(a: &MergeState, b: &MergeState) -> MergeState {
        merge_merge(a, b)
    }
}

fn merge_states(net: &ClockNet) -> Vec<MergeState> {
    net.sinks
        .iter()
        .map(|s| MergeState {
            region: RRect::from_point(s.pos),
            delay: 0.0,
        })
        .collect()
}

/// Greedy-Merge: repeatedly merge the pair with the smallest DME merging
/// cost; ties break toward the oldest pair (creation-order ids).
///
/// Runs on the nearest-pair engine ([`crate::nnpair`]) in ~O(n log n);
/// bit-identical to [`greedy_merge_naive`]. The region half-extent feeds
/// the engine's prune slack, since the merging-region distance can be up
/// to a full region extent smaller than the center distance.
pub fn greedy_merge(net: &ClockNet) -> Topology {
    check_nonempty(net);
    if net.sinks.len() <= NAIVE_CUTOFF {
        return greedy_merge_naive(net);
    }
    nnpair::agglomerate::<MergeMetric>(merge_states(net))
}

/// Brute-force Greedy-Merge: full pairwise rescan per merge, O(n³)
/// overall. Retained as the oracle the accelerated path is cross-checked
/// against, and as the small-n fast path.
pub fn greedy_merge_naive(net: &ClockNet) -> Topology {
    check_nonempty(net);
    agglomerate_naive(merge_states(net), merge_cost, merge_merge)
}

/// The brute-force agglomeration shared by both `*_naive` schemes: scan
/// every live pair, select the minimum `(cost, lower id, higher id)` —
/// the same selection key the engine uses — merge, repeat.
fn agglomerate_naive<S>(
    initial: Vec<S>,
    cost: impl Fn(&S, &S) -> f64,
    merge: impl Fn(&S, &S) -> S,
) -> Topology {
    struct Cluster<S> {
        id: u32,
        topo: Topology,
        state: S,
    }
    let mut next_id = initial.len() as u32;
    let mut clusters: Vec<Cluster<S>> = initial
        .into_iter()
        .enumerate()
        .map(|(i, state)| Cluster {
            id: i as u32,
            topo: Topology::sink(i),
            state,
        })
        .collect();
    while clusters.len() > 1 {
        let (mut bi, mut bj) = (0, 1);
        let mut bk = (f64::INFINITY, u32::MAX, u32::MAX);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let c = cost(&clusters[i].state, &clusters[j].state);
                let (lo, hi) = if clusters[i].id < clusters[j].id {
                    (clusters[i].id, clusters[j].id)
                } else {
                    (clusters[j].id, clusters[i].id)
                };
                if key_less((c, lo, hi), bk) {
                    (bi, bj, bk) = (i, j, (c, lo, hi));
                }
            }
        }
        // Invariant: bi < bj (the scan only visits i < j), so removing bj
        // first cannot move slot bi — `swap_remove(bj)` relocates only the
        // final element, whose slot index is ≥ bj > bi. No index fixup is
        // needed for the second removal.
        let b = clusters.swap_remove(bj);
        let a = clusters.swap_remove(bi);
        // Orient by creation id, as the engine does: the older cluster is
        // the left/`a` side of asymmetric merge formulas.
        let (a, b) = if a.id < b.id { (a, b) } else { (b, a) };
        clusters.push(Cluster {
            id: next_id,
            state: merge(&a.state, &b.state),
            topo: Topology::merge(a.topo, b.topo),
        });
        next_id += 1;
    }
    clusters.pop().expect("nonempty").topo
}

/// Bi-Partition: recursively split the sink set in two along the axis
/// that minimizes the larger subset diameter (half-perimeter).
pub fn bi_partition(net: &ClockNet) -> Topology {
    check_nonempty(net);
    let idx: Vec<usize> = (0..net.sinks.len()).collect();
    split_partition(net, idx)
}

fn diameter(net: &ClockNet, idx: &[usize]) -> f64 {
    sllt_geom::Rect::bounding(&idx.iter().map(|&i| net.sinks[i].pos).collect::<Vec<_>>())
        .map_or(0.0, |r| r.hpwl())
}

fn split_partition(net: &ClockNet, mut idx: Vec<usize>) -> Topology {
    if idx.len() == 1 {
        return Topology::sink(idx[0]);
    }
    let mid = idx.len() / 2;
    // Try the median split on each axis; keep the one whose worse half has
    // the smaller diameter.
    let mut by_x = idx.clone();
    by_x.sort_by(|&a, &b| net.sinks[a].pos.x.total_cmp(&net.sinks[b].pos.x));
    idx.sort_by(|&a, &b| net.sinks[a].pos.y.total_cmp(&net.sinks[b].pos.y));
    let by_y = idx;
    let cost = |v: &[usize]| diameter(net, &v[..mid]).max(diameter(net, &v[mid..]));
    let chosen = if cost(&by_x) <= cost(&by_y) {
        by_x
    } else {
        by_y
    };
    let (lo, hi) = chosen.split_at(mid);
    Topology::merge(
        split_partition(net, lo.to_vec()),
        split_partition(net, hi.to_vec()),
    )
}

/// Bi-Cluster: recursive 2-means (Lloyd, L2 objective, deterministic
/// farthest-pair seeding).
pub fn bi_cluster(net: &ClockNet) -> Topology {
    check_nonempty(net);
    let idx: Vec<usize> = (0..net.sinks.len()).collect();
    split_cluster(net, idx)
}

fn split_cluster(net: &ClockNet, idx: Vec<usize>) -> Topology {
    if idx.len() == 1 {
        return Topology::sink(idx[0]);
    }
    if idx.len() == 2 {
        return Topology::merge(Topology::sink(idx[0]), Topology::sink(idx[1]));
    }
    let pos = |i: usize| net.sinks[i].pos;
    // Seed with the two mutually farthest members (exact for these sizes).
    let (mut sa, mut sb, mut far) = (idx[0], idx[1], -1.0);
    for (k, &i) in idx.iter().enumerate() {
        for &j in &idx[k + 1..] {
            let d = pos(i).dist(pos(j));
            if d > far {
                (sa, sb, far) = (i, j, d);
            }
        }
    }
    let (mut ca, mut cb) = (pos(sa), pos(sb));
    let mut assign = vec![false; idx.len()]; // false → a, true → b
    for _ in 0..12 {
        let mut changed = false;
        for (k, &i) in idx.iter().enumerate() {
            let to_b = pos(i).dist_l2_sq(cb) < pos(i).dist_l2_sq(ca);
            if assign[k] != to_b {
                assign[k] = to_b;
                changed = true;
            }
        }
        let (mut na, mut nb) = (Point::ORIGIN, Point::ORIGIN);
        let (mut wa, mut wb) = (0usize, 0usize);
        for (k, &i) in idx.iter().enumerate() {
            if assign[k] {
                nb = nb + pos(i);
                wb += 1;
            } else {
                na = na + pos(i);
                wa += 1;
            }
        }
        if wa == 0 || wb == 0 {
            break;
        }
        ca = na / wa as f64;
        cb = nb / wb as f64;
        if !changed {
            break;
        }
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (k, &i) in idx.iter().enumerate() {
        if assign[k] {
            b.push(i);
        } else {
            a.push(i);
        }
    }
    // Lloyd can collapse a side; fall back to a median split.
    if a.is_empty() || b.is_empty() {
        let mut v = idx;
        v.sort_by(|&x, &y| pos(x).x.total_cmp(&pos(y).x));
        let mid = v.len() / 2;
        let (lo, hi) = v.split_at(mid);
        return Topology::merge(
            split_cluster(net, lo.to_vec()),
            split_cluster(net, hi.to_vec()),
        );
    }
    Topology::merge(split_cluster(net, a), split_cluster(net, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_rng::prelude::*;
    use sllt_tree::Sink;

    fn random_net(seed: u64, n: usize) -> ClockNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockNet::new(
            Point::new(37.5, 37.5),
            (0..n)
                .map(|_| {
                    Sink::new(
                        Point::new(rng.random_range(0.0..75.0), rng.random_range(0.0..75.0)),
                        1.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn all_schemes_cover_every_sink_exactly_once() {
        for seed in 0..10 {
            let net = random_net(seed, 23);
            for scheme in TopologyScheme::ALL {
                let topo = scheme.build(&net);
                let mut leaves = topo.leaves();
                leaves.sort_unstable();
                assert_eq!(leaves, (0..23).collect::<Vec<_>>(), "{scheme} seed {seed}");
            }
        }
    }

    #[test]
    fn single_sink_topology() {
        let net = random_net(1, 1);
        for scheme in TopologyScheme::ALL {
            assert_eq!(scheme.build(&net), Topology::Sink(0));
        }
    }

    #[test]
    fn greedy_dist_merges_closest_pair_first() {
        // Two tight pairs far apart: each pair must be merged internally
        // before the cross merge.
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(0.0, 0.0), 1.0),
                Sink::new(Point::new(1.0, 0.0), 1.0),
                Sink::new(Point::new(100.0, 0.0), 1.0),
                Sink::new(Point::new(101.0, 0.0), 1.0),
            ],
        );
        let topo = greedy_dist(&net);
        match &topo {
            Topology::Merge(a, b) => {
                let mut la = a.leaves();
                let mut lb = b.leaves();
                la.sort_unstable();
                lb.sort_unstable();
                let (la, lb) = if la[0] == 0 { (la, lb) } else { (lb, la) };
                assert_eq!(la, vec![0, 1]);
                assert_eq!(lb, vec![2, 3]);
            }
            _ => panic!("expected a merge at the root"),
        }
    }

    #[test]
    fn bi_partition_is_balanced() {
        let net = random_net(2, 32);
        let topo = bi_partition(&net);
        assert_eq!(
            topo.depth(),
            5,
            "median splits give a perfectly balanced tree"
        );
    }

    #[test]
    fn bi_cluster_depth_is_reasonable() {
        let net = random_net(3, 32);
        let topo = bi_cluster(&net);
        // 2-means trees are near-balanced on uniform data.
        assert!(topo.depth() <= 12, "depth {}", topo.depth());
    }

    #[test]
    fn greedy_merge_on_collinear_points() {
        let net = ClockNet::new(
            Point::ORIGIN,
            (0..6)
                .map(|i| Sink::new(Point::new(i as f64 * 10.0, 0.0), 1.0))
                .collect(),
        );
        let topo = greedy_merge(&net);
        assert_eq!(topo.len(), 6);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(TopologyScheme::GreedyDist.to_string(), "GreedyDist");
        assert_eq!(TopologyScheme::GreedyMerge.to_string(), "GreedyMerge");
        assert_eq!(TopologyScheme::BiPartition.to_string(), "BiPartition");
        assert_eq!(TopologyScheme::BiCluster.to_string(), "BiCluster");
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn empty_net_rejected() {
        let net = ClockNet::new(Point::ORIGIN, vec![]);
        let _ = greedy_dist(&net);
    }

    /// The best pair sits in the last vector slot: the case the removed
    /// index-fixup branch claimed to handle. Since the scan guarantees
    /// `bi < bj`, `swap_remove(bj)` never relocates slot `bi` and the
    /// merge comes out right without any fixup.
    #[test]
    fn last_element_merge_is_handled_without_index_fixup() {
        let net = ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(0.0, 0.0), 1.0),
                Sink::new(Point::new(100.0, 0.0), 1.0),
                Sink::new(Point::new(101.0, 0.0), 1.0), // best pair = slots (1, 2)
            ],
        );
        let expect = Topology::merge(
            Topology::sink(0),
            Topology::merge(Topology::sink(1), Topology::sink(2)),
        );
        assert_eq!(greedy_dist_naive(&net), expect);
        assert_eq!(greedy_merge_naive(&net), expect);
        assert_eq!(greedy_dist(&net), expect);
        assert_eq!(greedy_merge(&net), expect);
    }

    fn collinear_net(n: usize) -> ClockNet {
        ClockNet::new(
            Point::ORIGIN,
            (0..n)
                .map(|i| Sink::new(Point::new(i as f64 * 2.0, 0.0), 1.0))
                .collect(),
        )
    }

    fn coincident_net(n: usize) -> ClockNet {
        ClockNet::new(
            Point::ORIGIN,
            (0..n)
                .map(|_| Sink::new(Point::new(5.0, -3.0), 1.0))
                .collect(),
        )
    }

    /// Clustered-then-collinear: tight pairs along a line, the shape that
    /// drives greedy merge orders toward deep chains.
    fn paired_line_net(n: usize) -> ClockNet {
        ClockNet::new(
            Point::ORIGIN,
            (0..n)
                .map(|i| {
                    let base = (i / 2) as f64 * 50.0;
                    Sink::new(Point::new(base + (i % 2) as f64, 0.0), 1.0)
                })
                .collect(),
        )
    }

    /// Equivalence suite: the engine-backed schemes must be *bit-identical*
    /// to the brute-force oracle — same topology structure, which (since
    /// both share the exact cost/merge code and selection key) implies the
    /// same merge sequence and the same floating-point states throughout.
    ///
    /// The brute-force oracle is O(n³), so debug runs use reduced sizes;
    /// release runs cover n up to 2000 (`cargo test --release -p
    /// sllt-route`).
    #[test]
    fn accelerated_greedy_matches_naive_bit_for_bit() {
        let sizes: &[usize] = if cfg!(debug_assertions) {
            &[1, 2, 3, 33, 64, 150]
        } else {
            &[1, 2, 3, 33, 150, 500, 2000]
        };
        for &n in sizes {
            for seed in 0..3 {
                let net = random_net(seed, n);
                assert_eq!(
                    greedy_dist(&net),
                    greedy_dist_naive(&net),
                    "greedy_dist random n {n} seed {seed}"
                );
                assert_eq!(
                    greedy_merge(&net),
                    greedy_merge_naive(&net),
                    "greedy_merge random n {n} seed {seed}"
                );
            }
        }
    }

    /// The engine-backed path must account for its work: every merge
    /// pops the pair it commits, and heap traffic/examinations are
    /// visible once a telemetry scope is installed.
    #[test]
    fn accelerated_greedy_emits_engine_counters() {
        let net = random_net(7, 200);
        let registry = sllt_obs::Registry::new();
        {
            let _scope = registry.install("test");
            let _ = greedy_dist(&net);
        }
        let m = registry.snapshot().metrics;
        assert_eq!(m.counter("route.nnpair.calls"), 1);
        assert_eq!(m.counter("route.nnpair.merges"), 199);
        assert!(m.counter("route.nnpair.heap_push") >= 199);
        assert!(m.counter("route.nnpair.heap_pop") >= 199);
        assert!(m.counter("route.nnpair.candidates_examined") > 0);
        // Disabled scope: the same run must record nothing.
        let silent = sllt_obs::Registry::new();
        let _ = greedy_dist(&net);
        assert_eq!(silent.snapshot().metrics.counter("route.nnpair.calls"), 0);
    }

    #[test]
    fn accelerated_greedy_matches_naive_on_degenerate_inputs() {
        let n = if cfg!(debug_assertions) { 120 } else { 600 };
        for net in [collinear_net(n), coincident_net(n), paired_line_net(n)] {
            assert_eq!(greedy_dist(&net), greedy_dist_naive(&net));
            assert_eq!(greedy_merge(&net), greedy_merge_naive(&net));
        }
        // Single sink short-circuits every path identically.
        let one = collinear_net(1);
        assert_eq!(greedy_dist(&one), Topology::Sink(0));
        assert_eq!(greedy_merge(&one), Topology::Sink(0));
    }

    /// Acceptance: 50k-sink random nets complete in well under 10 s per
    /// scheme in release mode. Debug builds only check a smaller size (the
    /// engine itself is identical); timings are recorded in EXPERIMENTS.md.
    #[test]
    fn greedy_schemes_scale_to_50k_sinks() {
        let n = if cfg!(debug_assertions) {
            5_000
        } else {
            50_000
        };
        let net = random_net(99, n);
        let t0 = std::time::Instant::now();
        let td = greedy_dist(&net);
        let dist_elapsed = t0.elapsed();
        assert_eq!(td.len(), n);
        let t1 = std::time::Instant::now();
        let tm = greedy_merge(&net);
        let merge_elapsed = t1.elapsed();
        assert_eq!(tm.len(), n);
        if !cfg!(debug_assertions) {
            assert!(
                dist_elapsed.as_secs_f64() < 10.0,
                "greedy_dist 50k took {dist_elapsed:?}"
            );
            assert!(
                merge_elapsed.as_secs_f64() < 10.0,
                "greedy_merge 50k took {merge_elapsed:?}"
            );
        }
    }
}
