//! Minimal, offline stand-in for the external `criterion` crate.
//!
//! Implements the benchmarking surface the `sllt-bench` harness uses —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! wall-clock sampling instead of criterion's statistical machinery:
//! each benchmark warms up for `warm_up_time`, then runs `sample_size`
//! samples (each sized to fit `measurement_time`) and reports
//! mean / median / standard deviation per iteration.
//!
//! Benches are feature-gated (`--features criterion` on `sllt-bench`) so
//! the tier-1 build never needs them; see `DESIGN.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (a stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Total time budget for one benchmark's samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(
            id,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_bench(
            &label,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report lines are emitted eagerly, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with the
/// routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    f: &mut F,
) {
    // Warm up while estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut iters_done = 0u64;
    while warm_start.elapsed() < warm_up || iters_done == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        iters_done += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

    // Size each sample so all samples roughly fill the measurement budget.
    let budget = measurement.as_secs_f64() / samples as f64;
    let iters = ((budget / per_iter.max(1e-9)) as u64).max(1);

    let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter_times.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    let median = per_iter_times[per_iter_times.len() / 2];
    let var = per_iter_times
        .iter()
        .map(|t| (t - mean) * (t - mean))
        .sum::<f64>()
        / per_iter_times.len() as f64;
    println!(
        "{label:<40} mean {:>12}  median {:>12}  σ {:>10}  ({} samples × {} iters)",
        fmt_time(mean),
        fmt_time(median),
        fmt_time(var.sqrt()),
        samples,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark entry function running `targets` under `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut g = c.benchmark_group("demo");
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        g.bench_with_input(BenchmarkId::from_parameter(42), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(3.5).0, "3.5");
        assert_eq!(BenchmarkId::new("f", 2).0, "f/2");
    }
}
