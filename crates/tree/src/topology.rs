//! Abstract merge topologies.
//!
//! DME-style embeddings separate *topology* (the binary merge order over
//! sinks) from *embedding* (where the internal nodes land). [`Topology`] is
//! that merge order; `sllt-route` builds them with the paper's four
//! candidate schemes (Greedy-Dist, Greedy-Merge, Bi-Partition, Bi-Cluster)
//! and the CBS pipeline extracts them back out of intermediate trees
//! (Fig. 2, steps 2 and 4).

use crate::{ClockTree, NodeId};

/// A binary merge order over a net's sinks. Leaves are indices into the
/// caller's sink list.
///
/// # Example
///
/// ```
/// use sllt_tree::Topology;
/// let t = Topology::merge(
///     Topology::sink(0),
///     Topology::merge(Topology::sink(1), Topology::sink(2)),
/// );
/// assert_eq!(t.leaves(), vec![0, 1, 2]);
/// assert_eq!(t.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A leaf: index into the sink list.
    Sink(usize),
    /// An internal merge of two subtrees.
    Merge(Box<Topology>, Box<Topology>),
}

impl Topology {
    /// Leaf constructor.
    pub fn sink(index: usize) -> Topology {
        Topology::Sink(index)
    }

    /// Merge constructor.
    pub fn merge(a: Topology, b: Topology) -> Topology {
        Topology::Merge(Box::new(a), Box::new(b))
    }

    /// Sink indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            Topology::Sink(i) => out.push(*i),
            Topology::Merge(a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }

    /// Number of sinks below this node.
    pub fn len(&self) -> usize {
        match self {
            Topology::Sink(_) => 1,
            Topology::Merge(a, b) => a.len() + b.len(),
        }
    }

    /// `true` only for the degenerate case of zero sinks — which cannot be
    /// represented, so this is always `false`; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height of the merge tree (a single sink has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Topology::Sink(_) => 0,
            Topology::Merge(a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// A balanced merge order over sinks `0..n` in index order. Handy as a
    /// neutral baseline and in tests.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn balanced(n: usize) -> Topology {
        assert!(n > 0, "topology over zero sinks");
        fn build(lo: usize, hi: usize) -> Topology {
            if hi - lo == 1 {
                Topology::Sink(lo)
            } else {
                let mid = lo + (hi - lo) / 2;
                Topology::merge(build(lo, mid), build(mid, hi))
            }
        }
        build(0, n)
    }

    /// Converts into a [`HintedTopology`] with no position hints.
    pub fn to_hinted(&self) -> HintedTopology {
        match self {
            Topology::Sink(i) => HintedTopology::Sink(*i),
            Topology::Merge(a, b) => HintedTopology::merge(a.to_hinted(), b.to_hinted(), None),
        }
    }

    /// Extracts the merge order implied by a clock tree.
    ///
    /// The tree is interpreted structurally: sink leaves become
    /// [`Topology::Sink`] (carrying their `sink_index`), internal fan-out
    /// becomes left-deep merges when a node has more than two children, and
    /// childless Steiner/buffer leaves are dropped. Internal sinks are
    /// treated as a leaf merged with their descendants, so un-normalized
    /// trees extract sensibly too.
    ///
    /// Returns `None` when the tree contains no sinks.
    pub fn from_tree(tree: &ClockTree) -> Option<Topology> {
        fn rec(tree: &ClockTree, id: NodeId) -> Option<Topology> {
            let node = tree.node(id);
            let own = match node.kind {
                crate::NodeKind::Sink { sink_index, .. } => Some(Topology::Sink(sink_index)),
                _ => None,
            };
            let mut acc: Option<Topology> = own;
            for &c in node.children() {
                if let Some(sub) = rec(tree, c) {
                    acc = Some(match acc {
                        None => sub,
                        Some(prev) => Topology::merge(prev, sub),
                    });
                }
            }
            acc
        }
        rec(tree, tree.root())
    }
}

/// A merge order whose internal nodes optionally carry a *position hint* —
/// the location the merge point had in the tree the order was extracted
/// from. Hinted embeddings (CBS step 5) use the hint to stay close to the
/// source geometry whenever the skew bound leaves slack.
#[derive(Debug, Clone, PartialEq)]
pub enum HintedTopology {
    /// A leaf: index into the sink list.
    Sink(usize),
    /// A merge, optionally hinted with the original merge-point location.
    Merge(
        Box<HintedTopology>,
        Box<HintedTopology>,
        Option<sllt_geom::Point>,
    ),
}

impl HintedTopology {
    /// Merge constructor.
    pub fn merge(a: HintedTopology, b: HintedTopology, hint: Option<sllt_geom::Point>) -> Self {
        HintedTopology::Merge(Box::new(a), Box::new(b), hint)
    }

    /// Number of sinks below this node.
    pub fn len(&self) -> usize {
        match self {
            HintedTopology::Sink(_) => 1,
            HintedTopology::Merge(a, b, _) => a.len() + b.len(),
        }
    }

    /// Always `false`; provided for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sink indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            HintedTopology::Sink(i) => vec![*i],
            HintedTopology::Merge(a, b, _) => {
                let mut l = a.leaves();
                l.extend(b.leaves());
                l
            }
        }
    }

    /// Extracts the hinted merge order implied by a clock tree: the same
    /// structural interpretation as [`Topology::from_tree`], with every
    /// merge hinted at the position of the tree node it came from.
    ///
    /// Returns `None` when the tree contains no sinks.
    pub fn from_tree(tree: &ClockTree) -> Option<HintedTopology> {
        fn rec(tree: &ClockTree, id: NodeId) -> Option<HintedTopology> {
            let node = tree.node(id);
            let own = match node.kind {
                crate::NodeKind::Sink { sink_index, .. } => Some(HintedTopology::Sink(sink_index)),
                _ => None,
            };
            let mut acc: Option<HintedTopology> = own;
            for &c in node.children() {
                if let Some(sub) = rec(tree, c) {
                    acc = Some(match acc {
                        None => sub,
                        Some(prev) => HintedTopology::merge(prev, sub, Some(node.pos)),
                    });
                }
            }
            acc
        }
        rec(tree, tree.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    #[test]
    fn balanced_topology_shape() {
        let t = Topology::balanced(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaves(), vec![0, 1, 2, 3]);
        let t7 = Topology::balanced(7);
        assert_eq!(t7.len(), 7);
        assert_eq!(t7.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "zero sinks")]
    fn balanced_rejects_zero() {
        let _ = Topology::balanced(0);
    }

    #[test]
    fn extraction_from_binary_tree() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        t.add_sink(a, Point::new(2.0, 1.0), 1.0); // sink_index 0
        t.add_sink(a, Point::new(2.0, -1.0), 1.0); // sink_index 1
        t.add_sink(t.root(), Point::new(-1.0, 0.0), 1.0); // sink_index 2
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo.len(), 3);
        let mut leaves = topo.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2]);
    }

    #[test]
    fn extraction_skips_barren_steiner_branches() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        t.add_steiner(a, Point::new(2.0, 0.0)); // barren
        t.add_sink(t.root(), Point::new(-1.0, 0.0), 1.0);
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo, Topology::Sink(0));
    }

    #[test]
    fn extraction_handles_internal_sinks() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let s = t.add_sink(t.root(), Point::new(1.0, 0.0), 1.0); // index 0
        t.add_sink(s, Point::new(2.0, 0.0), 1.0); // index 1
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo.len(), 2);
        assert_eq!(topo.leaves(), vec![0, 1]);
    }

    #[test]
    fn extraction_of_sinkless_tree_is_none() {
        let t = ClockTree::new(Point::ORIGIN);
        assert!(Topology::from_tree(&t).is_none());
    }

    #[test]
    fn hinted_extraction_carries_positions() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(3.0, 4.0));
        t.add_sink(a, Point::new(5.0, 4.0), 1.0);
        t.add_sink(a, Point::new(3.0, 7.0), 1.0);
        let h = HintedTopology::from_tree(&t).unwrap();
        match h {
            HintedTopology::Merge(_, _, Some(p)) => assert!(p.approx_eq(Point::new(3.0, 4.0))),
            other => panic!("expected hinted merge, got {other:?}"),
        }
    }

    #[test]
    fn to_hinted_has_no_hints() {
        let t = Topology::balanced(3);
        let h = t.to_hinted();
        assert_eq!(h.len(), 3);
        assert_eq!(h.leaves(), t.leaves());
        fn no_hints(h: &HintedTopology) -> bool {
            match h {
                HintedTopology::Sink(_) => true,
                HintedTopology::Merge(a, b, hint) => hint.is_none() && no_hints(a) && no_hints(b),
            }
        }
        assert!(no_hints(&h));
    }

    #[test]
    fn fat_nodes_extract_left_deep() {
        let mut t = ClockTree::new(Point::ORIGIN);
        for i in 0..4 {
            t.add_sink(t.root(), Point::new(i as f64, 1.0), 1.0);
        }
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo.len(), 4);
        assert_eq!(topo.depth(), 3, "left-deep merge of 4 leaves");
    }
}
