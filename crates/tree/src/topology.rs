//! Abstract merge topologies.
//!
//! DME-style embeddings separate *topology* (the binary merge order over
//! sinks) from *embedding* (where the internal nodes land). [`Topology`] is
//! that merge order; `sllt-route` builds them with the paper's four
//! candidate schemes (Greedy-Dist, Greedy-Merge, Bi-Partition, Bi-Cluster)
//! and the CBS pipeline extracts them back out of intermediate trees
//! (Fig. 2, steps 2 and 4).
//!
//! Greedy merge orders can produce arbitrarily deep (left-deep chain)
//! trees on degenerate sink placements, and production nets reach
//! hundreds of thousands of sinks — so every traversal here (`leaves`,
//! `len`, `depth`, `to_hinted`, `from_tree`, `Clone`, `PartialEq`, and
//! crucially `Drop`) is explicit-stack iterative: stack usage is O(1) in
//! topology depth and a 200k-deep chain is handled on the default thread
//! stack. Only [`Topology::balanced`] stays recursive (its depth is
//! `log₂ n` by construction).

use crate::{ClockTree, NodeId};

/// A binary merge order over a net's sinks. Leaves are indices into the
/// caller's sink list.
///
/// # Example
///
/// ```
/// use sllt_tree::Topology;
/// let t = Topology::merge(
///     Topology::sink(0),
///     Topology::merge(Topology::sink(1), Topology::sink(2)),
/// );
/// assert_eq!(t.leaves(), vec![0, 1, 2]);
/// assert_eq!(t.depth(), 2);
/// ```
#[derive(Debug)]
pub enum Topology {
    /// A leaf: index into the sink list.
    Sink(usize),
    /// An internal merge of two subtrees.
    Merge(Box<Topology>, Box<Topology>),
}

impl Topology {
    /// Leaf constructor.
    pub fn sink(index: usize) -> Topology {
        Topology::Sink(index)
    }

    /// Merge constructor.
    pub fn merge(a: Topology, b: Topology) -> Topology {
        Topology::Merge(Box::new(a), Box::new(b))
    }

    /// Sink indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Topology::Sink(i) => out.push(*i),
                Topology::Merge(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        out
    }

    /// Number of sinks below this node.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Topology::Sink(_) => n += 1,
                Topology::Merge(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        n
    }

    /// `true` only for the degenerate case of zero sinks — which cannot be
    /// represented, so this is always `false`; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height of the merge tree (a single sink has depth 0).
    pub fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self, 0usize)];
        while let Some((t, d)) = stack.pop() {
            match t {
                Topology::Sink(_) => max = max.max(d),
                Topology::Merge(a, b) => {
                    stack.push((b, d + 1));
                    stack.push((a, d + 1));
                }
            }
        }
        max
    }

    /// A balanced merge order over sinks `0..n` in index order. Handy as a
    /// neutral baseline and in tests.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn balanced(n: usize) -> Topology {
        assert!(n > 0, "topology over zero sinks");
        fn build(lo: usize, hi: usize) -> Topology {
            if hi - lo == 1 {
                Topology::Sink(lo)
            } else {
                let mid = lo + (hi - lo) / 2;
                Topology::merge(build(lo, mid), build(mid, hi))
            }
        }
        build(0, n)
    }

    /// Converts into a [`HintedTopology`] with no position hints.
    pub fn to_hinted(&self) -> HintedTopology {
        enum W<'a> {
            Visit(&'a Topology),
            Build,
        }
        let mut work = vec![W::Visit(self)];
        let mut out: Vec<HintedTopology> = Vec::new();
        while let Some(w) = work.pop() {
            match w {
                W::Visit(Topology::Sink(i)) => out.push(HintedTopology::Sink(*i)),
                W::Visit(Topology::Merge(a, b)) => {
                    work.push(W::Build);
                    work.push(W::Visit(b));
                    work.push(W::Visit(a));
                }
                W::Build => {
                    let b = out.pop().expect("build follows two subtrees");
                    let a = out.pop().expect("build follows two subtrees");
                    out.push(HintedTopology::merge(a, b, None));
                }
            }
        }
        out.pop().expect("nonempty topology")
    }

    /// Extracts the merge order implied by a clock tree.
    ///
    /// The tree is interpreted structurally: sink leaves become
    /// [`Topology::Sink`] (carrying their `sink_index`), internal fan-out
    /// becomes left-deep merges when a node has more than two children, and
    /// childless Steiner/buffer leaves are dropped. Internal sinks are
    /// treated as a leaf merged with their descendants, so un-normalized
    /// trees extract sensibly too.
    ///
    /// Returns `None` when the tree contains no sinks.
    pub fn from_tree(tree: &ClockTree) -> Option<Topology> {
        let own = |id: NodeId| match tree.node(id).kind {
            crate::NodeKind::Sink { sink_index, .. } => Some(Topology::Sink(sink_index)),
            _ => None,
        };
        struct Frame<'t> {
            kids: crate::Children<'t>,
            acc: Option<Topology>,
        }
        let root = tree.root();
        let mut stack = vec![Frame {
            kids: tree.children(root),
            acc: own(root),
        }];
        loop {
            let next = stack
                .last_mut()
                .expect("stack nonempty until return")
                .kids
                .next();
            if let Some(c) = next {
                stack.push(Frame {
                    kids: tree.children(c),
                    acc: own(c),
                });
                continue;
            }
            let done = stack.pop().expect("checked");
            let Some(parent) = stack.last_mut() else {
                return done.acc;
            };
            if let Some(sub) = done.acc {
                parent.acc = Some(match parent.acc.take() {
                    None => sub,
                    Some(prev) => Topology::merge(prev, sub),
                });
            }
        }
    }
}

impl Clone for Topology {
    fn clone(&self) -> Topology {
        enum W<'a> {
            Visit(&'a Topology),
            Build,
        }
        let mut work = vec![W::Visit(self)];
        let mut out: Vec<Topology> = Vec::new();
        while let Some(w) = work.pop() {
            match w {
                W::Visit(Topology::Sink(i)) => out.push(Topology::Sink(*i)),
                W::Visit(Topology::Merge(a, b)) => {
                    work.push(W::Build);
                    work.push(W::Visit(b));
                    work.push(W::Visit(a));
                }
                W::Build => {
                    let b = out.pop().expect("build follows two subtrees");
                    let a = out.pop().expect("build follows two subtrees");
                    out.push(Topology::merge(a, b));
                }
            }
        }
        out.pop().expect("nonempty topology")
    }
}

impl PartialEq for Topology {
    fn eq(&self, other: &Topology) -> bool {
        let mut stack = vec![(self, other)];
        while let Some(pair) = stack.pop() {
            match pair {
                (Topology::Sink(i), Topology::Sink(j)) => {
                    if i != j {
                        return false;
                    }
                }
                (Topology::Merge(a1, b1), Topology::Merge(a2, b2)) => {
                    stack.push((b1, b2));
                    stack.push((a1, a2));
                }
                _ => return false,
            }
        }
        true
    }
}

impl Eq for Topology {}

impl Drop for Topology {
    /// Iterative drop: the derived drop glue recurses per merge level and
    /// blows the stack on chain topologies (a 200k-sink greedy order over
    /// degenerate placements is a 200k-deep chain). Children are detached
    /// onto an explicit stack so every node drops with leaf children only.
    fn drop(&mut self) {
        let mut stack: Vec<Topology> = Vec::new();
        let detach = |node: &mut Topology, stack: &mut Vec<Topology>| {
            if let Topology::Merge(a, b) = node {
                for child in [a, b] {
                    let c = std::mem::replace(&mut **child, Topology::Sink(0));
                    if matches!(c, Topology::Merge(..)) {
                        stack.push(c);
                    }
                }
            }
        };
        detach(self, &mut stack);
        while let Some(mut t) = stack.pop() {
            detach(&mut t, &mut stack);
            // `t` drops here with both children replaced by sinks, so its
            // own drop glue bottoms out immediately.
        }
    }
}

/// A merge order whose internal nodes optionally carry a *position hint* —
/// the location the merge point had in the tree the order was extracted
/// from. Hinted embeddings (CBS step 5) use the hint to stay close to the
/// source geometry whenever the skew bound leaves slack.
#[derive(Debug)]
pub enum HintedTopology {
    /// A leaf: index into the sink list.
    Sink(usize),
    /// A merge, optionally hinted with the original merge-point location.
    Merge(
        Box<HintedTopology>,
        Box<HintedTopology>,
        Option<sllt_geom::Point>,
    ),
}

impl HintedTopology {
    /// Merge constructor.
    pub fn merge(a: HintedTopology, b: HintedTopology, hint: Option<sllt_geom::Point>) -> Self {
        HintedTopology::Merge(Box::new(a), Box::new(b), hint)
    }

    /// Number of sinks below this node.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                HintedTopology::Sink(_) => n += 1,
                HintedTopology::Merge(a, b, _) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        n
    }

    /// Always `false`; provided for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sink indices in left-to-right order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                HintedTopology::Sink(i) => out.push(*i),
                HintedTopology::Merge(a, b, _) => {
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        out
    }

    /// Extracts the hinted merge order implied by a clock tree: the same
    /// structural interpretation as [`Topology::from_tree`], with every
    /// merge hinted at the position of the tree node it came from.
    ///
    /// Returns `None` when the tree contains no sinks.
    pub fn from_tree(tree: &ClockTree) -> Option<HintedTopology> {
        let own = |id: NodeId| match tree.node(id).kind {
            crate::NodeKind::Sink { sink_index, .. } => Some(HintedTopology::Sink(sink_index)),
            _ => None,
        };
        struct Frame<'t> {
            id: NodeId,
            kids: crate::Children<'t>,
            acc: Option<HintedTopology>,
        }
        let root = tree.root();
        let mut stack = vec![Frame {
            id: root,
            kids: tree.children(root),
            acc: own(root),
        }];
        loop {
            let next = stack
                .last_mut()
                .expect("stack nonempty until return")
                .kids
                .next();
            if let Some(c) = next {
                stack.push(Frame {
                    id: c,
                    kids: tree.children(c),
                    acc: own(c),
                });
                continue;
            }
            let done = stack.pop().expect("checked");
            let Some(parent) = stack.last_mut() else {
                return done.acc;
            };
            if let Some(sub) = done.acc {
                let hint = Some(tree.node(parent.id).pos);
                parent.acc = Some(match parent.acc.take() {
                    None => sub,
                    Some(prev) => HintedTopology::merge(prev, sub, hint),
                });
            }
        }
    }
}

impl Clone for HintedTopology {
    fn clone(&self) -> HintedTopology {
        enum W<'a> {
            Visit(&'a HintedTopology),
            Build(Option<sllt_geom::Point>),
        }
        let mut work = vec![W::Visit(self)];
        let mut out: Vec<HintedTopology> = Vec::new();
        while let Some(w) = work.pop() {
            match w {
                W::Visit(HintedTopology::Sink(i)) => out.push(HintedTopology::Sink(*i)),
                W::Visit(HintedTopology::Merge(a, b, hint)) => {
                    work.push(W::Build(*hint));
                    work.push(W::Visit(b));
                    work.push(W::Visit(a));
                }
                W::Build(hint) => {
                    let b = out.pop().expect("build follows two subtrees");
                    let a = out.pop().expect("build follows two subtrees");
                    out.push(HintedTopology::merge(a, b, hint));
                }
            }
        }
        out.pop().expect("nonempty topology")
    }
}

impl PartialEq for HintedTopology {
    fn eq(&self, other: &HintedTopology) -> bool {
        let mut stack = vec![(self, other)];
        while let Some(pair) = stack.pop() {
            match pair {
                (HintedTopology::Sink(i), HintedTopology::Sink(j)) => {
                    if i != j {
                        return false;
                    }
                }
                (HintedTopology::Merge(a1, b1, h1), HintedTopology::Merge(a2, b2, h2)) => {
                    if h1 != h2 {
                        return false;
                    }
                    stack.push((b1, b2));
                    stack.push((a1, a2));
                }
                _ => return false,
            }
        }
        true
    }
}

impl Drop for HintedTopology {
    /// Iterative drop; see [`Topology::drop`].
    fn drop(&mut self) {
        let mut stack: Vec<HintedTopology> = Vec::new();
        let detach = |node: &mut HintedTopology, stack: &mut Vec<HintedTopology>| {
            if let HintedTopology::Merge(a, b, _) = node {
                for child in [a, b] {
                    let c = std::mem::replace(&mut **child, HintedTopology::Sink(0));
                    if matches!(c, HintedTopology::Merge(..)) {
                        stack.push(c);
                    }
                }
            }
        };
        detach(self, &mut stack);
        while let Some(mut t) = stack.pop() {
            detach(&mut t, &mut stack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    #[test]
    fn balanced_topology_shape() {
        let t = Topology::balanced(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaves(), vec![0, 1, 2, 3]);
        let t7 = Topology::balanced(7);
        assert_eq!(t7.len(), 7);
        assert_eq!(t7.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "zero sinks")]
    fn balanced_rejects_zero() {
        let _ = Topology::balanced(0);
    }

    #[test]
    fn extraction_from_binary_tree() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        t.add_sink(a, Point::new(2.0, 1.0), 1.0); // sink_index 0
        t.add_sink(a, Point::new(2.0, -1.0), 1.0); // sink_index 1
        t.add_sink(t.root(), Point::new(-1.0, 0.0), 1.0); // sink_index 2
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo.len(), 3);
        let mut leaves = topo.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2]);
    }

    #[test]
    fn extraction_skips_barren_steiner_branches() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        t.add_steiner(a, Point::new(2.0, 0.0)); // barren
        t.add_sink(t.root(), Point::new(-1.0, 0.0), 1.0);
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo, Topology::Sink(0));
    }

    #[test]
    fn extraction_handles_internal_sinks() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let s = t.add_sink(t.root(), Point::new(1.0, 0.0), 1.0); // index 0
        t.add_sink(s, Point::new(2.0, 0.0), 1.0); // index 1
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo.len(), 2);
        assert_eq!(topo.leaves(), vec![0, 1]);
    }

    #[test]
    fn extraction_of_sinkless_tree_is_none() {
        let t = ClockTree::new(Point::ORIGIN);
        assert!(Topology::from_tree(&t).is_none());
    }

    #[test]
    fn hinted_extraction_carries_positions() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(3.0, 4.0));
        t.add_sink(a, Point::new(5.0, 4.0), 1.0);
        t.add_sink(a, Point::new(3.0, 7.0), 1.0);
        let h = HintedTopology::from_tree(&t).unwrap();
        match &h {
            HintedTopology::Merge(_, _, Some(p)) => assert!(p.approx_eq(Point::new(3.0, 4.0))),
            other => panic!("expected hinted merge, got {other:?}"),
        }
    }

    #[test]
    fn to_hinted_has_no_hints() {
        let t = Topology::balanced(3);
        let h = t.to_hinted();
        assert_eq!(h.len(), 3);
        assert_eq!(h.leaves(), t.leaves());
        fn no_hints(h: &HintedTopology) -> bool {
            match h {
                HintedTopology::Sink(_) => true,
                HintedTopology::Merge(a, b, hint) => hint.is_none() && no_hints(a) && no_hints(b),
            }
        }
        assert!(no_hints(&h));
    }

    #[test]
    fn fat_nodes_extract_left_deep() {
        let mut t = ClockTree::new(Point::ORIGIN);
        for i in 0..4 {
            t.add_sink(t.root(), Point::new(i as f64, 1.0), 1.0);
        }
        let topo = Topology::from_tree(&t).unwrap();
        assert_eq!(topo.len(), 4);
        assert_eq!(topo.depth(), 3, "left-deep merge of 4 leaves");
    }

    #[test]
    fn clone_and_eq_are_structural() {
        let t = Topology::merge(
            Topology::sink(0),
            Topology::merge(Topology::sink(1), Topology::sink(2)),
        );
        let c = t.clone();
        assert_eq!(t, c);
        // Mirror-image structure over the same leaves is not equal.
        let mirrored = Topology::merge(
            Topology::merge(Topology::sink(0), Topology::sink(1)),
            Topology::sink(2),
        );
        assert_ne!(t, mirrored);
        assert_ne!(t, Topology::sink(0));
        let h = t.to_hinted();
        assert_eq!(h, h.clone());
    }

    /// A left-deep chain over `n` sinks: sink 0 at the bottom, each merge
    /// adding the next index on the right.
    fn chain(n: usize) -> Topology {
        let mut t = Topology::Sink(0);
        for i in 1..n {
            t = Topology::merge(t, Topology::Sink(i));
        }
        t
    }

    /// Regression: building, traversing and dropping a 200k-deep chain
    /// must not overflow the stack (derived drop glue and the old
    /// recursive traversals both did).
    #[test]
    fn chain_200k_deep_builds_traverses_and_drops() {
        const N: usize = 200_000;
        let t = chain(N);
        assert_eq!(t.len(), N);
        assert_eq!(t.depth(), N - 1);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), N);
        assert_eq!(leaves[0], 0);
        assert_eq!(leaves[N - 1], N - 1);
        let h = t.to_hinted();
        assert_eq!(h.len(), N);
        let t2 = t.clone();
        assert_eq!(t, t2);
        drop(t);
        drop(t2);
        drop(h); // HintedTopology drop must be iterative too
    }

    /// Same regression for a hinted chain built directly.
    #[test]
    fn hinted_chain_200k_deep_drops() {
        const N: usize = 200_000;
        let mut h = HintedTopology::Sink(0);
        for i in 1..N {
            h = HintedTopology::merge(h, HintedTopology::Sink(i), Some(Point::ORIGIN));
        }
        assert_eq!(h.len(), N);
        assert_eq!(h.leaves().len(), N);
        drop(h);
    }
}
