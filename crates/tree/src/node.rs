//! Clock tree nodes.

use crate::tree::{Children, ClockTree};
use sllt_geom::Point;
use std::fmt;

/// Index of a node inside a [`crate::ClockTree`] arena.
///
/// Ids are only meaningful relative to the tree that issued them; they are
/// stable for the lifetime of the tree (structural edits mark nodes dead
/// rather than reindexing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a clock tree node represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// The clock source (tree root).
    Source,
    /// A load pin (flip-flop clock pin or a lower-level buffer input).
    /// Carries the pin capacitance in fF and the index of the sink in the
    /// original net's sink list.
    Sink {
        /// Pin capacitance, fF.
        cap_ff: f64,
        /// Position in the net's sink list; lets algorithms that reorder
        /// or rebuild trees keep referring to the caller's sinks.
        sink_index: usize,
    },
    /// A Steiner (branch) point with no electrical load of its own.
    Steiner,
    /// An inserted clock buffer; `cell` indexes the buffer library.
    Buffer {
        /// Index into the [`sllt_timing::BufferLibrary`] cell list.
        cell: usize,
    },
}

impl NodeKind {
    /// Whether this node is a load pin.
    #[inline]
    pub fn is_sink(&self) -> bool {
        matches!(self, NodeKind::Sink { .. })
    }

    /// Whether this node is a Steiner point.
    #[inline]
    pub fn is_steiner(&self) -> bool {
        matches!(self, NodeKind::Steiner)
    }

    /// Whether this node is a buffer.
    #[inline]
    pub fn is_buffer(&self) -> bool {
        matches!(self, NodeKind::Buffer { .. })
    }
}

/// A borrowed view over one live node of a [`ClockTree`].
///
/// The tree stores nodes column-wise (structure of arrays); this view
/// copies the two hot scalar columns (`pos`, `kind`) into public fields —
/// so `tree.node(id).pos` reads exactly like it did when nodes were stored
/// as structs — and answers structural queries (`parent`, `children`,
/// `edge_len`) by looking back into the arena.
#[derive(Clone, Copy)]
pub struct Node<'t> {
    pub(crate) tree: &'t ClockTree,
    pub(crate) id: NodeId,
    /// Placement-plane location, µm.
    pub pos: Point,
    /// Node role.
    pub kind: NodeKind,
}

impl<'t> Node<'t> {
    /// The id this view was taken at.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Parent id, `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.tree.parent_of(self.id)
    }

    /// Child ids, in insertion order.
    #[inline]
    pub fn children(&self) -> Children<'t> {
        self.tree.children(self.id)
    }

    /// Routed wire length to the parent, µm (0 for the root).
    #[inline]
    pub fn edge_len(&self) -> f64 {
        self.tree.edge_len_of(self.id)
    }

    /// Pin capacitance for sinks, 0 otherwise.
    #[inline]
    pub fn cap_ff(&self) -> f64 {
        match self.kind {
            NodeKind::Sink { cap_ff, .. } => cap_ff,
            _ => 0.0,
        }
    }
}

impl fmt::Debug for Node<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("pos", &self.pos)
            .field("kind", &self.kind)
            .field("parent", &self.parent())
            .field("edge_len", &self.edge_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Sink {
            cap_ff: 1.0,
            sink_index: 0
        }
        .is_sink());
        assert!(NodeKind::Steiner.is_steiner());
        assert!(NodeKind::Buffer { cell: 0 }.is_buffer());
        assert!(!NodeKind::Source.is_sink());
    }

    #[test]
    fn node_id_displays_compactly() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn view_exposes_structure() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let s = t.add_steiner(t.root(), Point::new(3.0, 0.0));
        let k = t.add_sink(s, Point::new(3.0, 4.0), 1.5);
        let view = t.node(k);
        assert_eq!(view.id(), k);
        assert_eq!(view.parent(), Some(s));
        assert_eq!(view.edge_len(), 4.0);
        assert_eq!(view.cap_ff(), 1.5);
        assert!(view.children().is_empty());
        let dbg = format!("{view:?}");
        assert!(dbg.contains("pos") && dbg.contains("edge_len"));
    }
}
