//! The arena-backed clock tree.

use crate::node::{Node, NodeId, NodeKind};
use sllt_geom::{Point, EPS};
use sllt_timing::RcTree;
use std::error::Error;
use std::fmt;

/// A rooted rectilinear Steiner tree distributing a clock from a source to
/// a set of sinks.
///
/// Nodes live in an arena; structural edits mark nodes *dead* instead of
/// reindexing, so [`NodeId`]s stay stable. Call [`ClockTree::compact`] to
/// drop dead nodes when the churn is done.
///
/// Every edge stores a routed length which must be at least the Manhattan
/// distance between its endpoints; the excess is detour (snaking) wire,
/// which bounded-skew embeddings use to slow fast paths down.
///
/// # Example
///
/// ```
/// use sllt_geom::Point;
/// use sllt_tree::ClockTree;
///
/// let mut t = ClockTree::new(Point::new(0.0, 0.0));
/// let tap = t.add_steiner(t.root(), Point::new(5.0, 0.0));
/// t.add_sink(tap, Point::new(10.0, 5.0), 1.2);
/// t.add_sink(tap, Point::new(10.0, -5.0), 1.2);
/// assert_eq!(t.sinks().len(), 2);
/// assert_eq!(t.wirelength(), 5.0 + 10.0 + 10.0);
/// t.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTree {
    nodes: Vec<Node>,
    root: NodeId,
}

/// Structural defects reported by [`ClockTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// An edge is shorter than the Manhattan distance it must cover.
    EdgeTooShort {
        /// The child endpoint of the offending edge.
        node: NodeId,
        /// Stored routed length.
        len: f64,
        /// Manhattan distance between the endpoints.
        dist: f64,
    },
    /// A node is unreachable from the root (broken parent chain).
    Unreachable(NodeId),
    /// Parent/child links disagree.
    LinkMismatch(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EdgeTooShort { node, len, dist } => write!(
                f,
                "edge into {node} has routed length {len:.4} shorter than manhattan distance {dist:.4}"
            ),
            TreeError::Unreachable(n) => write!(f, "node {n} is unreachable from the root"),
            TreeError::LinkMismatch(n) => write!(f, "parent/child links disagree at {n}"),
        }
    }
}

impl Error for TreeError {}

impl ClockTree {
    /// Creates a tree containing only the clock source at `source_pos`.
    pub fn new(source_pos: Point) -> Self {
        ClockTree {
            nodes: vec![Node {
                pos: source_pos,
                kind: NodeKind::Source,
                parent: None,
                children: Vec::new(),
                edge_len: 0.0,
                alive: true,
            }],
            root: NodeId(0),
        }
    }

    /// The root (clock source) id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Root position.
    #[inline]
    pub fn source_pos(&self) -> Point {
        self.nodes[self.root.0].pos
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or refers to a dead node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.0];
        assert!(n.alive, "access to dead node {id}");
        n
    }

    /// Whether `id` refers to a live node.
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.0 < self.nodes.len() && self.nodes[id.0].alive
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Whether the tree is just the bare source.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Ids of all live nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i))
    }

    /// Ids of all live sinks, in arena order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.nodes[id.0].kind.is_sink())
            .collect()
    }

    fn attach(&mut self, parent: NodeId, pos: Point, kind: NodeKind) -> NodeId {
        assert!(self.is_alive(parent), "attach under dead node {parent}");
        let id = NodeId(self.nodes.len());
        let edge_len = self.nodes[parent.0].pos.dist(pos);
        self.nodes.push(Node {
            pos,
            kind,
            parent: Some(parent),
            children: Vec::new(),
            edge_len,
            alive: true,
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Adds a sink with pin capacitance `cap_ff` under `parent`; the edge
    /// length defaults to the Manhattan distance. The sink index defaults
    /// to the running count of sinks.
    pub fn add_sink(&mut self, parent: NodeId, pos: Point, cap_ff: f64) -> NodeId {
        let sink_index = self.sinks().len();
        self.add_sink_indexed(parent, pos, cap_ff, sink_index)
    }

    /// Adds a sink carrying an explicit external index (see
    /// [`NodeKind::Sink`]).
    pub fn add_sink_indexed(
        &mut self,
        parent: NodeId,
        pos: Point,
        cap_ff: f64,
        sink_index: usize,
    ) -> NodeId {
        self.attach(parent, pos, NodeKind::Sink { cap_ff, sink_index })
    }

    /// Adds a Steiner point under `parent`.
    pub fn add_steiner(&mut self, parent: NodeId, pos: Point) -> NodeId {
        self.attach(parent, pos, NodeKind::Steiner)
    }

    /// Adds a buffer (library cell index `cell`) under `parent`.
    pub fn add_buffer(&mut self, parent: NodeId, pos: Point, cell: usize) -> NodeId {
        self.attach(parent, pos, NodeKind::Buffer { cell })
    }

    /// Overrides the routed length of the edge into `node`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is shorter than the Manhattan distance the edge
    /// must cover (beyond [`EPS`]) or when called on the root.
    pub fn set_edge_len(&mut self, node: NodeId, len: f64) {
        let p = self.node(node).parent.expect("root has no incoming edge");
        let dist = self.nodes[p.0].pos.dist(self.nodes[node.0].pos);
        assert!(
            len >= dist - EPS,
            "edge into {node} of routed length {len} cannot cover manhattan distance {dist}"
        );
        self.nodes[node.0].edge_len = len.max(dist);
    }

    /// Adds `extra` µm of detour (snaking) wire to the edge into `node`.
    ///
    /// # Panics
    ///
    /// Panics on negative `extra` or when called on the root.
    pub fn add_detour(&mut self, node: NodeId, extra: f64) {
        assert!(extra >= 0.0, "negative detour");
        assert!(
            self.node(node).parent.is_some(),
            "root has no incoming edge"
        );
        self.nodes[node.0].edge_len += extra;
    }

    /// Moves `node` (with its subtree) under `new_parent`, resetting the
    /// edge length to the Manhattan distance.
    ///
    /// # Panics
    ///
    /// Panics if the move would create a cycle (i.e. `new_parent` lies in
    /// `node`'s subtree), if `node` is the root, or either node is dead.
    pub fn reparent(&mut self, node: NodeId, new_parent: NodeId) {
        assert!(self.is_alive(node) && self.is_alive(new_parent));
        assert_ne!(node, self.root, "cannot reparent the root");
        // Cycle check: walk up from new_parent.
        let mut cur = Some(new_parent);
        while let Some(c) = cur {
            assert_ne!(c, node, "reparent would create a cycle at {node}");
            cur = self.nodes[c.0].parent;
        }
        let old = self.nodes[node.0].parent.expect("non-root has a parent");
        self.nodes[old.0].children.retain(|&c| c != node);
        self.nodes[new_parent.0].children.push(node);
        self.nodes[node.0].parent = Some(new_parent);
        self.nodes[node.0].edge_len = self.nodes[new_parent.0].pos.dist(self.nodes[node.0].pos);
    }

    /// Moves a node to a new position, re-deriving the Manhattan length of
    /// the edges touching it (detours are discarded).
    pub fn move_node(&mut self, node: NodeId, pos: Point) {
        assert!(self.is_alive(node));
        self.nodes[node.0].pos = pos;
        if let Some(p) = self.nodes[node.0].parent {
            self.nodes[node.0].edge_len = self.nodes[p.0].pos.dist(pos);
        }
        let children = self.nodes[node.0].children.clone();
        for c in children {
            self.nodes[c.0].edge_len = pos.dist(self.nodes[c.0].pos);
        }
    }

    /// Marks a childless non-root node dead.
    ///
    /// # Panics
    ///
    /// Panics when the node still has children or is the root.
    pub(crate) fn remove_leaf(&mut self, node: NodeId) {
        assert!(
            self.nodes[node.0].children.is_empty(),
            "remove of internal node {node}"
        );
        assert_ne!(node, self.root);
        let p = self.nodes[node.0].parent.expect("non-root has a parent");
        self.nodes[p.0].children.retain(|&c| c != node);
        self.nodes[node.0].alive = false;
    }

    /// Splices a degree-1 internal node out of the tree: its single child
    /// is reattached to its parent with the two edge lengths summed.
    pub(crate) fn splice_out(&mut self, node: NodeId) {
        assert_ne!(node, self.root, "cannot splice the root");
        assert_eq!(
            self.nodes[node.0].children.len(),
            1,
            "splice of non-degree-1 node"
        );
        let child = self.nodes[node.0].children[0];
        let parent = self.nodes[node.0].parent.expect("non-root has a parent");
        let total = self.nodes[node.0].edge_len + self.nodes[child.0].edge_len;
        self.nodes[parent.0].children.retain(|&c| c != node);
        self.nodes[parent.0].children.push(child);
        self.nodes[child.0].parent = Some(parent);
        // Keep the routed length (it is still wired through the old point)
        // unless that is shorter than the direct distance, which cannot
        // happen by the triangle inequality.
        self.nodes[child.0].edge_len = total;
        self.nodes[node.0].alive = false;
    }

    /// Parents-before-children order over live nodes.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = vec![self.root];
        let mut i = 0;
        while i < order.len() {
            let v = order[i];
            order.extend(self.nodes[v.0].children.iter().copied());
            i += 1;
        }
        order
    }

    /// Total routed wirelength, µm.
    pub fn wirelength(&self) -> f64 {
        self.node_ids().map(|id| self.nodes[id.0].edge_len).sum()
    }

    /// Routed path length from the root to every live node, indexed by raw
    /// arena index (dead slots hold 0).
    pub fn path_lengths(&self) -> Vec<f64> {
        let mut pl = vec![0.0; self.nodes.len()];
        for id in self.topo_order() {
            if let Some(p) = self.nodes[id.0].parent {
                pl[id.0] = pl[p.0] + self.nodes[id.0].edge_len;
            }
        }
        pl
    }

    /// Checks structural invariants; see [`TreeError`].
    ///
    /// # Errors
    ///
    /// Returns the first defect found: undersized edges, unreachable
    /// nodes, or parent/child link mismatches.
    pub fn validate(&self) -> Result<(), TreeError> {
        let order = self.topo_order();
        if order.len() != self.len() {
            let reached: std::collections::HashSet<usize> = order.iter().map(|id| id.0).collect();
            let lost = self
                .node_ids()
                .find(|id| !reached.contains(&id.0))
                .expect("some node must be unreached");
            return Err(TreeError::Unreachable(lost));
        }
        for id in self.node_ids() {
            let n = &self.nodes[id.0];
            if let Some(p) = n.parent {
                if !self.nodes[p.0].children.contains(&id) {
                    return Err(TreeError::LinkMismatch(id));
                }
                let dist = self.nodes[p.0].pos.dist(n.pos);
                if n.edge_len < dist - 1e-6 {
                    return Err(TreeError::EdgeTooShort {
                        node: id,
                        len: n.edge_len,
                        dist,
                    });
                }
            }
            for &c in &n.children {
                if self.nodes[c.0].parent != Some(id) {
                    return Err(TreeError::LinkMismatch(c));
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the arena without dead nodes. Node ids are *not* preserved;
    /// sink identity survives via [`NodeKind::Sink::sink_index`].
    pub fn compact(&self) -> ClockTree {
        let mut out = ClockTree::new(self.source_pos());
        let mut map = vec![None; self.nodes.len()];
        map[self.root.0] = Some(out.root());
        for id in self.topo_order() {
            if id == self.root {
                continue;
            }
            let n = &self.nodes[id.0];
            let parent = map[n.parent.expect("non-root").0].expect("parent visited first");
            let new_id = out.attach(parent, n.pos, n.kind);
            out.nodes[new_id.0].edge_len = n.edge_len;
            map[id.0] = Some(new_id);
        }
        out
    }

    /// Changes the role of a node. Used by the leaf-sink rule and by CTS
    /// passes that promote Steiner points to buffer locations.
    ///
    /// # Panics
    ///
    /// Panics when `id` refers to a dead node.
    pub fn set_kind(&mut self, id: NodeId, kind: NodeKind) {
        assert!(self.is_alive(id), "set_kind on dead node {id}");
        self.nodes[id.0].kind = kind;
    }

    /// Lowers the tree into an [`RcTree`] for Elmore evaluation, using each
    /// node's own capacitance (sink pin caps; buffers and Steiner points
    /// are electrically transparent here — buffered evaluation belongs to
    /// the CTS layer, which splits the tree at buffers).
    ///
    /// Returns the RC tree plus the raw-arena-index → RC-index map.
    pub fn to_rc_tree(&self) -> (RcTree, Vec<Option<usize>>) {
        self.to_rc_tree_with(|n| n.cap_ff())
    }

    /// Like [`ClockTree::to_rc_tree`] with a custom per-node capacitance.
    pub fn to_rc_tree_with(&self, cap_of: impl Fn(&Node) -> f64) -> (RcTree, Vec<Option<usize>>) {
        let order = self.topo_order();
        let mut map = vec![None; self.nodes.len()];
        for (rc_idx, id) in order.iter().enumerate() {
            map[id.0] = Some(rc_idx);
        }
        let mut rc = RcTree::new(order.len());
        for (rc_idx, id) in order.iter().enumerate() {
            let n = &self.nodes[id.0];
            rc.set_cap(rc_idx, cap_of(n));
            if let Some(p) = n.parent {
                rc.set_parent(rc_idx, map[p.0].expect("parent mapped"), n.edge_len);
            }
        }
        (rc, map)
    }
}

impl fmt::Display for ClockTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockTree({} nodes, {} sinks, WL {:.2} µm)",
            self.len(),
            self.sinks().len(),
            self.wirelength()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClockTree {
        let mut t = ClockTree::new(Point::new(0.0, 0.0));
        let s = t.add_steiner(t.root(), Point::new(4.0, 0.0));
        t.add_sink(s, Point::new(6.0, 2.0), 1.0);
        t.add_sink(s, Point::new(6.0, -2.0), 1.0);
        t
    }

    #[test]
    fn construction_and_wirelength() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.wirelength(), 4.0 + 4.0 + 4.0);
        t.validate().unwrap();
    }

    #[test]
    fn path_lengths_accumulate() {
        let t = sample();
        let pl = t.path_lengths();
        let sinks = t.sinks();
        assert_eq!(pl[sinks[0].index()], 8.0);
        assert_eq!(pl[sinks[1].index()], 8.0);
    }

    #[test]
    fn detour_extends_edges() {
        let mut t = sample();
        let sinks = t.sinks();
        t.add_detour(sinks[0], 3.0);
        assert_eq!(t.path_lengths()[sinks[0].index()], 11.0);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot cover manhattan distance")]
    fn set_edge_len_rejects_short_edges() {
        let mut t = sample();
        let sinks = t.sinks();
        t.set_edge_len(sinks[0], 1.0);
    }

    #[test]
    fn reparent_moves_subtrees() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(2.0, 0.0));
        let b = t.add_steiner(t.root(), Point::new(0.0, 2.0));
        let s = t.add_sink(a, Point::new(3.0, 0.0), 1.0);
        t.reparent(s, b);
        assert_eq!(t.node(s).parent(), Some(b));
        assert!(t.node(a).children().is_empty());
        assert_eq!(t.node(s).edge_len(), 3.0 + 2.0);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn reparent_rejects_cycles() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        let b = t.add_steiner(a, Point::new(2.0, 0.0));
        t.reparent(a, b);
    }

    #[test]
    fn splice_out_preserves_routed_length() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let mid = t.add_steiner(t.root(), Point::new(5.0, 0.0));
        let s = t.add_sink(mid, Point::new(5.0, 5.0), 1.0);
        t.splice_out(mid);
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(s).parent(), Some(t.root()));
        // The wire still runs through (5, 0): length 10, not direct 10.
        assert_eq!(t.node(s).edge_len(), 10.0);
        t.validate().unwrap();
    }

    #[test]
    fn compact_drops_dead_nodes() {
        let mut t = sample();
        let sinks = t.sinks();
        t.remove_leaf(sinks[1]);
        assert_eq!(t.len(), 3);
        let c = t.compact();
        assert_eq!(c.len(), 3);
        assert_eq!(c.sinks().len(), 1);
        c.validate().unwrap();
        assert!((c.wirelength() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn move_node_recomputes_edges() {
        let mut t = sample();
        let steiner = t.node(t.root()).children()[0];
        t.move_node(steiner, Point::new(2.0, 0.0));
        assert_eq!(t.node(steiner).edge_len(), 2.0);
        let sinks = t.sinks();
        assert_eq!(t.node(sinks[0]).edge_len(), 6.0);
        t.validate().unwrap();
    }

    #[test]
    fn rc_lowering_matches_structure() {
        let t = sample();
        let (rc, map) = t.to_rc_tree();
        assert_eq!(rc.len(), 4);
        assert_eq!(rc.roots().len(), 1);
        let tech = sllt_timing::Technology::n28();
        let d = rc.elmore(&tech, 0.0);
        let sinks = t.sinks();
        let i0 = map[sinks[0].index()].unwrap();
        let i1 = map[sinks[1].index()].unwrap();
        assert!(
            (d[i0] - d[i1]).abs() < 1e-12,
            "symmetric sinks, equal delay"
        );
        assert!(d[i0] > 0.0);
    }

    #[test]
    fn validate_catches_unreachable() {
        // Build a tree, then manually break a link to simulate corruption.
        let mut t = sample();
        let sinks = t.sinks();
        // Orphan sink 0 by clearing its parent's child list entry.
        let p = t.node(sinks[0]).parent().unwrap();
        t.nodes[p.index()].children.retain(|&c| c != sinks[0]);
        assert!(matches!(t.validate(), Err(TreeError::Unreachable(_))));
    }

    #[test]
    fn display_summarizes() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("4 nodes") && s.contains("2 sinks"));
    }
}
