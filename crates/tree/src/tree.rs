//! The arena-backed clock tree.

use crate::node::{Node, NodeId, NodeKind};
use sllt_geom::{Point, EPS};
use sllt_timing::RcTree;
use std::error::Error;
use std::fmt;

/// Sentinel for "no node" in the flat link columns.
const NONE: u32 = u32::MAX;

/// One structural edit applied to a [`ClockTree`].
///
/// Edits are recorded in the tree's [mutation log](ClockTree::recent_edits)
/// as they happen; the links themselves are updated eagerly, so queries are
/// always exact — the log exists for auditability (equivalence tests replay
/// it against a reference implementation) and to drive lazy compaction
/// policies in callers that let dead slots pile up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeEdit {
    /// `node` (with its subtree) moved from under `from` to under `to`.
    Reparent {
        /// The moved node.
        node: NodeId,
        /// Its previous parent.
        from: NodeId,
        /// Its new parent.
        to: NodeId,
    },
    /// A childless `node` was detached from `parent` and marked dead.
    RemoveLeaf {
        /// The removed leaf.
        node: NodeId,
        /// The parent it was detached from.
        parent: NodeId,
    },
    /// Degree-1 `node` was spliced out: `child` was reattached to `parent`
    /// with the two edge lengths summed, and `node` marked dead.
    Splice {
        /// The spliced-out node.
        node: NodeId,
        /// Its parent, which adopted `child`.
        parent: NodeId,
        /// The single child that moved up.
        child: NodeId,
    },
}

/// Bounded log of structural edits; see [`TreeEdit`].
///
/// The log self-compacts lazily: once it exceeds [`MutationLog::CAP`]
/// entries, the oldest entries are folded into a running count. The total
/// number of edits ever applied is always exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MutationLog {
    edits: Vec<TreeEdit>,
    folded: u64,
}

impl MutationLog {
    /// Recent-edit window retained verbatim before folding kicks in.
    const CAP: usize = 256;

    fn push(&mut self, e: TreeEdit) {
        if self.edits.len() >= Self::CAP {
            // Lazy compaction: fold the older half into the counter so a
            // long edit churn neither grows without bound nor pays a
            // per-edit drain.
            let keep = Self::CAP / 2;
            let drop = self.edits.len() - keep;
            self.folded += drop as u64;
            self.edits.drain(..drop);
        }
        self.edits.push(e);
    }

    fn total(&self) -> u64 {
        self.folded + self.edits.len() as u64
    }
}

/// A rooted rectilinear Steiner tree distributing a clock from a source to
/// a set of sinks.
///
/// Nodes live in a structure-of-arrays arena: every per-node attribute is
/// its own flat column (`pos`, `kind`, `parent`, `edge_len`, …) and the
/// child lists are a first-child/next-sibling doubly-linked weave over
/// four `u32` columns instead of one heap `Vec<NodeId>` per node. A
/// million-node tree is a dozen allocations, traversals stream through
/// contiguous memory, and the structural edits the CBS pipeline performs
/// (`reparent`, `remove_leaf`, `splice_out`) are O(1) pointer splices that
/// preserve child insertion order exactly.
///
/// Structural edits mark nodes *dead* instead of reindexing, so
/// [`NodeId`]s stay stable; each edit is also recorded in a small
/// [mutation log](ClockTree::recent_edits) that compacts itself lazily.
/// Call [`ClockTree::compact`] to drop dead nodes when the churn is done.
///
/// Every edge stores a routed length which must be at least the Manhattan
/// distance between its endpoints; the excess is detour (snaking) wire,
/// which bounded-skew embeddings use to slow fast paths down.
///
/// # Example
///
/// ```
/// use sllt_geom::Point;
/// use sllt_tree::ClockTree;
///
/// let mut t = ClockTree::new(Point::new(0.0, 0.0));
/// let tap = t.add_steiner(t.root(), Point::new(5.0, 0.0));
/// t.add_sink(tap, Point::new(10.0, 5.0), 1.2);
/// t.add_sink(tap, Point::new(10.0, -5.0), 1.2);
/// assert_eq!(t.sinks().len(), 2);
/// assert_eq!(t.wirelength(), 5.0 + 10.0 + 10.0);
/// t.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTree {
    pos: Vec<Point>,
    kind: Vec<NodeKind>,
    /// Parent arena index; [`NONE`] for the root.
    parent: Vec<u32>,
    /// Routed wire length to the parent, µm; at least the Manhattan
    /// distance, the excess is detour wire.
    edge_len: Vec<f64>,
    first_child: Vec<u32>,
    last_child: Vec<u32>,
    prev_sib: Vec<u32>,
    next_sib: Vec<u32>,
    /// Child count, kept in step with the sibling weave for O(1) degree.
    degree: Vec<u32>,
    alive: Vec<bool>,
    /// Live node count (root included).
    live: usize,
    /// Live sink count, so default sink indices are O(1) to hand out.
    sink_count: usize,
    root: NodeId,
    log: MutationLog,
}

/// Iterator over the children of one node, in insertion order.
///
/// Yields [`NodeId`]s by value. Length is known up front (the arena tracks
/// per-node degree), so [`Children::len`] and [`Children::is_empty`] are
/// O(1); [`Children::to_vec`] materializes the ids when a snapshot is
/// needed across mutations.
#[derive(Clone)]
pub struct Children<'t> {
    tree: &'t ClockTree,
    next: u32,
    remaining: u32,
}

impl Children<'_> {
    /// Number of children, O(1).
    #[inline]
    #[allow(clippy::len_without_is_empty)] // is_empty provided below
    pub fn len(&self) -> usize {
        self.remaining as usize
    }

    /// Whether there are no children, O(1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Collects the child ids into a vector.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.clone().collect()
    }
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let id = self.next as usize;
        self.next = self.tree.next_sib[id];
        self.remaining -= 1;
        Some(NodeId(id))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for Children<'_> {}
impl std::iter::FusedIterator for Children<'_> {}

/// Structural defects reported by [`ClockTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// An edge is shorter than the Manhattan distance it must cover.
    EdgeTooShort {
        /// The child endpoint of the offending edge.
        node: NodeId,
        /// Stored routed length.
        len: f64,
        /// Manhattan distance between the endpoints.
        dist: f64,
    },
    /// A node is unreachable from the root (broken parent chain).
    Unreachable(NodeId),
    /// Parent/child links disagree.
    LinkMismatch(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EdgeTooShort { node, len, dist } => write!(
                f,
                "edge into {node} has routed length {len:.4} shorter than manhattan distance {dist:.4}"
            ),
            TreeError::Unreachable(n) => write!(f, "node {n} is unreachable from the root"),
            TreeError::LinkMismatch(n) => write!(f, "parent/child links disagree at {n}"),
        }
    }
}

impl Error for TreeError {}

impl ClockTree {
    /// Creates a tree containing only the clock source at `source_pos`.
    pub fn new(source_pos: Point) -> Self {
        ClockTree {
            pos: vec![source_pos],
            kind: vec![NodeKind::Source],
            parent: vec![NONE],
            edge_len: vec![0.0],
            first_child: vec![NONE],
            last_child: vec![NONE],
            prev_sib: vec![NONE],
            next_sib: vec![NONE],
            degree: vec![0],
            alive: vec![true],
            live: 1,
            sink_count: 0,
            root: NodeId(0),
            log: MutationLog::default(),
        }
    }

    /// Pre-sizes the arena columns for `nodes` total nodes. Purely an
    /// allocation hint; ids and semantics are unaffected.
    pub fn with_capacity(source_pos: Point, nodes: usize) -> Self {
        let mut t = ClockTree::new(source_pos);
        t.reserve(nodes.saturating_sub(1));
        t
    }

    /// Reserves room for `additional` more nodes across all columns.
    pub fn reserve(&mut self, additional: usize) {
        self.pos.reserve(additional);
        self.kind.reserve(additional);
        self.parent.reserve(additional);
        self.edge_len.reserve(additional);
        self.first_child.reserve(additional);
        self.last_child.reserve(additional);
        self.prev_sib.reserve(additional);
        self.next_sib.reserve(additional);
        self.degree.reserve(additional);
        self.alive.reserve(additional);
    }

    /// The root (clock source) id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Root position.
    #[inline]
    pub fn source_pos(&self) -> Point {
        self.pos[self.root.0]
    }

    /// Immutable view of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or refers to a dead node.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node<'_> {
        assert!(self.is_alive(id), "access to dead node {id}");
        Node {
            tree: self,
            id,
            pos: self.pos[id.0],
            kind: self.kind[id.0],
        }
    }

    /// Whether `id` refers to a live node.
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.0 < self.alive.len() && self.alive[id.0]
    }

    /// Number of live nodes, O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the tree is just the bare source.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Total arena slots, live and dead — the exclusive upper bound on
    /// `NodeId::index` values this tree has ever issued. Sizes lookup
    /// tables indexed by raw arena index (as [`ClockTree::path_lengths`]
    /// is).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.alive.len()
    }

    /// Bytes the arena's per-node columns occupy (capacity, not just
    /// live slots) — the memory-footprint gauge the flow engine samples
    /// per level. Excludes the mutation log and the struct header.
    pub fn arena_bytes(&self) -> usize {
        self.pos.capacity() * std::mem::size_of::<Point>()
            + self.kind.capacity() * std::mem::size_of::<NodeKind>()
            + self.parent.capacity() * 4
            + self.edge_len.capacity() * 8
            + (self.first_child.capacity()
                + self.last_child.capacity()
                + self.prev_sib.capacity()
                + self.next_sib.capacity()
                + self.degree.capacity())
                * 4
            + self.alive.capacity()
    }

    /// Number of dead arena slots awaiting [`ClockTree::compact`], O(1).
    #[inline]
    pub fn dead_len(&self) -> usize {
        self.arena_len() - self.live
    }

    /// Dead fraction of the arena, 0.0 when fully compact.
    pub fn fragmentation(&self) -> f64 {
        self.dead_len() as f64 / self.arena_len() as f64
    }

    /// The most recent structural edits, oldest first. The window is
    /// bounded: once it fills, older entries fold into
    /// [`ClockTree::edits_applied`] (lazy compaction of the log itself).
    pub fn recent_edits(&self) -> &[TreeEdit] {
        &self.log.edits
    }

    /// Total structural edits ever applied, including ones the log window
    /// has folded away.
    pub fn edits_applied(&self) -> u64 {
        self.log.total()
    }

    /// Ids of all live nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId(i))
    }

    /// Ids of all live sinks, in arena order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.kind[id.0].is_sink())
            .collect()
    }

    /// Parent id of a node, `None` for the root. The id must be live.
    #[inline]
    pub(crate) fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        let p = self.parent[id.0];
        (p != NONE).then_some(NodeId(p as usize))
    }

    /// Routed length of the edge into a node (0 for the root).
    #[inline]
    pub(crate) fn edge_len_of(&self, id: NodeId) -> f64 {
        self.edge_len[id.0]
    }

    /// Children of `id`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or refers to a dead node.
    #[inline]
    pub fn children(&self, id: NodeId) -> Children<'_> {
        assert!(self.is_alive(id), "children of dead node {id}");
        Children {
            tree: self,
            next: self.first_child[id.0],
            remaining: self.degree[id.0],
        }
    }

    /// Appends `child` at the tail of `parent`'s child list.
    fn link_tail(&mut self, parent: usize, child: usize) {
        let tail = self.last_child[parent];
        if tail == NONE {
            self.first_child[parent] = child as u32;
        } else {
            self.next_sib[tail as usize] = child as u32;
        }
        self.prev_sib[child] = tail;
        self.next_sib[child] = NONE;
        self.last_child[parent] = child as u32;
        self.degree[parent] += 1;
    }

    /// Detaches `child` from its parent's child list (parent link itself is
    /// left for the caller to rewrite).
    fn unlink(&mut self, child: usize) {
        let parent = self.parent[child] as usize;
        let prev = self.prev_sib[child];
        let next = self.next_sib[child];
        if prev == NONE {
            self.first_child[parent] = next;
        } else {
            self.next_sib[prev as usize] = next;
        }
        if next == NONE {
            self.last_child[parent] = prev;
        } else {
            self.prev_sib[next as usize] = prev;
        }
        self.prev_sib[child] = NONE;
        self.next_sib[child] = NONE;
        self.degree[parent] -= 1;
    }

    pub(crate) fn attach(&mut self, parent: NodeId, pos: Point, kind: NodeKind) -> NodeId {
        assert!(self.is_alive(parent), "attach under dead node {parent}");
        assert!(
            self.alive.len() < NONE as usize,
            "arena exhausted its u32 index space"
        );
        let id = self.alive.len();
        let edge_len = self.pos[parent.0].dist(pos);
        self.pos.push(pos);
        self.kind.push(kind);
        self.parent.push(parent.0 as u32);
        self.edge_len.push(edge_len);
        self.first_child.push(NONE);
        self.last_child.push(NONE);
        self.prev_sib.push(NONE);
        self.next_sib.push(NONE);
        self.degree.push(0);
        self.alive.push(true);
        self.live += 1;
        if kind.is_sink() {
            self.sink_count += 1;
        }
        self.link_tail(parent.0, id);
        NodeId(id)
    }

    /// Overrides the routed length stored for the edge into `id` without
    /// the Manhattan check — crate-internal, for deserializers and
    /// `compact` which copy already-validated lengths verbatim.
    pub(crate) fn set_edge_len_raw(&mut self, id: NodeId, len: f64) {
        self.edge_len[id.0] = len;
    }

    /// Adds a sink with pin capacitance `cap_ff` under `parent`; the edge
    /// length defaults to the Manhattan distance. The sink index defaults
    /// to the running count of sinks.
    pub fn add_sink(&mut self, parent: NodeId, pos: Point, cap_ff: f64) -> NodeId {
        let sink_index = self.sink_count;
        self.add_sink_indexed(parent, pos, cap_ff, sink_index)
    }

    /// Adds a sink carrying an explicit external index (see
    /// [`NodeKind::Sink`]).
    pub fn add_sink_indexed(
        &mut self,
        parent: NodeId,
        pos: Point,
        cap_ff: f64,
        sink_index: usize,
    ) -> NodeId {
        self.attach(parent, pos, NodeKind::Sink { cap_ff, sink_index })
    }

    /// Adds a Steiner point under `parent`.
    pub fn add_steiner(&mut self, parent: NodeId, pos: Point) -> NodeId {
        self.attach(parent, pos, NodeKind::Steiner)
    }

    /// Adds a buffer (library cell index `cell`) under `parent`.
    pub fn add_buffer(&mut self, parent: NodeId, pos: Point, cell: usize) -> NodeId {
        self.attach(parent, pos, NodeKind::Buffer { cell })
    }

    /// Overrides the routed length of the edge into `node`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is shorter than the Manhattan distance the edge
    /// must cover (beyond [`EPS`]) or when called on the root.
    pub fn set_edge_len(&mut self, node: NodeId, len: f64) {
        let p = self.node(node).parent().expect("root has no incoming edge");
        let dist = self.pos[p.0].dist(self.pos[node.0]);
        assert!(
            len >= dist - EPS,
            "edge into {node} of routed length {len} cannot cover manhattan distance {dist}"
        );
        self.edge_len[node.0] = len.max(dist);
    }

    /// Adds `extra` µm of detour (snaking) wire to the edge into `node`.
    ///
    /// # Panics
    ///
    /// Panics on negative `extra` or when called on the root.
    pub fn add_detour(&mut self, node: NodeId, extra: f64) {
        assert!(extra >= 0.0, "negative detour");
        assert!(
            self.node(node).parent().is_some(),
            "root has no incoming edge"
        );
        self.edge_len[node.0] += extra;
    }

    /// Moves `node` (with its subtree) under `new_parent`, resetting the
    /// edge length to the Manhattan distance. The node is appended at the
    /// tail of its new parent's child list.
    ///
    /// # Panics
    ///
    /// Panics if the move would create a cycle (i.e. `new_parent` lies in
    /// `node`'s subtree), if `node` is the root, or either node is dead.
    pub fn reparent(&mut self, node: NodeId, new_parent: NodeId) {
        assert!(self.is_alive(node) && self.is_alive(new_parent));
        assert_ne!(node, self.root, "cannot reparent the root");
        // Cycle check: walk up from new_parent.
        let mut cur = new_parent.0 as u32;
        loop {
            assert_ne!(
                cur as usize, node.0,
                "reparent would create a cycle at {node}"
            );
            cur = self.parent[cur as usize];
            if cur == NONE {
                break;
            }
        }
        let old = NodeId(self.parent[node.0] as usize);
        self.unlink(node.0);
        self.link_tail(new_parent.0, node.0);
        self.parent[node.0] = new_parent.0 as u32;
        self.edge_len[node.0] = self.pos[new_parent.0].dist(self.pos[node.0]);
        self.log.push(TreeEdit::Reparent {
            node,
            from: old,
            to: new_parent,
        });
    }

    /// Moves a node to a new position, re-deriving the Manhattan length of
    /// the edges touching it (detours are discarded).
    pub fn move_node(&mut self, node: NodeId, pos: Point) {
        assert!(self.is_alive(node));
        self.pos[node.0] = pos;
        let p = self.parent[node.0];
        if p != NONE {
            self.edge_len[node.0] = self.pos[p as usize].dist(pos);
        }
        let mut c = self.first_child[node.0];
        while c != NONE {
            self.edge_len[c as usize] = pos.dist(self.pos[c as usize]);
            c = self.next_sib[c as usize];
        }
    }

    /// Marks a childless non-root node dead.
    ///
    /// # Panics
    ///
    /// Panics when the node still has children or is the root.
    pub(crate) fn remove_leaf(&mut self, node: NodeId) {
        assert_eq!(self.degree[node.0], 0, "remove of internal node {node}");
        assert_ne!(node, self.root);
        let p = NodeId(self.parent[node.0] as usize);
        self.unlink(node.0);
        self.alive[node.0] = false;
        self.live -= 1;
        if self.kind[node.0].is_sink() {
            self.sink_count -= 1;
        }
        self.log.push(TreeEdit::RemoveLeaf { node, parent: p });
    }

    /// Splices a degree-1 internal node out of the tree: its single child
    /// is reattached to its parent (at the tail of the child list) with
    /// the two edge lengths summed.
    pub(crate) fn splice_out(&mut self, node: NodeId) {
        assert_ne!(node, self.root, "cannot splice the root");
        assert_eq!(self.degree[node.0], 1, "splice of non-degree-1 node");
        let child = NodeId(self.first_child[node.0] as usize);
        let parent = NodeId(self.parent[node.0] as usize);
        // Keep the routed length (it is still wired through the old point)
        // unless that is shorter than the direct distance, which cannot
        // happen by the triangle inequality.
        let total = self.edge_len[node.0] + self.edge_len[child.0];
        self.unlink(child.0);
        self.unlink(node.0);
        self.link_tail(parent.0, child.0);
        self.parent[child.0] = parent.0 as u32;
        self.edge_len[child.0] = total;
        self.alive[node.0] = false;
        self.live -= 1;
        if self.kind[node.0].is_sink() {
            self.sink_count -= 1;
        }
        self.log.push(TreeEdit::Splice {
            node,
            parent,
            child,
        });
    }

    /// Parents-before-children order over live nodes.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.live);
        order.push(self.root);
        let mut i = 0;
        while i < order.len() {
            let v = order[i];
            let mut c = self.first_child[v.0];
            while c != NONE {
                order.push(NodeId(c as usize));
                c = self.next_sib[c as usize];
            }
            i += 1;
        }
        order
    }

    /// Total routed wirelength, µm.
    pub fn wirelength(&self) -> f64 {
        self.alive
            .iter()
            .zip(&self.edge_len)
            .filter(|(&a, _)| a)
            .map(|(_, &e)| e)
            .sum()
    }

    /// Routed path length from the root to every live node, indexed by raw
    /// arena index (dead slots hold 0).
    pub fn path_lengths(&self) -> Vec<f64> {
        let mut pl = vec![0.0; self.arena_len()];
        for id in self.topo_order() {
            let p = self.parent[id.0];
            if p != NONE {
                pl[id.0] = pl[p as usize] + self.edge_len[id.0];
            }
        }
        pl
    }

    /// Checks structural invariants; see [`TreeError`].
    ///
    /// # Errors
    ///
    /// Returns the first defect found: undersized edges, unreachable
    /// nodes, or parent/child link mismatches.
    pub fn validate(&self) -> Result<(), TreeError> {
        let order = self.topo_order();
        if order.len() != self.len() {
            let reached: std::collections::HashSet<usize> = order.iter().map(|id| id.0).collect();
            let lost = self
                .node_ids()
                .find(|id| !reached.contains(&id.0))
                .expect("some node must be unreached");
            return Err(TreeError::Unreachable(lost));
        }
        for id in self.node_ids() {
            let i = id.0;
            let p = self.parent[i];
            if p != NONE {
                // The sibling weave must agree with the parent column in
                // both directions.
                let pi = p as usize;
                let prev = self.prev_sib[i];
                let next = self.next_sib[i];
                let head_ok = if prev == NONE {
                    self.first_child[pi] == i as u32
                } else {
                    self.next_sib[prev as usize] == i as u32 && self.parent[prev as usize] == p
                };
                let tail_ok = if next == NONE {
                    self.last_child[pi] == i as u32
                } else {
                    self.prev_sib[next as usize] == i as u32 && self.parent[next as usize] == p
                };
                if !head_ok || !tail_ok || !self.alive[pi] {
                    return Err(TreeError::LinkMismatch(id));
                }
                let dist = self.pos[pi].dist(self.pos[i]);
                if self.edge_len[i] < dist - 1e-6 {
                    return Err(TreeError::EdgeTooShort {
                        node: id,
                        len: self.edge_len[i],
                        dist,
                    });
                }
            }
            // Degree column vs. actual weave length, and child back-links.
            let mut seen = 0u32;
            let mut c = self.first_child[i];
            while c != NONE {
                if self.parent[c as usize] != i as u32 || !self.alive[c as usize] {
                    return Err(TreeError::LinkMismatch(NodeId(c as usize)));
                }
                seen += 1;
                if seen > self.degree[i] {
                    break;
                }
                c = self.next_sib[c as usize];
            }
            if seen != self.degree[i] {
                return Err(TreeError::LinkMismatch(id));
            }
        }
        Ok(())
    }

    /// Rebuilds the arena without dead nodes. Node ids are *not* preserved;
    /// sink identity survives via [`NodeKind::Sink::sink_index`]. The new
    /// tree starts with an empty mutation log.
    pub fn compact(&self) -> ClockTree {
        let mut out = ClockTree::with_capacity(self.source_pos(), self.live);
        let mut map = vec![NONE; self.arena_len()];
        map[self.root.0] = out.root().0 as u32;
        for id in self.topo_order() {
            if id == self.root {
                continue;
            }
            let parent = NodeId(map[self.parent[id.0] as usize] as usize);
            let new_id = out.attach(parent, self.pos[id.0], self.kind[id.0]);
            out.edge_len[new_id.0] = self.edge_len[id.0];
            map[id.0] = new_id.0 as u32;
        }
        out
    }

    /// Changes the role of a node. Used by the leaf-sink rule and by CTS
    /// passes that promote Steiner points to buffer locations.
    ///
    /// # Panics
    ///
    /// Panics when `id` refers to a dead node.
    pub fn set_kind(&mut self, id: NodeId, kind: NodeKind) {
        assert!(self.is_alive(id), "set_kind on dead node {id}");
        match (self.kind[id.0].is_sink(), kind.is_sink()) {
            (true, false) => self.sink_count -= 1,
            (false, true) => self.sink_count += 1,
            _ => {}
        }
        self.kind[id.0] = kind;
    }

    /// Lowers the tree into an [`RcTree`] for Elmore evaluation, using each
    /// node's own capacitance (sink pin caps; buffers and Steiner points
    /// are electrically transparent here — buffered evaluation belongs to
    /// the CTS layer, which splits the tree at buffers).
    ///
    /// Returns the RC tree plus the raw-arena-index → RC-index map.
    pub fn to_rc_tree(&self) -> (RcTree, Vec<Option<usize>>) {
        self.to_rc_tree_with(|n| n.cap_ff())
    }

    /// Like [`ClockTree::to_rc_tree`] with a custom per-node capacitance.
    pub fn to_rc_tree_with(
        &self,
        cap_of: impl Fn(&Node<'_>) -> f64,
    ) -> (RcTree, Vec<Option<usize>>) {
        let order = self.topo_order();
        let mut map = vec![None; self.arena_len()];
        for (rc_idx, id) in order.iter().enumerate() {
            map[id.0] = Some(rc_idx);
        }
        let mut rc = RcTree::new(order.len());
        for (rc_idx, id) in order.iter().enumerate() {
            let n = self.node(*id);
            rc.set_cap(rc_idx, cap_of(&n));
            if let Some(p) = n.parent() {
                rc.set_parent(rc_idx, map[p.0].expect("parent mapped"), n.edge_len());
            }
        }
        (rc, map)
    }
}

impl fmt::Display for ClockTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockTree({} nodes, {} sinks, WL {:.2} µm)",
            self.len(),
            self.sinks().len(),
            self.wirelength()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClockTree {
        let mut t = ClockTree::new(Point::new(0.0, 0.0));
        let s = t.add_steiner(t.root(), Point::new(4.0, 0.0));
        t.add_sink(s, Point::new(6.0, 2.0), 1.0);
        t.add_sink(s, Point::new(6.0, -2.0), 1.0);
        t
    }

    #[test]
    fn construction_and_wirelength() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.wirelength(), 4.0 + 4.0 + 4.0);
        t.validate().unwrap();
    }

    #[test]
    fn path_lengths_accumulate() {
        let t = sample();
        let pl = t.path_lengths();
        let sinks = t.sinks();
        assert_eq!(pl[sinks[0].index()], 8.0);
        assert_eq!(pl[sinks[1].index()], 8.0);
    }

    #[test]
    fn detour_extends_edges() {
        let mut t = sample();
        let sinks = t.sinks();
        t.add_detour(sinks[0], 3.0);
        assert_eq!(t.path_lengths()[sinks[0].index()], 11.0);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot cover manhattan distance")]
    fn set_edge_len_rejects_short_edges() {
        let mut t = sample();
        let sinks = t.sinks();
        t.set_edge_len(sinks[0], 1.0);
    }

    #[test]
    fn reparent_moves_subtrees() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(2.0, 0.0));
        let b = t.add_steiner(t.root(), Point::new(0.0, 2.0));
        let s = t.add_sink(a, Point::new(3.0, 0.0), 1.0);
        t.reparent(s, b);
        assert_eq!(t.node(s).parent(), Some(b));
        assert!(t.node(a).children().is_empty());
        assert_eq!(t.node(s).edge_len(), 3.0 + 2.0);
        t.validate().unwrap();
        assert_eq!(
            t.recent_edits(),
            &[TreeEdit::Reparent {
                node: s,
                from: a,
                to: b
            }]
        );
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn reparent_rejects_cycles() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        let b = t.add_steiner(a, Point::new(2.0, 0.0));
        t.reparent(a, b);
    }

    #[test]
    fn splice_out_preserves_routed_length() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let mid = t.add_steiner(t.root(), Point::new(5.0, 0.0));
        let s = t.add_sink(mid, Point::new(5.0, 5.0), 1.0);
        t.splice_out(mid);
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(s).parent(), Some(t.root()));
        // The wire still runs through (5, 0): length 10, not direct 10.
        assert_eq!(t.node(s).edge_len(), 10.0);
        t.validate().unwrap();
        assert_eq!(t.dead_len(), 1);
        assert!(t.fragmentation() > 0.0);
    }

    #[test]
    fn compact_drops_dead_nodes() {
        let mut t = sample();
        let sinks = t.sinks();
        t.remove_leaf(sinks[1]);
        assert_eq!(t.len(), 3);
        let c = t.compact();
        assert_eq!(c.len(), 3);
        assert_eq!(c.sinks().len(), 1);
        assert_eq!(c.dead_len(), 0);
        assert_eq!(c.edits_applied(), 0);
        c.validate().unwrap();
        assert!((c.wirelength() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn move_node_recomputes_edges() {
        let mut t = sample();
        let steiner = t.node(t.root()).children().next().unwrap();
        t.move_node(steiner, Point::new(2.0, 0.0));
        assert_eq!(t.node(steiner).edge_len(), 2.0);
        let sinks = t.sinks();
        assert_eq!(t.node(sinks[0]).edge_len(), 6.0);
        t.validate().unwrap();
    }

    #[test]
    fn rc_lowering_matches_structure() {
        let t = sample();
        let (rc, map) = t.to_rc_tree();
        assert_eq!(rc.len(), 4);
        assert_eq!(rc.roots().len(), 1);
        let tech = sllt_timing::Technology::n28();
        let d = rc.elmore(&tech, 0.0);
        let sinks = t.sinks();
        let i0 = map[sinks[0].index()].unwrap();
        let i1 = map[sinks[1].index()].unwrap();
        assert!(
            (d[i0] - d[i1]).abs() < 1e-12,
            "symmetric sinks, equal delay"
        );
        assert!(d[i0] > 0.0);
    }

    #[test]
    fn validate_catches_unreachable() {
        // Build a tree, then manually break the weave to simulate
        // corruption: orphan the steiner node by emptying the root's
        // child list while its parent column still points at the root.
        let mut t = sample();
        let r = t.root().index();
        t.first_child[r] = NONE;
        t.last_child[r] = NONE;
        t.degree[r] = 0;
        assert!(matches!(t.validate(), Err(TreeError::Unreachable(_))));
    }

    #[test]
    fn validate_catches_link_mismatch() {
        // Point a child's parent column somewhere else entirely: the node
        // is still reached through the root's weave, but the back-link
        // disagrees.
        let mut t = sample();
        let sinks = t.sinks();
        t.parent[sinks[0].index()] = sinks[1].index() as u32;
        assert!(matches!(t.validate(), Err(TreeError::LinkMismatch(_))));
    }

    #[test]
    fn children_iterate_in_insertion_order() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let ids: Vec<NodeId> = (0..5)
            .map(|i| t.add_sink(t.root(), Point::new(i as f64, 1.0), 1.0))
            .collect();
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 5);
        assert_eq!(kids.to_vec(), ids);
        // Removing from the middle preserves the order of the rest.
        t.remove_leaf(ids[2]);
        let kids: Vec<NodeId> = t.children(t.root()).collect();
        assert_eq!(kids, vec![ids[0], ids[1], ids[3], ids[4]]);
        t.validate().unwrap();
    }

    #[test]
    fn default_sink_indices_track_live_sinks() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_sink(t.root(), Point::new(1.0, 0.0), 1.0);
        t.add_sink(t.root(), Point::new(2.0, 0.0), 1.0);
        match t.node(a).kind {
            NodeKind::Sink { sink_index, .. } => assert_eq!(sink_index, 0),
            _ => unreachable!(),
        }
        t.remove_leaf(a);
        // One live sink left, so the next default index is 1 — the same
        // running-count rule the Vec-children arena used.
        let c = t.add_sink(t.root(), Point::new(3.0, 0.0), 1.0);
        match t.node(c).kind {
            NodeKind::Sink { sink_index, .. } => assert_eq!(sink_index, 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mutation_log_folds_lazily() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        let b = t.add_steiner(t.root(), Point::new(0.0, 1.0));
        let s = t.add_sink(a, Point::new(1.0, 1.0), 1.0);
        let n = MutationLog::CAP as u64 + 100;
        for i in 0..n {
            t.reparent(s, if i % 2 == 0 { b } else { a });
        }
        assert_eq!(t.edits_applied(), n);
        assert!(t.recent_edits().len() <= MutationLog::CAP);
        // The window holds the newest edits.
        let last = *t.recent_edits().last().unwrap();
        assert!(matches!(last, TreeEdit::Reparent { node, .. } if node == s));
        t.validate().unwrap();
    }

    #[test]
    fn display_summarizes() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("4 nodes") && s.contains("2 sinks"));
    }
}
