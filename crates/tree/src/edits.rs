//! Structural clean-ups used between CBS phases.
//!
//! Paper Fig. 2: step 2 extracts the BST topology "in which the redundant
//! Steiner nodes will be eliminated"; step 4 traverses all nodes to
//! ensure "1) the tree should be a binary tree, and 2) the load pin nodes
//! must be leaf nodes". These passes implement exactly those rules.

use crate::{ClockTree, NodeId, NodeKind};

/// Removes redundant Steiner nodes: Steiner leaves are deleted and
/// pass-through (degree-1) Steiner nodes are spliced out, with routed
/// lengths preserved. Runs to a fixed point; returns how many nodes were
/// removed.
pub fn eliminate_redundant_steiner(tree: &mut ClockTree) -> usize {
    let mut removed = 0;
    loop {
        let mut changed = false;
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for id in ids {
            if !tree.is_alive(id) || id == tree.root() {
                continue;
            }
            let n = tree.node(id);
            if !n.kind.is_steiner() {
                continue;
            }
            match n.children().len() {
                0 => {
                    tree.remove_leaf(id);
                    removed += 1;
                    changed = true;
                }
                1 => {
                    tree.splice_out(id);
                    removed += 1;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// Ensures every load pin is a leaf (CBS step 4, rule 2): an internal sink
/// is replaced by a Steiner point at the same location, with the sink
/// re-attached below it through a zero-length edge. Returns the number of
/// sinks that were pushed down.
pub fn sinks_to_leaves(tree: &mut ClockTree) -> usize {
    let mut pushed = 0;
    let ids: Vec<NodeId> = tree.node_ids().collect();
    for id in ids {
        let n = tree.node(id);
        let (cap_ff, sink_index) = match n.kind {
            NodeKind::Sink { cap_ff, sink_index } if !n.children().is_empty() => {
                (cap_ff, sink_index)
            }
            _ => continue,
        };
        let pos = tree.node(id).pos;
        // Demote the internal node to a Steiner point…
        tree.set_kind(id, NodeKind::Steiner);
        // …and hang the actual load pin underneath with zero wire.
        tree.add_sink_indexed(id, pos, cap_ff, sink_index);
        pushed += 1;
    }
    pushed
}

/// Ensures no node has more than two children (CBS step 4, rule 1) by
/// inserting zero-length Steiner nodes. Children are paired by a blend of
/// proximity and subtree-depth similarity: the grouping becomes the merge
/// order of the downstream DME re-embedding, where merging a deep subtree
/// with a shallow neighbour costs detour wire. Returns the number of
/// Steiner nodes inserted.
pub fn binarize(tree: &mut ClockTree) -> usize {
    // Deepest routed path below each node (0 for leaves), used as the
    // delay proxy when pairing.
    let mut depth_below = vec![0.0f64; tree.arena_len()];
    let order = tree.topo_order();
    for &id in order.iter().rev() {
        if let Some(p) = tree.node(id).parent() {
            let cand = depth_below[id.index()] + tree.node(id).edge_len();
            if cand > depth_below[p.index()] {
                depth_below[p.index()] = cand;
            }
        }
    }

    let mut inserted = 0;
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        while tree.node(id).children().len() > 2 {
            let kids = tree.node(id).children().to_vec();
            let mut best = (0usize, 1usize, f64::INFINITY);
            for i in 0..kids.len() {
                for j in (i + 1)..kids.len() {
                    let (a, b) = (kids[i], kids[j]);
                    let d = tree.node(a).pos.dist(tree.node(b).pos);
                    let da = depth_below[a.index()] + tree.node(a).edge_len();
                    let db = depth_below[b.index()] + tree.node(b).edge_len();
                    let cost = d + (da - db).abs();
                    if cost < best.2 {
                        best = (i, j, cost);
                    }
                }
            }
            let (a, b) = (kids[best.0], kids[best.1]);
            let pos = tree.node(id).pos;
            let grouped_depth = (depth_below[a.index()] + tree.node(a).edge_len())
                .max(depth_below[b.index()] + tree.node(b).edge_len());
            let group = tree.add_steiner(id, pos);
            tree.reparent(a, group);
            tree.reparent(b, group);
            if depth_below.len() <= group.index() {
                depth_below.resize(group.index() + 1, 0.0);
            }
            depth_below[group.index()] = grouped_depth;
            inserted += 1;
        }
        stack.extend(tree.node(id).children());
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    #[test]
    fn steiner_leaf_and_passthrough_removed() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(2.0, 0.0)); // pass-through
        let b = t.add_steiner(a, Point::new(4.0, 0.0));
        t.add_sink(b, Point::new(6.0, 0.0), 1.0);
        t.add_steiner(b, Point::new(4.0, 2.0)); // dead leaf
        let removed = eliminate_redundant_steiner(&mut t);
        // The dead leaf goes first; that makes b pass-through, and removing
        // b makes a pass-through too — the cascade removes all three.
        assert_eq!(removed, 3);
        t.validate().unwrap();
        // The sink keeps its full routed length through the spliced point.
        let sinks = t.sinks();
        assert_eq!(t.path_lengths()[sinks[0].index()], 6.0);
    }

    #[test]
    fn cascading_removal_reaches_fixed_point() {
        // steiner -> steiner -> steiner (all pass-through/leaf chains).
        let mut t = ClockTree::new(Point::ORIGIN);
        let a = t.add_steiner(t.root(), Point::new(1.0, 0.0));
        let b = t.add_steiner(a, Point::new(2.0, 0.0));
        t.add_steiner(b, Point::new(3.0, 0.0));
        let removed = eliminate_redundant_steiner(&mut t);
        assert_eq!(removed, 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn internal_sinks_become_leaves() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let s = t.add_sink(t.root(), Point::new(3.0, 0.0), 2.5);
        t.add_sink(s, Point::new(6.0, 0.0), 1.0);
        assert_eq!(sinks_to_leaves(&mut t), 1);
        t.validate().unwrap();
        // Both pins are now leaves; total cap is preserved.
        let sinks = t.sinks();
        assert_eq!(sinks.len(), 2);
        for id in &sinks {
            assert!(t.node(*id).children().is_empty());
        }
        let total: f64 = sinks.iter().map(|&id| t.node(id).cap_ff()).sum();
        assert!((total - 3.5).abs() < 1e-12);
        // Wirelength unchanged: the new leaf edge is zero-length.
        assert!((t.wirelength() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn binarize_splits_high_degree_nodes() {
        let mut t = ClockTree::new(Point::ORIGIN);
        for i in 0..5 {
            t.add_sink(t.root(), Point::new(i as f64, 1.0), 1.0);
        }
        let inserted = binarize(&mut t);
        assert_eq!(inserted, 3, "5 children need 3 grouping nodes");
        t.validate().unwrap();
        for id in t.node_ids() {
            assert!(t.node(id).children().len() <= 2, "node {id} still fat");
        }
        assert_eq!(t.sinks().len(), 5);
    }

    #[test]
    fn binarize_groups_nearest_children() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let far = t.add_sink(t.root(), Point::new(50.0, 0.0), 1.0);
        let a = t.add_sink(t.root(), Point::new(1.0, 1.0), 1.0);
        let b = t.add_sink(t.root(), Point::new(1.0, 2.0), 1.0);
        binarize(&mut t);
        // a and b (1 µm apart) share a parent; far does not.
        assert_eq!(t.node(a).parent(), t.node(b).parent());
        assert_ne!(t.node(a).parent(), t.node(far).parent());
    }

    #[test]
    fn full_normalization_pipeline() {
        // A messy tree: fat root, internal sink, redundant steiner chain.
        let mut t = ClockTree::new(Point::ORIGIN);
        let s0 = t.add_sink(t.root(), Point::new(2.0, 0.0), 1.0);
        t.add_sink(s0, Point::new(4.0, 0.0), 1.0);
        let st = t.add_steiner(t.root(), Point::new(0.0, 2.0));
        t.add_steiner(st, Point::new(0.0, 4.0));
        t.add_sink(t.root(), Point::new(-2.0, 0.0), 1.0);
        t.add_sink(t.root(), Point::new(-2.0, 1.0), 1.0);

        eliminate_redundant_steiner(&mut t);
        sinks_to_leaves(&mut t);
        binarize(&mut t);
        t.validate().unwrap();
        for id in t.node_ids() {
            let n = t.node(id);
            assert!(n.children().len() <= 2);
            if n.kind.is_sink() {
                assert!(n.children().is_empty());
            }
        }
        assert_eq!(t.sinks().len(), 4);
    }
}
