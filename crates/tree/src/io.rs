//! Plain-text clock tree serialization.
//!
//! A line-based format that survives hand editing and diffs:
//!
//! ```text
//! sllt-tree v1
//! source 12.5 40.0
//! node 1 steiner 20.0 40.0 0 7.5
//! node 2 sink 25.0 44.0 1 9.0 cap 0.8 idx 0
//! node 3 buffer 18.0 40.0 0 5.5 cell 2
//! ```
//!
//! Node ids are the writer's arena indices; parents always precede
//! children. Routed edge lengths are stored explicitly, so detour wire
//! round-trips exactly.

use crate::{ClockTree, NodeId, NodeKind};
use sllt_geom::Point;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from [`read_tree`].
#[derive(Debug)]
pub enum ParseTreeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem at a 1-based line number.
    Syntax {
        /// Line where the problem was found.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ParseTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTreeError::Io(e) => write!(f, "i/o error reading tree: {e}"),
            ParseTreeError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl Error for ParseTreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTreeError::Io(e) => Some(e),
            ParseTreeError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseTreeError {
    fn from(e: std::io::Error) -> Self {
        ParseTreeError::Io(e)
    }
}

/// Writes the tree in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_tree<W: Write>(tree: &ClockTree, w: &mut W) -> std::io::Result<()> {
    writeln!(w, "sllt-tree v1")?;
    let src = tree.source_pos();
    writeln!(w, "source {} {}", src.x, src.y)?;
    // Stable compact ids in topological order.
    let order = tree.topo_order();
    let mut compact = vec![usize::MAX; tree.arena_len()];
    for (i, id) in order.iter().enumerate() {
        compact[id.index()] = i;
    }
    for id in order.iter().skip(1) {
        let n = tree.node(*id);
        let parent = compact[n.parent().expect("non-root has parent").index()];
        let me = compact[id.index()];
        match n.kind {
            NodeKind::Sink { cap_ff, sink_index } => writeln!(
                w,
                "node {} sink {} {} {} {} cap {} idx {}",
                me,
                n.pos.x,
                n.pos.y,
                parent,
                n.edge_len(),
                cap_ff,
                sink_index
            )?,
            NodeKind::Steiner => writeln!(
                w,
                "node {} steiner {} {} {} {}",
                me,
                n.pos.x,
                n.pos.y,
                parent,
                n.edge_len()
            )?,
            NodeKind::Buffer { cell } => writeln!(
                w,
                "node {} buffer {} {} {} {} cell {}",
                me,
                n.pos.x,
                n.pos.y,
                parent,
                n.edge_len(),
                cell
            )?,
            NodeKind::Source => {
                unreachable!("only the root is a source and it is skipped")
            }
        }
    }
    Ok(())
}

/// Reads a tree from the v1 text format.
///
/// # Errors
///
/// Returns [`ParseTreeError::Syntax`] for malformed input (bad header,
/// unknown node kind, forward parent references, undersized edge
/// lengths) and [`ParseTreeError::Io`] for reader failures.
pub fn read_tree<R: BufRead>(r: &mut R) -> Result<ClockTree, ParseTreeError> {
    let syntax = |line: usize, message: String| ParseTreeError::Syntax { line, message };
    let mut lines = r.lines().enumerate();

    let (ln, header) = lines
        .next()
        .ok_or_else(|| syntax(1, "empty input".into()))
        .and_then(|(i, l)| Ok((i + 1, l?)))?;
    if header.trim() != "sllt-tree v1" {
        return Err(syntax(
            ln,
            format!("expected header 'sllt-tree v1', got {header:?}"),
        ));
    }

    let (ln, source_line) = lines
        .next()
        .ok_or_else(|| syntax(2, "missing source line".into()))
        .and_then(|(i, l)| Ok((i + 1, l?)))?;
    let parts: Vec<&str> = source_line.split_whitespace().collect();
    if parts.len() != 3 || parts[0] != "source" {
        return Err(syntax(
            ln,
            format!("expected 'source <x> <y>', got {source_line:?}"),
        ));
    }
    let parse_f = |s: &str, ln: usize| {
        s.parse::<f64>()
            .map_err(|_| syntax(ln, format!("not a number: {s:?}")))
    };
    let src = Point::new(parse_f(parts[1], ln)?, parse_f(parts[2], ln)?);
    let mut tree = ClockTree::new(src);
    let mut ids: Vec<NodeId> = vec![tree.root()];

    for (i, line) in lines {
        let ln = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() < 6 || p[0] != "node" {
            return Err(syntax(ln, format!("expected a node line, got {line:?}")));
        }
        let declared: usize = p[1]
            .parse()
            .map_err(|_| syntax(ln, format!("bad node id {:?}", p[1])))?;
        if declared != ids.len() {
            return Err(syntax(
                ln,
                format!(
                    "node ids must be dense and ordered: expected {}, got {declared}",
                    ids.len()
                ),
            ));
        }
        let kind = p[2];
        let pos = Point::new(parse_f(p[3], ln)?, parse_f(p[4], ln)?);
        let parent: usize = p[5]
            .parse()
            .map_err(|_| syntax(ln, format!("bad parent id {:?}", p[5])))?;
        if parent >= ids.len() {
            return Err(syntax(ln, format!("parent {parent} not yet defined")));
        }
        let edge = parse_f(p.get(6).copied().unwrap_or("0"), ln)?;
        let parent_id = ids[parent];
        let id = match kind {
            "steiner" => tree.add_steiner(parent_id, pos),
            "sink" => {
                if p.len() < 11 || p[7] != "cap" || p[9] != "idx" {
                    return Err(syntax(ln, "sink needs 'cap <f> idx <n>'".into()));
                }
                let cap = parse_f(p[8], ln)?;
                let idx: usize = p[10]
                    .parse()
                    .map_err(|_| syntax(ln, format!("bad sink index {:?}", p[10])))?;
                tree.add_sink_indexed(parent_id, pos, cap, idx)
            }
            "buffer" => {
                if p.len() < 9 || p[7] != "cell" {
                    return Err(syntax(ln, "buffer needs 'cell <n>'".into()));
                }
                let cell: usize = p[8]
                    .parse()
                    .map_err(|_| syntax(ln, format!("bad cell index {:?}", p[8])))?;
                tree.add_buffer(parent_id, pos, cell)
            }
            other => return Err(syntax(ln, format!("unknown node kind {other:?}"))),
        };
        let dist = tree.node(parent_id).pos.dist(pos);
        if edge < dist - 1e-6 {
            return Err(syntax(
                ln,
                format!("edge length {edge} cannot cover manhattan distance {dist}"),
            ));
        }
        tree.set_edge_len(id, edge.max(dist));
        ids.push(id);
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_rng::prelude::*;

    fn sample_tree() -> ClockTree {
        let mut t = ClockTree::new(Point::new(1.0, 2.0));
        let b = t.add_buffer(t.root(), Point::new(5.0, 2.0), 2);
        let s = t.add_steiner(b, Point::new(8.0, 4.0));
        let k = t.add_sink_indexed(s, Point::new(10.0, 7.0), 0.8, 3);
        t.add_detour(k, 2.5);
        t.add_sink_indexed(s, Point::new(8.0, -1.0), 1.2, 0);
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_tree();
        let mut buf = Vec::new();
        write_tree(&t, &mut buf).unwrap();
        let back = read_tree(&mut buf.as_slice()).unwrap();
        back.validate().unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.sinks().len(), t.sinks().len());
        assert!(
            (back.wirelength() - t.wirelength()).abs() < 1e-9,
            "detour lost"
        );
        // Sink identity survives.
        let mut idx: Vec<usize> = back
            .sinks()
            .iter()
            .map(|&id| match back.node(id).kind {
                NodeKind::Sink { sink_index, .. } => sink_index,
                _ => unreachable!(),
            })
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 3]);
    }

    #[test]
    fn round_trip_random_trees() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = ClockTree::new(Point::ORIGIN);
            let mut nodes = vec![t.root()];
            for i in 0..30 {
                let parent = nodes[rng.random_range(0..nodes.len())];
                let pos = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
                let id = match rng.random_range(0..3) {
                    0 => t.add_steiner(parent, pos),
                    1 => t.add_sink_indexed(parent, pos, rng.random_range(0.1..3.0), i),
                    _ => t.add_buffer(parent, pos, rng.random_range(0..5)),
                };
                if rng.random_bool(0.3) {
                    t.add_detour(id, rng.random_range(0.0..10.0));
                }
                nodes.push(id);
            }
            let mut buf = Vec::new();
            write_tree(&t, &mut buf).unwrap();
            let back = read_tree(&mut buf.as_slice()).unwrap();
            assert_eq!(back.len(), t.len());
            assert!((back.wirelength() - t.wirelength()).abs() < 1e-9);
            back.validate().unwrap();
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("nope", 1, "header"),
            ("sllt-tree v1\nsource a b", 2, "not a number"),
            (
                "sllt-tree v1\nsource 0 0\nnode 5 steiner 0 0 0 0",
                3,
                "dense",
            ),
            (
                "sllt-tree v1\nsource 0 0\nnode 1 gizmo 0 0 0 0",
                3,
                "unknown node kind",
            ),
            (
                "sllt-tree v1\nsource 0 0\nnode 1 steiner 9 9 0 1",
                3,
                "cannot cover",
            ),
            ("sllt-tree v1\nsource 0 0\nnode 1 sink 1 1 0 2", 3, "cap"),
        ];
        for (input, want_line, want_msg) in cases {
            match read_tree(&mut input.as_bytes()) {
                Err(ParseTreeError::Syntax { line, message }) => {
                    assert_eq!(line, want_line, "{input:?}");
                    assert!(
                        message.contains(want_msg),
                        "{input:?}: message {message:?} missing {want_msg:?}"
                    );
                }
                other => panic!("{input:?}: expected syntax error, got {other:?}"),
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = "sllt-tree v1\nsource 0 0\n\n# a comment\nnode 1 steiner 1 0 0 1\n";
        let t = read_tree(&mut input.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }
}
