//! Clock nets: the input to every topology generator.

use sllt_geom::{Point, Rect};

/// A load pin of a clock net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sink {
    /// Pin location, µm.
    pub pos: Point,
    /// Pin capacitance, fF.
    pub cap_ff: f64,
}

impl Sink {
    /// Creates a sink at `pos` with pin capacitance `cap_ff`.
    pub fn new(pos: Point, cap_ff: f64) -> Self {
        Sink { pos, cap_ff }
    }
}

/// One clock net: a source driving a set of load pins.
///
/// # Example
///
/// ```
/// use sllt_geom::Point;
/// use sllt_tree::{ClockNet, Sink};
///
/// let net = ClockNet::new(
///     Point::new(0.0, 0.0),
///     vec![Sink::new(Point::new(10.0, 5.0), 1.0), Sink::new(Point::new(3.0, 8.0), 1.2)],
/// );
/// assert_eq!(net.len(), 2);
/// assert!((net.total_pin_cap() - 2.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockNet {
    /// Clock source (driver output pin) location.
    pub source: Point,
    /// Load pins.
    pub sinks: Vec<Sink>,
}

impl ClockNet {
    /// Creates a net from a source and its sinks.
    pub fn new(source: Point, sinks: Vec<Sink>) -> Self {
        ClockNet { source, sinks }
    }

    /// Number of load pins.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the net has no load pins.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Sink positions, in sink order.
    pub fn positions(&self) -> Vec<Point> {
        self.sinks.iter().map(|s| s.pos).collect()
    }

    /// Sum of sink pin capacitances, fF.
    pub fn total_pin_cap(&self) -> f64 {
        self.sinks.iter().map(|s| s.cap_ff).sum()
    }

    /// Bounding box of the sinks and the source.
    pub fn bbox(&self) -> Rect {
        let mut r = Rect::new(self.source, self.source);
        for s in &self.sinks {
            r.expand(s.pos);
        }
        r
    }

    /// Maximum Manhattan distance from the source to any sink — the
    /// latency lower bound under the wirelength delay model.
    pub fn max_source_dist(&self) -> f64 {
        self.sinks
            .iter()
            .map(|s| self.source.dist(s.pos))
            .fold(0.0, f64::max)
    }

    /// Mean Manhattan distance from the source over sinks (`\overline{MD}`
    /// in the paper's Theorem 2.3); 0 for an empty net.
    pub fn mean_source_dist(&self) -> f64 {
        if self.sinks.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.sinks.iter().map(|s| self.source.dist(s.pos)).sum();
        sum / self.sinks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> ClockNet {
        ClockNet::new(
            Point::ORIGIN,
            vec![
                Sink::new(Point::new(10.0, 0.0), 1.0),
                Sink::new(Point::new(0.0, 4.0), 2.0),
                Sink::new(Point::new(-6.0, 0.0), 3.0),
            ],
        )
    }

    #[test]
    fn aggregates() {
        let n = net();
        assert_eq!(n.len(), 3);
        assert!(!n.is_empty());
        assert_eq!(n.total_pin_cap(), 6.0);
        assert_eq!(n.max_source_dist(), 10.0);
        assert!((n.mean_source_dist() - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(n.bbox().hpwl(), 16.0 + 4.0);
    }

    #[test]
    fn empty_net_degenerates_gracefully() {
        let n = ClockNet::new(Point::ORIGIN, vec![]);
        assert!(n.is_empty());
        assert_eq!(n.max_source_dist(), 0.0);
        assert_eq!(n.mean_source_dist(), 0.0);
        assert_eq!(n.bbox().area(), 0.0);
    }
}
