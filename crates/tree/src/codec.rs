//! Compact binary clock tree serialization (format v2).
//!
//! The v1 text form ([`crate::io`]) stores every coordinate as a
//! shortest-round-trip decimal — DME merge points routinely print 17
//! significant digits, so a routed node line runs 75–120 bytes. This codec
//! stores the same tree in a length-prefixed, checksummed binary frame at
//! a few bytes per node by exploiting what routed clock trees look like:
//!
//! * rectilinear embeddings share a coordinate with the parent on almost
//!   every edge — such coordinates cost **zero** bytes (a 2-bit tag),
//! * placement coordinates are usually small integers — zigzag varints,
//! * routed edge lengths almost always equal the Manhattan distance to the
//!   parent — omitted and recomputed bit-exactly on read,
//! * sink pin caps come from a tiny library — an 8-slot MRU dictionary
//!   encodes repeats in one byte.
//!
//! Frame layout:
//!
//! ```text
//! magic "SLTB" | version u8 | payload_len u32 LE | payload | fnv1a64(payload) u64 LE
//! ```
//!
//! Payload: node count (varint), source x/y (raw f64 LE), then every
//! non-root node in topological order — compact ids are implicit, parents
//! are backward varint deltas. Round-trips are bit-exact with the v1 text
//! form: `text → tree → binary → tree → text` reproduces the input
//! byte-for-byte.

use crate::{ClockTree, NodeKind};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"SLTB";
/// Current format version.
pub const VERSION: u8 = 2;

const KIND_STEINER: u8 = 0;
const KIND_SINK: u8 = 1;
const KIND_BUFFER: u8 = 2;

/// Coordinate tag: bit-identical to the parent's coordinate, 0 bytes.
const COORD_PARENT: u8 = 0;
/// Coordinate tag: integer-valued f64, zigzag varint.
const COORD_INT: u8 = 1;
/// Coordinate tag: raw 8-byte f64.
const COORD_RAW: u8 = 2;

/// Head-byte bit: an explicit routed edge length follows (otherwise the
/// edge equals the Manhattan distance to the parent).
const FLAG_EDGE: u8 = 1 << 6;

/// Cap-dictionary escape: a raw f64 follows.
const CAP_RAW: u8 = 0xFF;
/// Cap-dictionary capacity (MRU).
const CAP_DICT: usize = 8;

/// Errors from the binary tree reader.
#[derive(Debug)]
pub enum BinaryTreeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed frame at a byte offset into the frame.
    Corrupt {
        /// Offset of the defect, bytes from the frame start.
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// The frame declares a version this reader does not speak.
    UnsupportedVersion(u8),
    /// Payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        expected: u64,
        /// Checksum of the payload actually read.
        actual: u64,
    },
}

impl fmt::Display for BinaryTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryTreeError::Io(e) => write!(f, "i/o error reading binary tree: {e}"),
            BinaryTreeError::Corrupt { offset, message } => {
                write!(f, "corrupt binary tree at byte {offset}: {message}")
            }
            BinaryTreeError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary tree version {v}")
            }
            BinaryTreeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "binary tree checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
        }
    }
}

impl Error for BinaryTreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinaryTreeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BinaryTreeError {
    fn from(e: std::io::Error) -> Self {
        BinaryTreeError::Io(e)
    }
}

/// FNV-1a 64 — the same sealing hash the observation journal uses, inlined
/// so the tree crate stays dependency-free.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, (v.wrapping_shl(1) ^ (v >> 63)) as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Whether `v` survives an i64 round trip bit-exactly (rules out NaN,
/// -0.0, fractions, and magnitudes beyond 2⁶³).
fn as_exact_int(v: f64) -> Option<i64> {
    let i = v as i64;
    ((i as f64).to_bits() == v.to_bits()).then_some(i)
}

fn coord_tag(v: f64, parent: f64) -> u8 {
    if v.to_bits() == parent.to_bits() {
        COORD_PARENT
    } else if as_exact_int(v).is_some() {
        COORD_INT
    } else {
        COORD_RAW
    }
}

fn put_coord(out: &mut Vec<u8>, tag: u8, v: f64) {
    match tag {
        COORD_PARENT => {}
        COORD_INT => put_zigzag(out, as_exact_int(v).expect("tagged integer")),
        _ => put_f64(out, v),
    }
}

/// Encodes the tree into one self-contained binary frame.
pub fn encode_tree(tree: &ClockTree) -> Vec<u8> {
    let order = tree.topo_order();
    let mut compact = vec![u32::MAX; tree.arena_len()];
    for (i, id) in order.iter().enumerate() {
        compact[id.index()] = i as u32;
    }

    let mut payload = Vec::with_capacity(16 + order.len() * 12);
    put_varint(&mut payload, order.len() as u64);
    let src = tree.source_pos();
    put_f64(&mut payload, src.x);
    put_f64(&mut payload, src.y);

    let mut caps: Vec<u64> = Vec::with_capacity(CAP_DICT);
    for (me, id) in order.iter().enumerate().skip(1) {
        let n = tree.node(*id);
        let parent_id = n.parent().expect("non-root has parent");
        let parent = compact[parent_id.index()] as usize;
        let ppos = tree.node(parent_id).pos;
        let dist = ppos.dist(n.pos);

        let kind_bits = match n.kind {
            NodeKind::Steiner => KIND_STEINER,
            NodeKind::Sink { .. } => KIND_SINK,
            NodeKind::Buffer { .. } => KIND_BUFFER,
            NodeKind::Source => unreachable!("only the root is a source and it is skipped"),
        };
        let (xt, yt) = (coord_tag(n.pos.x, ppos.x), coord_tag(n.pos.y, ppos.y));
        let explicit_edge = n.edge_len().to_bits() != dist.to_bits();
        let head = kind_bits | (xt << 2) | (yt << 4) | if explicit_edge { FLAG_EDGE } else { 0 };
        payload.push(head);
        put_varint(&mut payload, (me - parent) as u64);
        put_coord(&mut payload, xt, n.pos.x);
        put_coord(&mut payload, yt, n.pos.y);
        if explicit_edge {
            put_f64(&mut payload, n.edge_len());
        }
        match n.kind {
            NodeKind::Sink { cap_ff, sink_index } => {
                let bits = cap_ff.to_bits();
                match caps.iter().position(|&c| c == bits) {
                    Some(i) => {
                        payload.push(i as u8);
                        caps.remove(i);
                    }
                    None => {
                        payload.push(CAP_RAW);
                        put_f64(&mut payload, cap_ff);
                        caps.truncate(CAP_DICT - 1);
                    }
                }
                caps.insert(0, bits);
                put_varint(&mut payload, sink_index as u64);
            }
            NodeKind::Buffer { cell } => put_varint(&mut payload, cell as u64),
            _ => {}
        }
    }

    let mut frame = Vec::with_capacity(MAGIC.len() + 5 + payload.len() + 8);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame
}

/// Cursor over a payload slice with frame-offset error reporting.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Frame offset of `bytes[0]`, so errors report absolute positions.
    base: usize,
}

impl<'a> Cur<'a> {
    fn err(&self, message: impl Into<String>) -> BinaryTreeError {
        BinaryTreeError::Corrupt {
            offset: self.base + self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinaryTreeError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.err("payload truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BinaryTreeError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, BinaryTreeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint overlong"))
    }

    fn zigzag(&mut self) -> Result<i64, BinaryTreeError> {
        let v = self.varint()?;
        Ok((v >> 1) as i64 ^ -((v & 1) as i64))
    }

    fn f64(&mut self) -> Result<f64, BinaryTreeError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            b.try_into().expect("8 bytes"),
        )))
    }

    fn coord(&mut self, tag: u8, parent: f64) -> Result<f64, BinaryTreeError> {
        match tag {
            COORD_PARENT => Ok(parent),
            COORD_INT => Ok(self.zigzag()? as f64),
            COORD_RAW => self.f64(),
            other => Err(self.err(format!("bad coordinate tag {other}"))),
        }
    }
}

/// Decodes one frame, returning the tree and the number of bytes consumed.
///
/// # Errors
///
/// See [`BinaryTreeError`]; trailing bytes after the frame are left for
/// the caller (use [`decode_tree`] to require an exact fit).
pub fn decode_tree_prefix(bytes: &[u8]) -> Result<(ClockTree, usize), BinaryTreeError> {
    let corrupt = |offset: usize, message: &str| BinaryTreeError::Corrupt {
        offset,
        message: message.into(),
    };
    if bytes.len() < MAGIC.len() + 5 {
        return Err(corrupt(bytes.len(), "frame header truncated"));
    }
    if bytes[..4] != MAGIC {
        return Err(corrupt(0, "bad magic (expected \"SLTB\")"));
    }
    if bytes[4] != VERSION {
        return Err(BinaryTreeError::UnsupportedVersion(bytes[4]));
    }
    let payload_len = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize;
    let frame_len = 9 + payload_len + 8;
    if bytes.len() < frame_len {
        return Err(corrupt(bytes.len(), "frame body truncated"));
    }
    let payload = &bytes[9..9 + payload_len];
    let expected = u64::from_le_bytes(
        bytes[9 + payload_len..frame_len]
            .try_into()
            .expect("8 bytes"),
    );
    let actual = fnv1a64(payload);
    if actual != expected {
        return Err(BinaryTreeError::ChecksumMismatch { expected, actual });
    }

    let mut cur = Cur {
        bytes: payload,
        pos: 0,
        base: 9,
    };
    let count = cur.varint()? as usize;
    if count == 0 {
        return Err(cur.err("node count must include the root"));
    }
    // Every non-root node costs at least 2 payload bytes, so a sane count
    // can never exceed the payload size — reject before allocating.
    if count > payload_len.max(1) {
        return Err(cur.err(format!("node count {count} exceeds payload size")));
    }
    let src = sllt_geom::Point::new(cur.f64()?, cur.f64()?);
    let mut tree = ClockTree::with_capacity(src, count);
    let mut ids = Vec::with_capacity(count);
    ids.push(tree.root());

    let mut caps: Vec<u64> = Vec::with_capacity(CAP_DICT);
    for me in 1..count {
        let head = cur.u8()?;
        if head & 0x80 != 0 {
            return Err(cur.err("reserved head bit set"));
        }
        let kind = head & 0x03;
        let xt = (head >> 2) & 0x03;
        let yt = (head >> 4) & 0x03;
        let delta = cur.varint()? as usize;
        if delta == 0 || delta > me {
            return Err(cur.err(format!("parent delta {delta} out of range at node {me}")));
        }
        let parent_id = ids[me - delta];
        let ppos = tree.node(parent_id).pos;
        let x = cur.coord(xt, ppos.x)?;
        let y = cur.coord(yt, ppos.y)?;
        let pos = sllt_geom::Point::new(x, y);
        let dist = ppos.dist(pos);
        let edge = if head & FLAG_EDGE != 0 {
            let e = cur.f64()?;
            if e < dist - 1e-6 {
                return Err(cur.err(format!(
                    "edge length {e} cannot cover manhattan distance {dist}"
                )));
            }
            Some(e.max(dist))
        } else {
            None
        };
        let id = match kind {
            KIND_STEINER => tree.add_steiner(parent_id, pos),
            KIND_SINK => {
                // MRU dictionary mirror of the encoder: hits move to the
                // front, misses evict the oldest slot.
                let tag = cur.u8()?;
                let bits = if tag == CAP_RAW {
                    let v = cur.f64()?.to_bits();
                    caps.truncate(CAP_DICT - 1);
                    v
                } else {
                    let i = tag as usize;
                    if i >= caps.len() {
                        return Err(cur.err(format!("cap dictionary index {i} out of range")));
                    }
                    caps.remove(i)
                };
                caps.insert(0, bits);
                let sink_index = cur.varint()? as usize;
                tree.add_sink_indexed(parent_id, pos, f64::from_bits(bits), sink_index)
            }
            KIND_BUFFER => {
                let cell = cur.varint()? as usize;
                tree.add_buffer(parent_id, pos, cell)
            }
            other => return Err(cur.err(format!("bad node kind {other}"))),
        };
        if let Some(e) = edge {
            tree.set_edge_len_raw(id, e);
        }
        ids.push(id);
    }
    if cur.pos != payload_len {
        return Err(cur.err(format!(
            "{} unread bytes inside payload",
            payload_len - cur.pos
        )));
    }

    Ok((tree, frame_len))
}

/// Decodes a tree from exactly one binary frame.
///
/// # Errors
///
/// All of [`decode_tree_prefix`]'s errors, plus trailing garbage after
/// the frame is rejected.
pub fn decode_tree(bytes: &[u8]) -> Result<ClockTree, BinaryTreeError> {
    let (tree, used) = decode_tree_prefix(bytes)?;
    if used != bytes.len() {
        return Err(BinaryTreeError::Corrupt {
            offset: used,
            message: format!("{} trailing bytes after frame", bytes.len() - used),
        });
    }
    Ok(tree)
}

/// Writes the tree as one binary frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_tree_binary<W: Write>(tree: &ClockTree, w: &mut W) -> std::io::Result<()> {
    w.write_all(&encode_tree(tree))
}

/// Reads a tree from a binary frame, consuming the reader to its end.
///
/// # Errors
///
/// See [`BinaryTreeError`].
pub fn read_tree_binary<R: Read>(r: &mut R) -> Result<ClockTree, BinaryTreeError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_tree(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_tree, write_tree};
    use sllt_geom::Point;
    use sllt_rng::prelude::*;

    fn sample_tree() -> ClockTree {
        let mut t = ClockTree::new(Point::new(1.0, 2.0));
        let b = t.add_buffer(t.root(), Point::new(5.0, 2.0), 2);
        let s = t.add_steiner(b, Point::new(8.0, 4.0));
        let k = t.add_sink_indexed(s, Point::new(10.0, 7.0), 0.8, 3);
        t.add_detour(k, 2.5);
        t.add_sink_indexed(s, Point::new(8.0, -1.0), 1.2, 0);
        t
    }

    fn random_tree(seed: u64) -> ClockTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = ClockTree::new(Point::new(
            rng.random_range(-10.0..10.0),
            rng.random_range(-10.0..10.0),
        ));
        let mut nodes = vec![t.root()];
        for i in 0..60 {
            let parent = nodes[rng.random_range(0..nodes.len())];
            // A mix of integer, fractional, and parent-aligned coordinates
            // exercises every coordinate tag.
            let ppos = t.node(parent).pos;
            let pos = match rng.random_range(0..4) {
                0 => Point::new(ppos.x, rng.random_range(-50.0..50.0)),
                1 => Point::new(rng.random_range(-50i64..50) as f64, ppos.y),
                2 => Point::new(
                    rng.random_range(-50i64..50) as f64,
                    rng.random_range(-50i64..50) as f64,
                ),
                _ => Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)),
            };
            let id = match rng.random_range(0..3) {
                0 => t.add_steiner(parent, pos),
                1 => t.add_sink_indexed(parent, pos, [0.8, 1.0, 1.4][rng.random_range(0..3)], i),
                _ => t.add_buffer(parent, pos, rng.random_range(0..5)),
            };
            if rng.random_bool(0.2) {
                t.add_detour(id, rng.random_range(0.0..10.0));
            }
            nodes.push(id);
        }
        t
    }

    /// Canonical byte form for bit-exact comparison: the v1 text writer
    /// (topo order, compact ids).
    fn text_of(t: &ClockTree) -> Vec<u8> {
        let mut buf = Vec::new();
        write_tree(t, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let t = sample_tree();
        let frame = encode_tree(&t);
        let back = decode_tree(&frame).unwrap();
        back.validate().unwrap();
        assert_eq!(text_of(&t), text_of(&back));
    }

    #[test]
    fn round_trip_random_trees_bit_exact() {
        for seed in 0..20 {
            let t = random_tree(seed);
            let back = decode_tree(&encode_tree(&t)).unwrap();
            back.validate().unwrap();
            // Byte-identical text form proves per-node bit-exactness
            // (wirelength sums can differ in the last ulp because the
            // decoded arena stores nodes in topological order).
            assert_eq!(text_of(&t), text_of(&back), "seed {seed}");
            assert_eq!(t.len(), back.len());
            assert!((t.wirelength() - back.wirelength()).abs() < 1e-9);
        }
    }

    /// The acceptance wording: text → tree → binary → tree → text is the
    /// identity on the v1 byte form.
    #[test]
    fn v1_text_round_trips_through_binary() {
        for seed in 0..10 {
            let original = text_of(&random_tree(seed));
            let parsed = read_tree(&mut original.as_slice()).unwrap();
            let back = decode_tree(&encode_tree(&parsed)).unwrap();
            assert_eq!(original, text_of(&back), "seed {seed}");
        }
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        // A DME-like tree: fractional merge coordinates, shared-axis
        // edges, default edge lengths — the shape real checkpoints hold.
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = ClockTree::new(Point::ORIGIN);
        let mut frontier = vec![t.root()];
        for i in 0..500 {
            let p = frontier[rng.random_range(0..frontier.len())];
            let ppos = t.node(p).pos;
            let pos = if rng.random_bool(0.5) {
                Point::new(ppos.x, ppos.y + rng.random_range(0.1..9.0) / 3.0)
            } else {
                Point::new(ppos.x + rng.random_range(0.1..9.0) / 3.0, ppos.y)
            };
            let id = if rng.random_bool(0.4) {
                t.add_sink_indexed(p, pos, 1.2, i)
            } else {
                t.add_steiner(p, pos)
            };
            frontier.push(id);
        }
        let text = text_of(&t).len();
        let binary = encode_tree(&t).len();
        assert!(
            (binary as f64) * 5.0 <= text as f64,
            "binary {binary} vs text {text}: expected ≥5× smaller"
        );
    }

    #[test]
    fn corruption_is_detected() {
        let t = sample_tree();
        let frame = encode_tree(&t);

        let mut bad = frame.clone();
        bad[12] ^= 0x40; // payload byte
        assert!(matches!(
            decode_tree(&bad),
            Err(BinaryTreeError::ChecksumMismatch { .. })
        ));

        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_tree(&bad),
            Err(BinaryTreeError::Corrupt { .. })
        ));

        let mut bad = frame.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_tree(&bad),
            Err(BinaryTreeError::UnsupportedVersion(99))
        ));

        for cut in [3, 8, frame.len() / 2, frame.len() - 1] {
            assert!(
                decode_tree(&frame[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(matches!(
            decode_tree(&trailing),
            Err(BinaryTreeError::Corrupt { .. })
        ));
        // The prefix reader tolerates the same trailing byte.
        let (back, used) = decode_tree_prefix(&trailing).unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(back.len(), t.len());
    }

    #[test]
    fn byte_soup_never_panics() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let n = rng.random_range(0..200);
            let mut bytes: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255) as u8).collect();
            let _ = decode_tree(&bytes);
            // Same soup behind a valid header exercises the payload paths.
            let mut framed = MAGIC.to_vec();
            framed.push(VERSION);
            framed.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            framed.append(&mut bytes);
            framed.extend_from_slice(&[0u8; 8]);
            let _ = decode_tree(&framed);
        }
    }

    #[test]
    fn bare_source_round_trips() {
        let t = ClockTree::new(Point::new(-3.25, 7.5));
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.source_pos().x.to_bits(), t.source_pos().x.to_bits());
    }

    #[test]
    fn writer_reader_io_layer() {
        let t = sample_tree();
        let mut buf = Vec::new();
        write_tree_binary(&t, &mut buf).unwrap();
        let back = read_tree_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(text_of(&t), text_of(&back));
    }
}
