//! SLLT figures of merit.
//!
//! The paper analyses a rectilinear Steiner tree `T` through three ratios
//! (§2.1):
//!
//! * **shallowness** `α = max_i PL(s_i) / MD(s_i)` — how much longer the
//!   routed source→sink paths are than the Manhattan lower bound; a proxy
//!   for maximum latency,
//! * **lightness** `β = WL(T) / WL(T_ref)` — total wirelength against a
//!   minimum Steiner tree reference; a proxy for load capacitance,
//! * **skewness** `γ = max_i PL(s_i) / mean_i PL(s_i)` (Definition 2.1) —
//!   path-length imbalance; a proxy for skew. `γ = 1` is a zero-skew tree
//!   under the wirelength delay model.
//!
//! An `(ᾱ, β̄, γ̄)`-SLLT (Definition 2.2) is a tree with `α ≤ ᾱ`, `β ≤ β̄`,
//! `γ ≤ γ̄`.

use crate::{ClockTree, NodeId};
use sllt_geom::EPS;

/// Path-length statistics and the three SLLT metrics of one clock tree.
///
/// Produced by [`SlltMetrics::compute`]. The lightness denominator — the
/// wirelength of a reference minimum Steiner tree over the same pins — is
/// supplied by the caller (the paper approximates it with FLUTE; this
/// workspace uses `sllt-route`'s RSMT).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlltMetrics {
    /// Longest routed source→sink path, µm.
    pub max_path: f64,
    /// Shortest routed source→sink path, µm.
    pub min_path: f64,
    /// Mean routed source→sink path over sinks, µm.
    pub mean_path: f64,
    /// Total routed wirelength, µm.
    pub wirelength: f64,
    /// Shallowness α ≥ 1.
    pub shallowness: f64,
    /// Lightness β (≥ 1 whenever the reference is truly minimal).
    pub lightness: f64,
    /// Skewness γ ≥ 1.
    pub skewness: f64,
}

impl SlltMetrics {
    /// Computes the metrics of `tree` against a reference wirelength
    /// `ref_wl` (the RSMT wirelength of the same pin set).
    ///
    /// Sinks co-located with the source contribute shallowness 1 (their
    /// Manhattan distance is 0 and so must their path be — enforced by
    /// tree validation).
    ///
    /// # Panics
    ///
    /// Panics when the tree has no sinks or `ref_wl` is not positive while
    /// the tree has wire.
    pub fn compute(tree: &ClockTree, ref_wl: f64) -> SlltMetrics {
        let sinks = tree.sinks();
        assert!(!sinks.is_empty(), "metrics of a sinkless tree");
        let pl = tree.path_lengths();
        let src = tree.source_pos();

        let mut max_path = f64::NEG_INFINITY;
        let mut min_path = f64::INFINITY;
        let mut sum_path = 0.0;
        let mut shallowness: f64 = 1.0;
        for &s in &sinks {
            let p = pl[s.index()];
            max_path = max_path.max(p);
            min_path = min_path.min(p);
            sum_path += p;
            let md = src.dist(tree.node(s).pos);
            if md > EPS {
                shallowness = shallowness.max(p / md);
            }
        }
        let mean_path = sum_path / sinks.len() as f64;
        let skewness = if mean_path > EPS {
            max_path / mean_path
        } else {
            1.0
        };
        let wirelength = tree.wirelength();
        let lightness = if wirelength <= EPS {
            1.0
        } else {
            assert!(ref_wl > 0.0, "non-positive reference wirelength {ref_wl}");
            wirelength / ref_wl
        };
        SlltMetrics {
            max_path,
            min_path,
            mean_path,
            wirelength,
            shallowness,
            lightness,
            skewness,
        }
    }

    /// Arithmetic mean of α, β, γ — the "Mean" column of paper Table 1.
    pub fn mean_of_three(&self) -> f64 {
        (self.shallowness + self.lightness + self.skewness) / 3.0
    }

    /// Whether the tree is an `(ᾱ, β̄, γ̄)`-SLLT (Definition 2.2).
    pub fn is_sllt(&self, alpha_bound: f64, beta_bound: f64, gamma_bound: f64) -> bool {
        self.shallowness <= alpha_bound + EPS
            && self.lightness <= beta_bound + EPS
            && self.skewness <= gamma_bound + EPS
    }
}

/// Path-length skew of the tree under the wirelength delay model:
/// `max PL − min PL` over sinks, µm.
pub fn path_length_skew(tree: &ClockTree) -> f64 {
    let sinks = tree.sinks();
    if sinks.is_empty() {
        return 0.0;
    }
    let pl = tree.path_lengths();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in sinks {
        let p = pl[s.index()];
        lo = lo.min(p);
        hi = hi.max(p);
    }
    hi - lo
}

/// Routed path length from the root to one node, µm.
pub fn path_length_to(tree: &ClockTree, node: NodeId) -> f64 {
    tree.path_lengths()[node.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    /// Root at origin, two sinks wired straight: PL = MD for both.
    fn star() -> ClockTree {
        let mut t = ClockTree::new(Point::ORIGIN);
        t.add_sink(t.root(), Point::new(10.0, 0.0), 1.0);
        t.add_sink(t.root(), Point::new(0.0, 6.0), 1.0);
        t
    }

    #[test]
    fn star_metrics() {
        let t = star();
        let m = SlltMetrics::compute(&t, 16.0);
        assert!((m.shallowness - 1.0).abs() < 1e-12);
        assert!((m.lightness - 1.0).abs() < 1e-12);
        assert!((m.max_path - 10.0).abs() < 1e-12);
        assert!((m.min_path - 6.0).abs() < 1e-12);
        assert!((m.mean_path - 8.0).abs() < 1e-12);
        assert!((m.skewness - 10.0 / 8.0).abs() < 1e-12);
        assert!((path_length_skew(&t) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn detour_raises_shallowness_and_lowers_skewness() {
        let mut t = star();
        let sinks = t.sinks();
        // Snake the short path out to 10: zero skew, but α grows.
        t.add_detour(sinks[1], 4.0);
        let m = SlltMetrics::compute(&t, 16.0);
        assert!((m.skewness - 1.0).abs() < 1e-12);
        assert!((m.shallowness - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(path_length_skew(&t), 0.0);
    }

    #[test]
    fn is_sllt_checks_all_three_bounds() {
        let t = star();
        let m = SlltMetrics::compute(&t, 16.0);
        assert!(m.is_sllt(1.0, 1.0, 1.3));
        assert!(!m.is_sllt(1.0, 1.0, 1.1));
        assert!(!m.is_sllt(0.9, 1.0, 1.3));
    }

    #[test]
    fn mean_of_three_matches_table1_convention() {
        let t = star();
        let m = SlltMetrics::compute(&t, 16.0);
        let expect = (m.shallowness + m.lightness + m.skewness) / 3.0;
        assert!((m.mean_of_three() - expect).abs() < 1e-12);
    }

    #[test]
    fn sink_at_source_contributes_unit_shallowness() {
        let mut t = ClockTree::new(Point::ORIGIN);
        t.add_sink(t.root(), Point::ORIGIN, 1.0);
        t.add_sink(t.root(), Point::new(5.0, 0.0), 1.0);
        let m = SlltMetrics::compute(&t, 5.0);
        assert!(m.shallowness >= 1.0);
        assert!(m.shallowness.is_finite());
    }

    #[test]
    #[should_panic(expected = "sinkless")]
    fn metrics_require_sinks() {
        let t = ClockTree::new(Point::ORIGIN);
        let _ = SlltMetrics::compute(&t, 1.0);
    }

    #[test]
    #[cfg(feature = "proptest")]
    fn proptest_metric_invariants() {
        use proptest::prelude::*;
        use sllt_rng::prelude::*;
        proptest!(|(seed in 0u64..500, n in 2usize..20)| {
            // Random star trees: the invariants α ≥ 1, γ ≥ 1 always hold.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = ClockTree::new(Point::ORIGIN);
            for _ in 0..n {
                let p = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
                let id = t.add_sink(t.root(), p, 1.0);
                if rng.random_bool(0.5) {
                    t.add_detour(id, rng.random_range(0.0..20.0));
                }
            }
            let wl = t.wirelength();
            let m = SlltMetrics::compute(&t, wl); // self-reference: β = 1
            prop_assert!(m.shallowness >= 1.0 - 1e-9);
            prop_assert!(m.skewness >= 1.0 - 1e-9);
            prop_assert!((m.lightness - 1.0).abs() < 1e-9);
            prop_assert!(m.min_path <= m.mean_path + 1e-9);
            prop_assert!(m.mean_path <= m.max_path + 1e-9);
        });
    }
}
