//! Clock tree data structure and SLLT metrics.
//!
//! This crate defines [`ClockTree`], the arena-backed rooted Steiner tree
//! every topology generator in the workspace produces, together with:
//!
//! * [`metrics`] — path lengths, wirelength, skew and the paper's three
//!   SLLT figures of merit: *shallowness* α, *lightness* β and
//!   *skewness* γ (paper Definitions 2.1 and 2.2),
//! * [`edits`] — the structural clean-ups the CBS pipeline needs between
//!   phases: redundant-Steiner-node elimination, binarization, and the
//!   "sinks must be leaves" rule (paper Fig. 2, steps 2 and 4),
//! * [`topology`] — the abstract merge order ([`Topology`]) extracted from
//!   a tree and handed to DME for re-embedding,
//! * [`io`] — a diff-friendly text serialization of routed trees,
//! * [`svg`] — plotting for the Fig. 1 topology gallery.
//!
//! # Example
//!
//! ```
//! use sllt_geom::Point;
//! use sllt_tree::{ClockTree, metrics::SlltMetrics};
//!
//! let mut t = ClockTree::new(Point::new(0.0, 0.0));
//! let root = t.root();
//! t.add_sink(root, Point::new(10.0, 0.0), 1.0);
//! t.add_sink(root, Point::new(0.0, 10.0), 1.0);
//! let m = SlltMetrics::compute(&t, 20.0);
//! assert!((m.shallowness - 1.0).abs() < 1e-9); // direct wires: α = 1
//! assert!((m.lightness - 1.0).abs() < 1e-9);   // WL equals the reference
//! ```

pub mod codec;
pub mod edits;
pub mod io;
pub mod metrics;
pub mod net;
pub mod node;
pub mod svg;
pub mod topology;
pub mod tree;

pub use metrics::SlltMetrics;
pub use net::{ClockNet, Sink};
pub use node::{Node, NodeId, NodeKind};
pub use topology::{HintedTopology, Topology};
pub use tree::{Children, ClockTree, TreeEdit};
