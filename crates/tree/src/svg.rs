//! SVG rendering of clock trees (the Fig. 1 topology gallery).
//!
//! Edges are drawn as L-shapes (horizontal leg first); detour wire is not
//! drawn geometrically but is annotated in the edge tooltip.

use crate::{ClockTree, NodeKind};
use std::fmt::Write as _;

/// Renders the tree as a standalone SVG document.
///
/// The viewport is fitted to the tree's bounding box with a 5 % margin.
/// Sinks are squares, Steiner points small dots, buffers triangles, and
/// the source a large circle.
///
/// # Example
///
/// ```
/// use sllt_geom::Point;
/// use sllt_tree::{ClockTree, svg};
/// let mut t = ClockTree::new(Point::new(0.0, 0.0));
/// t.add_sink(t.root(), Point::new(10.0, 10.0), 1.0);
/// let doc = svg::render(&t, "demo");
/// assert!(doc.starts_with("<svg") && doc.ends_with("</svg>\n"));
/// ```
pub fn render(tree: &ClockTree, title: &str) -> String {
    let pts: Vec<sllt_geom::Point> = tree.node_ids().map(|id| tree.node(id).pos).collect();
    let bbox = sllt_geom::Rect::bounding(&pts)
        .unwrap_or_else(|| sllt_geom::Rect::new(tree.source_pos(), tree.source_pos()));
    let margin = (bbox.hpwl() * 0.05).max(1.0);
    let w = bbox.width() + 2.0 * margin;
    let h = bbox.height() + 2.0 * margin;
    let ox = bbox.lo().x - margin;
    let oy = bbox.lo().y - margin;
    // SVG y grows downward; flip vertically.
    let tx = |x: f64| x - ox;
    let ty = |y: f64| h - (y - oy);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w:.2} {h:.2}\" width=\"640\">"
    );
    let _ = writeln!(s, "<title>{title}</title>");
    let _ = writeln!(
        s,
        "<rect x=\"0\" y=\"0\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"#fcfcf9\"/>"
    );
    // Edges.
    for id in tree.node_ids() {
        let n = tree.node(id);
        let Some(p) = n.parent() else { continue };
        let a = tree.node(p).pos;
        let b = n.pos;
        let detour = n.edge_len() - a.dist(b);
        let _ = writeln!(
            s,
            "<path d=\"M {:.2} {:.2} L {:.2} {:.2} L {:.2} {:.2}\" fill=\"none\" \
             stroke=\"#4060a8\" stroke-width=\"{:.3}\"><title>len {:.2} (detour {:.2})</title></path>",
            tx(a.x),
            ty(a.y),
            tx(b.x),
            ty(a.y),
            tx(b.x),
            ty(b.y),
            (w.max(h) / 300.0).max(0.05),
            n.edge_len(),
            detour.max(0.0),
        );
    }
    // Nodes.
    let r = (w.max(h) / 120.0).max(0.15);
    for id in tree.node_ids() {
        let n = tree.node(id);
        let (x, y) = (tx(n.pos.x), ty(n.pos.y));
        match n.kind {
            NodeKind::Source => {
                let _ = writeln!(
                    s,
                    "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{:.2}\" fill=\"#c03028\"/>",
                    r * 1.6
                );
            }
            NodeKind::Sink { .. } => {
                let _ = writeln!(
                    s,
                    "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"#2a7a2a\"/>",
                    x - r,
                    y - r,
                    2.0 * r,
                    2.0 * r
                );
            }
            NodeKind::Steiner => {
                let _ = writeln!(
                    s,
                    "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{:.2}\" fill=\"#888888\"/>",
                    r * 0.6
                );
            }
            NodeKind::Buffer { .. } => {
                let _ = writeln!(
                    s,
                    "<path d=\"M {:.2} {:.2} L {:.2} {:.2} L {:.2} {:.2} Z\" fill=\"#d08020\"/>",
                    x - r,
                    y + r,
                    x + r,
                    y + r,
                    x,
                    y - r
                );
            }
        }
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_geom::Point;

    #[test]
    fn render_contains_all_node_shapes() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let st = t.add_steiner(t.root(), Point::new(5.0, 0.0));
        let bf = t.add_buffer(st, Point::new(5.0, 5.0), 0);
        t.add_sink(bf, Point::new(10.0, 5.0), 1.0);
        let doc = render(&t, "all shapes");
        assert!(doc.contains("<circle")); // source + steiner
        assert!(doc.contains("<rect x=")); // sink
        assert!(doc.contains("Z\" fill=\"#d08020\"")); // buffer triangle
        assert!(doc.contains("<title>all shapes</title>"));
    }

    #[test]
    fn render_survives_single_node_tree() {
        let t = ClockTree::new(Point::new(3.0, 4.0));
        let doc = render(&t, "bare");
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>\n"));
    }

    #[test]
    fn detour_annotated_in_tooltip() {
        let mut t = ClockTree::new(Point::ORIGIN);
        let s = t.add_sink(t.root(), Point::new(10.0, 0.0), 1.0);
        t.add_detour(s, 7.5);
        let doc = render(&t, "detour");
        assert!(doc.contains("detour 7.50"));
    }
}
