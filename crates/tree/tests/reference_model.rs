//! Differential property test for the SoA/CSR tree arena.
//!
//! `ClockTree` stores nodes in struct-of-arrays columns with an
//! intrusive child list; before the memory-layout rework it was a plain
//! `Vec`-of-nodes with per-node `Vec<usize>` child vectors. This test
//! keeps that old representation alive as an executable specification:
//! a naive reference arena with the same public mutation semantics
//! (tail-append child order, Manhattan default edge lengths, detours,
//! reparenting, node moves). Random edit sequences drive both
//! implementations in lockstep; traversal order, every per-node field,
//! and the derived metrics must stay **bit-identical** — any divergence
//! is a silent layout bug the higher layers (routing, sizing,
//! checkpointing) would inherit.

use sllt_geom::Point;
use sllt_rng::prelude::*;
use sllt_tree::{ClockTree, NodeKind};

// ---------------------------------------------------------------------
// Reference implementation: the pre-SoA Vec-children arena.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct RefNode {
    pos: Point,
    kind: NodeKind,
    parent: Option<usize>,
    edge_len: f64,
    children: Vec<usize>,
}

struct RefTree {
    nodes: Vec<RefNode>,
    sink_count: usize,
}

impl RefTree {
    fn new(source_pos: Point) -> Self {
        RefTree {
            nodes: vec![RefNode {
                pos: source_pos,
                kind: NodeKind::Source,
                parent: None,
                edge_len: 0.0,
                children: Vec::new(),
            }],
            sink_count: 0,
        }
    }

    fn attach(&mut self, parent: usize, pos: Point, kind: NodeKind) -> usize {
        let id = self.nodes.len();
        let edge_len = self.nodes[parent].pos.dist(pos);
        self.nodes.push(RefNode {
            pos,
            kind,
            parent: Some(parent),
            edge_len,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        if matches!(kind, NodeKind::Sink { .. }) {
            self.sink_count += 1;
        }
        id
    }

    fn add_sink(&mut self, parent: usize, pos: Point, cap_ff: f64) -> usize {
        let sink_index = self.sink_count;
        self.attach(parent, pos, NodeKind::Sink { cap_ff, sink_index })
    }

    fn set_edge_len(&mut self, node: usize, len: f64) {
        let p = self.nodes[node].parent.expect("root has no incoming edge");
        let dist = self.nodes[p].pos.dist(self.nodes[node].pos);
        self.nodes[node].edge_len = len.max(dist);
    }

    fn add_detour(&mut self, node: usize, extra: f64) {
        self.nodes[node].edge_len += extra;
    }

    fn reparent(&mut self, node: usize, new_parent: usize) {
        let old = self.nodes[node].parent.expect("cannot reparent the root");
        self.nodes[old].children.retain(|&c| c != node);
        self.nodes[new_parent].children.push(node);
        self.nodes[node].parent = Some(new_parent);
        self.nodes[node].edge_len = self.nodes[new_parent].pos.dist(self.nodes[node].pos);
    }

    fn move_node(&mut self, node: usize, pos: Point) {
        self.nodes[node].pos = pos;
        if let Some(p) = self.nodes[node].parent {
            self.nodes[node].edge_len = self.nodes[p].pos.dist(pos);
        }
        let children = self.nodes[node].children.clone();
        for c in children {
            self.nodes[c].edge_len = pos.dist(self.nodes[c].pos);
        }
    }

    /// `new_parent` must not lie in `node`'s subtree.
    fn would_cycle(&self, node: usize, new_parent: usize) -> bool {
        let mut cur = Some(new_parent);
        while let Some(c) = cur {
            if c == node {
                return true;
            }
            cur = self.nodes[c].parent;
        }
        false
    }

    /// Parents-before-children BFS in child-list order, mirroring
    /// `ClockTree::topo_order`.
    fn topo_order(&self) -> Vec<usize> {
        let mut order = vec![0usize];
        let mut i = 0;
        while i < order.len() {
            order.extend_from_slice(&self.nodes[order[i]].children);
            i += 1;
        }
        order
    }

    /// Index-order sum, mirroring `ClockTree::wirelength`.
    fn wirelength(&self) -> f64 {
        self.nodes.iter().map(|n| n.edge_len).sum()
    }

    fn path_lengths(&self) -> Vec<f64> {
        let mut pl = vec![0.0; self.nodes.len()];
        for id in self.topo_order() {
            if let Some(p) = self.nodes[id].parent {
                pl[id] = pl[p] + self.nodes[id].edge_len;
            }
        }
        pl
    }
}

// ---------------------------------------------------------------------
// Lockstep driver
// ---------------------------------------------------------------------

fn kinds_equal(a: NodeKind, b: NodeKind) -> bool {
    match (a, b) {
        (NodeKind::Source, NodeKind::Source) => true,
        (NodeKind::Steiner, NodeKind::Steiner) => true,
        (NodeKind::Buffer { cell: x }, NodeKind::Buffer { cell: y }) => x == y,
        (
            NodeKind::Sink {
                cap_ff: c1,
                sink_index: i1,
            },
            NodeKind::Sink {
                cap_ff: c2,
                sink_index: i2,
            },
        ) => c1.to_bits() == c2.to_bits() && i1 == i2,
        _ => false,
    }
}

/// Every observable the higher layers consume, compared bit-exactly.
fn assert_equivalent(tree: &ClockTree, model: &RefTree, seed: u64, step: usize) {
    let ctx = format!("seed {seed} step {step}");
    tree.validate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(tree.len(), model.nodes.len(), "{ctx}: node count");
    assert_eq!(tree.sinks().len(), model.sink_count, "{ctx}: sink count");

    let order = tree.topo_order();
    let ref_order = model.topo_order();
    assert_eq!(
        order.iter().map(|id| id.index()).collect::<Vec<_>>(),
        ref_order,
        "{ctx}: traversal order"
    );

    for id in tree.node_ids() {
        let n = tree.node(id);
        let r = &model.nodes[id.index()];
        assert_eq!(n.pos.x.to_bits(), r.pos.x.to_bits(), "{ctx}: {id} x");
        assert_eq!(n.pos.y.to_bits(), r.pos.y.to_bits(), "{ctx}: {id} y");
        assert!(kinds_equal(n.kind, r.kind), "{ctx}: {id} kind");
        assert_eq!(
            n.edge_len().to_bits(),
            r.edge_len.to_bits(),
            "{ctx}: {id} edge length"
        );
        assert_eq!(
            n.parent().map(|p| p.index()),
            r.parent,
            "{ctx}: {id} parent"
        );
        assert_eq!(
            n.children().map(|c| c.index()).collect::<Vec<_>>(),
            model.nodes[id.index()].children,
            "{ctx}: {id} child order"
        );
    }

    assert_eq!(
        tree.wirelength().to_bits(),
        model.wirelength().to_bits(),
        "{ctx}: wirelength"
    );
    let pl = tree.path_lengths();
    let rpl = model.path_lengths();
    assert_eq!(pl.len(), rpl.len(), "{ctx}: path length count");
    for (i, (a, b)) in pl.iter().zip(&rpl).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: path length of node {i}");
    }
}

#[test]
fn random_edit_sequences_match_the_vec_children_reference() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0xC10C_7BEE ^ seed);
        let root_pos = Point::new((rng.next_u64() % 100) as f64, (rng.next_u64() % 100) as f64);
        let mut tree = ClockTree::new(root_pos);
        let mut model = RefTree::new(root_pos);
        // NodeIds are only issued by the tree; `ids[i]` is the id of the
        // node the model knows as index `i`.
        let mut ids = vec![tree.root()];

        let steps = 60 + (rng.next_u64() % 120) as usize;
        for step in 0..steps {
            let n = tree.len();
            let pick = |rng: &mut SplitMix64| (rng.next_u64() as usize) % n;
            let pos = Point::new(
                (rng.next_u64() % 4000) as f64 * 0.25,
                (rng.next_u64() % 4000) as f64 * 0.25,
            );
            match rng.next_u64() % 8 {
                // Grow: sinks, steiners, buffers (tail-append order).
                0 | 1 => {
                    let p = pick(&mut rng);
                    let cap = 0.5 + (rng.next_u64() % 8) as f64 * 0.3;
                    ids.push(tree.add_sink(ids[p], pos, cap));
                    model.add_sink(p, pos, cap);
                }
                2 => {
                    let p = pick(&mut rng);
                    ids.push(tree.add_steiner(ids[p], pos));
                    model.attach(p, pos, NodeKind::Steiner);
                }
                3 => {
                    let p = pick(&mut rng);
                    let cell = (rng.next_u64() % 5) as usize;
                    ids.push(tree.add_buffer(ids[p], pos, cell));
                    model.attach(p, pos, NodeKind::Buffer { cell });
                }
                // Lengthen: snaking detour on a non-root edge.
                4 => {
                    let v = pick(&mut rng);
                    if v != 0 {
                        let extra = (rng.next_u64() % 100) as f64 * 0.5;
                        tree.add_detour(ids[v], extra);
                        model.add_detour(v, extra);
                    }
                }
                // Override a routed length (clamped to Manhattan).
                5 => {
                    let v = pick(&mut rng);
                    if v != 0 {
                        let dist = model.nodes[model.nodes[v].parent.unwrap()]
                            .pos
                            .dist(model.nodes[v].pos);
                        let len = dist + (rng.next_u64() % 40) as f64;
                        tree.set_edge_len(ids[v], len);
                        model.set_edge_len(v, len);
                    }
                }
                // Restructure: reparent a subtree (skip cycles).
                6 => {
                    let v = pick(&mut rng);
                    let p = pick(&mut rng);
                    if v != 0 && !model.would_cycle(v, p) {
                        tree.reparent(ids[v], ids[p]);
                        model.reparent(v, p);
                    }
                }
                // Move a node, re-deriving the touching edge lengths.
                _ => {
                    let v = pick(&mut rng);
                    tree.move_node(ids[v], pos);
                    model.move_node(v, pos);
                }
            }
            // Full bit-exact comparison every few steps (every step is
            // quadratic in sequence length), and always at the end.
            if step % 16 == 0 || step + 1 == steps {
                assert_equivalent(&tree, &model, seed, step);
            }
        }
    }
}
