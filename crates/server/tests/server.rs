//! End-to-end robustness contract of the `slltd` daemon, driven through
//! the real binary over a real Unix socket: backpressure rejection at
//! queue capacity, fault isolation (a panicking or hung child is retried
//! with backoff and then failed without touching its siblings), a
//! SIGTERM drain that checkpoints and seals, and a SIGKILLed daemon that
//! restarts with `--resume` and reproduces bit-identical results.

#![cfg(unix)]

use sllt_obs::journal::read_journal;
use sllt_obs::Value;
use sllt_server::client::{req, Client};
use sllt_server::jobs::tree_path;
use sllt_server::net::Endpoint;
use std::os::unix::process::CommandExt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_slltd");
const SIGKILL: i32 = 9;
const SIGTERM: i32 = 15;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

/// One daemon under test: its own state dir, socket, and process group
/// (so SIGKILLing it takes its job children down too, like a crashed
/// host would).
struct Daemon {
    child: Child,
    ep: Endpoint,
    dir: PathBuf,
}

impl Daemon {
    fn start(tag: &str, extra: &[&str]) -> Daemon {
        let dir = std::env::temp_dir().join(format!("sllt_srv_{tag}_{}", std::process::id()));
        if !extra.contains(&"--resume") {
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("slltd.sock");
        let mut cmd = Command::new(BIN);
        cmd.arg("--state-dir")
            .arg(&dir)
            .arg("--listen")
            .arg(&sock)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .process_group(0);
        let child = cmd.spawn().expect("spawn slltd");
        let d = Daemon {
            child,
            ep: Endpoint::Unix(sock),
            dir,
        };
        // Ready when the socket answers a ping.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(mut c) = Client::connect(&d.ep) {
                if c.request(&req::ping()).is_ok() {
                    return d;
                }
            }
            assert!(Instant::now() < deadline, "slltd never came up");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// One request over a fresh connection.
    fn rpc(&self, v: &Value) -> Value {
        Client::connect(&self.ep)
            .expect("connect")
            .request(v)
            .expect("request")
    }

    fn submit_ok(&self, v: &Value) -> String {
        let reply = self.rpc(v);
        assert_eq!(
            reply.get("ok"),
            Some(&Value::Bool(true)),
            "{}",
            reply.encode()
        );
        reply
            .get("job")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    /// Polls `status` until the job reports `state` (running/done/…).
    fn wait_state(&self, job: &str, state: &str) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let reply = self.rpc(&req::status(Some(job)));
            let got = reply
                .get("jobs")
                .and_then(|j| match j {
                    Value::Arr(a) => a.first(),
                    _ => None,
                })
                .and_then(|r| r.get("state"))
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            if got == state {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "{job} stuck in {got:?}, wanted {state:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Blocks until the job is finally done; returns the result reply.
    fn result(&self, job: &str) -> Value {
        // `result --wait` parks server-side; one connection is enough,
        // but re-ask on the 60 s client deadline below.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let reply = self.rpc(&req::result(job, true));
            if reply.get("done") == Some(&Value::Bool(true)) {
                return reply;
            }
            assert!(
                Instant::now() < deadline,
                "{job} never finished: {}",
                reply.encode()
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn pid(&self) -> i32 {
        self.child.id() as i32
    }

    /// SIGKILL the whole process group — daemon and any job children.
    fn kill_group(&mut self) {
        unsafe { kill(-self.pid(), SIGKILL) };
        self.child.wait().ok();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.child.try_wait().ok().flatten().is_none() {
            self.kill_group();
        }
    }
}

fn journal_records(dir: &Path, kind: &str) -> Vec<Value> {
    read_journal(&dir.join("jobs.jsonl"))
        .expect("jobs journal parses")
        .records
        .into_iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some(kind))
        .collect()
}

fn status_of(reply: &Value) -> &str {
    reply.get("status").and_then(Value::as_str).unwrap_or("?")
}

#[test]
fn backpressure_rejects_at_capacity_and_cancel_frees_the_queue() {
    let mut d = Daemon::start(
        "backpressure",
        &["--workers", "1", "--queue-cap", "1", "--retries", "0"],
    );
    let slow = || req::submit("grid36", "base").with("fault", "sleep:20000");

    // Fill the single worker, then the single queue slot.
    let j1 = d.submit_ok(&slow());
    d.wait_state(&j1, "running");
    let j2 = d.submit_ok(&slow());

    // The queue is full: admission control must reject, not bury.
    let reply = d.rpc(&slow());
    assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        reply.get("code").and_then(Value::as_u64),
        Some(429),
        "full queue must answer busy: {}",
        reply.encode()
    );

    // Cancelling the queued job frees the slot immediately...
    let reply = d.rpc(&req::cancel(&j2));
    assert_eq!(
        reply.get("cancelled").and_then(Value::as_str),
        Some("queued")
    );
    let j4 = d.submit_ok(&slow());

    // ...and cancelling the running job interrupts its child mid-run.
    let reply = d.rpc(&req::cancel(&j1));
    assert_eq!(
        reply.get("cancelled").and_then(Value::as_str),
        Some("running")
    );
    let done = d.result(&j1);
    assert_eq!(status_of(&done), "cancelled");

    // The freed worker moves on to the admitted job.
    d.wait_state(&j4, "running");
    d.kill_group();
    std::fs::remove_dir_all(&d.dir).ok();
}

#[test]
fn faulty_children_are_retried_with_backoff_and_never_touch_their_siblings() {
    let mut d = Daemon::start("isolation", &["--workers", "2"]);

    let healthy = d.submit_ok(&req::submit("grid36", "base"));
    let panicky = d.submit_ok(
        &req::submit("grid36", "base")
            .with("fault", "panic")
            .with("retries", 1u64),
    );
    let hung = d.submit_ok(
        &req::submit("grid36", "base")
            .with("fault", "hang")
            .with("timeout_s", 1.0)
            .with("retries", 1u64),
    );

    // The healthy job completes with a real result and a real tree,
    // regardless of the chaos on the other worker.
    let done = d.result(&healthy);
    assert_eq!(status_of(&done), "ok", "{}", done.encode());
    let result = done.get("result").expect("ok jobs carry a result");
    assert!(result.get("skew_ps").and_then(Value::as_f64).is_some());
    assert!(tree_path(&d.dir, &healthy).exists());

    // The rigged jobs burn their retry budget and land on their own
    // distinct failure statuses.
    let done = d.result(&panicky);
    assert_eq!(status_of(&done), "panic", "{}", done.encode());
    assert_eq!(done.get("attempts").and_then(Value::as_u64), Some(2));
    let done = d.result(&hung);
    assert_eq!(status_of(&done), "timeout", "{}", done.encode());
    assert_eq!(done.get("attempts").and_then(Value::as_u64), Some(2));

    // Retries are journaled with the deterministic backoff: attempt 1
    // starts cold, attempt 2 waits a seeded jittered delay.
    let backoffs: Vec<u64> = journal_records(&d.dir, "job_start")
        .iter()
        .filter(|r| r.get("job").and_then(Value::as_str) == Some(panicky.as_str()))
        .map(|r| r.get("backoff_ms").and_then(Value::as_u64).unwrap())
        .collect();
    assert_eq!(backoffs.len(), 2, "{backoffs:?}");
    assert_eq!(backoffs[0], 0);
    assert!(backoffs[1] > 0, "{backoffs:?}");

    d.kill_group();
    std::fs::remove_dir_all(&d.dir).ok();
}

#[test]
fn sigterm_drains_cleanly_seals_the_journal_and_resume_finishes_the_work() {
    let mut d = Daemon::start(
        "drain",
        &[
            "--workers",
            "1",
            "--drain-grace",
            "0.2",
            "--cancel-grace",
            "0.5",
        ],
    );
    // j1 runs (parked in its sleep fault), j2 waits in the queue.
    let j1 = d.submit_ok(&req::submit("grid36", "base").with("fault", "sleep:3000"));
    d.wait_state(&j1, "running");
    let j2 = d.submit_ok(&req::submit("grid36", "base"));

    // SIGTERM = drain: the daemon must exit 0 on its own.
    unsafe { kill(d.pid(), SIGTERM) };
    let status = d.child.wait().expect("daemon reaped");
    assert!(status.success(), "drain must exit 0, got {status:?}");

    // The journal is sealed with a drained record and neither job is
    // finally done — both are still owed to --resume.
    assert_eq!(journal_records(&d.dir, "drained").len(), 1);
    let finals = journal_records(&d.dir, "job_done")
        .iter()
        .filter(|r| r.get("final") == Some(&Value::Bool(true)))
        .count();
    assert_eq!(finals, 0, "drain must not finalize unfinished jobs");

    // A fresh daemon on the same state dir picks both jobs back up.
    let mut d2 = Daemon::start("drain", &["--workers", "1", "--resume"]);
    assert_eq!(status_of(&d2.result(&j1)), "ok");
    assert_eq!(status_of(&d2.result(&j2)), "ok");
    d2.kill_group();
    std::fs::remove_dir_all(&d2.dir).ok();
}

#[test]
fn sigkilled_daemon_resumes_and_reproduces_bit_identical_trees() {
    // Run A: the daemon (and its job child) die to SIGKILL mid-attempt.
    let mut d = Daemon::start("killresume", &["--workers", "1"]);
    let j1 = d.submit_ok(&req::submit("grid36", "base").with("fault", "sleep:2000"));
    d.wait_state(&j1, "running");
    d.kill_group();

    // Restart over the journal: the interrupted job is re-enqueued and
    // completes.
    let mut d2 = Daemon::start("killresume", &["--workers", "1", "--resume"]);
    assert_eq!(status_of(&d2.result(&j1)), "ok", "resumed job finishes");
    let resumed = std::fs::read(tree_path(&d2.dir, &j1)).expect("resumed tree");
    d2.kill_group();

    // Run B: the same job on an undisturbed daemon. Same design, same
    // config, same id (fresh table ⇒ j1) — the trees must match byte
    // for byte.
    let mut clean = Daemon::start("killclean", &["--workers", "1"]);
    let jc = clean.submit_ok(&req::submit("grid36", "base"));
    assert_eq!(jc, j1, "a fresh table restarts the id sequence");
    assert_eq!(status_of(&clean.result(&jc)), "ok");
    let undisturbed = std::fs::read(tree_path(&clean.dir, &jc)).expect("clean tree");
    assert_eq!(
        resumed, undisturbed,
        "a killed-and-resumed job must reproduce the uninterrupted tree exactly"
    );
    clean.kill_group();
    std::fs::remove_dir_all(&d2.dir).ok();
    std::fs::remove_dir_all(&clean.dir).ok();
}

#[test]
fn unwritable_journal_degrades_to_503_and_the_daemon_drains_cleanly() {
    // The fault schedule lets the journal be created and sealed with
    // its meta record (vfs ops 1..=3), then every further operation —
    // starting with the first submit's append — fails with EIO. An
    // acknowledgement the daemon cannot make durable must be refused,
    // and an unwritable journal must turn into a clean self-drain, not
    // a crash or a silent lie.
    let mut d = Daemon::start(
        "journalfault",
        &[
            "--workers",
            "1",
            "--drain-grace",
            "0.2",
            "--fault-fs",
            "seed=1,after=3,kinds=eio",
        ],
    );
    let reply = d.rpc(&req::submit("grid36", "base"));
    assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        reply.get("code").and_then(Value::as_u64),
        Some(503),
        "non-durable submit must be refused as draining: {}",
        reply.encode()
    );
    let err = reply.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(
        err.contains("storage degraded"),
        "error names the degradation: {err}"
    );

    // The refused submit flipped the daemon into a self-drain; it must
    // exit 0 on its own, and the on-disk journal (written before the
    // faults began) must still parse.
    let status = d.child.wait().expect("daemon reaped");
    assert!(
        status.success(),
        "storage drain must exit 0, got {status:?}"
    );
    let j = read_journal(&d.dir.join("jobs.jsonl")).expect("journal readable");
    assert!(!j.records.is_empty(), "meta record survived");
    std::fs::remove_dir_all(&d.dir).ok();
}

#[test]
fn oom_children_are_classified_distinctly_and_never_retried() {
    let mut d = Daemon::start("oom", &["--workers", "1", "--mem-limit", "512"]);

    // The rigged child balloons its address space into the ceiling; a
    // generous retry budget must go unused because the same job would
    // hit the same wall every time.
    let j1 = d.submit_ok(
        &req::submit("grid36", "base")
            .with("fault", "oom")
            .with("retries", 2u64),
    );
    let done = d.result(&j1);
    assert_eq!(status_of(&done), "oom", "{}", done.encode());
    assert_eq!(
        done.get("attempts").and_then(Value::as_u64),
        Some(1),
        "oom is deterministic against a fixed ceiling; no retries: {}",
        done.encode()
    );
    let detail = done.get("detail").and_then(Value::as_str).unwrap_or("");
    assert!(
        detail.contains("memory ceiling"),
        "detail names the ceiling: {detail}"
    );

    // The ceiling is per-job, not a daemon wound: a healthy job on the
    // same worker completes under the same limit.
    let j2 = d.submit_ok(&req::submit("grid36", "base"));
    assert_eq!(status_of(&d.result(&j2)), "ok");

    d.kill_group();
    std::fs::remove_dir_all(&d.dir).ok();
}

#[test]
fn tenant_quotas_throttle_admission_per_tenant() {
    let mut d = Daemon::start(
        "tenants",
        &[
            "--workers",
            "1",
            "--tenant-quota",
            "2",
            "--tenant-refill",
            "0.05",
        ],
    );
    let submit = |tenant: &str| {
        req::submit("grid36", "base")
            .with("fault", "sleep:15000")
            .with("tenant", tenant)
    };

    // alice's bucket holds two tokens; the refill is slow enough that
    // the third submit inside the same test run must bounce.
    d.submit_ok(&submit("alice"));
    d.submit_ok(&submit("alice"));
    let reply = d.rpc(&submit("alice"));
    assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        reply.get("code").and_then(Value::as_u64),
        Some(429),
        "over-quota tenant must get busy: {}",
        reply.encode()
    );
    let err = reply.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(err.contains("quota"), "error names the quota: {err}");

    // Quotas are per tenant: bob is unaffected by alice's burn rate.
    let jb = d.submit_ok(&submit("bob"));
    let reply = d.rpc(&req::status(Some(&jb)));
    let row = reply
        .get("jobs")
        .and_then(|j| match j {
            Value::Arr(a) => a.first(),
            _ => None,
        })
        .expect("status row");
    assert_eq!(
        row.get("tenant").and_then(Value::as_str),
        Some("bob"),
        "tenant id is recorded on the job: {}",
        row.encode()
    );

    d.kill_group();
    std::fs::remove_dir_all(&d.dir).ok();
}

#[test]
fn resume_compacts_the_journal_and_preserves_final_statuses() {
    let mut d = Daemon::start("compact", &["--workers", "1", "--drain-grace", "0.2"]);
    // A panicky job with retries writes a long attempt history; the
    // healthy job finishes ok. Both histories end final.
    let jp = d.submit_ok(
        &req::submit("grid36", "base")
            .with("fault", "panic")
            .with("retries", 2u64),
    );
    let jh = d.submit_ok(&req::submit("grid36", "base"));
    assert_eq!(status_of(&d.result(&jp)), "panic");
    assert_eq!(status_of(&d.result(&jh)), "ok");
    d.rpc(&req::drain());
    assert!(d.child.wait().expect("reaped").success());
    let starts_before = journal_records(&d.dir, "job_start").len();
    assert!(
        starts_before >= 4,
        "retry history is on disk before compaction: {starts_before}"
    );

    // Resume rewrites the journal as a snapshot: one start per job, one
    // final done, statuses preserved; the temp file is gone (the swap
    // is atomic rename).
    let mut d2 = Daemon::start("compact", &["--workers", "1", "--resume"]);
    assert_eq!(status_of(&d2.result(&jp)), "panic", "status survives");
    assert_eq!(status_of(&d2.result(&jh)), "ok", "status survives");
    assert!(
        !d2.dir.join("jobs.jsonl.tmp").exists(),
        "compaction temp file must not survive the rename"
    );
    let starts_after = journal_records(&d2.dir, "job_start").len();
    assert!(
        starts_after < starts_before,
        "compaction must shrink the attempt history: {starts_after} !< {starts_before}"
    );
    let finals: Vec<String> = journal_records(&d2.dir, "job_done")
        .iter()
        .filter(|r| r.get("final") == Some(&Value::Bool(true)))
        .map(|r| {
            r.get("status")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        })
        .collect();
    assert_eq!(finals.len(), 2, "{finals:?}");
    assert!(finals.contains(&"panic".to_string()) && finals.contains(&"ok".to_string()));
    d2.kill_group();
    std::fs::remove_dir_all(&d2.dir).ok();
}

#[test]
fn disk_budget_garbage_collects_finished_job_artifacts() {
    // ~1 KiB budget: far below what even one grid job's artifacts take,
    // so the sweep after each finished job must delete aggressively.
    let mut d = Daemon::start("diskgc", &["--workers", "1", "--disk-budget", "0.001"]);
    let j1 = d.submit_ok(&req::submit("grid36", "base"));
    assert_eq!(status_of(&d.result(&j1)), "ok");
    let j2 = d.submit_ok(&req::submit("grid36", "base"));
    assert_eq!(status_of(&d.result(&j2)), "ok");

    // The GC pass runs right after the final status lands; poll briefly
    // for the artifact total to fall under budget.
    let budget = 1048u64; // 0.001 MB in bytes, floor
    let artifact_bytes = || -> u64 {
        std::fs::read_dir(&d.dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with("tree_") || n.starts_with("progress_") || n.starts_with("ckpt_")
            })
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if artifact_bytes() <= budget {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "artifacts never fell under budget: {} bytes",
            artifact_bytes()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The journal and design cache are never GC fodder.
    assert!(d.dir.join("jobs.jsonl").exists());

    d.kill_group();
    std::fs::remove_dir_all(&d.dir).ok();
}

#[test]
fn malformed_frames_get_structured_errors_and_the_connection_survives() {
    use sllt_server::proto::{read_frame, Frame, MAX_LINE};
    use std::io::{BufReader, Write};

    let mut d = Daemon::start("proto", &[]);
    let stream = sllt_server::net::Stream::connect(&d.ep).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let mut roundtrip = |bytes: &[u8]| -> Value {
        writer.write_all(bytes).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Line(l) => sllt_obs::json::parse(&String::from_utf8(l).unwrap()).unwrap(),
            other => panic!("expected a reply line, got {other:?}"),
        }
    };
    let code = |v: &Value| v.get("code").and_then(Value::as_u64);

    // Each abuse gets a structured refusal on the same connection...
    let r = roundtrip(b"this is not json\n");
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(code(&r), Some(400), "{}", r.encode());
    let r = roundtrip(b"{\"op\":\"teleport\"}\n");
    assert_eq!(code(&r), Some(400));
    let r = roundtrip(b"{\"op\":\"submit\"}\n");
    assert_eq!(code(&r), Some(400), "submit without a design is a 400");
    let r = roundtrip(b"{\"op\":\"cancel\",\"job\":\"j999\"}\n");
    assert_eq!(code(&r), Some(404));
    let mut huge = vec![b'a'; MAX_LINE + 1024];
    huge.push(b'\n');
    let r = roundtrip(&huge);
    assert_eq!(code(&r), Some(413), "oversized line: {}", r.encode());

    // ...and the connection still works afterwards.
    let r = roundtrip(b"{\"op\":\"ping\"}\n");
    assert_eq!(r.get("pong"), Some(&Value::Bool(true)), "{}", r.encode());

    d.kill_group();
    std::fs::remove_dir_all(&d.dir).ok();
}
