//! Protocol fuzz suite for the `slltd` JSONL framer and request parser
//! (`--features proptest`).
//!
//! The daemon's front door must hold four properties for *any* byte
//! stream a client (or an attacker, or a torn write) can produce:
//!
//! 1. **No panics** — `read_frame` + `parse_request` return frames and
//!    structured [`ProtoError`]s for arbitrary byte soup;
//! 2. **Bounded memory** — no frame ever buffers more than [`MAX_LINE`]
//!    bytes; longer lines surface as `Oversized` with their size;
//! 3. **Resynchronization** — a malformed line never poisons the ones
//!    behind it: pipelined valid requests after garbage still parse;
//! 4. **Torn writes** — a stream cut mid-line loses only the torn
//!    fragment, silently, and every complete line before it.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sllt_server::proto::{parse_request, read_frame, Frame, Request, E_PARSE, MAX_LINE};
use std::io::Cursor;

/// Raw bytes, full 0..=255 range enriched with newlines, braces and
/// quotes so frame boundaries and JSON-shaped prefixes actually occur.
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        (0u32..448).prop_map(|b| match b {
            0..=255 => b as u8,
            256..=319 => b'\n',
            320..=383 => b'{',
            _ => b'"',
        }),
        0..1024,
    )
}

/// Adversarial middle ground: lines assembled from protocol fragments —
/// valid requests, near-misses, torn JSON, oversized payloads.
fn arb_fragment_soup() -> impl Strategy<Value = Vec<u8>> {
    const FRAGMENTS: &[&str] = &[
        r#"{"op":"ping"}"#,
        r#"{"op":"status"}"#,
        r#"{"op":"drain"}"#,
        r#"{"op":"submit","design":"grid36"}"#,
        r#"{"op":"submit","design":"grid36","config":"tight","retries":2}"#,
        r#"{"op":"submit","design":"grid36","timeout_s":-5}"#,
        r#"{"op":"submit","design":7}"#,
        r#"{"op":"submit"}"#,
        r#"{"op":"cancel","job":"j1"}"#,
        r#"{"op":"cancel"}"#,
        r#"{"op":"result","job":"j1","wait":true}"#,
        r#"{"op":"result","job":"j1","wait":"yes"}"#,
        r#"{"op":"nonsense"}"#,
        r#"{"no":"op"}"#,
        r#"{"op":"ping""#,
        r#"["op","ping"]"#,
        "not json at all",
        "",
        "   ",
        "\u{0}\u{1}\u{2}",
        "\u{fffd}",
    ];
    proptest::collection::vec((0usize..FRAGMENTS.len(), 0u32..4), 0..24).prop_map(|picks| {
        let mut out = Vec::new();
        for (i, sep) in picks {
            out.extend_from_slice(FRAGMENTS[i].as_bytes());
            // 3-in-4 odds of a newline: frames usually end, but adjacent
            // fragments sometimes concatenate into torn-write shapes.
            if sep > 0 {
                out.push(b'\n');
            }
        }
        out
    })
}

/// Drives the framer to EOF, feeding each complete line to the parser —
/// exactly what the daemon's connection loop does.
fn drain(bytes: &[u8]) -> Vec<Frame> {
    let mut r = Cursor::new(bytes.to_vec());
    let mut frames = Vec::new();
    loop {
        let f = read_frame(&mut r).expect("Cursor reads cannot fail");
        let eof = f == Frame::Eof;
        if let Frame::Line(l) = &f {
            // Any outcome but a panic is acceptable.
            let _ = parse_request(l);
        }
        frames.push(f);
        if eof {
            return frames;
        }
    }
}

#[test]
fn framer_and_parser_never_panic_on_byte_soup() {
    proptest!(|(bytes in arb_bytes())| {
        drain(&bytes);
    });
}

#[test]
fn framer_and_parser_never_panic_on_fragment_soup() {
    proptest!(|(bytes in arb_fragment_soup())| {
        drain(&bytes);
    });
}

#[test]
fn frames_never_exceed_the_line_limit_and_oversized_is_reported() {
    proptest!(|(bytes in arb_bytes(), pad in 0usize..3 * MAX_LINE)| {
        // Splice one deliberately huge line into the soup.
        let mut stream = vec![b'y'; pad];
        stream.push(b'\n');
        stream.extend_from_slice(&bytes);
        for f in drain(&stream) {
            match f {
                Frame::Line(l) => prop_assert!(l.len() <= MAX_LINE),
                Frame::Oversized { dropped } => prop_assert!(dropped > MAX_LINE),
                Frame::Eof => {}
            }
        }
    });
}

#[test]
fn malformed_lines_yield_structured_errors_never_wedge_the_stream() {
    proptest!(|(soup in arb_fragment_soup())| {
        // Garbage, then two pipelined valid requests, then a torn tail:
        // the valid requests must parse regardless of what precedes them.
        let mut stream = soup.clone();
        if stream.last() != Some(&b'\n') {
            stream.push(b'\n');
        }
        stream.extend_from_slice(b"{\"op\":\"ping\"}\n{\"op\":\"cancel\",\"job\":\"j9\"}\n");
        stream.extend_from_slice(b"{\"op\":\"torn");

        let mut r = Cursor::new(stream);
        let mut parsed = Vec::new();
        let mut torn_seen = false;
        loop {
            match read_frame(&mut r).unwrap() {
                Frame::Eof => break,
                Frame::Oversized { .. } => {}
                Frame::Line(l) => match parse_request(&l) {
                    Ok(req) => parsed.push(req),
                    Err(e) => {
                        // Every rejection is structured and wire-ready.
                        prop_assert_eq!(e.code, E_PARSE);
                        let wire = e.to_value();
                        prop_assert!(wire.get("error").is_some());
                        torn_seen |= l.starts_with(b"{\"op\":\"torn");
                    }
                },
            }
        }
        // The pipelined pair survived whatever came before it...
        let n = parsed.len();
        prop_assert!(n >= 2, "valid requests lost: {parsed:?}");
        prop_assert_eq!(&parsed[n - 1], &Request::Cancel { job: "j9".into() });
        prop_assert_eq!(&parsed[n - 2], &Request::Ping);
        // ...and the torn tail was silently discarded, not parsed.
        prop_assert!(!torn_seen, "torn trailing fragment must not reach the parser");
    });
}
