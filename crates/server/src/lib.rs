//! `sllt-server`: a persistent CTS job daemon (`slltd`) and the
//! robustness primitives it shares with the batch tooling.
//!
//! The daemon accepts jobs over a Unix-domain or localhost TCP socket
//! speaking line-delimited JSON ([`proto`]), schedules them on a
//! bounded worker pool where **every attempt runs in a re-exec'd child
//! process** ([`supervise`]) so a panic or runaway allocation in one
//! job can never take down the service or its neighbors, and journals
//! every job transition through the PR-5 checksummed appender
//! ([`state`]) so a SIGKILLed daemon restarts with `--resume` and picks
//! up exactly where the journal ends.
//!
//! Robustness building blocks exported for reuse elsewhere in the
//! workspace (the `suite` batch runner shares all three):
//!
//! * [`supervise::run_supervised`] — deadline-SIGKILL and
//!   SIGINT-then-SIGKILL child supervision;
//! * [`backoff::backoff_ms`] — deterministic jittered exponential
//!   retry backoff (pure function of seed and attempt);
//! * [`jobs::config_by_name`] — the named constraint configs.
//!
//! Everything here is std-only: sockets, threads, and processes from
//! the standard library, JSON from `sllt-obs`.

pub mod backoff;
pub mod cache;
pub mod client;
pub mod jobs;
pub mod net;
pub mod proto;
pub mod server;
pub mod state;
pub mod supervise;

pub use client::Client;
pub use net::Endpoint;
pub use server::{serve, ServerConfig};
