//! The daemon's job table, journaled through the PR-5 checksummed
//! appender.
//!
//! Every externally visible transition — submitted, attempt started,
//! attempt finished, drained — is one JSONL record in `jobs.jsonl`
//! under the state directory. The in-memory [`JobTable`] is always
//! reconstructible from that journal: a daemon killed mid-job restarts
//! with `--resume`, replays the records, and re-enqueues exactly the
//! jobs that never reached a *final* `job_done`. Because the record is
//! appended (fsync'd) *before* the side effect it describes is
//! acknowledged to a client, the journal can claim at most one
//! in-flight transition beyond reality — and the torn-tail tolerance
//! of [`read_journal`] absorbs a record cut mid-write by the kill.

use crate::jobs::FaultSpec;
use sllt_obs::journal::Journal;
use sllt_obs::Value;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

/// Journal schema version for `jobs.jsonl`.
pub const SCHEMA: u64 = 1;

/// Final job statuses as journaled and reported to clients.
pub const STATUS_OK: &str = "ok";
pub const STATUS_ERROR: &str = "error";
pub const STATUS_PANIC: &str = "panic";
pub const STATUS_TIMEOUT: &str = "timeout";
pub const STATUS_CANCELLED: &str = "cancelled";
/// The child blew through its `--mem-limit` address-space ceiling and
/// was killed by the allocator. Distinct from [`STATUS_PANIC`] — an OOM
/// against a fixed ceiling is deterministic, so it is final and never
/// retried.
pub const STATUS_OOM: &str = "oom";
/// Non-final: the daemon drained while this attempt was in flight; the
/// job checkpointed and will resume under `--resume`.
pub const STATUS_DRAINED: &str = "drained";

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the admission queue.
    Queued,
    /// An attempt is running in a child process.
    Running,
    /// Finished for good, with the final status string.
    Done(String),
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Stable id (`j<seq>`).
    pub id: String,
    /// Design name (or the submit-time name of a by-file design).
    pub design: String,
    /// Sanitized artifact path for by-file submissions.
    pub design_file: Option<PathBuf>,
    /// Constraint config name.
    pub config: String,
    /// Per-attempt wall-clock deadline, seconds.
    pub timeout_s: Option<f64>,
    /// Retry budget (total attempts = retries + 1).
    pub retries: u32,
    /// Optional fault hook (test lever).
    pub fault: Option<FaultSpec>,
    /// Tenant id the submit was billed against (admission quotas).
    pub tenant: Option<String>,
    /// Admission order; also the resume re-enqueue order.
    pub seq: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Attempts started so far.
    pub attempt: u32,
    /// Last failure detail, if any.
    pub detail: Option<String>,
    /// Parsed `RESULT` object from a successful child.
    pub result: Option<Value>,
    /// A client asked to cancel while the job was running.
    pub cancel_requested: bool,
}

impl JobRecord {
    /// The client-facing status object (`progress` is tailed from the
    /// job's progress journal by the server, not stored here).
    pub fn status_value(&self, progress: Option<f64>) -> Value {
        let state = match &self.state {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        };
        let mut v = Value::obj()
            .with("job", self.id.as_str())
            .with("design", self.design.as_str())
            .with("config", self.config.as_str())
            .with("state", state)
            .with("attempt", u64::from(self.attempt));
        if let JobState::Done(status) = &self.state {
            v = v.with("status", status.as_str());
        }
        if let Some(t) = &self.tenant {
            v = v.with("tenant", t.as_str());
        }
        if let Some(d) = &self.detail {
            v = v.with("detail", d.as_str());
        }
        if let Some(p) = progress {
            v = v.with("progress", p);
        }
        v
    }
}

/// Outcome of a cancel request (drives the protocol reply).
#[derive(Debug, PartialEq)]
pub enum CancelOutcome {
    /// No such job.
    NotFound,
    /// Already finished; nothing to do.
    AlreadyDone(String),
    /// Was queued; now finally cancelled (journal record returned).
    Dequeued(Value),
    /// Is running; the server must fire the attempt's interrupt token.
    Interrupt,
}

/// In-memory job table. All mutating methods return the journal record
/// describing the transition — the caller appends it *before* acting on
/// the new state, which is what makes the table replayable.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    next_seq: u64,
}

impl JobTable {
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// The journal head record.
    pub fn meta() -> Value {
        Value::obj()
            .with("kind", "slltd-meta")
            .with("schema", SCHEMA)
    }

    /// The seal record written by a clean drain.
    pub fn drained_record() -> Value {
        Value::obj().with("kind", "drained")
    }

    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    pub fn get(&self, id: &str) -> Option<&JobRecord> {
        self.jobs.get(id)
    }

    /// All jobs in admission order.
    pub fn iter(&self) -> impl Iterator<Item = &JobRecord> {
        let mut v: Vec<&JobRecord> = self.jobs.values().collect();
        v.sort_by_key(|r| r.seq);
        v.into_iter()
    }

    /// Jobs not yet finally done (used by drain to decide when to stop
    /// waiting).
    pub fn unfinished(&self) -> usize {
        self.jobs
            .values()
            .filter(|r| !matches!(r.state, JobState::Done(_)))
            .count()
    }

    /// Admits a job. Returns `(id, journal_record)`. Capacity is the
    /// caller's concern — the table itself never rejects.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        design: &str,
        design_file: Option<PathBuf>,
        config: &str,
        timeout_s: Option<f64>,
        retries: u32,
        fault: Option<FaultSpec>,
        tenant: Option<String>,
    ) -> (String, Value) {
        self.next_seq += 1;
        let seq = self.next_seq;
        let id = format!("j{seq}");
        let rec = JobRecord {
            id: id.clone(),
            design: design.to_string(),
            design_file,
            config: config.to_string(),
            timeout_s,
            retries,
            fault,
            tenant,
            seq,
            state: JobState::Queued,
            attempt: 0,
            detail: None,
            result: None,
            cancel_requested: false,
        };
        let journal = submitted_record(&rec);
        self.jobs.insert(id.clone(), rec);
        self.queue.push_back(id.clone());
        (id, journal)
    }

    /// Pops the next queued job for a worker, marking it running.
    pub fn pop_ready(&mut self) -> Option<String> {
        let id = self.queue.pop_front()?;
        if let Some(r) = self.jobs.get_mut(&id) {
            r.state = JobState::Running;
        }
        Some(id)
    }

    /// Starts the next attempt of a running job.
    pub fn mark_start(&mut self, id: &str, backoff_ms: u64) -> Value {
        let r = self.jobs.get_mut(id).expect("start of unknown job");
        r.attempt += 1;
        r.state = JobState::Running;
        Value::obj()
            .with("kind", "job_start")
            .with("job", id)
            .with("attempt", u64::from(r.attempt))
            .with("backoff_ms", backoff_ms)
    }

    /// Finishes an attempt. `is_final` ends the job; otherwise it stays
    /// running (the worker retries in place).
    pub fn mark_done(
        &mut self,
        id: &str,
        status: &str,
        is_final: bool,
        wall_s: f64,
        detail: Option<&str>,
        result: Option<Value>,
    ) -> Value {
        let r = self.jobs.get_mut(id).expect("done of unknown job");
        let mut v = Value::obj()
            .with("kind", "job_done")
            .with("job", id)
            .with("attempt", u64::from(r.attempt))
            .with("status", status)
            .with("final", is_final)
            .with("wall_s", wall_s);
        if let Some(d) = detail {
            r.detail = Some(d.to_string());
            v = v.with("detail", d);
        }
        if let Some(res) = result {
            v = v.with("result", res.clone());
            r.result = Some(res);
        }
        if is_final {
            r.state = JobState::Done(status.to_string());
        }
        v
    }

    /// Handles a cancel request (see [`CancelOutcome`]).
    pub fn cancel(&mut self, id: &str) -> CancelOutcome {
        let Some(r) = self.jobs.get_mut(id) else {
            return CancelOutcome::NotFound;
        };
        match &r.state {
            JobState::Done(status) => CancelOutcome::AlreadyDone(status.clone()),
            JobState::Queued => {
                self.queue.retain(|q| q != id);
                // A queued job has attempt 0; cancelling it is final.
                CancelOutcome::Dequeued(self.mark_done(
                    id,
                    STATUS_CANCELLED,
                    true,
                    0.0,
                    Some("cancelled while queued"),
                    None,
                ))
            }
            JobState::Running => {
                r.cancel_requested = true;
                CancelOutcome::Interrupt
            }
        }
    }

    /// Rebuilds the table from a replayed journal. Jobs without a final
    /// `job_done` are re-enqueued in admission order; their ids are
    /// returned for logging.
    ///
    /// # Errors
    ///
    /// A message when the journal head is missing or from a different
    /// schema.
    pub fn replay(journal: &Journal) -> Result<(JobTable, Vec<String>), String> {
        let head = journal
            .records
            .first()
            .ok_or("jobs journal is empty (no meta record)")?;
        if head.get("kind").and_then(Value::as_str) != Some("slltd-meta")
            || head.get("schema").and_then(Value::as_u64) != Some(SCHEMA)
        {
            return Err(format!(
                "jobs journal has unexpected head: {}",
                head.encode()
            ));
        }
        let mut t = JobTable::new();
        for rec in &journal.records[1..] {
            t.apply(rec)?;
        }
        // Everything not finally done goes back on the queue, oldest
        // submission first.
        let mut pending: Vec<(u64, String)> = t
            .jobs
            .values()
            .filter(|r| !matches!(r.state, JobState::Done(_)))
            .map(|r| (r.seq, r.id.clone()))
            .collect();
        pending.sort();
        t.queue = pending.iter().map(|(_, id)| id.clone()).collect();
        for (_, id) in &pending {
            let r = t.jobs.get_mut(id).expect("pending job exists");
            r.state = JobState::Queued;
            r.cancel_requested = false;
        }
        let requeued = pending.into_iter().map(|(_, id)| id).collect();
        Ok((t, requeued))
    }

    /// The minimal record sequence that replays to this exact table:
    /// one `job_submitted` per job, one `job_start` carrying the final
    /// attempt count when any attempt ran, and one final `job_done` for
    /// terminally finished jobs. Intermediate retries, non-final drain
    /// rows, and `drained` seals are dropped — they carry no state a
    /// replay keeps. `--resume` rewrites `jobs.jsonl` from this, so a
    /// long-lived daemon's journal stays proportional to its job table
    /// instead of its history.
    pub fn compact_records(&self) -> Vec<Value> {
        let mut out = vec![JobTable::meta()];
        for r in self.iter() {
            out.push(submitted_record(r));
            if r.attempt > 0 {
                out.push(
                    Value::obj()
                        .with("kind", "job_start")
                        .with("job", r.id.as_str())
                        .with("attempt", u64::from(r.attempt))
                        .with("backoff_ms", 0u64),
                );
            }
            if let JobState::Done(status) = &r.state {
                let mut v = Value::obj()
                    .with("kind", "job_done")
                    .with("job", r.id.as_str())
                    .with("attempt", u64::from(r.attempt))
                    .with("status", status.as_str())
                    .with("final", true)
                    .with("wall_s", 0.0);
                if let Some(d) = &r.detail {
                    v = v.with("detail", d.as_str());
                }
                if let Some(res) = &r.result {
                    v = v.with("result", res.clone());
                }
                out.push(v);
            }
        }
        out
    }

    fn apply(&mut self, rec: &Value) -> Result<(), String> {
        let kind = rec
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("journal record without kind: {}", rec.encode()))?;
        let job_id = || {
            rec.get("job")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} record without job id"))
        };
        match kind {
            "job_submitted" => {
                let get = |k: &str| rec.get(k).and_then(Value::as_str);
                let id = job_id()?;
                let seq = rec
                    .get("seq")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("job_submitted without seq: {}", rec.encode()))?;
                let fault = match get("fault") {
                    Some(s) => Some(s.parse::<FaultSpec>()?),
                    None => None,
                };
                let r = JobRecord {
                    id: id.clone(),
                    design: get("design").unwrap_or("?").to_string(),
                    design_file: get("design_file").map(PathBuf::from),
                    config: get("config").unwrap_or("base").to_string(),
                    timeout_s: rec.get("timeout_s").and_then(Value::as_f64),
                    retries: rec.get("retries").and_then(Value::as_u64).unwrap_or(0) as u32,
                    fault,
                    tenant: get("tenant").map(str::to_string),
                    seq,
                    state: JobState::Queued,
                    attempt: 0,
                    detail: None,
                    result: None,
                    cancel_requested: false,
                };
                self.next_seq = self.next_seq.max(seq);
                self.jobs.insert(id, r);
            }
            "job_start" => {
                let id = job_id()?;
                if let Some(r) = self.jobs.get_mut(&id) {
                    r.state = JobState::Running;
                    r.attempt = rec.get("attempt").and_then(Value::as_u64).unwrap_or(0) as u32;
                }
            }
            "job_done" => {
                let id = job_id()?;
                if let Some(r) = self.jobs.get_mut(&id) {
                    if let Some(d) = rec.get("detail").and_then(Value::as_str) {
                        r.detail = Some(d.to_string());
                    }
                    if let Some(res) = rec.get("result") {
                        r.result = Some(res.clone());
                    }
                    let is_final = rec.get("final") == Some(&Value::Bool(true));
                    if is_final {
                        let status = rec
                            .get("status")
                            .and_then(Value::as_str)
                            .unwrap_or(STATUS_ERROR);
                        r.state = JobState::Done(status.to_string());
                    }
                }
            }
            // A clean seal from a previous life; no table effect.
            "drained" => {}
            other => return Err(format!("unknown journal record kind {other:?}")),
        }
        Ok(())
    }
}

fn submitted_record(r: &JobRecord) -> Value {
    let mut v = Value::obj()
        .with("kind", "job_submitted")
        .with("job", r.id.as_str())
        .with("design", r.design.as_str())
        .with("config", r.config.as_str())
        .with("retries", u64::from(r.retries))
        .with("seq", r.seq);
    if let Some(p) = &r.design_file {
        v = v.with("design_file", p.display().to_string());
    }
    if let Some(t) = r.timeout_s {
        v = v.with("timeout_s", t);
    }
    if let Some(f) = r.fault {
        v = v.with("fault", f.to_string());
    }
    if let Some(t) = &r.tenant {
        v = v.with("tenant", t.as_str());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sllt_obs::journal::{read_journal, DurableAppender};

    fn journal_of(records: &[Value]) -> Journal {
        let dir = std::env::temp_dir().join(format!(
            "sllt_state_{}_{}",
            std::process::id(),
            records.len()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let mut app = DurableAppender::create(&path).unwrap();
        for r in records {
            app.append(r).unwrap();
        }
        drop(app);
        let j = read_journal(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        j
    }

    #[test]
    fn submit_pop_done_lifecycle() {
        let mut t = JobTable::new();
        let (id, rec) = t.submit("grid36", None, "base", Some(5.0), 2, None, None);
        assert_eq!(id, "j1");
        assert_eq!(
            rec.get("kind").and_then(Value::as_str),
            Some("job_submitted")
        );
        assert_eq!(t.queued_len(), 1);

        assert_eq!(t.pop_ready().as_deref(), Some("j1"));
        assert_eq!(t.queued_len(), 0);
        let start = t.mark_start(&id, 0);
        assert_eq!(start.get("attempt").and_then(Value::as_u64), Some(1));

        let done = t.mark_done(&id, STATUS_OK, true, 1.5, None, Some(Value::obj()));
        assert_eq!(done.get("final"), Some(&Value::Bool(true)));
        assert_eq!(t.get(&id).unwrap().state, JobState::Done(STATUS_OK.into()));
        assert_eq!(t.unfinished(), 0);
    }

    #[test]
    fn cancel_covers_all_three_states() {
        let mut t = JobTable::new();
        let (q, _) = t.submit("grid36", None, "base", None, 0, None, None);
        let (r, _) = t.submit("grid48", None, "base", None, 0, None, None);
        assert_eq!(t.cancel("nope"), CancelOutcome::NotFound);

        // Queued: removed and finally cancelled.
        match t.cancel(&q) {
            CancelOutcome::Dequeued(rec) => {
                assert_eq!(
                    rec.get("status").and_then(Value::as_str),
                    Some(STATUS_CANCELLED)
                );
            }
            other => panic!("queued cancel gave {other:?}"),
        }
        assert_eq!(t.queued_len(), 1, "cancelled job left the queue");

        // Running: flagged for interrupt.
        // (pop_ready returns r since q was cancelled out of the queue.)
        assert_eq!(t.pop_ready().as_deref(), Some(r.as_str()));
        t.mark_start(&r, 0);
        assert_eq!(t.cancel(&r), CancelOutcome::Interrupt);
        assert!(t.get(&r).unwrap().cancel_requested);

        // Done: reported as such.
        t.mark_done(&r, STATUS_CANCELLED, true, 0.1, None, None);
        assert_eq!(
            t.cancel(&r),
            CancelOutcome::AlreadyDone(STATUS_CANCELLED.into())
        );
    }

    #[test]
    fn replay_reconstructs_and_requeues_unfinished() {
        let mut live = JobTable::new();
        let mut records = vec![JobTable::meta()];
        let (a, rec) = live.submit("grid36", None, "base", None, 1, None, None);
        records.push(rec);
        let (b, rec) = live.submit(
            "grid48",
            None,
            "tight",
            None,
            0,
            Some(FaultSpec::Sleep(10)),
            Some("alice".into()),
        );
        records.push(rec);
        let (c, rec) = live.submit("grid64", None, "nosa", None, 0, None, None);
        records.push(rec);

        // a finishes, b is mid-flight (start, then a non-final drain
        // record), c never starts.
        live.pop_ready();
        records.push(live.mark_start(&a, 0));
        records.push(live.mark_done(&a, STATUS_OK, true, 0.5, None, Some(Value::obj())));
        live.pop_ready();
        records.push(live.mark_start(&b, 0));
        records.push(live.mark_done(&b, STATUS_DRAINED, false, 0.2, Some("draining"), None));
        records.push(JobTable::drained_record());

        let (t, requeued) = JobTable::replay(&journal_of(&records)).unwrap();
        assert_eq!(requeued, vec![b.clone(), c.clone()]);
        assert_eq!(t.get(&a).unwrap().state, JobState::Done(STATUS_OK.into()));
        assert_eq!(t.get(&b).unwrap().state, JobState::Queued);
        assert_eq!(t.get(&b).unwrap().fault, Some(FaultSpec::Sleep(10)));
        assert_eq!(t.get(&c).unwrap().state, JobState::Queued);
        // New submissions continue the id sequence.
        let mut t = t;
        let (next, _) = t.submit("grid36", None, "base", None, 0, None, None);
        assert_eq!(next, "j4");
    }

    #[test]
    fn replay_rejects_missing_or_foreign_head() {
        let j = journal_of(&[Value::obj().with("kind", "suite-meta")]);
        assert!(JobTable::replay(&j).is_err());
    }
}
