//! Transport abstraction: one daemon, two socket families.
//!
//! `slltd` listens on either a Unix-domain socket (the default — no
//! network exposure, filesystem permissions apply) or a localhost TCP
//! socket (for containers that cannot share a filesystem path). Both
//! sides of the protocol speak through [`Endpoint`], [`Listener`], and
//! [`Stream`], so everything above this module is family-agnostic.
//!
//! An endpoint string that parses as a socket address (`host:port`) is
//! TCP; anything else is a Unix socket path. `results/slltd.sock` and
//! `127.0.0.1:7411` therefore both work with no extra flags.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens / the client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP socket at this address (loopback expected; the daemon has
    /// no authentication story beyond the host boundary).
    Tcp(SocketAddr),
}

impl Endpoint {
    /// Parses an endpoint string: a parseable `host:port` is TCP,
    /// everything else is a Unix socket path.
    pub fn parse(s: &str) -> Endpoint {
        match s.parse::<SocketAddr>() {
            Ok(addr) => Endpoint::Tcp(addr),
            Err(_) => Endpoint::Unix(PathBuf::from(s)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "{a}"),
        }
    }
}

/// A bound, non-blocking server socket of either family.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener plus the path to unlink on shutdown.
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `ep` in non-blocking mode. A stale Unix socket file left by
    /// a crashed daemon is removed first — the journal, not the socket,
    /// is the source of truth for server state.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(ep: &Endpoint) -> std::io::Result<Listener> {
        match ep {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("unix sockets unsupported here: {}", path.display()),
            )),
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Accepts one pending connection, or `None` when nothing is
    /// waiting (the accept loop interleaves this with a drain check).
    ///
    /// # Errors
    ///
    /// Propagates accept failures other than `WouldBlock`.
    pub fn accept(&self) -> std::io::Result<Option<Stream>> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Stream::Unix(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            std::fs::remove_file(path).ok();
        }
    }
}

/// One accepted or dialed connection of either family.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Dials `ep` (blocking).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(ep: &Endpoint) -> std::io::Result<Stream> {
        match ep {
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("unix sockets unsupported here: {}", path.display()),
            )),
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
        }
    }

    /// A second handle to the same connection (for split read/write).
    ///
    /// # Errors
    ///
    /// Propagates `dup`/clone failures.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Bounds every blocking read so a silent peer cannot pin a
    /// connection handler forever. `None` removes the bound.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Bounds every blocking write so a peer that stops reading (full
    /// socket buffer, wedged process) cannot pin the sender forever.
    /// `None` removes the bound.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Tcp(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_strings_classify_by_family() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7411"),
            Endpoint::Tcp("127.0.0.1:7411".parse().unwrap())
        );
        assert!(matches!(
            Endpoint::parse("results/slltd.sock"),
            Endpoint::Unix(_)
        ));
        // A host:port that does not parse as an address is a path.
        assert!(matches!(
            Endpoint::parse("localhost:bad"),
            Endpoint::Unix(_)
        ));
    }

    #[cfg(unix)]
    #[test]
    fn unix_round_trip_and_stale_socket_cleanup() {
        let path = std::env::temp_dir().join(format!("sllt_net_{}.sock", std::process::id()));
        std::fs::write(&path, b"stale").unwrap();
        let ep = Endpoint::Unix(path.clone());
        let listener = Listener::bind(&ep).expect("bind over stale file");
        let mut client = Stream::connect(&ep).unwrap();
        client.write_all(b"hi").unwrap();
        let mut server = loop {
            if let Some(s) = listener.accept().unwrap() {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        drop(listener);
        assert!(!path.exists(), "socket file unlinked on drop");
    }
}
