//! The `slltd` daemon: accept loop, worker pool, drain choreography.
//!
//! One thread per client connection (requests are line-delimited and
//! answered in order), a fixed pool of worker threads that pop the
//! admission queue, and one child process per job attempt — the worker
//! supervises the child ([`run_supervised`]) and classifies its exit.
//! All shared state hangs off [`Shared`]: the journaled [`JobTable`]
//! under one mutex, the durable appender under another, and the two
//! condvars that connect them (`cv_queue` wakes workers on admission,
//! `cv_done` wakes `result --wait` clients on completion).
//!
//! Drain is cooperative and total-ordered: the drain token fires (via
//! SIGTERM or the `drain` verb), admission flips to 503, idle workers
//! exit, in-flight children get [`drain_grace`](ServerConfig) to finish
//! on their own and are then SIGINTed so they checkpoint and exit; the
//! journal gets a `drained` seal record and the process exits 0. A
//! SIGKILLed daemon skips all of that — which is fine, because the
//! journal is written ahead of every acknowledged transition and
//! `--resume` replays it.

use crate::backoff::default_backoff_ms;
use crate::cache::DesignCache;
use crate::jobs::{self, ChildArgs, FaultSpec, EXIT_JOB_CANCELLED, EXIT_JOB_ERROR};
use crate::net::{Endpoint, Listener, Stream};
use crate::proto::{
    parse_request, read_frame, Frame, ProtoError, Request, SubmitSpec, E_BUSY, E_DRAINING,
    E_INTERNAL, E_NOT_FOUND, E_PARSE, E_TOO_LARGE,
};
use crate::state::{
    CancelOutcome, JobState, JobTable, STATUS_CANCELLED, STATUS_DRAINED, STATUS_ERROR, STATUS_OK,
    STATUS_OOM, STATUS_PANIC, STATUS_TIMEOUT,
};
use crate::supervise::{run_supervised, SuperviseOpts};
use sllt_cts::CancelToken;
use sllt_obs::journal::{fnv1a64, read_journal, DurableAppender};
use sllt_obs::progress::read_progress;
use sllt_obs::vfs::{real_fs, Vfs};
use sllt_obs::Value;
use std::collections::{HashMap, HashSet};
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything that shapes one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen (unix socket path or `host:port`).
    pub listen: Endpoint,
    /// Worker pool size = max concurrently running children.
    pub workers: usize,
    /// Admission queue capacity; submits beyond it get [`E_BUSY`].
    pub queue_cap: usize,
    /// Default per-attempt deadline when a submit names none.
    pub default_timeout: Option<Duration>,
    /// Default retry budget when a submit names none.
    pub default_retries: u32,
    /// State directory: `jobs.jsonl`, checkpoints, progress journals,
    /// result trees, and the design cache all live here.
    pub state_dir: PathBuf,
    /// Replay `jobs.jsonl` and re-enqueue unfinished jobs.
    pub resume: bool,
    /// SIGINT → SIGKILL escalation window for cancelled children.
    pub cancel_grace: Duration,
    /// How long in-flight jobs may run on after drain starts before
    /// they are asked (SIGINT) to checkpoint and exit.
    pub drain_grace: Duration,
    /// Route workers inside each child.
    pub child_workers: usize,
    /// Seed for the deterministic retry-backoff jitter.
    pub seed: u64,
    /// Filesystem seam for the journal, the design cache, and resume
    /// compaction; swap in a [`FaultFs`](sllt_obs::vfs::FaultFs) (via
    /// `--fault-fs`) to torture the storage paths deterministically.
    pub vfs: Arc<dyn Vfs>,
    /// Per-job address-space ceiling (bytes) installed in each child
    /// before exec; a child killed by it is classified
    /// [`STATUS_OOM`], final, never retried. `None` = unlimited.
    pub mem_limit: Option<u64>,
    /// Byte budget for completed-job artifacts in the state dir
    /// (result trees, progress journals, checkpoints); when exceeded,
    /// oldest unprotected artifacts are deleted. `None` = unbounded.
    pub disk_budget: Option<u64>,
    /// Per-tenant admission token-bucket capacity; `None` disables
    /// tenant quotas entirely.
    pub tenant_quota: Option<f64>,
    /// Token-bucket refill rate, tokens (admitted submits) per second.
    pub tenant_refill: f64,
}

impl ServerConfig {
    /// Sensible defaults for `listen`/`state_dir`; everything else
    /// tunable by flag.
    pub fn new(listen: Endpoint, state_dir: PathBuf) -> ServerConfig {
        ServerConfig {
            listen,
            workers: 2,
            queue_cap: 8,
            default_timeout: None,
            default_retries: 1,
            state_dir,
            resume: false,
            cancel_grace: Duration::from_secs(5),
            drain_grace: Duration::from_secs(2),
            child_workers: 1,
            seed: 0x511d,
            vfs: real_fs(),
            mem_limit: None,
            disk_budget: None,
            tenant_quota: None,
            tenant_refill: 1.0,
        }
    }
}

/// One tenant's admission token bucket: `tokens` refills continuously
/// at the configured rate, capped at the configured capacity; each
/// admitted submit spends one token.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

struct Shared {
    cfg: ServerConfig,
    table: Mutex<JobTable>,
    cv_queue: Condvar,
    cv_done: Condvar,
    journal: Mutex<DurableAppender>,
    cache: DesignCache,
    draining: AtomicBool,
    drain: CancelToken,
    /// Set on the first journal-append failure: admission flips to 503
    /// and a drain is triggered, because an unwritable journal means
    /// acknowledged transitions would be lost on restart.
    journal_failed: AtomicBool,
    /// Admission token buckets, keyed by tenant id.
    tenants: Mutex<HashMap<String, Bucket>>,
    /// Interrupt token of each currently running attempt, by job id.
    interrupts: Mutex<HashMap<String, CancelToken>>,
}

impl Shared {
    fn append(&self, rec: &Value) -> Result<(), String> {
        let r = self
            .journal
            .lock()
            .expect("journal lock")
            .append(rec)
            .map_err(|e| format!("journal append: {e}"));
        // The journal is the daemon's own durability story; once it is
        // unwritable, every further acknowledgement would be a lie on
        // restart. Degrade the whole daemon: stop admitting, finish
        // what's running, exit so the operator can fix the disk.
        if r.is_err() && !self.journal_failed.swap(true, Ordering::SeqCst) {
            eprintln!("slltd: journal unwritable; refusing new work and draining");
            self.drain.cancel();
        }
        r
    }

    /// Charges one admission token to `tenant`; `Err` is the 429 the
    /// client sees. No-op when quotas are disabled.
    fn admit_tenant(&self, tenant: &str) -> Result<(), ProtoError> {
        let Some(cap) = self.cfg.tenant_quota else {
            return Ok(());
        };
        let mut tenants = self.tenants.lock().expect("tenants lock");
        let now = Instant::now();
        let b = tenants.entry(tenant.to_string()).or_insert(Bucket {
            tokens: cap,
            last: now,
        });
        let dt = now.duration_since(b.last).as_secs_f64();
        b.tokens = (b.tokens + dt * self.cfg.tenant_refill).min(cap);
        b.last = now;
        if b.tokens < 1.0 {
            return Err(ProtoError::new(
                E_BUSY,
                format!("tenant {tenant:?} over admission quota; retry later"),
            ));
        }
        b.tokens -= 1.0;
        Ok(())
    }

    /// Enforces the artifact disk budget, protecting unfinished jobs
    /// (their checkpoints are what `--resume` resumes from).
    fn gc_disk(&self) {
        let Some(budget) = self.cfg.disk_budget else {
            return;
        };
        let protect: HashSet<String> = {
            let t = self.table.lock().expect("table lock");
            t.iter()
                .filter(|r| !matches!(r.state, JobState::Done(_)))
                .map(|r| r.id.clone())
                .collect()
        };
        match jobs::gc_artifacts(&self.cfg.state_dir, budget, &protect) {
            Ok(rep) if rep.freed > 0 => eprintln!(
                "slltd: disk budget: freed {} bytes ({} artifact(s)), {} bytes remain",
                rep.freed, rep.deleted, rep.remaining
            ),
            Ok(_) => {}
            Err(e) => eprintln!("slltd: disk budget sweep failed: {e}"),
        }
    }

    fn running(&self) -> usize {
        let t = self.table.lock().expect("table lock");
        t.iter().filter(|r| r.state == JobState::Running).count()
    }

    fn progress_of(&self, id: &str) -> Option<f64> {
        let events = read_progress(&jobs::progress_path(&self.cfg.state_dir, id)).ok()?;
        events.last().map(|e| e.fraction())
    }
}

/// Runs the daemon to completion (returns after a clean drain).
///
/// # Errors
///
/// Setup failures: state dir, journal open/replay, socket bind.
pub fn serve(cfg: ServerConfig, drain: CancelToken) -> Result<(), String> {
    std::fs::create_dir_all(&cfg.state_dir)
        .map_err(|e| format!("state dir {}: {e}", cfg.state_dir.display()))?;
    let journal_path = cfg.state_dir.join("jobs.jsonl");
    let (table, appender, requeued) = if cfg.resume && journal_path.exists() {
        let j =
            read_journal(&journal_path).map_err(|e| format!("{}: {e}", journal_path.display()))?;
        let (t, requeued) = JobTable::replay(&j)?;
        // Resume is the natural compaction point: the replayed table is
        // the journal's whole meaning, so rewrite it as one snapshot
        // instead of re-appending to an unbounded history.
        let app = match compact_journal(cfg.vfs.as_ref(), &journal_path, &t) {
            Ok(app) => app,
            Err(e) => {
                // A full disk must not block resume; keep appending to
                // the (possibly torn-tailed) original.
                eprintln!("slltd: journal compaction skipped ({e})");
                DurableAppender::reopen_with(cfg.vfs.as_ref(), &journal_path, j.valid_len)
                    .map_err(|e| format!("{}: {e}", journal_path.display()))?
            }
        };
        (t, app, requeued)
    } else {
        let mut app = DurableAppender::create_with(cfg.vfs.as_ref(), &journal_path)
            .map_err(|e| format!("{}: {e}", journal_path.display()))?;
        app.append(&JobTable::meta())
            .map_err(|e| format!("{}: {e}", journal_path.display()))?;
        (JobTable::new(), app, Vec::new())
    };
    if !requeued.is_empty() {
        eprintln!(
            "slltd: resume re-enqueued {} job(s): {}",
            requeued.len(),
            requeued.join(", ")
        );
    }
    let cache = DesignCache::open_with(Arc::clone(&cfg.vfs), &cfg.state_dir.join("designs"))
        .map_err(|e| format!("design cache: {e}"))?;
    let listener = Listener::bind(&cfg.listen).map_err(|e| format!("bind {}: {e}", cfg.listen))?;

    let shared = Arc::new(Shared {
        table: Mutex::new(table),
        cv_queue: Condvar::new(),
        cv_done: Condvar::new(),
        journal: Mutex::new(appender),
        cache,
        draining: AtomicBool::new(false),
        drain,
        journal_failed: AtomicBool::new(false),
        tenants: Mutex::new(HashMap::new()),
        interrupts: Mutex::new(HashMap::new()),
        cfg,
    });
    shared.gc_disk();

    let workers: Vec<_> = (0..shared.cfg.workers.max(1))
        .map(|i| {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("slltd-worker-{i}"))
                .spawn(move || worker_loop(&s))
                .expect("spawn worker")
        })
        .collect();

    println!("slltd: listening on {}", shared.cfg.listen);
    std::io::stdout().flush().ok();

    // Accept until drain fires; each connection gets a detached thread.
    while !shared.drain.is_cancelled() {
        match listener.accept() {
            Ok(Some(stream)) => {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    if let Err(e) = serve_connection(&s, stream) {
                        // Client hangups are routine; log and move on.
                        eprintln!("slltd: connection: {e}");
                    }
                });
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => return Err(format!("accept: {e}")),
        }
    }

    // --- drain choreography ---
    shared.draining.store(true, Ordering::SeqCst);
    shared.cv_queue.notify_all();
    eprintln!("slltd: draining ({} running)", shared.running());
    let grace_until = Instant::now() + shared.cfg.drain_grace;
    while shared.running() > 0 && Instant::now() < grace_until {
        std::thread::sleep(Duration::from_millis(20));
    }
    // Stragglers: ask them to checkpoint and exit.
    for token in shared.interrupts.lock().expect("interrupts lock").values() {
        token.cancel();
    }
    for w in workers {
        w.join().map_err(|_| "worker panicked".to_string())?;
    }
    // The seal is best-effort: a drain forced by a dead disk must still
    // exit cleanly, and an unsealed journal only costs a replay.
    if let Err(e) = shared.append(&JobTable::drained_record()) {
        eprintln!("slltd: journal seal failed ({e}); resume will replay the unsealed tail");
    }
    shared.cv_done.notify_all();
    let left = shared.table.lock().expect("table lock").unfinished();
    eprintln!("slltd: drained; {left} job(s) left for --resume");
    Ok(())
}

/// Rewrites `jobs.jsonl` as a compacted snapshot of `table` — temp file
/// alongside, then atomic rename — and returns an appender positioned
/// at its end.
fn compact_journal(
    vfs: &dyn Vfs,
    path: &Path,
    table: &JobTable,
) -> Result<DurableAppender, String> {
    let tmp = path.with_extension("jsonl.tmp");
    let mut app = DurableAppender::create_with(vfs, &tmp)
        .map_err(|e| format!("create {}: {e}", tmp.display()))?;
    for rec in table.compact_records() {
        app.append(&rec)
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    }
    drop(app);
    let len = std::fs::metadata(&tmp)
        .map_err(|e| format!("stat {}: {e}", tmp.display()))?
        .len();
    vfs.rename(&tmp, path)
        .map_err(|e| format!("rename {}: {e}", path.display()))?;
    DurableAppender::reopen_with(vfs, path, len).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------- workers

fn worker_loop(s: &Shared) {
    loop {
        let id = {
            let mut t = s.table.lock().expect("table lock");
            loop {
                if s.draining.load(Ordering::SeqCst) {
                    return; // queued jobs stay queued, for --resume
                }
                if let Some(id) = t.pop_ready() {
                    break id;
                }
                let (guard, _) = s
                    .cv_queue
                    .wait_timeout(t, Duration::from_millis(100))
                    .expect("queue wait");
                t = guard;
            }
        };
        run_job(s, &id);
        s.cv_done.notify_all();
    }
}

/// One job, start to final status: attempts, backoff, classification.
fn run_job(s: &Shared, id: &str) {
    let (design, design_file, config, timeout_s, retries, fault, mut attempt) = {
        let t = s.table.lock().expect("table lock");
        let r = t.get(id).expect("popped job exists");
        (
            r.design.clone(),
            r.design_file.clone(),
            r.config.clone(),
            r.timeout_s,
            r.retries,
            r.fault,
            r.attempt,
        )
    };
    let max_attempts = retries + 1;
    let backoff_seed = s.cfg.seed ^ fnv1a64(id.as_bytes());
    let timeout = timeout_s
        .map(Duration::from_secs_f64)
        .or(s.cfg.default_timeout);

    loop {
        attempt += 1;
        let backoff = default_backoff_ms(backoff_seed, attempt);
        if backoff > 0 && !sleep_unless_drain(s, Duration::from_millis(backoff)) {
            finish(
                s,
                id,
                STATUS_DRAINED,
                false,
                0.0,
                Some("drained during backoff"),
                None,
            );
            return;
        }
        let start_rec = s.table.lock().expect("table lock").mark_start(id, backoff);
        if let Err(e) = s.append(&start_rec) {
            eprintln!("slltd: {id}: {e}");
        }

        let token = CancelToken::new();
        s.interrupts
            .lock()
            .expect("interrupts lock")
            .insert(id.to_string(), token.clone());
        let child_args = ChildArgs {
            job_id: id.to_string(),
            design: design.clone(),
            design_file: design_file.clone(),
            config: config.clone(),
            workers: s.cfg.child_workers,
            out_dir: s.cfg.state_dir.clone(),
            fault,
        };
        let outcome = run_attempt(
            &child_args,
            timeout,
            &token,
            s.cfg.cancel_grace,
            s.cfg.mem_limit,
        );
        s.interrupts.lock().expect("interrupts lock").remove(id);

        let cancel_requested = s
            .table
            .lock()
            .expect("table lock")
            .get(id)
            .is_some_and(|r| r.cancel_requested);
        let draining = s.draining.load(Ordering::SeqCst);

        let (status, is_final, detail, result) = match outcome {
            Ok(a) => classify(a, cancel_requested, draining),
            Err(e) => (STATUS_ERROR, false, Some(format!("spawn: {e}")), None),
        };
        let retryable = !is_final && status != STATUS_DRAINED;
        if retryable && attempt < max_attempts && !draining {
            eprintln!("slltd: {id}: attempt {attempt} {status}; retrying");
            finish(s, id, status, false, 0.0, detail.as_deref(), result);
            continue;
        }
        // Out of budget (or final by nature): drained stays non-final so
        // --resume picks the job back up; everything else is terminal.
        let final_now = status != STATUS_DRAINED;
        finish(s, id, status, final_now, 0.0, detail.as_deref(), result);
        eprintln!("slltd: {id}: {status} (attempt {attempt})");
        if final_now {
            s.gc_disk();
        }
        return;
    }
}

struct Attempt {
    exit_code: Option<i32>,
    success: bool,
    timed_out: bool,
    interrupted: bool,
    /// The child aborted on allocation failure under a configured
    /// memory ceiling.
    oom: bool,
    wall: Duration,
    result: Option<Value>,
    stderr_tail: String,
}

fn run_attempt(
    args: &ChildArgs,
    timeout: Option<Duration>,
    interrupt: &CancelToken,
    grace: Duration,
    mem_limit: Option<u64>,
) -> std::io::Result<Attempt> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.arg("--job")
        .arg(&args.job_id)
        .arg("--design")
        .arg(&args.design)
        .arg("--config")
        .arg(&args.config)
        .arg("--out")
        .arg(&args.out_dir)
        .arg("--workers")
        .arg(args.workers.to_string());
    if let Some(f) = &args.design_file {
        cmd.arg("--design-file").arg(f);
    }
    if let Some(f) = &args.fault {
        cmd.arg("--fault").arg(f.to_string());
    }
    let opts = SuperviseOpts {
        timeout,
        interrupt: Some(interrupt.clone()),
        grace,
        mem_limit,
        ..SuperviseOpts::default()
    };
    let sup = run_supervised(&mut cmd, &opts)?;
    let result = sup
        .stdout
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("RESULT "))
        .and_then(|json| sllt_obs::json::parse(json).ok());
    // libstd's fixed abort message on allocation failure — the only
    // child-side signature of an RLIMIT_AS kill (the exit is a plain
    // SIGABRT, indistinguishable from other aborts by status alone).
    let oom = mem_limit.is_some() && sup.stderr.contains("memory allocation of");
    let stderr_tail = sup
        .stderr
        .lines()
        .next_back()
        .unwrap_or_default()
        .to_string();
    Ok(Attempt {
        exit_code: sup.status.code(),
        success: sup.status.success(),
        timed_out: sup.timed_out,
        interrupted: sup.interrupted,
        oom,
        wall: sup.wall,
        result,
        stderr_tail,
    })
}

/// Maps a finished attempt to `(status, is_final, detail, result)`.
/// `is_final` here means "final regardless of retry budget" — retryable
/// outcomes return `false` and the caller applies the budget.
fn classify(
    a: Attempt,
    cancel_requested: bool,
    draining: bool,
) -> (&'static str, bool, Option<String>, Option<Value>) {
    let wall = a.wall.as_secs_f64();
    if a.success && a.result.is_some() {
        return (STATUS_OK, true, None, a.result);
    }
    if a.interrupted || a.exit_code == Some(EXIT_JOB_CANCELLED) {
        // The child stopped on a SIGINT we (or it) initiated: a user
        // cancel is terminal, a drain leaves the job resumable.
        return if cancel_requested {
            (
                STATUS_CANCELLED,
                true,
                Some(format!("cancelled after {wall:.2}s")),
                None,
            )
        } else if draining {
            (
                STATUS_DRAINED,
                false,
                Some("checkpointed by drain".into()),
                None,
            )
        } else {
            (
                STATUS_CANCELLED,
                true,
                Some("stopped by external signal".into()),
                None,
            )
        };
    }
    if a.timed_out {
        return (
            STATUS_TIMEOUT,
            false,
            Some(format!("deadline after {wall:.2}s")),
            None,
        );
    }
    if a.oom {
        // Deterministic against a fixed ceiling: the same job would hit
        // the same wall on every retry, so the status is final.
        return (
            STATUS_OOM,
            true,
            Some(format!(
                "killed by memory ceiling after {wall:.2}s: {}",
                a.stderr_tail
            )),
            None,
        );
    }
    if a.exit_code == Some(EXIT_JOB_ERROR) {
        return (STATUS_ERROR, false, Some(a.stderr_tail), None);
    }
    if a.success {
        // Exit 0 but no RESULT line — a child bug; don't retry blindly.
        return (
            STATUS_ERROR,
            true,
            Some("child exited 0 without RESULT".into()),
            None,
        );
    }
    let detail = if a.stderr_tail.is_empty() {
        format!("child died ({:?})", a.exit_code)
    } else {
        a.stderr_tail
    };
    (STATUS_PANIC, false, Some(detail), None)
}

fn finish(
    s: &Shared,
    id: &str,
    status: &str,
    is_final: bool,
    wall_s: f64,
    detail: Option<&str>,
    result: Option<Value>,
) {
    let rec = s
        .table
        .lock()
        .expect("table lock")
        .mark_done(id, status, is_final, wall_s, detail, result);
    if let Err(e) = s.append(&rec) {
        eprintln!("slltd: {id}: {e}");
    }
}

/// Sleeps in drain-aware slices; `false` when drain cut the sleep short.
fn sleep_unless_drain(s: &Shared, total: Duration) -> bool {
    let until = Instant::now() + total;
    while Instant::now() < until {
        if s.draining.load(Ordering::SeqCst) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10).min(until - Instant::now()));
    }
    true
}

// ------------------------------------------------------------ connections

fn write_line(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    writeln!(w, "{}", v.encode())?;
    w.flush()
}

fn ok() -> Value {
    Value::obj().with("ok", true)
}

fn serve_connection(s: &Shared, stream: Stream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        match read_frame(&mut reader)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized { dropped } => {
                let e = ProtoError::new(
                    E_TOO_LARGE,
                    format!(
                        "request line of {dropped} bytes exceeds {} limit",
                        crate::proto::MAX_LINE
                    ),
                );
                write_line(&mut writer, &e.to_value())?;
            }
            Frame::Line(line) => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue; // blank keep-alive lines are not requests
                }
                match parse_request(&line) {
                    Err(e) => write_line(&mut writer, &e.to_value())?,
                    Ok(Request::Watch { job }) => handle_watch(s, &mut writer, &job)?,
                    Ok(req) => {
                        let reply = handle(s, req).unwrap_or_else(|e| e.to_value());
                        write_line(&mut writer, &reply)?;
                    }
                }
            }
        }
    }
}

fn handle(s: &Shared, req: Request) -> Result<Value, ProtoError> {
    match req {
        Request::Ping => Ok(ok().with("pong", true)),
        Request::Submit(spec) => handle_submit(s, &spec),
        Request::Status { job } => handle_status(s, job.as_deref()),
        Request::Cancel { job } => handle_cancel(s, &job),
        Request::Result { job, wait } => handle_result(s, &job, wait),
        Request::Drain => {
            s.drain.cancel();
            Ok(ok().with("draining", true))
        }
        Request::Watch { .. } => unreachable!("watch is streamed by the caller"),
    }
}

fn handle_submit(s: &Shared, spec: &SubmitSpec) -> Result<Value, ProtoError> {
    if s.journal_failed.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            E_DRAINING,
            "journal unwritable; daemon is draining (storage degraded)",
        ));
    }
    if s.draining.load(Ordering::SeqCst) || s.drain.is_cancelled() {
        return Err(ProtoError::new(
            E_DRAINING,
            "daemon is draining; not admitting",
        ));
    }
    // Validate before admitting: a submit that can never run should be
    // a 400 now, not an `error` job later.
    jobs::config_by_name(&spec.config).map_err(|e| ProtoError::new(E_PARSE, e))?;
    // Quota after validation (a rejected submit should not spend the
    // tenant's token) but before the design-cache work it gates.
    let tenant = spec.tenant.as_deref().unwrap_or("anonymous");
    s.admit_tenant(tenant)?;
    let (design_name, design_file, cache_hit) = match &spec.design_file {
        Some(path) => {
            let cached = s
                .cache
                .sanitized(std::path::Path::new(path))
                .map_err(|e| ProtoError::new(E_PARSE, e))?;
            (cached.name, Some(cached.path), Some(cached.hit))
        }
        None => {
            jobs::design_by_name(&spec.design).map_err(|e| ProtoError::new(E_PARSE, e))?;
            (spec.design.clone(), None, None)
        }
    };

    let mut t = s.table.lock().expect("table lock");
    if t.queued_len() >= s.cfg.queue_cap {
        return Err(ProtoError::new(
            E_BUSY,
            format!("queue at capacity ({}); retry later", s.cfg.queue_cap),
        ));
    }
    let fault = spec
        .fault
        .as_deref()
        .map(|f| f.parse::<FaultSpec>().expect("fault pre-validated"));
    let (id, rec) = t.submit(
        &design_name,
        design_file,
        &spec.config,
        spec.timeout_s,
        spec.retries.unwrap_or(s.cfg.default_retries),
        fault,
        spec.tenant.clone(),
    );
    drop(t);
    if let Err(e) = s.append(&rec) {
        // Not durable → not admitted: pull the job back out before a
        // worker can grab it, and tell the client the truth (append
        // already flipped the daemon into drain).
        s.table.lock().expect("table lock").cancel(&id);
        return Err(ProtoError::new(
            E_DRAINING,
            format!("storage degraded; submit not durable ({e})"),
        ));
    }
    s.cv_queue.notify_one();
    let mut reply = ok().with("job", id.as_str());
    if let Some(hit) = cache_hit {
        reply = reply.with("cached", hit);
    }
    Ok(reply)
}

fn handle_status(s: &Shared, job: Option<&str>) -> Result<Value, ProtoError> {
    let t = s.table.lock().expect("table lock");
    let rows: Vec<&crate::state::JobRecord> = match job {
        Some(id) => vec![t
            .get(id)
            .ok_or_else(|| ProtoError::new(E_NOT_FOUND, format!("no job {id:?}")))?],
        None => t.iter().collect(),
    };
    let snapshot: Vec<(Value, bool, String)> = rows
        .iter()
        .map(|r| {
            (
                r.status_value(None),
                r.state == JobState::Running,
                r.id.clone(),
            )
        })
        .collect();
    drop(t);
    // Progress is tailed outside the table lock: it reads files.
    let jobs: Vec<Value> = snapshot
        .into_iter()
        .map(|(v, running, id)| {
            if running {
                match s.progress_of(&id) {
                    Some(p) => v.with("progress", p),
                    None => v,
                }
            } else {
                v
            }
        })
        .collect();
    Ok(ok()
        .with(
            "draining",
            s.draining.load(Ordering::SeqCst) || s.drain.is_cancelled(),
        )
        .with("jobs", Value::Arr(jobs)))
}

fn handle_cancel(s: &Shared, job: &str) -> Result<Value, ProtoError> {
    let outcome = s.table.lock().expect("table lock").cancel(job);
    match outcome {
        CancelOutcome::NotFound => Err(ProtoError::new(E_NOT_FOUND, format!("no job {job:?}"))),
        CancelOutcome::AlreadyDone(status) => {
            Ok(ok().with("already_done", true).with("status", status))
        }
        CancelOutcome::Dequeued(rec) => {
            s.append(&rec).map_err(|e| ProtoError::new(E_INTERNAL, e))?;
            s.cv_done.notify_all();
            Ok(ok().with("cancelled", "queued"))
        }
        CancelOutcome::Interrupt => {
            if let Some(token) = s.interrupts.lock().expect("interrupts lock").get(job) {
                token.cancel();
            }
            Ok(ok().with("cancelled", "running"))
        }
    }
}

fn result_value(r: &crate::state::JobRecord) -> Option<Value> {
    if let JobState::Done(status) = &r.state {
        let mut v = ok()
            .with("done", true)
            .with("job", r.id.as_str())
            .with("status", status.as_str())
            .with("attempts", u64::from(r.attempt));
        if let Some(res) = &r.result {
            v = v.with("result", res.clone());
        }
        if let Some(d) = &r.detail {
            v = v.with("detail", d.as_str());
        }
        Some(v)
    } else {
        None
    }
}

fn handle_result(s: &Shared, job: &str, wait: bool) -> Result<Value, ProtoError> {
    let mut t = s.table.lock().expect("table lock");
    loop {
        let r = t
            .get(job)
            .ok_or_else(|| ProtoError::new(E_NOT_FOUND, format!("no job {job:?}")))?;
        if let Some(v) = result_value(r) {
            return Ok(v);
        }
        let draining = s.draining.load(Ordering::SeqCst);
        if !wait || draining {
            return Ok(ok()
                .with("done", false)
                .with("job", job)
                .with("draining", draining));
        }
        let (guard, _) = s
            .cv_done
            .wait_timeout(t, Duration::from_millis(200))
            .expect("done wait");
        t = guard;
    }
}

/// Streams a job's progress events as they land, then the final result.
/// Quiet stretches are bridged with `alive` keep-alive frames so a
/// client read timeout can distinguish "slow job" from "dead daemon".
fn handle_watch(s: &Shared, w: &mut impl Write, job: &str) -> std::io::Result<()> {
    let mut sent = 0usize;
    let mut last_write = Instant::now();
    loop {
        {
            let t = s.table.lock().expect("table lock");
            let Some(r) = t.get(job) else {
                return write_line(
                    w,
                    &ProtoError::new(E_NOT_FOUND, format!("no job {job:?}")).to_value(),
                );
            };
            if let Some(v) = result_value(r) {
                // Flush any trailing events before the final object.
                drop(t);
                emit_events(s, w, job, sent)?;
                return write_line(w, &v);
            }
        }
        let n = emit_events(s, w, job, sent)?;
        if n > sent {
            last_write = Instant::now();
        }
        sent = n;
        if s.draining.load(Ordering::SeqCst) {
            return write_line(w, &ok().with("done", false).with("draining", true));
        }
        if last_write.elapsed() >= Duration::from_secs(1) {
            write_line(w, &ok().with("alive", true))?;
            last_write = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn emit_events(s: &Shared, w: &mut impl Write, job: &str, sent: usize) -> std::io::Result<usize> {
    let events = read_progress(&jobs::progress_path(&s.cfg.state_dir, job)).unwrap_or_default();
    for ev in events.iter().skip(sent) {
        write_line(w, &ok().with("event", ev.to_value()))?;
    }
    Ok(events.len().max(sent))
}
