//! `slltd` — the SLLT CTS job daemon.
//!
//! Two personalities in one binary:
//!
//! * **daemon** (default): bind the socket, serve the JSONL protocol,
//!   schedule jobs on the worker pool, drain cleanly on SIGTERM/SIGINT
//!   or the `drain` verb.
//! * **job child** (`--job <id> …`): run one CTS job attempt in this
//!   process and exit. The daemon re-execs itself into this mode so
//!   each attempt lives and dies alone.

use sllt_cts::CancelToken;
use sllt_obs::vfs::{FaultConfig, FaultFs};
use sllt_server::jobs::{run_child, ChildArgs, FaultSpec};
use sllt_server::net::Endpoint;
use sllt_server::server::{serve, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
slltd — SLLT CTS job daemon (JSONL over unix/tcp socket)

USAGE:
  slltd [--listen <path|host:port>] [--state-dir <dir>] [--workers N]
        [--queue-cap N] [--timeout <s>] [--retries N] [--child-workers N]
        [--drain-grace <s>] [--cancel-grace <s>] [--seed N] [--resume]
        [--mem-limit <MB>] [--disk-budget <MB>] [--tenant-quota N]
        [--tenant-refill <per_s>] [--fault-fs <spec>]
  slltd --job <id> --design <name> [--design-file <path>] --config <name>
        --out <dir> [--workers N] [--fault panic|hang|oom|sleep:<ms>]

Defaults: --state-dir results/slltd, --listen <state-dir>/slltd.sock,
--workers 2, --queue-cap 8, --retries 1, no default timeout.
Resource governance: --mem-limit caps each job child's address space
(jobs killed by it finish as status \"oom\", never retried);
--disk-budget bounds completed-job artifacts in the state dir (oldest
deleted first); --tenant-quota/--tenant-refill token-bucket submits
per client-supplied tenant id (over-quota submits get a 429).
Fault injection: --fault-fs seed=N[,after=N][,rate=F][,kinds=...]
routes the daemon's own journal/cache writes through a deterministic
fault-injecting filesystem (testing only).
Drain: send SIGTERM (or the drain verb); unfinished jobs checkpoint and
a later `slltd --resume` completes them (and compacts the journal).";

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn arg_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

fn arg_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("error: bad value {raw:?} for {name}");
                std::process::exit(2);
            }
        },
    }
}

fn main() -> ExitCode {
    if arg_flag("--help") || arg_flag("-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if let Some(job_id) = arg_value("--job") {
        return child_main(job_id);
    }

    let state_dir = PathBuf::from(arg_value("--state-dir").unwrap_or("results/slltd".into()));
    let listen_raw =
        arg_value("--listen").unwrap_or_else(|| state_dir.join("slltd.sock").display().to_string());
    let listen = Endpoint::parse(&listen_raw);

    let mut cfg = ServerConfig::new(listen, state_dir);
    cfg.workers = arg_parse("--workers", cfg.workers);
    cfg.queue_cap = arg_parse("--queue-cap", cfg.queue_cap);
    cfg.default_retries = arg_parse("--retries", cfg.default_retries);
    cfg.child_workers = arg_parse("--child-workers", cfg.child_workers);
    cfg.seed = arg_parse("--seed", cfg.seed);
    cfg.resume = arg_flag("--resume");
    if let Some(t) = arg_value("--timeout") {
        match t.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => {
                cfg.default_timeout = Some(Duration::from_secs_f64(s));
            }
            _ => {
                eprintln!("error: --timeout must be a positive number of seconds");
                return ExitCode::from(2);
            }
        }
    }
    cfg.drain_grace = Duration::from_secs_f64(arg_parse("--drain-grace", 2.0_f64).max(0.0));
    cfg.cancel_grace = Duration::from_secs_f64(arg_parse("--cancel-grace", 5.0_f64).max(0.0));
    if let Some(mb) = arg_value("--mem-limit") {
        match mb.parse::<f64>() {
            Ok(m) if m > 0.0 && m.is_finite() => {
                cfg.mem_limit = Some((m * 1024.0 * 1024.0) as u64);
            }
            _ => {
                eprintln!("error: --mem-limit must be a positive number of MB");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(mb) = arg_value("--disk-budget") {
        match mb.parse::<f64>() {
            Ok(m) if m > 0.0 && m.is_finite() => {
                cfg.disk_budget = Some((m * 1024.0 * 1024.0) as u64);
            }
            _ => {
                eprintln!("error: --disk-budget must be a positive number of MB");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(q) = arg_value("--tenant-quota") {
        match q.parse::<f64>() {
            Ok(c) if c >= 1.0 && c.is_finite() => cfg.tenant_quota = Some(c),
            _ => {
                eprintln!("error: --tenant-quota must be a number >= 1");
                return ExitCode::from(2);
            }
        }
    }
    cfg.tenant_refill = arg_parse("--tenant-refill", cfg.tenant_refill);
    if let Some(spec) = arg_value("--fault-fs") {
        match FaultConfig::parse(&spec) {
            Ok(fc) => cfg.vfs = Arc::new(FaultFs::over_real(fc)),
            Err(e) => {
                eprintln!("error: --fault-fs: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // SIGTERM and SIGINT both mean "drain": stop admitting, let
    // in-flight jobs finish or checkpoint, seal the journal, exit 0.
    let drain = CancelToken::new();
    #[cfg(unix)]
    sllt_cts::cancel::install_signals(&drain);

    match serve(cfg, drain) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn child_main(job_id: String) -> ExitCode {
    let need = |name: &str| {
        arg_value(name).unwrap_or_else(|| {
            eprintln!("error: --job mode requires {name}");
            std::process::exit(2);
        })
    };
    let fault = arg_value("--fault").map(|raw| match raw.parse::<FaultSpec>() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    });
    let args = ChildArgs {
        job_id,
        design: arg_value("--design").unwrap_or_default(),
        design_file: arg_value("--design-file").map(PathBuf::from),
        config: arg_value("--config").unwrap_or("base".into()),
        workers: arg_parse("--workers", 1),
        out_dir: PathBuf::from(need("--out")),
        fault,
    };
    match run_child(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => ExitCode::from(code),
    }
}
