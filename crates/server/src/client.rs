//! A tiny blocking client for the `slltd` protocol, shared by the
//! `sllt jobs` subcommand, the e2e tests, and the CI smoke script.

use crate::net::{Endpoint, Stream};
use crate::proto::{read_frame, Frame};
use sllt_obs::json::parse;
use sllt_obs::Value;
use std::io::{BufReader, Write};
use std::time::Duration;

/// One connection to a daemon. Requests are answered in order, so a
/// single send/recv pair per call is all the state needed.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    timeout: Option<Duration>,
}

/// A blocking socket op cut short by SO_RCVTIMEO/SO_SNDTIMEO surfaces
/// as either kind, depending on the platform.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

impl Client {
    /// Connects to a daemon at `ep`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect failure.
    pub fn connect(ep: &Endpoint) -> std::io::Result<Client> {
        let writer = Stream::connect(ep)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            timeout: None,
        })
    }

    /// Bounds every socket read and write so a wedged or silent daemon
    /// cannot hang the client forever; a cut-short op surfaces as a
    /// structured timeout error from [`recv`](Self::recv)/
    /// [`request`](Self::request). `None` removes the bound.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_io_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        // Reader and writer are dup'd handles on one socket, but the
        // timeouts are set on both for clarity; the kernel option is
        // per-socket either way.
        self.reader.get_ref().set_read_timeout(dur)?;
        self.writer.set_read_timeout(dur)?;
        self.writer.set_write_timeout(dur)?;
        self.timeout = dur;
        Ok(())
    }

    fn timeout_msg(&self, what: &str) -> String {
        let t = self.timeout.map_or(0.0, |d| d.as_secs_f64());
        format!("timed out after {t:.1}s waiting to {what} (slltd unresponsive; --io-timeout adjusts the bound)")
    }

    /// Sends one request object (a single JSONL line).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, req: &Value) -> std::io::Result<()> {
        writeln!(self.writer, "{}", req.encode())?;
        self.writer.flush()
    }

    /// Reads the next response line; `None` on a clean server hangup.
    ///
    /// # Errors
    ///
    /// Transport errors (a timed-out read is reported as such, not as a
    /// hangup) and unparseable response lines.
    pub fn recv(&mut self) -> Result<Option<Value>, String> {
        let frame = read_frame(&mut self.reader).map_err(|e| {
            if is_timeout(&e) {
                self.timeout_msg("read a reply")
            } else {
                format!("recv: {e}")
            }
        })?;
        match frame {
            Frame::Eof => Ok(None),
            Frame::Oversized { dropped } => Err(format!("oversized response ({dropped} bytes)")),
            Frame::Line(l) => {
                let text = String::from_utf8(l).map_err(|_| "non-UTF-8 response".to_string())?;
                parse(&text)
                    .map(Some)
                    .map_err(|e| format!("bad response: {e}"))
            }
        }
    }

    /// Send + one response, with a missing response treated as an error
    /// (every non-watch verb answers exactly once).
    ///
    /// # Errors
    ///
    /// Transport errors, parse failures, timeouts, or a hangup before
    /// the reply.
    pub fn request(&mut self, req: &Value) -> Result<Value, String> {
        self.send(req).map_err(|e| {
            if is_timeout(&e) {
                self.timeout_msg("send a request")
            } else {
                format!("send: {e}")
            }
        })?;
        self.recv()?
            .ok_or_else(|| "server hung up before replying".to_string())
    }
}

/// Builders for the request objects (the one place the field names of
/// the wire format are spelled on the client side).
pub mod req {
    use sllt_obs::Value;

    pub fn ping() -> Value {
        Value::obj().with("op", "ping")
    }

    /// Minimal submit; callers chain `.with(...)` for the optionals
    /// (`design_file`, `timeout_s`, `retries`, `fault`).
    pub fn submit(design: &str, config: &str) -> Value {
        Value::obj()
            .with("op", "submit")
            .with("design", design)
            .with("config", config)
    }

    pub fn status(job: Option<&str>) -> Value {
        let v = Value::obj().with("op", "status");
        match job {
            Some(j) => v.with("job", j),
            None => v,
        }
    }

    pub fn cancel(job: &str) -> Value {
        Value::obj().with("op", "cancel").with("job", job)
    }

    pub fn result(job: &str, wait: bool) -> Value {
        Value::obj()
            .with("op", "result")
            .with("job", job)
            .with("wait", wait)
    }

    pub fn watch(job: &str) -> Value {
        Value::obj().with("op", "watch").with("job", job)
    }

    pub fn drain() -> Value {
        Value::obj().with("op", "drain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_emit_the_wire_fields() {
        assert_eq!(req::ping().encode(), "{\"op\":\"ping\"}");
        let s = req::submit("grid48", "tight").with("retries", 2u64);
        assert_eq!(s.get("op").and_then(Value::as_str), Some("submit"));
        assert_eq!(s.get("retries").and_then(Value::as_u64), Some(2));
        assert_eq!(
            req::result("j1", true).get("wait"),
            Some(&Value::Bool(true))
        );
        assert!(req::status(None).get("job").is_none());
        assert_eq!(
            req::status(Some("j2")).get("job").and_then(Value::as_str),
            Some("j2")
        );
    }
}
