//! The `slltd` wire protocol: line-delimited JSON, one request per
//! line, one (or, for `watch`, many) response object(s) per line.
//!
//! # Grammar
//!
//! Every request is a single JSON object terminated by `\n`, with an
//! `"op"` member selecting the verb:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"submit","design":"s35932","config":"base",
//!  "timeout_s":120,"retries":1}            -> {"ok":true,"job":"j1"}
//! {"op":"status"}                          -> {"ok":true,"jobs":[...]}
//! {"op":"status","job":"j1"}               -> {"ok":true,"jobs":[{...}]}
//! {"op":"cancel","job":"j1"}               -> {"ok":true}
//! {"op":"result","job":"j1","wait":true}   -> {"ok":true,"status":"ok",...}
//! {"op":"watch","job":"j1"}                -> progress lines, then a final
//!                                             result object
//! {"op":"drain"}                           -> {"ok":true,"draining":true}
//! ```
//!
//! Every error reply is structured — `{"ok":false,"code":N,
//! "error":"..."}` with HTTP-flavored codes ([`E_PARSE`], [`E_BUSY`],
//! …) — and never tears down the connection: a malformed line is
//! answered and the parser resynchronizes at the next newline, so
//! pipelined requests behind a bad one still execute. Lines longer than
//! [`MAX_LINE`] are drained (never buffered) and answered with
//! [`E_TOO_LARGE`]. A torn final line (client died mid-write) is
//! discarded silently. The fuzz suite (`tests/proto_prop.rs`) pins all
//! of this down over arbitrary byte soup.

use sllt_obs::json::{parse, Value};
use std::io::BufRead;

/// Longest accepted request line, bytes (newline excluded). Beyond this
/// the framer switches to drain-and-reject — admission control for
/// memory, not just for the job queue.
pub const MAX_LINE: usize = 64 * 1024;

/// Malformed request: bad UTF-8, bad JSON, wrong field types.
pub const E_PARSE: u16 = 400;
/// Unknown job id.
pub const E_NOT_FOUND: u16 = 404;
/// Request line exceeded [`MAX_LINE`].
pub const E_TOO_LARGE: u16 = 413;
/// Admission refused: the job queue is at capacity. Back off and retry.
pub const E_BUSY: u16 = 429;
/// Internal server failure (journal write, spawn failure).
pub const E_INTERNAL: u16 = 500;
/// The daemon is draining and admits no new work.
pub const E_DRAINING: u16 = 503;

/// A structured protocol error: code + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the `E_*` codes.
    pub code: u16,
    /// What went wrong.
    pub msg: String,
}

impl ProtoError {
    /// Convenience constructor.
    pub fn new(code: u16, msg: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            msg: msg.into(),
        }
    }

    /// The wire form: `{"ok":false,"code":N,"error":"..."}`.
    pub fn to_value(&self) -> Value {
        Value::obj()
            .with("ok", false)
            .with("code", u64::from(self.code))
            .with("error", self.msg.as_str())
    }
}

/// A validated submit request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Suite or `grid<N>` design name (ignored when `design_file` set).
    pub design: String,
    /// Path to a design file on the server's filesystem; goes through
    /// the sanitized-design cache.
    pub design_file: Option<String>,
    /// Named constraint config (`base`, `tight`, `nosa`).
    pub config: String,
    /// Per-job wall-clock deadline, seconds; `None` = server default.
    pub timeout_s: Option<f64>,
    /// Extra attempts after a failed one; `None` = server default.
    pub retries: Option<u32>,
    /// Fault-injection hook (`panic` | `hang` | `sleep:<ms>` | `oom`),
    /// test use.
    pub fault: Option<String>,
    /// Client-supplied tenant id for admission quotas; `None` lands in
    /// the shared anonymous bucket when quotas are on.
    pub tenant: Option<String>,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Admit a job.
    Submit(SubmitSpec),
    /// Job table snapshot (all jobs, or one).
    Status {
        /// Restrict to this job.
        job: Option<String>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        job: String,
    },
    /// Fetch a job's final result, optionally blocking until terminal.
    Result {
        /// The job to read.
        job: String,
        /// Block until the job reaches a terminal state.
        wait: bool,
    },
    /// Stream the job's progress events until it finishes.
    Watch {
        /// The job to follow.
        job: String,
    },
    /// Stop admitting, finish or checkpoint in-flight work, exit 0.
    Drain,
}

fn field_str(v: &Value, key: &str) -> Result<Option<String>, ProtoError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtoError::new(E_PARSE, format!("{key} must be a string"))),
    }
}

fn field_bool(v: &Value, key: &str) -> Result<bool, ProtoError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(ProtoError::new(E_PARSE, format!("{key} must be a boolean"))),
    }
}

/// The fault hooks a submit may name (mirrors `jobs::FaultSpec`).
fn validate_fault(s: &str) -> Result<(), ProtoError> {
    let ok = s == "panic"
        || s == "hang"
        || s == "oom"
        || s.strip_prefix("sleep:")
            .is_some_and(|ms| ms.parse::<u64>().is_ok());
    if ok {
        Ok(())
    } else {
        Err(ProtoError::new(
            E_PARSE,
            format!("unknown fault {s:?}; expected panic, hang, oom, or sleep:<ms>"),
        ))
    }
}

/// Parses one request line (raw bytes, newline stripped).
///
/// # Errors
///
/// [`E_PARSE`] with a message naming the defect: invalid UTF-8, invalid
/// JSON, a non-object, a missing/unknown `op`, or a mistyped field.
/// Never panics, for any input — the fuzz suite's core property.
pub fn parse_request(line: &[u8]) -> Result<Request, ProtoError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| ProtoError::new(E_PARSE, "request is not valid UTF-8"))?;
    let v = parse(text).map_err(|e| ProtoError::new(E_PARSE, format!("bad JSON: {e}")))?;
    if !matches!(v, Value::Obj(_)) {
        return Err(ProtoError::new(E_PARSE, "request must be a JSON object"));
    }
    let op = field_str(&v, "op")?.ok_or_else(|| ProtoError::new(E_PARSE, "missing op"))?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let design_file = field_str(&v, "design_file")?;
            let design = match field_str(&v, "design")? {
                Some(d) => d,
                None if design_file.is_some() => String::new(),
                None => {
                    return Err(ProtoError::new(
                        E_PARSE,
                        "submit needs design or design_file",
                    ))
                }
            };
            let timeout_s = match v.get("timeout_s") {
                None | Some(Value::Null) => None,
                Some(Value::Num(x)) if *x > 0.0 && x.is_finite() => Some(*x),
                Some(_) => {
                    return Err(ProtoError::new(
                        E_PARSE,
                        "timeout_s must be a positive number",
                    ))
                }
            };
            let retries = match v.get("retries") {
                None | Some(Value::Null) => None,
                Some(n) => Some(n.as_u64().filter(|&r| r <= 16).ok_or_else(|| {
                    ProtoError::new(E_PARSE, "retries must be an integer in 0..=16")
                })? as u32),
            };
            let fault = field_str(&v, "fault")?;
            if let Some(f) = &fault {
                validate_fault(f)?;
            }
            Ok(Request::Submit(SubmitSpec {
                design,
                design_file,
                config: field_str(&v, "config")?.unwrap_or_else(|| "base".to_string()),
                timeout_s,
                retries,
                fault,
                tenant: field_str(&v, "tenant")?,
            }))
        }
        "status" => Ok(Request::Status {
            job: field_str(&v, "job")?,
        }),
        "cancel" => Ok(Request::Cancel {
            job: field_str(&v, "job")?
                .ok_or_else(|| ProtoError::new(E_PARSE, "cancel needs job"))?,
        }),
        "result" => Ok(Request::Result {
            job: field_str(&v, "job")?
                .ok_or_else(|| ProtoError::new(E_PARSE, "result needs job"))?,
            wait: field_bool(&v, "wait")?,
        }),
        "watch" => Ok(Request::Watch {
            job: field_str(&v, "job")?
                .ok_or_else(|| ProtoError::new(E_PARSE, "watch needs job"))?,
        }),
        "drain" => Ok(Request::Drain),
        other => Err(ProtoError::new(E_PARSE, format!("unknown op {other:?}"))),
    }
}

/// One framing step's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped; may be empty or whitespace).
    Line(Vec<u8>),
    /// A line that exceeded [`MAX_LINE`]; its bytes were drained, not
    /// buffered. Reply [`E_TOO_LARGE`] and keep reading.
    Oversized {
        /// How many bytes the rejected line carried.
        dropped: usize,
    },
    /// End of stream. A torn trailing fragment (bytes after the last
    /// newline) is discarded — the client died mid-write.
    Eof,
}

/// Reads the next frame from `r`, never buffering more than
/// [`MAX_LINE`] bytes regardless of what the peer sends.
///
/// # Errors
///
/// Propagates transport errors (a read timeout surfaces here as
/// `WouldBlock`/`TimedOut`, which the connection loop maps to a hangup).
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut dropped = 0usize; // nonzero once the line is condemned
    loop {
        let (consume, done) = {
            let buf = r.fill_buf()?;
            if buf.is_empty() {
                return Ok(Frame::Eof);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if dropped > 0 {
                        (
                            i + 1,
                            Some(Frame::Oversized {
                                dropped: dropped + i,
                            }),
                        )
                    } else if line.len() + i > MAX_LINE {
                        (
                            i + 1,
                            Some(Frame::Oversized {
                                dropped: line.len() + i,
                            }),
                        )
                    } else {
                        line.extend_from_slice(&buf[..i]);
                        (i + 1, Some(Frame::Line(std::mem::take(&mut line))))
                    }
                }
                None => {
                    if dropped > 0 {
                        dropped += buf.len();
                    } else if line.len() + buf.len() > MAX_LINE {
                        dropped = line.len() + buf.len();
                        line = Vec::new();
                    } else {
                        line.extend_from_slice(buf);
                    }
                    (buf.len(), None)
                }
            }
        };
        r.consume(consume);
        if let Some(frame) = done {
            return Ok(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(bytes: &[u8]) -> Vec<Frame> {
        let mut r = Cursor::new(bytes.to_vec());
        let mut out = Vec::new();
        loop {
            let f = read_frame(&mut r).unwrap();
            let eof = f == Frame::Eof;
            out.push(f);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn frames_split_on_newlines_and_discard_torn_tail() {
        let got = frames(b"{\"op\":\"ping\"}\nnext\ntorn-tail-no-newline");
        assert_eq!(
            got,
            vec![
                Frame::Line(b"{\"op\":\"ping\"}".to_vec()),
                Frame::Line(b"next".to_vec()),
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn oversized_lines_are_drained_not_buffered() {
        let mut bytes = vec![b'x'; MAX_LINE + 5];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let got = frames(&bytes);
        assert_eq!(
            got,
            vec![
                Frame::Oversized {
                    dropped: MAX_LINE + 5
                },
                Frame::Line(b"{\"op\":\"ping\"}".to_vec()),
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn parse_accepts_the_full_verb_set() {
        assert_eq!(parse_request(b"{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request(b"{\"op\":\"drain\"}").unwrap(),
            Request::Drain
        );
        assert_eq!(
            parse_request(b"{\"op\":\"status\"}").unwrap(),
            Request::Status { job: None }
        );
        assert_eq!(
            parse_request(b"{\"op\":\"cancel\",\"job\":\"j3\"}").unwrap(),
            Request::Cancel { job: "j3".into() }
        );
        assert_eq!(
            parse_request(b"{\"op\":\"result\",\"job\":\"j3\",\"wait\":true}").unwrap(),
            Request::Result {
                job: "j3".into(),
                wait: true
            }
        );
        let sub = parse_request(
            b"{\"op\":\"submit\",\"design\":\"grid48\",\"timeout_s\":2.5,\"retries\":1}",
        )
        .unwrap();
        let tenanted = parse_request(
            b"{\"op\":\"submit\",\"design\":\"grid48\",\"tenant\":\"alice\",\"fault\":\"oom\"}",
        )
        .unwrap();
        match tenanted {
            Request::Submit(s) => {
                assert_eq!(s.tenant.as_deref(), Some("alice"));
                assert_eq!(s.fault.as_deref(), Some("oom"));
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert_eq!(
            sub,
            Request::Submit(SubmitSpec {
                design: "grid48".into(),
                design_file: None,
                config: "base".into(),
                timeout_s: Some(2.5),
                retries: Some(1),
                fault: None,
                tenant: None,
            })
        );
    }

    #[test]
    fn parse_rejects_malformed_requests_with_structured_errors() {
        let cases: &[&[u8]] = &[
            b"",
            b"not json",
            b"[1,2,3]",
            b"{\"no\":\"op\"}",
            b"{\"op\":\"unknown\"}",
            b"{\"op\":\"submit\"}",
            b"{\"op\":\"submit\",\"design\":7}",
            b"{\"op\":\"submit\",\"design\":\"g\",\"timeout_s\":-1}",
            b"{\"op\":\"submit\",\"design\":\"g\",\"timeout_s\":\"soon\"}",
            b"{\"op\":\"submit\",\"design\":\"g\",\"retries\":99}",
            b"{\"op\":\"submit\",\"design\":\"g\",\"fault\":\"explode\"}",
            b"{\"op\":\"submit\",\"design\":\"g\",\"tenant\":7}",
            b"{\"op\":\"cancel\"}",
            b"{\"op\":\"result\",\"job\":\"j\",\"wait\":\"yes\"}",
            b"\xff\xfe{\"op\":\"ping\"}",
        ];
        for c in cases {
            let err = parse_request(c).expect_err(&format!("{:?}", String::from_utf8_lossy(c)));
            assert_eq!(err.code, E_PARSE);
            let wire = err.to_value();
            assert_eq!(wire.get("ok"), Some(&Value::Bool(false)));
            assert!(wire.get("error").and_then(Value::as_str).is_some());
        }
    }
}
