//! Job definitions and the child-side runner.
//!
//! A job is `design × config (× fault hook)`. The daemon never runs a
//! flow in-process: every attempt re-execs `slltd --job …` so a panic,
//! OOM kill, or stack overflow is contained by the process boundary —
//! the same isolation contract as the `suite` batch runner, which
//! shares this module's [`config_by_name`] and the supervision and
//! backoff primitives.
//!
//! The child runs with the recovery ladder on, checkpoints levels next
//! to the daemon's journal, streams progress through a
//! [`JournalProgress`] sink the daemon tails for `status`/`watch`, and
//! reports through its exit code plus a final `RESULT {json}` stdout
//! line. A cancelled child exits [`EXIT_JOB_CANCELLED`] and leaves its
//! checkpoint for the next attempt to resume.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{
    evaluate, CancelToken, CtsError, FaultKind, FaultPlan, FaultStage, Progress, RecoveryPolicy,
    StageFault,
};
use sllt_design::Design;
use sllt_obs::{JournalProgress, Value};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Child exit code for a job that failed with a reported error.
pub const EXIT_JOB_ERROR: i32 = 2;
/// Child exit code for a cooperatively cancelled job (checkpoint kept).
pub const EXIT_JOB_CANCELLED: i32 = 3;

/// Named constraint configurations jobs may request. All run with the
/// recovery ladder on — a served job should degrade, not die.
pub fn config_by_name(name: &str) -> Result<HierarchicalCts, String> {
    let base = HierarchicalCts {
        recovery: RecoveryPolicy::standard(),
        ..HierarchicalCts::default()
    };
    match name {
        "base" => Ok(base),
        "tight" => Ok(HierarchicalCts {
            level_skew_fraction: 0.35,
            sizing_slack: 1.15,
            ..base
        }),
        "nosa" => Ok(HierarchicalCts {
            use_sa: false,
            ..base
        }),
        _ => Err(format!(
            "unknown config {name:?}; available: base, tight, nosa"
        )),
    }
}

/// Resolves a design name: the benchmark suite by name, or a synthetic
/// `grid<N>` register grid for smoke-scale jobs.
pub fn design_by_name(name: &str) -> Result<Design, String> {
    sllt_design::design_by_name(name)
        .ok_or_else(|| format!("unknown design {name:?}; see `sllt suite`"))
}

/// Fault-injection hooks a submit may attach — the test levers behind
/// the isolation, deadline, and drain contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// The child panics mid-flow through the PR-4 [`FaultPlan`] hook
    /// (an uncontained sizing-stage panic: a genuine process panic).
    Panic,
    /// The child wedges forever; only SIGKILL (the deadline) ends it.
    Hang,
    /// The child sleeps this long before running — a deterministic
    /// "slow job" for backpressure and kill-window tests.
    Sleep(u64),
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSpec, String> {
        match s {
            "panic" => Ok(FaultSpec::Panic),
            "hang" => Ok(FaultSpec::Hang),
            _ => match s.strip_prefix("sleep:").and_then(|ms| ms.parse().ok()) {
                Some(ms) => Ok(FaultSpec::Sleep(ms)),
                None => Err(format!("unknown fault {s:?}")),
            },
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::Panic => write!(f, "panic"),
            FaultSpec::Hang => write!(f, "hang"),
            FaultSpec::Sleep(ms) => write!(f, "sleep:{ms}"),
        }
    }
}

/// A job child's checkpoint journal path.
pub fn ckpt_path(out_dir: &Path, job_id: &str) -> PathBuf {
    out_dir.join(format!("ckpt_{job_id}.jsonl"))
}

/// A job child's live progress journal path.
pub fn progress_path(out_dir: &Path, job_id: &str) -> PathBuf {
    out_dir.join(format!("progress_{job_id}.jsonl"))
}

/// Where a finished job's tree lands (written atomically; the e2e
/// bit-identity test compares these across killed and clean runs).
pub fn tree_path(out_dir: &Path, job_id: &str) -> PathBuf {
    out_dir.join(format!("tree_{job_id}.sllt"))
}

/// Everything a re-exec'd child needs to run one attempt.
#[derive(Debug, Clone)]
pub struct ChildArgs {
    /// Job id (names the checkpoint/progress/tree artifacts).
    pub job_id: String,
    /// Design name (used when `design_file` is `None`).
    pub design: String,
    /// Sanitized design artifact from the cache, if the job came in by
    /// file.
    pub design_file: Option<PathBuf>,
    /// Constraint config name.
    pub config: String,
    /// Route workers inside the child.
    pub workers: usize,
    /// State directory (checkpoints, progress, trees).
    pub out_dir: PathBuf,
    /// Optional fault hook.
    pub fault: Option<FaultSpec>,
}

/// Runs one job attempt in this process. Returns the exit code to
/// report: `Ok` on success, `Err(code)` otherwise. This is the
/// isolation boundary — anything in here may fail, panic, or be killed
/// without consequence for the daemon.
pub fn run_child(args: &ChildArgs) -> Result<(), u8> {
    let fail = |msg: String| -> u8 {
        eprintln!("error: {msg}");
        EXIT_JOB_ERROR as u8
    };

    match args.fault {
        Some(FaultSpec::Hang) => loop {
            // A wedged job: burns nothing, never exits, ignores the
            // cooperative machinery. The deadline's SIGKILL is the only
            // way out — exactly what the timeout tests need.
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
        Some(FaultSpec::Sleep(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        _ => {}
    }

    let design = match &args.design_file {
        Some(path) => {
            let f = std::fs::File::open(path)
                .map_err(|e| fail(format!("open {}: {e}", path.display())))?;
            sllt_design::read_design(&mut BufReader::new(f))
                .map_err(|e| fail(format!("{}: {e}", path.display())))?
        }
        None => design_by_name(&args.design).map_err(fail)?,
    };
    let mut cts = config_by_name(&args.config).map_err(fail)?;
    cts.workers = args.workers;
    if args.fault == Some(FaultSpec::Panic) {
        // The PR-4 fault hook, aimed where no containment wraps it: a
        // sizing-stage panic unwinds straight out of the child process.
        cts.faults = FaultPlan::single(StageFault::permanent(
            FaultStage::Sizing,
            0,
            None,
            FaultKind::Panic,
        ));
    }

    let token = CancelToken::new();
    cts.cancel = token.clone();
    #[cfg(unix)]
    sllt_cts::cancel::install_signals(&token);

    // Live progress into the job's sealed journal; the daemon tails it
    // for status/watch. Not being able to create it is not fatal —
    // progress is observability, never a reason to fail a job.
    if let Ok(sink) = JournalProgress::create(&progress_path(&args.out_dir, &args.job_id)) {
        cts.progress = Progress::new(Arc::new(sink));
    }

    let ckpt = ckpt_path(&args.out_dir, &args.job_id);
    let t0 = Instant::now();
    let result = if ckpt.exists() {
        match cts.resume(&design, &ckpt) {
            // Stale/mismatched journal (config drift, corruption beyond
            // the torn-tail tolerance): discard and start fresh.
            Err(CtsError::Checkpoint { .. }) => {
                std::fs::remove_file(&ckpt).ok();
                cts.run_checkpointed(&design, &ckpt)
            }
            other => other,
        }
    } else {
        cts.run_checkpointed(&design, &ckpt)
    };

    match result {
        Ok(tree) => {
            let report = evaluate(&tree, &cts.tech, &cts.lib);
            let tree_file = tree_path(&args.out_dir, &args.job_id);
            write_tree_atomic(&tree_file, &tree).map_err(fail)?;
            let v = Value::obj()
                .with("job", args.job_id.as_str())
                .with("design", design.name.as_str())
                .with("config", args.config.as_str())
                .with("sinks", design.num_ffs())
                .with("skew_ps", report.skew_ps)
                .with("wl_um", report.clock_wl_um)
                .with("buffers", report.num_buffers)
                .with("runtime_s", t0.elapsed().as_secs_f64())
                .with("tree", tree_file.display().to_string());
            println!("RESULT {}", v.encode());
            // The daemon's journal row is the durable record now; the
            // level checkpoint has nothing left to resume.
            std::fs::remove_file(&ckpt).ok();
            Ok(())
        }
        Err(CtsError::Cancelled) => {
            eprintln!(
                "{}: cancelled; committed levels remain at {}",
                args.job_id,
                ckpt.display()
            );
            Err(EXIT_JOB_CANCELLED as u8)
        }
        Err(e) => Err(fail(format!("{}: {e}", args.job_id))),
    }
}

/// Writes the result tree via temp + rename so a child killed mid-write
/// can never leave a torn tree that a later comparison would trust.
fn write_tree_atomic(path: &Path, tree: &sllt_tree::ClockTree) -> Result<(), String> {
    let tmp = path.with_extension("sllt.tmp");
    let mut f =
        std::fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    sllt_tree::io::write_tree(tree, &mut f).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_round_trip_and_reject_garbage() {
        for s in ["panic", "hang", "sleep:250"] {
            let f: FaultSpec = s.parse().unwrap();
            assert_eq!(f.to_string(), s);
        }
        assert!("explode".parse::<FaultSpec>().is_err());
        assert!("sleep:soon".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn configs_resolve_and_unknowns_are_named() {
        for c in ["base", "tight", "nosa"] {
            assert!(config_by_name(c).is_ok(), "{c}");
        }
        let err = config_by_name("hyperdrive").unwrap_err();
        assert!(err.contains("hyperdrive"));
        assert!(design_by_name("not_a_design").is_err());
    }

    #[test]
    fn child_runs_a_grid_job_end_to_end() {
        let dir = std::env::temp_dir().join(format!("sllt_jobs_child_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let args = ChildArgs {
            job_id: "t1".into(),
            design: "grid36".into(),
            design_file: None,
            config: "base".into(),
            workers: 1,
            out_dir: dir.clone(),
            fault: None,
        };
        run_child(&args).expect("job runs");
        assert!(tree_path(&dir, "t1").exists());
        assert!(progress_path(&dir, "t1").exists());
        assert!(
            !ckpt_path(&dir, "t1").exists(),
            "finished job cleans its checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
