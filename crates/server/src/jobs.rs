//! Job definitions and the child-side runner.
//!
//! A job is `design × config (× fault hook)`. The daemon never runs a
//! flow in-process: every attempt re-execs `slltd --job …` so a panic,
//! OOM kill, or stack overflow is contained by the process boundary —
//! the same isolation contract as the `suite` batch runner, which
//! shares this module's [`config_by_name`] and the supervision and
//! backoff primitives.
//!
//! The child runs with the recovery ladder on, checkpoints levels next
//! to the daemon's journal, streams progress through a
//! [`JournalProgress`] sink the daemon tails for `status`/`watch`, and
//! reports through its exit code plus a final `RESULT {json}` stdout
//! line. A cancelled child exits [`EXIT_JOB_CANCELLED`] and leaves its
//! checkpoint for the next attempt to resume.

use sllt_cts::flow::HierarchicalCts;
use sllt_cts::{
    evaluate, CancelToken, CtsError, FaultKind, FaultPlan, FaultStage, Progress, RecoveryPolicy,
    StageFault,
};
use sllt_design::Design;
use sllt_obs::progress::{read_progress, ProgressEvent};
use sllt_obs::{JournalProgress, Value};
use std::collections::HashSet;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Child exit code for a job that failed with a reported error.
pub const EXIT_JOB_ERROR: i32 = 2;
/// Child exit code for a cooperatively cancelled job (checkpoint kept).
pub const EXIT_JOB_CANCELLED: i32 = 3;

/// Named constraint configurations jobs may request. All run with the
/// recovery ladder on — a served job should degrade, not die.
pub fn config_by_name(name: &str) -> Result<HierarchicalCts, String> {
    let base = HierarchicalCts {
        recovery: RecoveryPolicy::standard(),
        ..HierarchicalCts::default()
    };
    match name {
        "base" => Ok(base),
        "tight" => Ok(HierarchicalCts {
            level_skew_fraction: 0.35,
            sizing_slack: 1.15,
            ..base
        }),
        "nosa" => Ok(HierarchicalCts {
            use_sa: false,
            ..base
        }),
        _ => Err(format!(
            "unknown config {name:?}; available: base, tight, nosa"
        )),
    }
}

/// Resolves a design name: the benchmark suite by name, or a synthetic
/// `grid<N>` register grid for smoke-scale jobs.
pub fn design_by_name(name: &str) -> Result<Design, String> {
    sllt_design::design_by_name(name)
        .ok_or_else(|| format!("unknown design {name:?}; see `sllt suite`"))
}

/// Fault-injection hooks a submit may attach — the test levers behind
/// the isolation, deadline, and drain contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// The child panics mid-flow through the PR-4 [`FaultPlan`] hook
    /// (an uncontained sizing-stage panic: a genuine process panic).
    Panic,
    /// The child wedges forever; only SIGKILL (the deadline) ends it.
    Hang,
    /// The child sleeps this long before running — a deterministic
    /// "slow job" for backpressure and kill-window tests.
    Sleep(u64),
    /// The child balloons its address space until the allocator gives
    /// up — the test lever for the `--mem-limit` RLIMIT_AS ceiling and
    /// its distinct `oom` classification.
    Oom,
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSpec, String> {
        match s {
            "panic" => Ok(FaultSpec::Panic),
            "hang" => Ok(FaultSpec::Hang),
            "oom" => Ok(FaultSpec::Oom),
            _ => match s.strip_prefix("sleep:").and_then(|ms| ms.parse().ok()) {
                Some(ms) => Ok(FaultSpec::Sleep(ms)),
                None => Err(format!("unknown fault {s:?}")),
            },
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::Panic => write!(f, "panic"),
            FaultSpec::Hang => write!(f, "hang"),
            FaultSpec::Sleep(ms) => write!(f, "sleep:{ms}"),
            FaultSpec::Oom => write!(f, "oom"),
        }
    }
}

/// A job child's checkpoint journal path.
pub fn ckpt_path(out_dir: &Path, job_id: &str) -> PathBuf {
    out_dir.join(format!("ckpt_{job_id}.jsonl"))
}

/// A job child's live progress journal path.
pub fn progress_path(out_dir: &Path, job_id: &str) -> PathBuf {
    out_dir.join(format!("progress_{job_id}.jsonl"))
}

/// Where a finished job's tree lands (written atomically; the e2e
/// bit-identity test compares these across killed and clean runs).
pub fn tree_path(out_dir: &Path, job_id: &str) -> PathBuf {
    out_dir.join(format!("tree_{job_id}.sllt"))
}

/// Everything a re-exec'd child needs to run one attempt.
#[derive(Debug, Clone)]
pub struct ChildArgs {
    /// Job id (names the checkpoint/progress/tree artifacts).
    pub job_id: String,
    /// Design name (used when `design_file` is `None`).
    pub design: String,
    /// Sanitized design artifact from the cache, if the job came in by
    /// file.
    pub design_file: Option<PathBuf>,
    /// Constraint config name.
    pub config: String,
    /// Route workers inside the child.
    pub workers: usize,
    /// State directory (checkpoints, progress, trees).
    pub out_dir: PathBuf,
    /// Optional fault hook.
    pub fault: Option<FaultSpec>,
}

/// Runs one job attempt in this process. Returns the exit code to
/// report: `Ok` on success, `Err(code)` otherwise. This is the
/// isolation boundary — anything in here may fail, panic, or be killed
/// without consequence for the daemon.
pub fn run_child(args: &ChildArgs) -> Result<(), u8> {
    let fail = |msg: String| -> u8 {
        eprintln!("error: {msg}");
        EXIT_JOB_ERROR as u8
    };

    match args.fault {
        Some(FaultSpec::Hang) => loop {
            // A wedged job: burns nothing, never exits, ignores the
            // cooperative machinery. The deadline's SIGKILL is the only
            // way out — exactly what the timeout tests need.
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
        Some(FaultSpec::Sleep(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(FaultSpec::Oom) => {
            // Balloon the address space in untouched reservations: under
            // an RLIMIT_AS ceiling the allocator hits the wall within a
            // few chunks and libstd aborts with "memory allocation of N
            // bytes failed" on stderr — the signature the daemon
            // classifies as `oom`. Without a ceiling the reservations
            // stay unmapped (no RSS), the 64 GiB cap runs out, and the
            // job fails as a plain error instead of hurting the host.
            let mut hoard: Vec<Vec<u8>> = Vec::new();
            for _ in 0..1024 {
                hoard.push(Vec::with_capacity(64 << 20));
            }
            drop(hoard);
            eprintln!("error: oom fault exhausted its cap without hitting a memory ceiling");
            return Err(EXIT_JOB_ERROR as u8);
        }
        _ => {}
    }

    let design = match &args.design_file {
        Some(path) => {
            let f = std::fs::File::open(path)
                .map_err(|e| fail(format!("open {}: {e}", path.display())))?;
            sllt_design::read_design(&mut BufReader::new(f))
                .map_err(|e| fail(format!("{}: {e}", path.display())))?
        }
        None => design_by_name(&args.design).map_err(fail)?,
    };
    let mut cts = config_by_name(&args.config).map_err(fail)?;
    cts.workers = args.workers;
    if args.fault == Some(FaultSpec::Panic) {
        // The PR-4 fault hook, aimed where no containment wraps it: a
        // sizing-stage panic unwinds straight out of the child process.
        cts.faults = FaultPlan::single(StageFault::permanent(
            FaultStage::Sizing,
            0,
            None,
            FaultKind::Panic,
        ));
    }

    let token = CancelToken::new();
    cts.cancel = token.clone();
    #[cfg(unix)]
    sllt_cts::cancel::install_signals(&token);

    // Live progress into the job's sealed journal; the daemon tails it
    // for status/watch. Not being able to create it is not fatal —
    // progress is observability, never a reason to fail a job.
    if let Ok(sink) = JournalProgress::create(&progress_path(&args.out_dir, &args.job_id)) {
        cts.progress = Progress::new(Arc::new(sink));
    }

    let ckpt = ckpt_path(&args.out_dir, &args.job_id);
    let t0 = Instant::now();
    let result = if ckpt.exists() {
        match cts.resume(&design, &ckpt) {
            // Stale/mismatched journal (config drift, corruption beyond
            // the torn-tail tolerance): discard and start fresh.
            Err(CtsError::Checkpoint { .. }) => {
                std::fs::remove_file(&ckpt).ok();
                cts.run_checkpointed(&design, &ckpt)
            }
            other => other,
        }
    } else {
        cts.run_checkpointed(&design, &ckpt)
    };

    match result {
        Ok(tree) => {
            let report = evaluate(&tree, &cts.tech, &cts.lib);
            let tree_file = tree_path(&args.out_dir, &args.job_id);
            write_tree_atomic(&tree_file, &tree).map_err(fail)?;
            let mut v = Value::obj()
                .with("job", args.job_id.as_str())
                .with("design", design.name.as_str())
                .with("config", args.config.as_str())
                .with("sinks", design.num_ffs())
                .with("skew_ps", report.skew_ps)
                .with("wl_um", report.clock_wl_um)
                .with("buffers", report.num_buffers)
                .with("runtime_s", t0.elapsed().as_secs_f64())
                .with("tree", tree_file.display().to_string());
            // Nonfatal storage degradation: the flow dropped its
            // checkpoint writer mid-run (full or failing disk) and
            // finished in memory. The progress stream carries the
            // structured event; surface it as a flag in the run record
            // so the daemon's job row (and anything tailing RESULT
            // lines) sees the job succeeded on degraded storage.
            let degraded = read_progress(&progress_path(&args.out_dir, &args.job_id))
                .map(|evs| {
                    evs.iter()
                        .any(|e| matches!(e, ProgressEvent::StorageDegraded { .. }))
                })
                .unwrap_or(false);
            if degraded {
                v = v.with("storage_degraded", true);
            }
            println!("RESULT {}", v.encode());
            // The daemon's journal row is the durable record now; the
            // level checkpoint has nothing left to resume.
            std::fs::remove_file(&ckpt).ok();
            Ok(())
        }
        Err(CtsError::Cancelled) => {
            eprintln!(
                "{}: cancelled; committed levels remain at {}",
                args.job_id,
                ckpt.display()
            );
            Err(EXIT_JOB_CANCELLED as u8)
        }
        Err(e) => Err(fail(format!("{}: {e}", args.job_id))),
    }
}

/// What a [`gc_artifacts`] pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Bytes reclaimed by deleting artifacts.
    pub freed: u64,
    /// Bytes of job artifacts still on disk after the pass.
    pub remaining: u64,
    /// Files deleted.
    pub deleted: usize,
}

/// Enforces the daemon's disk budget over per-job artifacts — result
/// trees (`tree_*.sllt`), progress journals (`progress_*.jsonl`), and
/// level checkpoints (`ckpt_*.jsonl`) under the state directory. When
/// their combined size exceeds `budget` bytes, artifacts are deleted
/// oldest-modified-first until the total fits, skipping any whose job
/// id is in `protect` (jobs not yet finally done still need their
/// checkpoints and progress). `jobs.jsonl` and the design cache are
/// never touched: the journal is the daemon's source of truth and the
/// cache has its own content-addressed lifecycle.
///
/// # Errors
///
/// Propagates a directory-scan failure; per-file stat/delete errors are
/// skipped (a file raced away is a file already reclaimed).
pub fn gc_artifacts(
    state_dir: &Path,
    budget: u64,
    protect: &HashSet<String>,
) -> std::io::Result<GcReport> {
    let job_id_of = |name: &str| -> Option<String> {
        for (prefix, suffix) in [
            ("tree_", ".sllt"),
            ("progress_", ".jsonl"),
            ("ckpt_", ".jsonl"),
        ] {
            if let Some(id) = name
                .strip_prefix(prefix)
                .and_then(|rest| rest.strip_suffix(suffix))
            {
                return Some(id.to_string());
            }
        }
        None
    };

    let mut files: Vec<(PathBuf, u64, std::time::SystemTime, String)> = Vec::new();
    for entry in std::fs::read_dir(state_dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(id) = name.to_str().and_then(job_id_of) else {
            continue;
        };
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        files.push((entry.path(), meta.len(), mtime, id));
    }

    let mut total: u64 = files.iter().map(|(_, len, _, _)| *len).sum();
    let mut report = GcReport {
        remaining: total,
        ..GcReport::default()
    };
    if total <= budget {
        return Ok(report);
    }
    files.sort_by_key(|(_, _, mtime, _)| *mtime);
    for (path, len, _, id) in files {
        if total <= budget {
            break;
        }
        if protect.contains(&id) {
            continue;
        }
        if std::fs::remove_file(&path).is_ok() {
            total -= len;
            report.freed += len;
            report.deleted += 1;
        }
    }
    report.remaining = total;
    Ok(report)
}

/// Writes the result tree via temp + rename so a child killed mid-write
/// can never leave a torn tree that a later comparison would trust.
fn write_tree_atomic(path: &Path, tree: &sllt_tree::ClockTree) -> Result<(), String> {
    let tmp = path.with_extension("sllt.tmp");
    let mut f =
        std::fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    sllt_tree::io::write_tree(tree, &mut f).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_round_trip_and_reject_garbage() {
        for s in ["panic", "hang", "sleep:250", "oom"] {
            let f: FaultSpec = s.parse().unwrap();
            assert_eq!(f.to_string(), s);
        }
        assert!("explode".parse::<FaultSpec>().is_err());
        assert!("sleep:soon".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn configs_resolve_and_unknowns_are_named() {
        for c in ["base", "tight", "nosa"] {
            assert!(config_by_name(c).is_ok(), "{c}");
        }
        let err = config_by_name("hyperdrive").unwrap_err();
        assert!(err.contains("hyperdrive"));
        assert!(design_by_name("not_a_design").is_err());
    }

    #[test]
    fn gc_deletes_oldest_unprotected_artifacts_until_under_budget() {
        let dir = std::env::temp_dir().join(format!("sllt_jobs_gc_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Four artifacts of 1000 bytes each, mtime-ordered j1 < j2 < j3;
        // an unrelated file must never be touched.
        for name in ["tree_j1.sllt", "progress_j2.jsonl", "ckpt_j3.jsonl"] {
            std::fs::write(dir.join(name), vec![b'x'; 1000]).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        std::fs::write(dir.join("jobs.jsonl"), vec![b'x'; 1000]).unwrap();

        // j1 is oldest but protected; j2 goes first, then j3 would go
        // but the budget is already met.
        let protect: HashSet<String> = ["j1".to_string()].into();
        let rep = gc_artifacts(&dir, 2000, &protect).unwrap();
        assert_eq!(rep.deleted, 1, "{rep:?}");
        assert_eq!(rep.freed, 1000);
        assert_eq!(rep.remaining, 2000);
        assert!(dir.join("tree_j1.sllt").exists(), "protected survives");
        assert!(!dir.join("progress_j2.jsonl").exists(), "oldest victim");
        assert!(dir.join("ckpt_j3.jsonl").exists());
        assert!(dir.join("jobs.jsonl").exists(), "journal never GC'd");

        // Under budget: a pass is a no-op.
        let rep = gc_artifacts(&dir, 1 << 20, &HashSet::new()).unwrap();
        assert_eq!(
            rep,
            GcReport {
                remaining: 2000,
                ..GcReport::default()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn child_runs_a_grid_job_end_to_end() {
        let dir = std::env::temp_dir().join(format!("sllt_jobs_child_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let args = ChildArgs {
            job_id: "t1".into(),
            design: "grid36".into(),
            design_file: None,
            config: "base".into(),
            workers: 1,
            out_dir: dir.clone(),
            fault: None,
        };
        run_child(&args).expect("job runs");
        assert!(tree_path(&dir, "t1").exists());
        assert!(progress_path(&dir, "t1").exists());
        assert!(
            !ckpt_path(&dir, "t1").exists(),
            "finished job cleans its checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
