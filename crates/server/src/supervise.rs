//! Child-process supervision: spawn, watch, interrupt, kill.
//!
//! The isolation primitive shared by the `suite` batch runner and the
//! `slltd` scheduler. A job child is spawned with piped output and
//! watched by polling [`Child::try_wait`]; the supervisor enforces two
//! independent stop paths:
//!
//! * **Deadline** — a wall-clock timeout after which the child is
//!   SIGKILLed (it may be wedged; SIGKILL is the only signal a wedged
//!   process cannot ignore). The outcome is marked
//!   [`timed_out`](Supervised::timed_out).
//! * **Interrupt** — a [`CancelToken`] that, once fired, sends SIGINT
//!   so the child can cancel cooperatively (checkpointing committed
//!   levels); if it has not exited after the grace period it is
//!   SIGKILLed. The outcome is marked
//!   [`interrupted`](Supervised::interrupted).
//!
//! Stdout/stderr are drained by reader threads for the child's whole
//! life, so a chatty child can never deadlock against a full pipe.

use sllt_cts::CancelToken;
use std::io::Read;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Supervision policy for one child run.
#[derive(Debug, Clone)]
pub struct SuperviseOpts {
    /// Wall-clock deadline; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Cooperative-stop request: when this token fires the child gets
    /// SIGINT, then SIGKILL after [`grace`](Self::grace).
    pub interrupt: Option<CancelToken>,
    /// How long a SIGINTed child may keep running before SIGKILL.
    pub grace: Duration,
    /// try_wait polling period.
    pub poll: Duration,
    /// Address-space ceiling (RLIMIT_AS, bytes) installed in the child
    /// before exec, so one runaway job cannot take the host (or its
    /// sibling workers) down with it. `None` = unlimited; ignored off
    /// unix.
    pub mem_limit: Option<u64>,
}

impl Default for SuperviseOpts {
    fn default() -> Self {
        SuperviseOpts {
            timeout: None,
            interrupt: None,
            grace: Duration::from_secs(5),
            poll: Duration::from_millis(15),
            mem_limit: None,
        }
    }
}

/// What happened to a supervised child.
#[derive(Debug)]
pub struct Supervised {
    /// Final exit status (always reaped; killed children report the
    /// signal here).
    pub status: ExitStatus,
    /// Captured stdout (lossy UTF-8).
    pub stdout: String,
    /// Captured stderr (lossy UTF-8).
    pub stderr: String,
    /// The deadline fired and the child was SIGKILLed.
    pub timed_out: bool,
    /// The interrupt token fired; the child was SIGINTed (and, if it
    /// outlived the grace period, SIGKILLed — then `timed_out` is also
    /// set).
    pub interrupted: bool,
    /// Wall time from spawn to reap.
    pub wall: Duration,
}

#[cfg(unix)]
fn send_sigint(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGINT: i32 = 2;
    // SAFETY: plain kill(2) on a pid we own; failure (already-exited
    // child) is benign and ignored.
    unsafe {
        kill(child.id() as i32, SIGINT);
    }
}

#[cfg(not(unix))]
fn send_sigint(_child: &Child) {}

/// Restores default SIGINT/SIGTERM dispositions in the child.
///
/// A supervisor launched as a shell background job (`slltd … &`, CI
/// scripts, `nohup`) inherits `SIG_IGN` for SIGINT — POSIX requires it
/// when job control is off — and ignored dispositions survive both
/// fork *and* exec. Without this reset the interrupt path would be a
/// silent no-op for any child that does not install its own handler:
/// every cancel would wait out the full grace period and end in
/// SIGKILL, losing the cooperative checkpoint. Resetting to `SIG_DFL`
/// right before exec makes supervision behave identically no matter
/// how the supervisor itself was started.
#[cfg(unix)]
fn reset_child_signals(cmd: &mut Command) {
    use std::os::unix::process::CommandExt;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIG_DFL: usize = 0;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: the pre-exec hook only calls signal(2) with SIG_DFL,
    // which is async-signal-safe and touches no Rust runtime state.
    unsafe {
        cmd.pre_exec(|| {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
            Ok(())
        });
    }
}

#[cfg(not(unix))]
fn reset_child_signals(_cmd: &mut Command) {}

/// Installs an address-space ceiling in the child before exec.
///
/// RLIMIT_AS (not RLIMIT_DATA) so every allocation path counts — heap,
/// mmap, thread stacks. A child that hits the ceiling sees allocation
/// failure, which libstd turns into an abort with "memory allocation of
/// N bytes failed" on stderr; the supervisor's caller classifies that
/// distinctly from a panic. Both soft and hard limits are set so the
/// child cannot raise them back.
#[cfg(unix)]
fn limit_child_memory(cmd: &mut Command, bytes: u64) {
    use std::os::unix::process::CommandExt;
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_AS: i32 = 9;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_AS: i32 = 5;
    // SAFETY: the pre-exec hook only calls setrlimit(2), which is
    // async-signal-safe and touches no Rust runtime state; the rlimit
    // struct lives in the moved closure.
    unsafe {
        cmd.pre_exec(move || {
            let lim = RLimit {
                cur: bytes,
                max: bytes,
            };
            setrlimit(RLIMIT_AS, &lim);
            Ok(())
        });
    }
}

#[cfg(not(unix))]
fn limit_child_memory(_cmd: &mut Command, _bytes: u64) {}

fn drain(pipe: Option<impl Read + Send + 'static>) -> std::thread::JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut buf = Vec::new();
        if let Some(mut p) = pipe {
            p.read_to_end(&mut buf).ok();
        }
        buf
    })
}

/// Runs `cmd` to completion under the supervision policy.
///
/// # Errors
///
/// Propagates spawn/wait failures; a child that exits badly (or is
/// killed) is an `Ok` with the story in the [`Supervised`] fields.
pub fn run_supervised(cmd: &mut Command, opts: &SuperviseOpts) -> std::io::Result<Supervised> {
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    reset_child_signals(cmd);
    if let Some(bytes) = opts.mem_limit {
        limit_child_memory(cmd, bytes);
    }
    let start = Instant::now();
    let mut child = cmd.spawn()?;
    let out = drain(child.stdout.take());
    let err = drain(child.stderr.take());

    let mut timed_out = false;
    let mut interrupted = false;
    let mut int_at: Option<Instant> = None;
    let status = loop {
        if let Some(status) = child.try_wait()? {
            break status;
        }
        let now = Instant::now();
        if !interrupted {
            if let Some(token) = &opts.interrupt {
                if token.is_cancelled() {
                    interrupted = true;
                    int_at = Some(now);
                    send_sigint(&child);
                }
            }
        }
        let deadline_hit = opts.timeout.is_some_and(|t| now.duration_since(start) >= t);
        let grace_hit = int_at.is_some_and(|at| now.duration_since(at) >= opts.grace);
        if !timed_out && (deadline_hit || grace_hit) {
            timed_out = true;
            child.kill().ok(); // SIGKILL; reaped on the next try_wait
        }
        std::thread::sleep(opts.poll);
    };
    // Wall clock stops at the reap; the pipe drains below may outlive
    // the child if it leaked its fds to an orphaned grandchild.
    let wall = start.elapsed();
    Ok(Supervised {
        status,
        stdout: String::from_utf8_lossy(&out.join().unwrap_or_default()).into_owned(),
        stderr: String::from_utf8_lossy(&err.join().unwrap_or_default()).into_owned(),
        timed_out,
        interrupted,
        wall,
    })
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut c = Command::new("/bin/sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn healthy_child_output_is_captured() {
        let s =
            run_supervised(&mut sh("echo out; echo err >&2"), &SuperviseOpts::default()).unwrap();
        assert!(s.status.success());
        assert_eq!(s.stdout, "out\n");
        assert_eq!(s.stderr, "err\n");
        assert!(!s.timed_out && !s.interrupted);
    }

    #[test]
    fn hung_child_is_sigkilled_at_the_deadline() {
        let opts = SuperviseOpts {
            timeout: Some(Duration::from_millis(200)),
            ..SuperviseOpts::default()
        };
        // fds redirected: if sh forks rather than execs, the orphaned
        // sleep must not hold our pipes open after the SIGKILL.
        let s = run_supervised(&mut sh("sleep 30 >/dev/null 2>&1"), &opts).unwrap();
        assert!(s.timed_out);
        assert!(!s.status.success());
        assert!(
            s.wall < Duration::from_secs(10),
            "deadline must actually bound the wait, took {:?}",
            s.wall
        );
    }

    #[test]
    fn interrupt_sends_sigint_then_escalates_after_grace() {
        // A child that ignores SIGINT: only the grace-period SIGKILL
        // can end it. The marker file is a trap-installation handshake
        // — the token cannot fire before the shell is actually immune,
        // however slowly the child gets scheduled.
        let marker = std::env::temp_dir().join(format!("sllt_sup_trap_{}", std::process::id()));
        std::fs::remove_file(&marker).ok();
        let token = CancelToken::new();
        let trigger = token.clone();
        let probe = marker.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            while !probe.exists() && t0.elapsed() < Duration::from_secs(20) {
                std::thread::sleep(Duration::from_millis(10));
            }
            trigger.cancel();
        });
        let opts = SuperviseOpts {
            interrupt: Some(token),
            grace: Duration::from_millis(200),
            ..SuperviseOpts::default()
        };
        // The inner sleep's fds are redirected so the orphan it becomes
        // after the SIGKILL cannot hold our pipes open.
        let script = format!(
            "trap '' INT; : > {}; sleep 30 >/dev/null 2>&1",
            marker.display()
        );
        let s = run_supervised(&mut sh(&script), &opts).unwrap();
        std::fs::remove_file(&marker).ok();
        assert!(s.interrupted && s.timed_out);
        assert!(s.wall < Duration::from_secs(25));

        // A cooperative child exits promptly on the SIGINT alone. The
        // child is spawned directly — a `sh -c` wrapper would fork the
        // sleep and absorb our SIGINT until it finished ("wait and
        // cooperative exit"), which is shell semantics, not ours.
        let token = CancelToken::new();
        token.cancel();
        let opts = SuperviseOpts {
            interrupt: Some(token),
            grace: Duration::from_secs(30),
            ..SuperviseOpts::default()
        };
        let mut cmd = Command::new("sleep");
        cmd.arg("30");
        let s = run_supervised(&mut cmd, &opts).unwrap();
        assert!(s.interrupted && !s.timed_out);
        assert!(s.wall < Duration::from_secs(10));
    }

    #[test]
    fn interrupt_reaches_children_even_when_the_supervisor_ignores_sigint() {
        // A supervisor launched as a shell background job (`slltd … &`,
        // nohup, CI) inherits SIG_IGN for SIGINT, and ignored
        // dispositions survive fork+exec. The pre-exec reset must
        // shield children from that inheritance, or cooperative cancel
        // silently degrades into grace-then-SIGKILL.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIG_IGN: usize = 1;
        // SAFETY: process-wide, but nothing in this test binary ever
        // signals the test process itself; restored before asserting.
        let prev = unsafe { signal(SIGINT, SIG_IGN) };
        let token = CancelToken::new();
        token.cancel();
        let opts = SuperviseOpts {
            interrupt: Some(token),
            grace: Duration::from_secs(30),
            ..SuperviseOpts::default()
        };
        let mut cmd = Command::new("sleep");
        cmd.arg("30");
        let s = run_supervised(&mut cmd, &opts);
        // SAFETY: restores the exact disposition observed above.
        unsafe { signal(SIGINT, prev) };
        let s = s.unwrap();
        assert!(
            s.interrupted && !s.timed_out,
            "SIGINT must reach the child despite the parent's SIG_IGN"
        );
        assert!(s.wall < Duration::from_secs(10));
    }
}
