//! Deterministic jittered exponential backoff for job retries.
//!
//! Both the `suite` batch runner and the `slltd` scheduler re-run a
//! failed job after a delay that doubles per attempt and carries jitter
//! so a burst of same-shaped failures does not retry in lockstep. The
//! jitter is *seeded*, never wall-clock random: the delay is a pure
//! function of `(seed, attempt)`, so a replayed batch backs off
//! identically and the manifest's recorded `backoff_ms` values are
//! reproducible — the same discipline as the engine's SplitMix64 seed
//! streams.

use sllt_rng::SplitMix64;

/// Base delay before the first retry, ms.
pub const BASE_MS: u64 = 100;
/// Delay ceiling, ms. Growth saturates here.
pub const CAP_MS: u64 = 5_000;

/// Backoff before `attempt` (1-based; attempt 1 is the initial try and
/// gets 0), in milliseconds. The delay for attempt `n ≥ 2` is drawn
/// uniformly from `[ceil/2, ceil)` where
/// `ceil = min(base × 2^(n−2), cap)` — "equal jitter": at least half
/// the exponential wait is always honored, and the draw depends only on
/// `(seed, n)`.
pub fn backoff_ms(seed: u64, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    if attempt <= 1 || base_ms == 0 {
        return 0;
    }
    let exp = attempt - 2;
    // Saturating shift: past 2^16 doublings everything caps anyway.
    let grown = base_ms.saturating_mul(1u64 << exp.min(16));
    let ceil = grown.min(cap_ms.max(1));
    let half = (ceil / 2).max(1);
    let mut rng = SplitMix64::new(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    half + rng.next_u64() % half
}

/// [`backoff_ms`] with the default [`BASE_MS`]/[`CAP_MS`] schedule.
pub fn default_backoff_ms(seed: u64, attempt: u32) -> u64 {
    backoff_ms(seed, attempt, BASE_MS, CAP_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_waits_nothing() {
        assert_eq!(backoff_ms(7, 0, 100, 5_000), 0);
        assert_eq!(backoff_ms(7, 1, 100, 5_000), 0);
    }

    #[test]
    fn delays_are_deterministic_in_seed_and_attempt() {
        for attempt in 2..8 {
            assert_eq!(
                backoff_ms(42, attempt, 100, 5_000),
                backoff_ms(42, attempt, 100, 5_000)
            );
        }
        // Different seeds de-synchronize (overwhelmingly likely for any
        // fixed pair; pinned here so a regression is loud).
        assert_ne!(backoff_ms(1, 4, 100, 5_000), backoff_ms(2, 4, 100, 5_000));
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        for seed in [0u64, 9, 0xdead_beef] {
            for attempt in 2..12u32 {
                let ceil = (100u64 << (attempt - 2)).min(5_000);
                let d = backoff_ms(seed, attempt, 100, 5_000);
                assert!(
                    d >= ceil / 2 && d < ceil.max(2),
                    "attempt {attempt}: {d} outside [{}, {ceil})",
                    ceil / 2
                );
            }
        }
    }

    #[test]
    fn cap_saturates_and_degenerate_inputs_stay_sane() {
        assert!(backoff_ms(3, 60, 100, 5_000) < 5_000);
        assert_eq!(backoff_ms(3, 5, 0, 5_000), 0, "zero base disables backoff");
        // cap smaller than base still yields a bounded, nonzero delay.
        let d = backoff_ms(3, 2, 1_000, 10);
        assert!((5..10).contains(&d));
    }
}
